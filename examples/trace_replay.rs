//! Record, replay, diff: the `radio-trace` debugging loop.
//!
//! A simulation bug report is only actionable if the run can be
//! reproduced *exactly* — and when two runs disagree, the question is
//! always "where did they first part ways?". This example walks the
//! full loop on an Algorithm-1 broadcast:
//!
//! 1. **Record** a fused-engine run into a compact `.rtrc` file: one
//!    structured event per transmission, sleep, collision, and
//!    collision-free delivery, framed per round.
//! 2. **Replay** the identical `(graph, protocol, seed)` through a
//!    [`ReplayVerifier`] against the recording read back from disk —
//!    zero divergences, at any engine thread count, because the engine
//!    emits events on the serial side of each round.
//! 3. **Diff** the recording against a seed-perturbed twin with
//!    [`first_divergence`], which pinpoints the first `(round, event,
//!    node)` where the two histories disagree — the starting point of
//!    any differential debugging session.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use adhoc_radio::core::broadcast::ee_random::EeRandomBroadcast;
use adhoc_radio::prelude::*;

/// One recorded Algorithm-1 run at `seed`, written to `path`.
fn record(
    g: &DiGraph,
    cfg: &EeBroadcastConfig,
    ecfg: EngineConfig,
    seed: u64,
    path: &std::path::Path,
) -> RunResult {
    let n = g.n();
    let header = RunHeader::new(seed, "v2", format!("gnp_directed/n={n}"));
    let mut sink = RecordingSink::create(path, &header).expect("create .rtrc");
    let mut proto = EeRandomBroadcast::new(n, 0, *cfg);
    let run = Engine::new(g, ecfg).run_fused_traced(&mut proto, seed, &mut sink);
    sink.finish(run.completed).expect("write footer");
    run
}

fn main() {
    let n = adhoc_radio::example_scale(4096, 256);
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(11, b"trace-demo", 0));
    let acfg = EeBroadcastConfig::for_gnp(n, p);
    let ecfg = EngineConfig::with_max_rounds(acfg.schedule_end() + 2);
    let dir = std::env::temp_dir().join(format!("trace-replay-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. Record.
    let seed = 42;
    let path = dir.join("run_a.rtrc");
    let run = record(&g, &acfg, ecfg, seed, &path);
    let rec = Recording::read_from(&path).expect("read recording");
    println!(
        "recorded: seed {seed}, {} rounds, {} events, {} bytes on disk ({})",
        rec.rounds.len(),
        rec.event_count(),
        std::fs::metadata(&path).map_or(0, |m| m.len()),
        path.display()
    );

    // 2. Replay the identical run against the recording. The verifier
    // is itself a TraceSink: the engine streams live events into it and
    // it compares them to the file, event for event.
    let mut verifier = ReplayVerifier::new(&rec);
    let mut proto = EeRandomBroadcast::new(n, 0, acfg);
    let replayed = Engine::new(&g, ecfg).run_fused_traced(&mut proto, seed, &mut verifier);
    assert_eq!(run, replayed, "re-driven run must be bit-identical");
    match verifier.finish() {
        Ok(events) => println!("replay:   verified {events} events, zero divergences"),
        Err(d) => panic!("replay diverged — engine nondeterminism: {d}"),
    }

    // 3. Diff against a seed-perturbed twin. Everything about the two
    // runs is identical except the seed, so the first divergence is the
    // first round where the perturbed coins land differently.
    let path_b = dir.join("run_b.rtrc");
    record(&g, &acfg, ecfg, seed + 1, &path_b);
    let rec_b = Recording::read_from(&path_b).expect("read twin");
    for (field, a, b) in header_diff(&rec, &rec_b) {
        println!("diff:     header {field}: A={a} B={b}");
    }
    match first_divergence(&rec, &rec_b) {
        Some(d) => println!("diff:     {d}"),
        None => println!("diff:     event streams identical (unexpected for different seeds)"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
