//! The Theorem 4.2 time/energy trade-off, live: sweeping the λ parameter
//! of Algorithm 3 between `log(n/D)` (fastest) and `log n` (cheapest)
//! trades broadcast time `O(Dλ + log² n)` against messages per node
//! `O(log² n / λ)`.
//!
//! ```sh
//! cargo run --release --example energy_tradeoff
//! ```

use adhoc_radio::graph::analysis::diameter_from;
use adhoc_radio::prelude::*;

fn main() {
    // A deep network (D ≈ n/2) gives λ its full range [log(n/D), log n] ≈
    // [1, log n]; on shallow networks the interval collapses and the
    // trade-off flattens into constants.
    // n = 2·spine, D = spine + 1; 512 nodes at full scale.
    let g = caterpillar(adhoc_radio::example_scale(256, 48), 1);
    let n = g.n();
    let source = 0;
    let d = diameter_from(&g, source).expect("connected");
    let l = (n as f64).log2();
    let lam_min = lambda(n, d);
    println!(
        "caterpillar: n = {n}, D = {d}; λ ranges over [log(n/D), log n] = [{lam_min:.1}, {l:.1}]\n"
    );

    let trials = 8;
    let mut table = TextTable::new(&[
        "λ",
        "avg bcast time",
        "mean msgs/node",
        "time × msgs",
        "theory time Dλ+log²n",
        "theory msgs log²n/λ",
    ]);

    let mut lam = lam_min;
    while lam <= l + 1e-9 {
        let cfg = GeneralBroadcastConfig::new(n, d).with_lambda(lam);
        let mut time_sum = 0.0;
        let mut msgs_sum = 0.0;
        let mut done = 0u32;
        for seed in 0..trials {
            let out = run_general_broadcast(&g, source, &cfg, seed);
            msgs_sum += out.mean_msgs_per_node();
            if let Some(t) = out.broadcast_time {
                time_sum += t as f64;
                done += 1;
            }
        }
        if done > 0 {
            let t = time_sum / done as f64;
            let m = msgs_sum / trials as f64;
            table.row(&[
                format!("{lam:.1}"),
                format!("{t:.0}"),
                format!("{m:.2}"),
                format!("{:.0}", t * m),
                format!("{:.0}", d as f64 * lam + l * l),
                format!("{:.1}", l * l / lam),
            ]);
        }
        lam += ((l - lam_min) / 5.0).max(0.5);
    }
    println!("{}", table.render());
    println!("reading: going down the table, energy falls ≈ 1/λ while time grows ≈ D·λ — Theorem 4.2's trade-off.");
}
