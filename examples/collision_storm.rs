//! Why radio broadcast is hard: the collision storm.
//!
//! In the paper's model (§1.2) a node receives only when *exactly one*
//! in-range neighbour transmits. Naive flooding — every informed node
//! repeats the message — therefore deadlocks on any dense network: after
//! the first round every uninformed node hears many transmitters at once,
//! forever. This example shows the storm on `G(n,p)` and how each
//! randomised protocol family breaks it.
//!
//! ```sh
//! cargo run --release --example collision_storm
//! ```

use adhoc_radio::prelude::*;

fn main() {
    let n = adhoc_radio::example_scale(2048, 256);
    let delta = 8.0;
    let p = delta * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(5, b"storm", 0));
    let d = n as f64 * p;
    println!("G(n,p): n = {n}, d = np = {d:.0}\n");

    let mut table = TextTable::new(&[
        "protocol",
        "informed",
        "rounds",
        "total msgs",
        "max msgs/node",
    ]);

    // 1. The storm: flooding with probability 1.
    let out = run_flood_broadcast(&g, 0, &FloodConfig::naive(400), 1);
    table.row(&[
        "naive flood (q=1)".to_string(),
        format!("{}/{}", out.informed, n),
        out.rounds_executed.to_string(),
        out.metrics.total_transmissions().to_string(),
        out.max_msgs_per_node().to_string(),
    ]);

    // 2. Blind repair: transmit w.p. 1/d forever. Works, wastes energy.
    let out = run_flood_broadcast(&g, 0, &FloodConfig::with_prob(1.0 / d, 4000), 2);
    table.row(&[
        "prob flood (q=1/d)".to_string(),
        format!("{}/{}", out.informed, n),
        out.broadcast_time
            .map_or(out.rounds_executed, |t| t)
            .to_string(),
        out.metrics.total_transmissions().to_string(),
        out.max_msgs_per_node().to_string(),
    ]);

    // 3. Decay: cycles q = 1, 1/2, 1/4 … — no knowledge of d needed.
    let out = run_decay_broadcast(&g, 0, &DecayConfig::new(n, 4), 3);
    table.row(&[
        "BGI Decay".to_string(),
        format!("{}/{}", out.informed, n),
        out.broadcast_time
            .map_or(out.rounds_executed, |t| t)
            .to_string(),
        out.metrics.total_transmissions().to_string(),
        out.max_msgs_per_node().to_string(),
    ]);

    // 4. The paper's Algorithm 1: structured phases, one shot per node.
    let out = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), 4);
    table.row(&[
        "Algorithm 1 (paper)".to_string(),
        format!("{}/{}", out.informed, n),
        out.broadcast_time
            .map_or(out.rounds_executed, |t| t)
            .to_string(),
        out.metrics.total_transmissions().to_string(),
        out.max_msgs_per_node().to_string(),
    ]);

    println!("{}", table.render());
    println!("naive flooding reaches the source's neighbourhood and stops dead — every later round is one big collision.");
}
