//! An emergency-alert scenario on a *known-diameter* but otherwise
//! unknown network: a long chain of road-side units with clusters of
//! vehicle radios (a caterpillar graph). Compares the paper's
//! Algorithm 3 against the two baselines it discusses:
//! Czumaj–Rytter (same time, `log(n/D)`× more messages) and BGI Decay
//! (unknown-topology, `Θ(D)` messages per node).
//!
//! ```sh
//! cargo run --release --example emergency_broadcast
//! ```

use adhoc_radio::graph::analysis::diameter_from;
use adhoc_radio::prelude::*;

fn main() {
    // 96 road-side units, each with 20 vehicles in range: n = 2016,
    // D = 97 — the deep-but-not-degenerate regime where the trade-offs
    // are visible.
    let spine = adhoc_radio::example_scale(96, 24);
    let legs = adhoc_radio::example_scale(20, 6);
    let g = caterpillar(spine, legs);
    let n = g.n();
    let source = 0;
    let d = diameter_from(&g, source).expect("connected");
    let lam = lambda(n, d);
    println!("network: caterpillar, n = {n}, D = {d}, λ = log2(n/D) = {lam:.2}\n");

    let seeds = 0..10u64;
    let mut rows: Vec<(String, f64, f64, f64, usize)> = Vec::new();

    // Algorithm 3 (paper): full energy schedule so message counts are
    // honest, then timed runs for broadcast time.
    {
        let mut time = 0.0;
        let mut mean_msgs = 0.0;
        let mut max_msgs = 0.0;
        let mut done = 0;
        for seed in seeds.clone() {
            let full = run_general_broadcast(&g, source, &GeneralBroadcastConfig::new(n, d), seed);
            mean_msgs += full.mean_msgs_per_node();
            max_msgs += full.max_msgs_per_node() as f64;
            if let Some(t) = full.broadcast_time {
                time += t as f64;
                done += 1;
            }
        }
        rows.push((
            "Algorithm 3 (α)".into(),
            time / done.max(1) as f64,
            mean_msgs / 10.0,
            max_msgs / 10.0,
            done,
        ));
    }

    // Czumaj–Rytter with the stop transformation.
    {
        let mut time = 0.0;
        let mut mean_msgs = 0.0;
        let mut max_msgs = 0.0;
        let mut done = 0;
        for seed in seeds.clone() {
            let full = run_cr_broadcast(&g, source, &CrBroadcastConfig::new(n, d), seed);
            mean_msgs += full.mean_msgs_per_node();
            max_msgs += full.max_msgs_per_node() as f64;
            if let Some(t) = full.broadcast_time {
                time += t as f64;
                done += 1;
            }
        }
        rows.push((
            "Czumaj–Rytter (α')".into(),
            time / done.max(1) as f64,
            mean_msgs / 10.0,
            max_msgs / 10.0,
            done,
        ));
    }

    // BGI Decay (doesn't know D; never retires).
    {
        let mut time = 0.0;
        let mut mean_msgs = 0.0;
        let mut max_msgs = 0.0;
        let mut done = 0;
        for seed in seeds.clone() {
            let out = run_decay_broadcast(&g, source, &DecayConfig::new(n, d), seed);
            mean_msgs += out.mean_msgs_per_node();
            max_msgs += out.max_msgs_per_node() as f64;
            if let Some(t) = out.broadcast_time {
                time += t as f64;
                done += 1;
            }
        }
        rows.push((
            "BGI Decay".into(),
            time / done.max(1) as f64,
            mean_msgs / 10.0,
            max_msgs / 10.0,
            done,
        ));
    }

    let mut table = TextTable::new(&[
        "algorithm",
        "avg bcast time",
        "mean msgs/node",
        "max msgs/node",
        "completed",
    ]);
    for (name, t, mean, max, done) in &rows {
        table.row(&[
            name.clone(),
            format!("{t:.0}"),
            format!("{mean:.2}"),
            format!("{max:.1}"),
            format!("{done}/10"),
        ]);
    }
    println!("{}", table.render());

    println!(
        "theory: time scale D·λ + log²n = {:.0}; Alg 3 msgs/node O(log²n/λ) = {:.1}; CR ≈ λ× more; Decay ≈ Θ(D) = {d}",
        general_time_scale(n, d),
        (n as f64).log2().powi(2) / lam,
    );
}
