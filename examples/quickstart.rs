//! Quickstart: broadcast a message through an unknown ad-hoc radio
//! network using the paper's Algorithm 1, with one transmission per node.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adhoc_radio::prelude::*;

fn main() {
    // An ad-hoc network of n radios: the directed Erdős–Rényi model of
    // the paper's §2, with p = δ·ln n / n comfortably above the
    // connectivity threshold. Nodes know n and p — nothing else.
    let n = adhoc_radio::example_scale(4096, 256);
    let delta = 8.0;
    let p = delta * (n as f64).ln() / n as f64;
    let mut rng = derive_rng(2024, b"quickstart-graph", 0);
    let graph = gnp_directed(n, p, &mut rng);
    println!(
        "network: n = {}, directed edges = {}, d = np = {:.1}",
        graph.n(),
        graph.m(),
        n as f64 * p
    );

    // Algorithm 1: three phases, at most ONE transmission per node.
    let cfg = EeBroadcastConfig::for_gnp(n, p);
    println!(
        "schedule: T = {} (phase 1), phase 2 = {}, phase 3 = {} rounds",
        cfg.params.t,
        if cfg.params.use_phase2 { "yes" } else { "no" },
        cfg.phase3_len(),
    );

    let source = 0;
    let outcome = run_ee_broadcast(&graph, source, &cfg, 7);

    println!("\n--- outcome -------------------------------------------");
    println!("informed           : {}/{}", outcome.informed, outcome.n);
    println!(
        "broadcast time     : {} rounds (O(log n); log2 n = {:.0})",
        outcome.broadcast_time.map_or("∞".into(), |r| r.to_string()),
        (n as f64).log2()
    );
    println!(
        "max msgs per node  : {}   <-- the paper's headline: ≤ 1",
        outcome.max_msgs_per_node()
    );
    println!(
        "total transmissions: {} (theory: O(log n / p) ≈ {:.0})",
        outcome.metrics.total_transmissions(),
        (n as f64).ln() / p
    );
    assert!(outcome.max_msgs_per_node() <= 1);

    // Contrast: what a naive "everyone repeats the message" flood does in
    // the radio model — permanent collisions, nothing moves.
    let flood = run_flood_broadcast(&graph, source, &FloodConfig::naive(500), 7);
    println!(
        "\nnaive flooding on the same network: {}/{} informed after {} rounds (collisions!)",
        flood.informed, flood.n, flood.rounds_executed
    );
}
