//! A sensor-field scenario: battery-powered sensors scattered over an
//! area must each learn every other sensor's reading (gossiping), with as
//! few radio transmissions as possible.
//!
//! Uses the random geometric topology the paper's §5 points to as the
//! realistic ad-hoc model, runs the paper's Algorithm 2 (transmit w.p.
//! `1/d`, join rumors), and finishes with the dynamic, time-stamped
//! variant sketched at the end of §3.
//!
//! ```sh
//! cargo run --release --example sensor_gossip
//! ```

use adhoc_radio::core::gossip::{run_ee_gossip, EeGossipConfig};
use adhoc_radio::prelude::*;

fn main() {
    // --- static gossip on G(n,p), the analysed model ---------------------
    let n = adhoc_radio::example_scale(1024, 128);
    let delta = 8.0;
    let p = delta * (n as f64).ln() / n as f64;
    let mut rng = derive_rng(99, b"sensor-gnp", 0);
    let gnp = gnp_directed(n, p, &mut rng);
    let cfg = EeGossipConfig::for_gnp(n, p);
    let d = cfg.params.d;
    println!(
        "G(n,p): n = {n}, d = {d:.1}, schedule = {} rounds",
        cfg.schedule_rounds()
    );

    let out = run_ee_gossip(&gnp, &cfg, 1);
    println!(
        "gossip time: {} rounds (theory O(d log n) ≈ {:.0}); msgs/node max = {}, mean = {:.1} (theory O(log n), log2 n = {:.0})",
        out.gossip_time.map_or("∞".into(), |r| r.to_string()),
        d * (n as f64).log2(),
        out.max_msgs_per_node(),
        out.mean_msgs_per_node(),
        (n as f64).log2(),
    );
    assert!(out.completed);

    // --- the same protocol on a heterogeneous sensor field ---------------
    // Sensors have per-device radio ranges (the asymmetry of §1): a
    // directed random geometric graph on the unit torus.
    let params = GeoParams {
        n,
        r_min: 0.05,
        r_max: 0.09,
    };
    let mut rng = derive_rng(99, b"sensor-rgg", 0);
    let (field, _positions) = random_geometric_directed(params, &mut rng);
    let mean_deg = field.m() as f64 / n as f64;
    println!(
        "\nsensor field (directed RGG): mean degree = {mean_deg:.1}, asymmetric links = {}",
        field
            .edges()
            .filter(|&(u, v)| !field.has_edge(v, u))
            .count()
    );

    // Algorithm 2 only needs a degree estimate; reuse its config with the
    // empirical mean degree via an equivalent G(n,p) parameterisation.
    let p_equiv = mean_deg / n as f64;
    let mut cfg_rgg = EeGossipConfig::for_gnp(n, p_equiv);
    cfg_rgg.gamma = 10.0; // geometric graphs have a larger diameter
    cfg_rgg.tracked = Some(64); // sample 64 rumors for cheap accounting
    let out = run_ee_gossip(&field, &cfg_rgg, 2);
    println!(
        "RGG gossip: completed = {} in {} rounds; msgs/node mean = {:.1}",
        out.completed,
        out.gossip_time.map_or(out.rounds_executed, |r| r),
        out.mean_msgs_per_node(),
    );

    // --- dynamic rumors with time stamps ---------------------------------
    // Fresh readings appear over time and expire (are no longer forwarded)
    // after a TTL, as in the paper's dynamic-gossip remark.
    let gnp_params = GnpParams::new(n, p);
    let scale = (gnp_params.d * (n as f64).log2()) as u64; // ≈ static gossip time scale
    let births: Vec<RumorBirth> = (0..6)
        .map(|i| RumorBirth {
            round: 1 + i * scale / 8,
            origin: ((i * 131) % n as u64) as NodeId,
        })
        .collect();
    let dyn_cfg = DynamicGossipConfig {
        params: gnp_params,
        births: births.clone(),
        ttl: 12 * scale,
        rounds: 14 * scale,
    };
    let coverage = run_dynamic_gossip(&gnp, dyn_cfg, 3);
    println!("\ndynamic gossip (ttl = {} rounds):", 12 * scale);
    for c in &coverage {
        println!(
            "  rumor born r{:>5} at node {:>4}: reached {:>4}/{} nodes{}",
            c.birth.round,
            c.birth.origin,
            c.reached,
            n,
            c.full_coverage_round
                .map_or(String::new(), |r| format!(", full coverage at round {r}")),
        );
    }
}
