//! The Theorem 4.4 lower-bound network (Figure 2) in action.
//!
//! A cascade of stars `S₁ … S_{log n}` (star `Sᵢ` has `2ⁱ` leaves) feeds a
//! long path. To get through star `Sᵢ`, *exactly one* of its `2ⁱ` leaves
//! must transmit in some round — so a time-invariant oblivious algorithm
//! must hedge across all `log n` scales, and hedging costs messages.
//! This demo runs several time-invariant strategies under the theorem's
//! round budget `c·D·log(n/D)` and prints success vs. energy next to the
//! theoretical floor `log²n / (max{4c,8}·log(n/D))`.
//!
//! ```sh
//! cargo run --release --example lower_bound_demo
//! ```

use adhoc_radio::graph::generate::lower_bound_net;
use adhoc_radio::prelude::*;
use adhoc_radio::util::ilog2_ceil;

fn main() {
    let k = adhoc_radio::example_scale(7, 5) as u32; // n = 2^k = 128 at full scale
    let diameter = adhoc_radio::example_scale(64, 32) as u32; // > 4 log n, as the theorem assumes
    let net = lower_bound_net(k, diameter);
    let n_nodes = net.graph.n();
    let l = ilog2_ceil(n_nodes as u64);
    let c = 60.0; // generous budget multiplier (theory constants are loose)
    let budget = thm44_round_budget(&net, c);
    println!(
        "Figure-2 network: {} nodes ({} stars, path of {}), D = {diameter}; round budget c·D·λ = {budget}\n",
        n_nodes,
        net.centers.len(),
        net.path.len(),
    );

    let strategies: Vec<(String, TimeInvariant)> = vec![
        ("fixed q = 1/2".into(), TimeInvariant::Fixed(0.5)),
        ("fixed q = 1/16".into(), TimeInvariant::Fixed(1.0 / 16.0)),
        ("fixed q = 1/128".into(), TimeInvariant::Fixed(1.0 / 128.0)),
        (
            "uniform k".into(),
            TimeInvariant::Dist(KDistribution::uniform_k(l)),
        ),
        (
            "paper α (λ=1)".into(),
            TimeInvariant::Dist(KDistribution::paper_alpha(l, 1.0)),
        ),
        (
            "paper α (λ=3)".into(),
            TimeInvariant::Dist(KDistribution::paper_alpha(l, 3.0)),
        ),
    ];

    let trials = 10u64;
    let mut table = TextTable::new(&[
        "strategy",
        "E[q]/round",
        "success",
        "mean msgs/node (successes)",
    ]);
    for (name, strat) in &strategies {
        let mut ok = 0;
        let mut msgs = 0.0;
        for seed in 0..trials {
            let out = thm44_trial(&net, strat, c, seed);
            if out.all_informed {
                ok += 1;
                msgs += out.mean_msgs_per_node();
            }
        }
        table.row(&[
            name.clone(),
            format!("{:.4}", strat.mean_q()),
            format!("{ok}/{trials}"),
            if ok > 0 {
                format!("{:.1}", msgs / ok as f64)
            } else {
                "—".to_string()
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "theoretical floor for algorithms succeeding w.p. ≥ 1−1/n in this budget: ≥ {:.1} msgs/node",
        thm44_bound(net.n_param, diameter, c)
    );
    println!("single-scale strategies either jam the big stars (q too high) or crawl the path (q too low);");
    println!("multi-scale distributions pay the log²n/λ hedging tax — exactly Theorem 4.4's message floor.");
}
