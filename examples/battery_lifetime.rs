//! A battery-powered sensor field running gossip until the first node
//! dies.
//!
//! Every sensor carries a finite battery (±20 % manufacturing jitter)
//! and a realistic radio profile: listening costs almost as much as
//! transmitting, sleeping costs almost nothing. The paper's Algorithm 2
//! (transmit w.p. `1/d`, merge rumors) runs on a random geometric field
//! while the `radio-energy` overlay drains charge per round; the run
//! halts the moment the first battery dies — the classic *network
//! lifetime* measurement — and then a capacity ladder shows lifetime
//! scaling linearly with the energy budget.
//!
//! ```sh
//! cargo run --release --example battery_lifetime
//! ```

use adhoc_radio::core::gossip::{EeGossip, EeGossipConfig};
use adhoc_radio::prelude::*;

fn main() {
    let n = adhoc_radio::example_scale(512, 64);
    let deg = 24.0;
    let r = GeoParams::with_expected_degree(n, deg).r_min;
    let p_equiv = deg / n as f64;

    let mut rng = derive_rng(2026, b"field", 0);
    let (field, _positions) = random_geometric_directed(GeoParams::uniform(n, r), &mut rng);
    let cfg = EeGossipConfig {
        gamma: 10.0,
        tracked: Some(64),
        ..EeGossipConfig::for_gnp(n, p_equiv)
    };
    println!(
        "sensor field: n = {n}, E[deg] ≈ {deg:.0}, gossip schedule = {} rounds",
        cfg.schedule_rounds()
    );

    // CC2420-flavoured profile (normalized to tx = 1): rx ≈ tx, idle
    // listening ≈ rx, sleep three orders of magnitude down.
    let radio = LinearRadio::new(1.0, 0.9, 0.9, 0.001);

    // Calibrate the battery to the mission: measure a full (infinite
    // supply) gossip run, then provision 40 % of its mean per-node energy
    // so batteries start dying mid-mission.
    let (mission_rounds, mission_energy) = {
        let mut protocol = EeGossip::new(cfg);
        let mut engine_rng = derive_rng(2026, b"engine", 0);
        let mut session = EnergySession::new(n, radio, 7);
        let res = run_protocol_energy(
            &field,
            &mut protocol,
            EngineConfig::with_max_rounds(cfg.schedule_rounds() + 1),
            &mut engine_rng,
            &mut session,
        );
        (res.run.rounds, res.energy.mean_energy_per_node())
    };
    let capacity = mission_energy * 0.4;
    println!(
        "full mission: {mission_rounds} rounds, mean energy {mission_energy:.0}/node \
         → provisioning {capacity:.0}-unit batteries (40 %, ±20 % jitter)"
    );

    // --- run until the first battery death -------------------------------
    let mut protocol = EeGossip::new(cfg);
    let mut engine_rng = derive_rng(2026, b"engine", 0);
    let mut session = EnergySession::new(n, radio, 7)
        .with_battery(Battery::jittered(
            n,
            capacity,
            0.2,
            &mut derive_rng(2026, b"bat", 0),
        ))
        .with_halt_on_depletion(true);
    let res = run_protocol_energy(
        &field,
        &mut protocol,
        EngineConfig::with_max_rounds(cfg.schedule_rounds() + 1),
        &mut engine_rng,
        &mut session,
    );

    let lifetime = res
        .energy
        .first_depletion_round
        .expect("capacity was sized to die mid-run");
    assert!(
        res.stopped_on_depletion,
        "halt_on_depletion must stop the run"
    );
    let victim = res.energy.depleted_nodes()[0];
    println!(
        "\nfirst battery death: node {victim} at round {lifetime} \
         (battery {:.0} units, radio tx=1/listen=0.9/sleep=0.001)",
        capacity
    );
    println!(
        "at that moment: {} of {n} rumor sets complete, mean spent {:.1}, min residual {:.1}",
        protocol.informed_count(),
        res.energy.mean_energy_per_node(),
        res.energy.min_residual().unwrap_or(0.0),
    );

    // --- lifetime scales with the energy budget ---------------------------
    println!("\ncapacity → lifetime (first-death round, same field & seed):");
    let mut last = 0u64;
    for mult in [0.2, 0.5, 1.5] {
        let cap = mission_energy * mult;
        let mut protocol = EeGossip::new(cfg);
        let mut engine_rng = derive_rng(2026, b"engine", 0);
        let mut session = EnergySession::new(n, radio, 7)
            .with_battery(Battery::jittered(
                n,
                cap,
                0.2,
                &mut derive_rng(2026, b"bat", 0),
            ))
            .with_halt_on_depletion(true);
        let res = run_protocol_energy(
            &field,
            &mut protocol,
            EngineConfig::with_max_rounds(cfg.schedule_rounds() + 1),
            &mut engine_rng,
            &mut session,
        );
        let life = res
            .energy
            .first_depletion_round
            .map_or(res.run.rounds, |r| r);
        println!(
            "  capacity {cap:>6.0} → lifetime {life:>5} rounds{}",
            if res.energy.first_depletion_round.is_none() {
                " (outlived the schedule)"
            } else {
                ""
            }
        );
        assert!(life >= last, "more charge cannot shorten the lifetime");
        last = life;
    }

    // Sanity: under the paper's TxOnly measure the same run reports
    // energy == transmissions, bit for bit.
    let mut protocol = EeGossip::new(cfg);
    let mut engine_rng = derive_rng(2026, b"engine", 0);
    let mut session = EnergySession::new(n, TxOnly, 7);
    let res = run_protocol_energy(
        &field,
        &mut protocol,
        EngineConfig::with_max_rounds(cfg.schedule_rounds() + 1),
        &mut engine_rng,
        &mut session,
    );
    assert_eq!(
        res.energy.total_energy(),
        res.run.metrics.total_transmissions() as f64
    );
    println!(
        "\nTxOnly overlay (the paper's measure): total energy {:.0} == total transmissions {}",
        res.energy.total_energy(),
        res.run.metrics.total_transmissions()
    );
}
