//! Per-run energy accounting driven by the simulation engine.

use crate::{Battery, Duty, EnergyModel, NEVER_DEPLETED};
use radio_graph::NodeId;
use radio_util::derive_rng;
use rand_chacha::ChaCha8Rng;

/// Mutable energy bookkeeping for simulation runs.
///
/// A session pairs an [`EnergyModel`] with optional [`Battery`]
/// capacities and a private ChaCha8 stream (derived from the session
/// seed) for randomized models. The engine drives it per round:
///
/// 1. [`charge`](Self::charge) each transmitter ([`Duty::Transmit`]) and
///    each collision-free receiver ([`Duty::Receive`]) as they act;
/// 2. [`sweep_round`](Self::sweep_round) at the end of the round charges
///    every remaining live node [`Duty::Idle`] or [`Duty::Sleep`]
///    according to the protocol's radio-off hint;
/// 3. [`is_dead`](Self::is_dead) gates polling and delivery: a node whose
///    battery hit zero in round `r` is fail-stop dead from round `r + 1`.
///
/// The session is reusable: the engine calls [`begin`](Self::begin) at
/// the start of every run, which resets all per-run state (including the
/// model RNG, so a reused session stays deterministic).
///
/// **Passthrough fast path:** when the model reports
/// [`tx_only`](EnergyModel::tx_only) and no battery is attached, charging
/// and sweeping are no-ops and [`finalize`](Self::finalize) derives
/// per-node energy directly from the engine's transmission counts — the
/// overlay then costs nothing on the hot path.
pub struct EnergySession {
    model: Box<dyn EnergyModel>,
    battery: Option<Battery>,
    halt_on_depletion: bool,
    charge_to_cap: bool,
    seed: u64,
    n: usize,
    passthrough: bool,
    rng: ChaCha8Rng,
    spent: Vec<f64>,
    residual: Vec<f64>,
    depleted_at: Vec<u64>,
    stamp: Vec<u32>,
    first_depletion: Option<u64>,
    depleted: usize,
}

impl EnergySession {
    /// Session for `n` nodes under `model`; randomized model draws come
    /// from a stream derived from `seed` (independent of any protocol or
    /// engine RNG).
    pub fn new(n: usize, model: impl EnergyModel + 'static, seed: u64) -> Self {
        let passthrough = model.tx_only();
        EnergySession {
            model: Box::new(model),
            battery: None,
            halt_on_depletion: false,
            charge_to_cap: false,
            seed,
            n,
            passthrough,
            rng: derive_rng(seed, b"energy", 0),
            spent: vec![0.0; n],
            residual: Vec::new(),
            depleted_at: vec![NEVER_DEPLETED; n],
            stamp: vec![0; n],
            first_depletion: None,
            depleted: 0,
        }
    }

    /// Attach finite batteries. Depleted nodes turn fail-stop dead.
    ///
    /// # Panics
    /// Panics if the battery's node count differs from the session's.
    pub fn with_battery(mut self, battery: Battery) -> Self {
        assert_eq!(
            battery.n(),
            self.n,
            "battery node count must match the session"
        );
        self.residual = battery.capacities().to_vec();
        self.battery = Some(battery);
        self.passthrough = false;
        self
    }

    /// Stop the run at the end of the round in which the first battery
    /// depletes — the standard "network lifetime" measurement.
    pub fn with_halt_on_depletion(mut self, halt: bool) -> Self {
        self.halt_on_depletion = halt;
        self
    }

    /// Keep executing (and charging idle/sleep, draining batteries) up to
    /// the engine's round cap even after the protocol quiesces with every
    /// node off the poll list. The engine normally stops there — no
    /// reception can change protocol state any more — but receivers that
    /// never powered down keep paying for the rest of a fixed mission
    /// horizon, which is exactly what lifetime studies must account for.
    /// Off by default because it changes the run length, breaking the
    /// "bit-identical to the plain run" property advertised for plain
    /// overlays.
    pub fn with_charge_to_cap(mut self, charge: bool) -> Self {
        self.charge_to_cap = charge;
        self
    }

    /// Should the engine keep ticking past protocol quiescence?
    #[inline]
    pub fn charge_to_cap(&self) -> bool {
        self.charge_to_cap
    }

    /// Number of nodes this session accounts for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The model's report label.
    pub fn label(&self) -> String {
        self.model.label()
    }

    /// `true` when nothing needs charging during the run (tx-only model,
    /// no battery): the engine skips all per-round energy work.
    #[inline]
    pub fn passthrough(&self) -> bool {
        self.passthrough
    }

    /// Reset all per-run state (called by the engine at run start).
    pub fn begin(&mut self) {
        self.rng = derive_rng(self.seed, b"energy", 0);
        self.spent.fill(0.0);
        if let Some(b) = &self.battery {
            self.residual.clear();
            self.residual.extend_from_slice(b.capacities());
        }
        self.depleted_at.fill(NEVER_DEPLETED);
        self.stamp.fill(0);
        self.first_depletion = None;
        self.depleted = 0;
    }

    /// Charge `node` for one round spent in `duty`. Dead nodes pay
    /// nothing; a node charged below zero residual is marked depleted in
    /// `round` (dead from `round + 1`). Charging twice in one round is
    /// legal and additive (a full-duplex radio pays for both duties).
    #[inline]
    pub fn charge(&mut self, node: NodeId, duty: Duty, round: u64) {
        if self.passthrough {
            return;
        }
        let vi = node as usize;
        if self.depleted_at[vi] != NEVER_DEPLETED {
            return;
        }
        self.stamp[vi] = round as u32;
        let cost = self.model.cost(duty, &mut self.rng);
        self.spent[vi] += cost;
        if self.battery.is_some() {
            let r = &mut self.residual[vi];
            *r -= cost;
            if *r <= 0.0 {
                *r = 0.0;
                self.depleted_at[vi] = round;
                self.depleted += 1;
                self.first_depletion.get_or_insert(round);
            }
        }
    }

    /// End-of-round sweep: every live node not already charged this round
    /// pays [`Duty::Idle`] if its receiver is powered, [`Duty::Sleep`] if
    /// the protocol reports its radio off. No-op for tx-only models
    /// (those duties cost zero by contract).
    pub fn sweep_round<F: Fn(NodeId) -> bool>(&mut self, round: u64, radio_off: F) {
        if self.passthrough || self.model.tx_only() {
            return;
        }
        let rstamp = round as u32;
        for v in 0..self.n as NodeId {
            let vi = v as usize;
            if self.stamp[vi] == rstamp || self.depleted_at[vi] != NEVER_DEPLETED {
                continue;
            }
            let duty = if radio_off(v) {
                Duty::Sleep
            } else {
                Duty::Idle
            };
            self.charge(v, duty, round);
        }
    }

    /// Is `node` fail-stop dead in `round`? (Depletion in round `r`
    /// takes effect from round `r + 1`: the node's last round completes
    /// normally, like a crash scheduled for the next round.)
    #[inline]
    pub fn is_dead(&self, node: NodeId, round: u64) -> bool {
        self.depleted_at[node as usize] < round
    }

    /// Should the engine stop after this round? (Requested lifetime halt
    /// and at least one depletion so far.)
    #[inline]
    pub fn should_halt(&self) -> bool {
        self.halt_on_depletion && self.first_depletion.is_some()
    }

    /// First round in which any battery depleted, if one has.
    pub fn first_depletion(&self) -> Option<u64> {
        self.first_depletion
    }

    /// Number of depleted nodes so far.
    pub fn depleted_count(&self) -> usize {
        self.depleted
    }

    /// Package the run's accounting into an [`EnergyMetrics`] report.
    /// `per_node_tx` is the engine's per-node transmission count, used to
    /// derive energy on the passthrough fast path.
    pub fn finalize(&mut self, per_node_tx: &[u32]) -> EnergyMetrics {
        assert_eq!(per_node_tx.len(), self.n, "metrics node count mismatch");
        if self.passthrough {
            // tx_only contract: cost(Transmit) is deterministic.
            let unit = self.model.cost(Duty::Transmit, &mut self.rng);
            for (s, &c) in self.spent.iter_mut().zip(per_node_tx) {
                *s = unit * f64::from(c);
            }
        }
        EnergyMetrics {
            model: self.model.label(),
            spent: self.spent.clone(),
            residual: self.battery.as_ref().map(|_| self.residual.clone()),
            depleted_at: if self.battery.is_some() {
                self.depleted_at.clone()
            } else {
                Vec::new()
            },
            first_depletion_round: self.first_depletion,
        }
    }
}

/// Energy accounting of one finished run: the energy-model counterpart of
/// the engine's transmission-count `Metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMetrics {
    /// Label of the model that produced these numbers.
    pub model: String,
    /// Energy spent per node (index = node id).
    pub spent: Vec<f64>,
    /// Residual battery charge per node; `None` when no battery was
    /// attached (infinite supply).
    pub residual: Option<Vec<f64>>,
    /// Round each node depleted in ([`NEVER_DEPLETED`] = still alive);
    /// empty when no battery was attached.
    pub depleted_at: Vec<u64>,
    /// First round any battery depleted — the network's lifetime under
    /// the first-death criterion. `None`: no depletion (or no battery).
    pub first_depletion_round: Option<u64>,
}

impl EnergyMetrics {
    /// Total energy spent across all nodes.
    pub fn total_energy(&self) -> f64 {
        self.spent.iter().sum()
    }

    /// Maximum energy spent by any single node.
    pub fn max_energy_per_node(&self) -> f64 {
        self.spent.iter().copied().fold(0.0, f64::max)
    }

    /// Mean energy per node.
    pub fn mean_energy_per_node(&self) -> f64 {
        if self.spent.is_empty() {
            0.0
        } else {
            self.total_energy() / self.spent.len() as f64
        }
    }

    /// Energy spent by `node`.
    pub fn energy_of(&self, node: NodeId) -> f64 {
        self.spent[node as usize]
    }

    /// Residual charge of `node`, if batteries were attached.
    pub fn residual_charge(&self, node: NodeId) -> Option<f64> {
        self.residual.as_ref().map(|r| r[node as usize])
    }

    /// Smallest residual charge across nodes, if batteries were attached.
    pub fn min_residual(&self) -> Option<f64> {
        self.residual
            .as_ref()
            .map(|r| r.iter().copied().fold(f64::INFINITY, f64::min))
    }

    /// Round `node` depleted in, if it did.
    pub fn depleted_round(&self, node: NodeId) -> Option<u64> {
        match self.depleted_at.get(node as usize) {
            Some(&r) if r != NEVER_DEPLETED => Some(r),
            _ => None,
        }
    }

    /// Did `node` run out of battery?
    pub fn is_depleted(&self, node: NodeId) -> bool {
        self.depleted_round(node).is_some()
    }

    /// Number of depleted nodes.
    pub fn depleted_count(&self) -> usize {
        self.depleted_at
            .iter()
            .filter(|&&r| r != NEVER_DEPLETED)
            .count()
    }

    /// Ids of all depleted nodes, ascending.
    pub fn depleted_nodes(&self) -> Vec<NodeId> {
        self.depleted_at
            .iter()
            .enumerate()
            .filter_map(|(v, &r)| (r != NEVER_DEPLETED).then_some(v as NodeId))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FadingRadio, LinearRadio, TxOnly};

    #[test]
    fn passthrough_derives_energy_from_tx_counts() {
        let mut s = EnergySession::new(3, TxOnly, 1);
        assert!(s.passthrough());
        s.begin();
        // Charges are no-ops on the fast path…
        s.charge(0, Duty::Transmit, 1);
        s.sweep_round(1, |_| false);
        // …and finalize reconstructs from the engine's counts.
        let m = s.finalize(&[2, 0, 1]);
        assert_eq!(m.spent, vec![2.0, 0.0, 1.0]);
        assert_eq!(m.total_energy(), 3.0);
        assert_eq!(m.max_energy_per_node(), 2.0);
        assert!(m.residual.is_none());
        assert_eq!(m.first_depletion_round, None);
        assert_eq!(m.depleted_count(), 0);
    }

    #[test]
    fn linear_charges_and_sweeps() {
        let mut s = EnergySession::new(3, LinearRadio::new(2.0, 1.0, 0.5, 0.25), 1);
        s.begin();
        s.charge(0, Duty::Transmit, 1); // node 0: 2.0
        s.charge(1, Duty::Receive, 1); // node 1: 1.0
        s.sweep_round(1, |v| v == 2); // node 2 radio-off: 0.25
        let m = s.finalize(&[1, 0, 0]);
        assert_eq!(m.spent, vec![2.0, 1.0, 0.25]);
        assert!((m.mean_energy_per_node() - 3.25 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_skips_already_charged_nodes() {
        let mut s = EnergySession::new(2, LinearRadio::with_listen_ratio(1.0), 1);
        s.begin();
        s.charge(0, Duty::Transmit, 1);
        s.sweep_round(1, |_| false);
        let m = s.finalize(&[1, 0]);
        assert_eq!(m.spent, vec![1.0, 1.0], "transmitter not double-charged");
    }

    #[test]
    fn battery_depletion_is_fail_stop_next_round() {
        let mut s = EnergySession::new(2, LinearRadio::uniform_drain(1.0), 1)
            .with_battery(Battery::per_node(vec![2.0, f64::INFINITY]));
        s.begin();
        for round in 1..=4 {
            assert_eq!(s.is_dead(0, round), round > 2, "round {round}");
            s.sweep_round(round, |_| false);
        }
        assert_eq!(s.first_depletion(), Some(2));
        assert_eq!(s.depleted_count(), 1);
        let m = s.finalize(&[0, 0]);
        assert_eq!(m.depleted_round(0), Some(2));
        assert!(!m.is_depleted(1));
        assert_eq!(m.residual_charge(0), Some(0.0));
        assert_eq!(m.spent[0], 2.0, "dead nodes stop paying");
        assert_eq!(m.spent[1], 4.0);
        assert_eq!(m.depleted_nodes(), vec![0]);
    }

    #[test]
    fn halt_on_depletion_requests_stop() {
        let mut s = EnergySession::new(1, LinearRadio::uniform_drain(1.0), 1)
            .with_battery(Battery::uniform(1, 1.0))
            .with_halt_on_depletion(true);
        s.begin();
        assert!(!s.should_halt());
        s.sweep_round(1, |_| false);
        assert!(s.should_halt());
    }

    #[test]
    fn begin_resets_everything_including_model_rng() {
        let mut s = EnergySession::new(2, FadingRadio::new(LinearRadio::with_listen_ratio(0.5)), 9)
            .with_battery(Battery::uniform(2, 100.0));
        let run = |s: &mut EnergySession| {
            s.begin();
            s.charge(0, Duty::Transmit, 1);
            s.sweep_round(1, |_| false);
            s.finalize(&[1, 0])
        };
        let a = run(&mut s);
        let b = run(&mut s);
        assert_eq!(a, b, "session reuse must be deterministic");
    }

    #[test]
    fn tx_only_with_battery_still_tracks_depletion() {
        let mut s = EnergySession::new(1, TxOnly, 1).with_battery(Battery::uniform(1, 1.5));
        assert!(!s.passthrough(), "battery disables the fast path");
        s.begin();
        s.charge(0, Duty::Transmit, 3);
        assert!(!s.is_dead(0, 4));
        s.charge(0, Duty::Transmit, 7);
        assert!(s.is_dead(0, 8));
        let m = s.finalize(&[2]);
        assert_eq!(m.first_depletion_round, Some(7));
        assert_eq!(m.spent, vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn battery_size_mismatch_panics() {
        let _ = EnergySession::new(3, TxOnly, 0).with_battery(Battery::uniform(2, 1.0));
    }
}
