//! Duty states and the pluggable [`EnergyModel`] trait.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// What a node's radio did during one round — the state an
/// [`EnergyModel`] prices.
///
/// The engine derives the duty from the protocol's per-round `Action`
/// plus the delivery outcome: a node that chose to transmit is
/// [`Duty::Transmit`]; a node that decoded a collision-free message is
/// [`Duty::Receive`]; every other node with its radio powered is
/// [`Duty::Idle`] (listening to silence or to an undecodable collision);
/// a node that declared its radio off — or is crash/depletion dead — is
/// [`Duty::Sleep`]. `Receive` and `Idle` together are the "listen" cost
/// class of the energy-efficiency literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Duty {
    /// The node transmitted (the paper's only charged state).
    Transmit,
    /// The receiver decoded a collision-free message.
    Receive,
    /// Receiver powered but nothing decoded: silence or a collision.
    Idle,
    /// Radio powered down (protocol duty-cycling, crash, or depletion).
    Sleep,
}

/// A per-round radio energy model: maps a [`Duty`] to its cost.
///
/// Costs are arbitrary non-negative units; [`TxOnly`] fixes the scale at
/// one unit per transmission so its totals coincide with the paper's
/// transmission counts. Randomized models draw from the RNG handed in by
/// the accounting session (an independent ChaCha8 stream), never from
/// protocol randomness.
///
/// # Examples
///
/// A custom model charging double for transmissions and a flat unit for
/// any powered round:
///
/// ```
/// use radio_energy::{Duty, EnergyModel};
/// use rand_chacha::ChaCha8Rng;
///
/// struct Doubler;
/// impl EnergyModel for Doubler {
///     fn cost(&self, duty: Duty, _rng: &mut ChaCha8Rng) -> f64 {
///         match duty {
///             Duty::Transmit => 2.0,
///             Duty::Receive | Duty::Idle => 1.0,
///             Duty::Sleep => 0.0,
///         }
///     }
///     fn label(&self) -> String {
///         "doubler".to_string()
///     }
/// }
///
/// let mut rng = radio_util::derive_rng(0, b"doc", 0);
/// assert_eq!(Doubler.cost(Duty::Transmit, &mut rng), 2.0);
/// assert!(!Doubler.tx_only());
/// ```
pub trait EnergyModel: Send + Sync {
    /// Cost of one round spent in `duty`.
    fn cost(&self, duty: Duty, rng: &mut ChaCha8Rng) -> f64;

    /// `true` iff this model charges **only** for transmissions, with a
    /// deterministic (RNG-independent) per-transmission cost and exactly
    /// zero for every other duty. The accounting session uses this as a
    /// fast-path contract: when it holds and no battery is attached,
    /// per-round charging is skipped entirely and per-node energy is
    /// derived from the transmission counts after the run.
    fn tx_only(&self) -> bool {
        false
    }

    /// Stable human-readable label, recorded in reports.
    fn label(&self) -> String;
}

/// The paper's energy measure: one unit per transmission, nothing else.
///
/// Under this model a run's total energy is *bit-compatible* with
/// `Metrics::total_transmissions()` (asserted by property tests), so all
/// recorded experiment numbers are unchanged by the energy overlay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxOnly;

impl EnergyModel for TxOnly {
    #[inline]
    fn cost(&self, duty: Duty, _rng: &mut ChaCha8Rng) -> f64 {
        match duty {
            Duty::Transmit => 1.0,
            _ => 0.0,
        }
    }

    fn tx_only(&self) -> bool {
        true
    }

    fn label(&self) -> String {
        "tx_only".to_string()
    }
}

/// A linear radio: fixed per-round cost for each duty state.
///
/// The interesting regime is `listen ≈ idle` within an order of magnitude
/// of `tx` and `sleep` orders of magnitude below — the measured profile
/// of real low-power transceivers that motivates duty-cycling MAC
/// protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRadio {
    /// Cost of a transmitting round.
    pub tx: f64,
    /// Cost of a round that decoded a message ([`Duty::Receive`]).
    pub listen: f64,
    /// Cost of a powered round that decoded nothing ([`Duty::Idle`]).
    pub idle: f64,
    /// Cost of a radio-off round.
    pub sleep: f64,
}

impl LinearRadio {
    /// Build from explicit per-duty costs.
    ///
    /// # Panics
    /// Panics if any cost is negative or non-finite.
    pub fn new(tx: f64, listen: f64, idle: f64, sleep: f64) -> Self {
        for (name, c) in [
            ("tx", tx),
            ("listen", listen),
            ("idle", idle),
            ("sleep", sleep),
        ] {
            assert!(c.is_finite() && c >= 0.0, "{name} cost {c} must be ≥ 0");
        }
        LinearRadio {
            tx,
            listen,
            idle,
            sleep,
        }
    }

    /// The one-parameter family swept by the lifetime experiments:
    /// `tx = 1`, `listen = idle = ratio`, `sleep = 0`. `ratio = 0`
    /// degenerates to the paper's measure; `ratio = 1` is the
    /// "listening costs as much as transmitting" regime of the
    /// channel-randomness literature.
    pub fn with_listen_ratio(ratio: f64) -> Self {
        Self::new(1.0, ratio, ratio, 0.0)
    }

    /// Uniform drain: every powered-on *or* sleeping round costs `c`
    /// regardless of duty. Under this model a battery of capacity `k·c`
    /// depletes at the end of round `k` exactly, which makes battery
    /// depletion a drop-in replacement for a scheduled crash at round
    /// `k + 1` — the robustness experiments use it to cross-validate
    /// `CrashPlan` against the depletion path.
    pub fn uniform_drain(c: f64) -> Self {
        Self::new(c, c, c, c)
    }
}

impl EnergyModel for LinearRadio {
    #[inline]
    fn cost(&self, duty: Duty, _rng: &mut ChaCha8Rng) -> f64 {
        match duty {
            Duty::Transmit => self.tx,
            Duty::Receive => self.listen,
            Duty::Idle => self.idle,
            Duty::Sleep => self.sleep,
        }
    }

    fn tx_only(&self) -> bool {
        self.listen == 0.0 && self.idle == 0.0 && self.sleep == 0.0
    }

    fn label(&self) -> String {
        format!(
            "linear(tx={},listen={},idle={},sleep={})",
            self.tx, self.listen, self.idle, self.sleep
        )
    }
}

/// Channel randomness: a [`LinearRadio`] whose radio-active costs are
/// multiplied, per charge, by an exponential(1) fading factor (mean 1).
///
/// This is the standard Rayleigh-power-fading abstraction: reaching the
/// same link budget over a faded channel costs a random multiple of the
/// nominal energy (retransmissions / power control folded into one
/// factor). Sleep cost stays deterministic — a powered-down radio does
/// not see the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadingRadio {
    /// Nominal per-duty costs.
    pub base: LinearRadio,
}

impl FadingRadio {
    /// Wrap nominal costs with exponential fading.
    pub fn new(base: LinearRadio) -> Self {
        FadingRadio { base }
    }

    /// One exponential(1) sample via inverse-CDF (`u ∈ [0, 1)` keeps the
    /// argument of `ln` in `(0, 1]`).
    fn fade(rng: &mut ChaCha8Rng) -> f64 {
        let u: f64 = rng.random();
        -(1.0 - u).ln()
    }
}

impl EnergyModel for FadingRadio {
    fn cost(&self, duty: Duty, rng: &mut ChaCha8Rng) -> f64 {
        let base = self.base.cost(duty, rng);
        match duty {
            Duty::Sleep => base,
            _ => base * Self::fade(rng),
        }
    }

    fn label(&self) -> String {
        format!("fading({})", self.base.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_util::derive_rng;

    #[test]
    fn tx_only_charges_transmissions_only() {
        let mut rng = derive_rng(1, b"model", 0);
        assert_eq!(TxOnly.cost(Duty::Transmit, &mut rng), 1.0);
        assert_eq!(TxOnly.cost(Duty::Receive, &mut rng), 0.0);
        assert_eq!(TxOnly.cost(Duty::Idle, &mut rng), 0.0);
        assert_eq!(TxOnly.cost(Duty::Sleep, &mut rng), 0.0);
        assert!(TxOnly.tx_only());
    }

    #[test]
    fn linear_radio_maps_duties_to_fields() {
        let m = LinearRadio::new(2.0, 1.5, 1.0, 0.1);
        let mut rng = derive_rng(2, b"model", 0);
        assert_eq!(m.cost(Duty::Transmit, &mut rng), 2.0);
        assert_eq!(m.cost(Duty::Receive, &mut rng), 1.5);
        assert_eq!(m.cost(Duty::Idle, &mut rng), 1.0);
        assert_eq!(m.cost(Duty::Sleep, &mut rng), 0.1);
        assert!(!m.tx_only());
    }

    #[test]
    fn listen_ratio_zero_is_tx_only() {
        assert!(LinearRadio::with_listen_ratio(0.0).tx_only());
        assert!(!LinearRadio::with_listen_ratio(0.5).tx_only());
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_costs_are_rejected() {
        let _ = LinearRadio::new(1.0, -0.1, 0.0, 0.0);
    }

    #[test]
    fn fading_is_random_but_seed_deterministic() {
        let m = FadingRadio::new(LinearRadio::with_listen_ratio(0.5));
        let sample = |seed| {
            let mut rng = derive_rng(seed, b"fade", 0);
            (0..8)
                .map(|_| m.cost(Duty::Transmit, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = sample(7);
        assert_eq!(a, sample(7), "same stream, same costs");
        assert_ne!(a, sample(8));
        assert!(a.iter().all(|&c| c >= 0.0));
        // Not all equal: the factor really is random.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fading_mean_is_near_nominal() {
        let m = FadingRadio::new(LinearRadio::with_listen_ratio(1.0));
        let mut rng = derive_rng(9, b"fade-mean", 0);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| m.cost(Duty::Transmit, &mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "exp(1) mean drifted: {mean}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TxOnly.label(), "tx_only");
        assert_eq!(
            LinearRadio::with_listen_ratio(0.5).label(),
            "linear(tx=1,listen=0.5,idle=0.5,sleep=0)"
        );
        assert!(FadingRadio::new(LinearRadio::uniform_drain(1.0))
            .label()
            .starts_with("fading(linear"));
    }
}
