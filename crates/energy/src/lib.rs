//! Radio energy models: duty costs, batteries, and per-run accounting.
//!
//! The paper measures energy as the number of *transmissions* (§1.2) —
//! but in real ad-hoc radios idle listening costs the same order of
//! magnitude as transmitting, and sensor nodes run off finite batteries.
//! This crate makes the energy measure pluggable so the simulator can
//! answer both the paper's question (with [`TxOnly`], bit-compatible
//! with transmission counts) and the deployment questions the
//! energy-efficiency literature asks: what does a protocol cost once
//! receivers pay to listen ([`LinearRadio`], [`FadingRadio`]), and how
//! long does the network live on finite [`Battery`] charge?
//!
//! The pieces:
//!
//! * [`Duty`] — what a node's radio did during one round (transmit,
//!   receive, idle-listen, sleep), derived by the engine from each
//!   protocol's per-round `Action` plus the delivery outcome.
//! * [`EnergyModel`] — duty → per-round cost. [`TxOnly`] reproduces the
//!   paper's measure exactly; [`LinearRadio`] charges configurable
//!   tx/listen/idle/sleep costs; [`FadingRadio`] adds multiplicative
//!   channel randomness on the radio-active duties.
//! * [`Battery`] — finite per-node capacities. A node whose residual
//!   charge reaches zero becomes *fail-stop dead* from the next round
//!   on: it never transmits, receives, or pays energy again (the same
//!   semantics as a scheduled crash, so depletion composes with the
//!   simulator's `CrashPlan` fault injection instead of duplicating it).
//! * [`EnergySession`] — the mutable per-run accounting object the
//!   simulation engine drives: it charges duties on the engine's hot
//!   path (with a passthrough fast path that makes [`TxOnly`] without
//!   batteries cost nothing per round) and finalizes into an
//!   [`EnergyMetrics`] report (total/max/mean energy, per-node residual
//!   charge, first-depletion round).
//!
//! Determinism: randomized models draw from the session's own ChaCha8
//! stream, derived from the session seed — never from the protocol's RNG
//! — so enabling the energy overlay cannot perturb a run's decisions,
//! deliveries, or round count.

pub mod battery;
pub mod model;
pub mod session;

pub use battery::Battery;
pub use model::{Duty, EnergyModel, FadingRadio, LinearRadio, TxOnly};
pub use session::{EnergyMetrics, EnergySession};

/// Sentinel for "never depleted" in per-node depletion-round arrays.
pub const NEVER_DEPLETED: u64 = u64::MAX;
