//! Finite per-node batteries.

use radio_graph::NodeId;
use rand::{Rng, RngExt};

/// Per-node battery capacities, in the same (arbitrary) units as the
/// energy model's costs.
///
/// A battery does nothing by itself — attach it to an
/// [`EnergySession`](crate::EnergySession) and the session turns any
/// node whose residual charge reaches zero fail-stop dead from the next
/// round on.
///
/// # Examples
///
/// ```
/// use radio_energy::Battery;
///
/// let b = Battery::uniform(4, 10.0);
/// assert_eq!(b.n(), 4);
/// assert_eq!(b.capacity(2), 10.0);
///
/// // Heterogeneous fleet: one nearly-dead node.
/// let b = Battery::per_node(vec![10.0, 0.5, 10.0]);
/// assert_eq!(b.capacity(1), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    caps: Vec<f64>,
}

impl Battery {
    /// Every node starts with the same `capacity`.
    ///
    /// # Panics
    /// Panics if `capacity` is negative or NaN (infinite is allowed and
    /// means "never depletes").
    pub fn uniform(n: usize, capacity: f64) -> Self {
        Self::per_node(vec![capacity; n])
    }

    /// Explicit per-node capacities (index = node id).
    ///
    /// # Panics
    /// Panics if any capacity is negative or NaN.
    pub fn per_node(caps: Vec<f64>) -> Self {
        for (v, &c) in caps.iter().enumerate() {
            assert!(
                !c.is_nan() && c >= 0.0,
                "node {v}: capacity {c} must be ≥ 0"
            );
        }
        Battery { caps }
    }

    /// Uniform capacities jittered by a multiplicative factor drawn
    /// uniformly from `[1 − spread, 1 + spread]` per node — a simple
    /// manufacturing-variance fleet.
    ///
    /// # Panics
    /// Panics if `spread ∉ [0, 1]` or `capacity` is invalid.
    pub fn jittered<R: Rng + ?Sized>(n: usize, capacity: f64, spread: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&spread),
            "spread {spread} out of [0,1]"
        );
        Self::per_node(
            (0..n)
                .map(|_| capacity * rng.random_range(1.0 - spread..=1.0 + spread))
                .collect(),
        )
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.caps.len()
    }

    /// Initial capacity of `node`.
    pub fn capacity(&self, node: NodeId) -> f64 {
        self.caps[node as usize]
    }

    /// All capacities (index = node id).
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_util::derive_rng;

    #[test]
    fn uniform_and_per_node_agree() {
        let a = Battery::uniform(3, 2.5);
        let b = Battery::per_node(vec![2.5; 3]);
        assert_eq!(a, b);
        assert_eq!(a.capacities(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn infinite_capacity_is_allowed() {
        let b = Battery::per_node(vec![f64::INFINITY, 1.0]);
        assert_eq!(b.capacity(0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_capacity_is_rejected() {
        let _ = Battery::per_node(vec![1.0, -2.0]);
    }

    #[test]
    fn jittered_stays_within_spread() {
        let mut rng = derive_rng(3, b"bat", 0);
        let b = Battery::jittered(100, 10.0, 0.2, &mut rng);
        assert!(b.capacities().iter().all(|&c| (8.0..=12.0).contains(&c)));
        // And actually varies.
        assert!(b.capacities().windows(2).any(|w| w[0] != w[1]));
    }
}
