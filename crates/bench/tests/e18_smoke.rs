//! Smoke test: the E18 scaling experiment must run end to end at a
//! reduced scale (the examples' env-scaling idiom, applied through the
//! experiment's explicit-range entry point so no test mutates process
//! env). This is the test-matrix stand-in for the full
//! `ADHOC_RADIO_E18_MAX_EXP=21` run: same code path — parallel scatter
//! engine, `threads_per_run` sweep, per-cell wall-clock bookkeeping,
//! JSON emission — at `n = 2⁹, 2¹⁰` so debug builds stay fast.

use radio_bench::experiments::e18_scale;
use radio_bench::Ctx;
use radio_util::Json;

/// The PR's acceptance bar, verbatim: a single `run_par` at `n = 2²⁰` on
/// a `G(n,p)` graph completes and is bit-identical between 1 and 8
/// threads. Ignored by default — it builds a ~10⁸-edge graph and is
/// meant for release mode
/// (`cargo test --release -p radio-bench --test e18_smoke -- --ignored`);
/// the debug-friendly determinism property tests in
/// `tests/determinism.rs` cover the same contract at small `n` on every
/// CI run.
#[test]
#[ignore = "release-mode scale check; run with -- --ignored"]
fn run_par_at_2_pow_20_completes_and_is_thread_count_independent() {
    use radio_core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
    use radio_graph::generate::gnp_directed;
    use radio_sim::engine::run_protocol_par;
    use radio_sim::{EngineConfig, Protocol};
    use radio_util::derive_rng;

    let n = 1usize << 20;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(0xE18, b"accept-g", 0));
    let acfg = EeBroadcastConfig::for_gnp(n, p);
    let run_at = |threads: usize| {
        let mut protocol = EeRandomBroadcast::new(n, 0, acfg);
        let mut rng = derive_rng(0xE18, b"accept-run", 0);
        // The explicit `threads` argument overrides `cfg.threads`.
        let cfg = EngineConfig::with_max_rounds(acfg.schedule_end() + 2);
        let res = run_protocol_par(&g, &mut protocol, cfg, &mut rng, threads);
        (res.rounds, res.metrics, protocol.informed_count())
    };
    let serial = run_at(1);
    assert_eq!(
        serial.2, n,
        "Algorithm 1 must inform all 2^20 nodes in this regime"
    );
    let par = run_at(8);
    assert_eq!(serial, par, "1-thread vs 8-thread run diverged at n = 2^20");
}

/// This PR's acceptance bar: the fused v2 engine actually buys
/// wall-clock from cores — `engine_fused/8t` must beat `engine_fused/1t`
/// at `n = 2¹⁶` on a multi-core host (on a single-core host the test
/// reports and passes vacuously: there is nothing to win there, and the
/// `BENCH_baseline.json` satellite exists precisely because single-core
/// runners invert these numbers). Ignored by default — run in release:
/// `cargo test --release -p radio-bench --test e18_smoke -- --ignored`.
#[test]
#[ignore = "release-mode perf acceptance; needs a multi-core host; run with -- --ignored"]
fn fused_8t_beats_1t_wall_clock_at_2_pow_16() {
    use radio_core::broadcast::windowed::{ProbSource, WindowedBroadcast, WindowedSpec};
    use radio_graph::generate::gnp_directed;
    use radio_sim::{Engine, EngineConfig};
    use radio_util::derive_rng;

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let n = 1usize << 16;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(0xF16, b"fperf-g", 0));
    // Decide-heavy steady state: every informed node flips a coin every
    // round for a fixed horizon (no early stop, no retirement), so the
    // round loop is dominated by exactly the phase v2 parallelised.
    let spec = || WindowedSpec {
        source: ProbSource::Fixed(0.02),
        window: None,
        early_stop: false,
    };
    let mut eng = Engine::new(&g, EngineConfig::with_max_rounds(60));
    let mut time_at = |threads: usize| {
        let mut best = f64::INFINITY;
        let mut reference = None;
        for _ in 0..3 {
            let mut proto = WindowedBroadcast::new(n, 0, spec());
            let start = std::time::Instant::now();
            let res = eng.run_fused_par(&mut proto, 0xF16, threads);
            best = best.min(start.elapsed().as_secs_f64());
            // Bit-identity rides along: every repetition and every
            // thread count must agree exactly.
            let fp = (res.rounds, res.metrics.total_transmissions());
            match &reference {
                None => reference = Some(fp),
                Some(r) => assert_eq!(*r, fp, "fused run diverged across repeats"),
            }
        }
        (best, reference.expect("ran"))
    };
    let (t1, fp1) = time_at(1);
    let (t8, fp8) = time_at(8);
    assert_eq!(fp1, fp8, "1t vs 8t fused runs diverged at n = 2^16");
    eprintln!("fused 1t: {t1:.3}s, 8t: {t8:.3}s on {cores} core(s)");
    if cores < 2 {
        eprintln!("single-core host: skipping the speedup assertion");
        return;
    }
    assert!(
        t8 < t1,
        "fused 8t ({t8:.3}s) must beat 1t ({t1:.3}s) on a {cores}-core host"
    );
}

/// The transmitter-sharded scatter's acceptance bar: on an *implicit*
/// backend — where the receiver-range partition would replay every row
/// per worker and lose to serial — the fused engine at 8 threads must
/// beat 1 thread wall-clock at `n = 2²⁰` on a multi-core host. The
/// `Auto` scatter plan routes `ImplicitGnp` to the shard path via its
/// `RangeQueryCost::FullRowReplay` hint, so this drives exactly the
/// emit + receiver-keyed-merge machinery. On a single-core host the
/// speedup assertion skips (bit-identity is still checked — there is
/// nothing to win, and `BENCH_baseline.json`'s provisional
/// `host_threads: 8` profile carries the ≥3× expectation until a
/// multi-core runner records real numbers). Ignored by default — run in
/// release:
/// `cargo test --release -p radio-bench --test e18_smoke -- --ignored`.
#[test]
#[ignore = "release-mode perf acceptance; needs a multi-core host; run with -- --ignored"]
fn implicit_shard_8t_beats_1t_wall_clock_at_2_pow_20() {
    use radio_core::broadcast::windowed::{ProbSource, WindowedBroadcast, WindowedSpec};
    use radio_graph::ImplicitGnp;
    use radio_sim::{Engine, EngineConfig};

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let n = 1usize << 20;
    let d = 8.0 * (n as f64).ln();
    let t = ImplicitGnp::with_expected_degree(n, d, 0xF20);
    // Scatter-heavy steady state: a fixed transmit probability with no
    // early stop keeps a few thousand transmitters scattering every
    // round for the whole horizon — the phase the shard partition
    // parallelises (implicit row generation is the per-edge cost).
    let spec = || WindowedSpec {
        source: ProbSource::Fixed(0.005),
        window: None,
        early_stop: false,
    };
    let mut eng = Engine::new(&t, EngineConfig::with_max_rounds(40));
    let mut time_at = |threads: usize| {
        let mut best = f64::INFINITY;
        let mut reference = None;
        for _ in 0..3 {
            let mut proto = WindowedBroadcast::new(n, 0, spec());
            let start = std::time::Instant::now();
            let res = eng.run_fused_par(&mut proto, 0xF20, threads);
            best = best.min(start.elapsed().as_secs_f64());
            let fp = (res.rounds, res.metrics.total_transmissions());
            match &reference {
                None => reference = Some(fp),
                Some(r) => assert_eq!(*r, fp, "fused run diverged across repeats"),
            }
        }
        (best, reference.expect("ran"))
    };
    let (t1, fp1) = time_at(1);
    let (t8, fp8) = time_at(8);
    assert_eq!(fp1, fp8, "1t vs 8t sharded runs diverged at n = 2^20");
    eprintln!("implicit shard 1t: {t1:.3}s, 8t: {t8:.3}s on {cores} core(s)");
    if cores < 2 {
        eprintln!("single-core host: skipping the speedup assertion");
        return;
    }
    assert!(
        t8 < t1,
        "sharded 8t ({t8:.3}s) must beat 1t ({t1:.3}s) on a {cores}-core host"
    );
}

#[test]
fn e18_runs_at_smoke_scale_and_emits_deterministic_json() {
    let dir = std::env::temp_dir().join(format!("e18-smoke-{}", std::process::id()));
    let ctx = Ctx {
        seed: 0xE18,
        scale: 0.25,
        out_dir: dir.clone(),
    };
    let report = e18_scale::run_scaled(&ctx, 9, 10, 2, None);
    assert_eq!(report.id, "e18");
    assert!(report.body.contains("gnp_directed"));
    assert!(report.body.contains("geometric"));

    let path = dir.join("sweep_e18.json");
    let text = std::fs::read_to_string(&path).expect("e18 sweep JSON written");
    let parsed = Json::parse(&text).expect("valid JSON");
    let cells = parsed.get("cells").and_then(Json::as_arr).expect("cells");
    // 2 sizes × 2 families × 3 algorithms.
    assert_eq!(cells.len(), 12);

    // The engine's determinism contract, end to end: rerunning the
    // experiment with a different intra-run thread count must reproduce
    // the JSON bytes (wall-clock lives only in the markdown).
    let dir2 = std::env::temp_dir().join(format!("e18-smoke2-{}", std::process::id()));
    let ctx2 = Ctx {
        out_dir: dir2.clone(),
        ..ctx
    };
    let _ = e18_scale::run_scaled(&ctx2, 9, 10, 4, None);
    let text2 = std::fs::read_to_string(dir2.join("sweep_e18.json")).expect("second run");
    assert_eq!(text, text2, "e18 JSON must not depend on thread count");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// The `ADHOC_RADIO_TRACE` knob (passed explicitly here — no env
/// mutation in a multi-threaded test binary): one `.rtrc` per cell, the
/// recordings are readable, and — zero-interference — the sweep JSON is
/// byte-identical to an untraced run.
#[test]
fn e18_trace_knob_records_one_trial_per_cell() {
    use radio_sim::trace::Recording;

    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("e18-traced-{pid}"));
    let traces = dir.join("traces");
    let ctx = Ctx {
        seed: 0xE18,
        scale: 0.25,
        out_dir: dir.clone(),
    };
    let report = e18_scale::run_scaled(&ctx, 9, 10, 2, Some(&traces));
    assert!(report.body.contains("ADHOC_RADIO_TRACE"));
    let traced_json = std::fs::read_to_string(dir.join("sweep_e18.json")).expect("traced JSON");

    let mut rtrc: Vec<_> = std::fs::read_dir(&traces)
        .expect("trace dir created")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rtrc"))
        .collect();
    rtrc.sort();
    // One recording per cell: 2 sizes × 2 families × 3 algorithms.
    assert_eq!(rtrc.len(), 12, "expected one .rtrc per cell: {rtrc:?}");
    for path in &rtrc {
        let rec = Recording::read_from(path).expect("readable recording");
        assert_eq!(rec.header.engine, "v2");
        assert!(
            !rec.rounds.is_empty(),
            "empty recording at {}",
            path.display()
        );
    }

    // Capture must not perturb the sweep: byte-compare against an
    // untraced run of the same (seed, range, threads).
    let dir2 = std::env::temp_dir().join(format!("e18-traced2-{pid}"));
    let ctx2 = Ctx {
        out_dir: dir2.clone(),
        ..ctx
    };
    let _ = e18_scale::run_scaled(&ctx2, 9, 10, 2, None);
    let plain_json = std::fs::read_to_string(dir2.join("sweep_e18.json")).expect("untraced JSON");
    assert_eq!(traced_json, plain_json, "tracing changed the sweep JSON");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// The implicit-backend section at toy scale: runs end to end on both
/// backends, emits its own JSON artifact (`sweep_e18_implicit.json`,
/// leaving the CSR sweep's file alone), and — the tentpole contract —
/// those bytes are identical for any intra-run thread count, because
/// implicit rows are pure functions of the backend value.
#[test]
fn e18_implicit_section_runs_and_is_thread_count_independent() {
    use radio_bench::Report;

    let run_at = |tag: &str, threads: usize| {
        let dir = std::env::temp_dir().join(format!("e18i-{tag}-{}", std::process::id()));
        let ctx = Ctx {
            seed: 0xE18,
            scale: 0.5,
            out_dir: dir.clone(),
        };
        let mut report = Report::new("e18", "implicit smoke");
        e18_scale::run_implicit_section(&ctx, &mut report, 9, 10, threads);
        assert!(report.body.contains("implicit_gnp"));
        assert!(report.body.contains("implicit_grid"));
        let text = std::fs::read_to_string(dir.join("sweep_e18_implicit.json"))
            .expect("implicit JSON written");
        assert!(
            !dir.join("sweep_e18.json").exists(),
            "the implicit section must not touch the CSR sweep artifact"
        );
        let _ = std::fs::remove_dir_all(&dir);
        text
    };

    let text = run_at("a", 2);
    let parsed = Json::parse(&text).expect("valid JSON");
    let cells = parsed.get("cells").and_then(Json::as_arr).expect("cells");
    // 2 sizes × 2 backends × 3 algorithms.
    assert_eq!(cells.len(), 12);
    for cell in cells {
        let backend = cell.get("backend").and_then(Json::as_str).expect("backend");
        assert!(backend == "implicit_gnp" || backend == "implicit_grid");
        let trials = cell.get("trials").and_then(Json::as_f64).expect("trials");
        assert!(trials >= 1.0);
    }
    // At n = 2⁹/2¹⁰ with degree 8·ln n every flood/decay trial should
    // finish; don't let the section pass vacuously on all-zero rows.
    let any_success = cells
        .iter()
        .any(|c| c.get("successes").and_then(Json::as_f64) > Some(0.0));
    assert!(any_success, "no implicit cell succeeded at smoke scale");

    let text2 = run_at("b", 4);
    assert_eq!(text, text2, "implicit JSON must not depend on thread count");
}
