//! The committed scenario IR reproduces the historical hand-written
//! e16/e17 sweeps — structurally (cheap, always on) and byte-for-byte
//! against the committed `results/sweep_*.json` (ignored; run with
//! `cargo test -p radio-bench --test scenario_fidelity --release -- --ignored`).

use radio_bench::experiments::{e16_robustness, e17_energy_lifetime};
use radio_campaign::{Compiled, Scenario};

fn compiled(spec: &str) -> Compiled {
    Compiled::new(Scenario::parse(spec).expect("committed scenario must validate"))
}

/// `(spec, committed report, cells, trials, base_seed)` for every
/// committed experiment scenario.
fn all_specs() -> [(&'static str, &'static str, usize, usize, u64); 4] {
    [
        (
            e16_robustness::MOBILITY_SPEC,
            "../../results/sweep_e16_mobility.json",
            4,
            10,
            2903252999,
        ),
        (
            e16_robustness::CRASH_SPEC,
            "../../results/sweep_e16_crash.json",
            16,
            10,
            2903253009,
        ),
        (
            e17_energy_lifetime::ENERGY_SPEC,
            "../../results/sweep_e17_energy.json",
            24,
            12,
            2903252999,
        ),
        (
            e17_energy_lifetime::LIFETIME_SPEC,
            "../../results/sweep_e17_lifetime.json",
            3,
            12,
            2903253008,
        ),
    ]
}

#[test]
fn committed_scenarios_validate_and_match_the_historical_grids() {
    for (spec, report_path, cells, trials, base_seed) in all_specs() {
        let c = compiled(spec);
        assert_eq!(c.sweep().cells().len(), cells, "{report_path}: cell count");
        assert_eq!(c.sweep().trials, trials, "{report_path}: trials");
        assert_eq!(c.sweep().base_seed, base_seed, "{report_path}: seed");
        // Cell labels, families, and parameters must match the committed
        // report's cells one-to-one, in order.
        let committed = std::fs::read_to_string(report_path).expect("committed report");
        let doc = radio_util::Json::parse(&committed).expect("report JSON");
        let rep_cells = doc.get("cells").and_then(|c| c.as_arr()).expect("cells");
        assert_eq!(rep_cells.len(), cells);
        for (cell, rep) in c.sweep().cells().iter().zip(rep_cells) {
            assert_eq!(
                rep.get("algorithm").and_then(|a| a.as_str()),
                Some(cell.algorithm.as_str())
            );
            assert_eq!(
                rep.get("family").and_then(|f| f.as_str()),
                Some(cell.family.label().as_str())
            );
            assert_eq!(rep.get("n").and_then(|n| n.as_f64()), Some(cell.n as f64));
            assert_eq!(rep.get("p").and_then(|p| p.as_f64()), Some(cell.p));
        }
    }
}

#[test]
fn spec_hashes_are_stable_under_reformatting() {
    for (spec, _, _, _, _) in all_specs() {
        let a = Scenario::parse(spec).unwrap();
        let squashed: String = spec
            .lines()
            .map(str::trim_start)
            .collect::<Vec<_>>()
            .join("");
        let b = Scenario::parse(&squashed).unwrap();
        assert_eq!(a.spec_hash(), b.spec_hash());
    }
}

/// Full byte-identity: compile the committed spec at its own defaults,
/// run every cell, and demand the exact committed report bytes.
fn assert_byte_identical(spec: &str, committed_path: &str) {
    let c = compiled(spec);
    let report = c.run_report();
    let produced = report.to_json_string();
    let committed = std::fs::read_to_string(committed_path).expect("committed report");
    assert_eq!(
        produced, committed,
        "{committed_path}: scenario-compiled report diverges from the committed bytes"
    );
}

#[test]
#[ignore = "minutes-long full sweep; run with --ignored in release"]
fn e16_mobility_scenario_reproduces_committed_bytes() {
    assert_byte_identical(
        e16_robustness::MOBILITY_SPEC,
        "../../results/sweep_e16_mobility.json",
    );
}

#[test]
#[ignore = "minutes-long full sweep; run with --ignored in release"]
fn e16_crash_scenario_reproduces_committed_bytes() {
    assert_byte_identical(
        e16_robustness::CRASH_SPEC,
        "../../results/sweep_e16_crash.json",
    );
}

#[test]
#[ignore = "minutes-long full sweep; run with --ignored in release"]
fn e17_energy_scenario_reproduces_committed_bytes() {
    assert_byte_identical(
        e17_energy_lifetime::ENERGY_SPEC,
        "../../results/sweep_e17_energy.json",
    );
}

#[test]
#[ignore = "minutes-long full sweep; run with --ignored in release"]
fn e17_lifetime_scenario_reproduces_committed_bytes() {
    assert_byte_identical(
        e17_energy_lifetime::LIFETIME_SPEC,
        "../../results/sweep_e17_lifetime.json",
    );
}
