//! Criterion benches — one group per experiment family (DESIGN.md §5):
//! `alg1_broadcast` (E1), `alg2_gossip` (E6), `alg3_general` (E7),
//! `baselines` (E13), `ablation` (E14). Each benches one representative
//! end-to-end run; the statistical sweeps live in the `experiments`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_core::broadcast::cr::{run_cr_broadcast, CrBroadcastConfig};
use radio_core::broadcast::decay::{run_decay_broadcast, DecayConfig};
use radio_core::broadcast::ee_general::{run_general_broadcast, GeneralBroadcastConfig};
use radio_core::broadcast::ee_random::{run_ee_broadcast, EeBroadcastConfig};
use radio_core::broadcast::eg::{run_eg_broadcast, EgBroadcastConfig};
use radio_core::gossip::{run_ee_gossip, EeGossipConfig};
use radio_graph::analysis::diameter_from;
use radio_graph::generate::{caterpillar, gnp_directed};
use radio_util::derive_rng;
use std::hint::black_box;

fn alg1_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_broadcast");
    for &n in &[2048usize, 8192] {
        let p = 6.0 * (n as f64).ln() / n as f64;
        let g = gnp_directed(n, p, &mut derive_rng(1, b"a1", 0));
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_ee_broadcast(g, 0, &cfg, seed))
            });
        });
    }
    group.finish();
}

fn alg2_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_gossip");
    group.sample_size(10);
    let n = 1024;
    let p = 6.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(2, b"a2", 0));
    let cfg = EeGossipConfig {
        tracked: Some(64),
        ..EeGossipConfig::for_gnp(n, p)
    };
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_ee_gossip(&g, &cfg, seed))
        });
    });
    group.finish();
}

fn alg3_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3_general");
    group.sample_size(10);
    let g = caterpillar(64, 15); // n = 1024, D = 65
    let n = g.n();
    let d = diameter_from(&g, 0).expect("connected");
    let cfg = GeneralBroadcastConfig::new_timed(n, d);
    group.bench_function("caterpillar_1024", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_general_broadcast(&g, 0, &cfg, seed))
        });
    });
    group.finish();
}

fn baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let g = caterpillar(64, 15);
    let n = g.n();
    let d = diameter_from(&g, 0).expect("connected");
    group.bench_function("cr_caterpillar_1024", |b| {
        let cfg = CrBroadcastConfig::new_timed(n, d);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_cr_broadcast(&g, 0, &cfg, seed))
        });
    });
    group.bench_function("decay_caterpillar_1024", |b| {
        let cfg = DecayConfig::new(n, d);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_decay_broadcast(&g, 0, &cfg, seed))
        });
    });
    let np = 2048;
    let p = 6.0 * (np as f64).ln() / np as f64;
    let gr = gnp_directed(np, p, &mut derive_rng(3, b"bl", 0));
    group.bench_function("eg_gnp_2048", |b| {
        let cfg = EgBroadcastConfig::for_gnp(np, p);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_eg_broadcast(&gr, 0, &cfg, seed))
        });
    });
    group.finish();
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let g = caterpillar(24, 63);
    let n = g.n();
    let d = diameter_from(&g, 0).expect("connected");
    for private in [false, true] {
        let cfg = GeneralBroadcastConfig {
            private_sequence: private,
            early_stop: true,
            ..GeneralBroadcastConfig::new(n, d)
        };
        let name = if private {
            "alg3_private_seq"
        } else {
            "alg3_shared_seq"
        };
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_general_broadcast(&g, 0, &cfg, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    alg1_broadcast,
    alg2_gossip,
    alg3_general,
    baselines,
    ablation
);
criterion_main!(benches);
