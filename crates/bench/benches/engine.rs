//! Criterion benches for the simulation substrate: engine round
//! throughput under broadcast- and gossip-shaped loads. Regressions here
//! silently inflate every experiment's wall time, so they get their own
//! gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use radio_core::broadcast::flood::{run_flood_broadcast, FloodConfig};
use radio_core::gossip::{run_ee_gossip, EeGossipConfig};
use radio_graph::generate::gnp_directed;
use radio_util::derive_rng;
use std::hint::black_box;

/// Probabilistic flooding for a fixed number of rounds: measures the
/// poll/scatter/deliver loop with a large always-awake frontier.
fn bench_broadcast_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_broadcast_rounds");
    for &n in &[1024usize, 4096, 16384] {
        let p = 6.0 * (n as f64).ln() / n as f64;
        let g = gnp_directed(n, p, &mut derive_rng(1, b"bench-g", 0));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let cfg = FloodConfig::with_prob(1.0 / (n as f64 * p), 200);
                black_box(run_flood_broadcast(g, 0, &cfg, 42))
            });
        });
    }
    group.finish();
}

/// Gossip rounds: adds per-transmitter rumor-set cloning and per-delivery
/// unioning to the engine loop (the heaviest message type in the repo).
fn bench_gossip_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_gossip_rounds");
    group.sample_size(10);
    for &n in &[512usize, 2048] {
        let p = 6.0 * (n as f64).ln() / n as f64;
        let g = gnp_directed(n, p, &mut derive_rng(2, b"bench-g", 0));
        let cfg = EeGossipConfig {
            gamma: 0.5, // fixed, short schedule: benches rounds, not completion
            early_stop: false,
            tracked: None,
            ..EeGossipConfig::for_gnp(n, p)
        };
        group.throughput(Throughput::Elements(cfg.schedule_rounds()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(run_ee_gossip(g, &cfg, 42)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast_rounds, bench_gossip_rounds);
criterion_main!(benches);
