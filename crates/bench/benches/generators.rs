//! Criterion benches for the graph generators: the experiment sweeps
//! build thousands of graphs, so `gnp_directed`'s geometric-skip path and
//! the geometric generator's grid bucketing are hot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use radio_graph::generate::{gnp_directed, lower_bound_net, random_geometric, GeoParams};
use radio_util::derive_rng;
use std::hint::black_box;

fn bench_gnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_gnp_directed");
    for &n in &[4096usize, 16384, 65536] {
        let p = 6.0 * (n as f64).ln() / n as f64;
        let m = (n as f64 * n as f64 * p) as u64;
        group.throughput(Throughput::Elements(m));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(gnp_directed(n, p, &mut derive_rng(i, b"bench", 0)))
            });
        });
    }
    group.finish();
}

fn bench_geometric(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_random_geometric");
    for &n in &[4096usize, 16384] {
        let params = GeoParams::with_expected_degree(n, 30.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(random_geometric(
                    n,
                    params.r_min,
                    &mut derive_rng(i, b"bench", 1),
                ))
            });
        });
    }
    group.finish();
}

fn bench_lower_bound_net(c: &mut Criterion) {
    c.bench_function("gen_lower_bound_net_k10_d512", |b| {
        b.iter(|| black_box(lower_bound_net(10, 512)));
    });
}

criterion_group!(benches, bench_gnp, bench_geometric, bench_lower_bound_net);
criterion_main!(benches);
