//! CSR engine vs. adjacency-list engine, head to head.
//!
//! Both engines execute the *same* protocol with the same RNG stream and
//! the same stamped-scratch algorithm; the only difference is adjacency
//! storage — flat CSR slices (`radio_sim::Engine`) vs. per-node heap
//! `Vec`s (`radio_sim::run_adjlist`). The workload is a collision storm
//! on `G(n, p)` with every node transmitting each round, which makes the
//! neighbor-scatter loop dominate: exactly the memory-layout question the
//! CSR backend answers. The acceptance bar for the storage refactor is
//! `engine_csr ≥ 1.3 × engine_adjlist` at `n = 10⁴`; CI's perf gate
//! tracks `engine_csr` against `BENCH_baseline.json`.
//!
//! The `engine_energy` group runs the same storm with the `radio-energy`
//! overlay attached — `txonly` exercises the passthrough fast path
//! (contractually near-zero overhead vs `engine_csr`), `linear` the full
//! per-round duty charging — so the CI gate also pins the overlay's
//! overhead on the CSR hot path. The `engine_par` group runs it through
//! the intra-run parallel scatter at 2 and 8 receiver-range workers
//! (`run_protocol_par`), gating the parallel path's cost the same way.
//!
//! Two groups cover the **fused v2 engine**: `decide_phase/{v1,v2}`
//! isolates the per-round decision loop on an edgeless graph (v1 shared
//! serial stream vs v2 per-node counter-based streams), and
//! `engine_fused/{1t,8t}` runs the fused engine end to end on the storm
//! graph. The `scatter_phase/{csr,grid,gnp}/{1t,8t}` group pins the
//! scatter partition strategies per backend: receiver-range on CSR,
//! transmitter-sharded on the implicit topologies (the `Auto` plan's
//! choice either way). Thread-scaling entries (`engine_par` /
//! `engine_fused` / `scatter_phase` `<k>t`, k > 1) are gated only
//! between equal-`host_threads` runs — see `bench_compare`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use radio_energy::{EnergySession, LinearRadio, TxOnly};
use radio_graph::generate::gnp_directed;
use radio_graph::{DiGraph, NodeId};
use radio_sim::engine::{
    run_protocol, run_protocol_energy, run_protocol_fused, run_protocol_fused_traced,
    run_protocol_par,
};
use radio_sim::trace::{RecordingSink, RunHeader};
use radio_sim::{run_adjlist, Action, AdjListGraph, Engine, EngineConfig, FusedDecide, Protocol};
use radio_util::derive_rng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const ROUNDS: u64 = 30;

/// Every node awake and transmitting every round; never completes, so a
/// run is exactly `ROUNDS` rounds of full-graph scatter.
struct Storm {
    n: usize,
}

impl Protocol for Storm {
    type Msg = ();
    fn initially_awake(&self) -> Vec<NodeId> {
        (0..self.n as NodeId).collect()
    }
    fn decide(&mut self, _n: NodeId, _r: u64, _rng: &mut ChaCha8Rng) -> Action {
        Action::Transmit
    }
    fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
    fn on_receive(
        &mut self,
        _n: NodeId,
        _f: NodeId,
        _r: u64,
        _m: &Self::Msg,
        _rng: &mut ChaCha8Rng,
    ) {
    }
    fn is_complete(&self) -> bool {
        false
    }
    fn informed_count(&self) -> usize {
        self.n
    }
    fn active_count(&self) -> usize {
        self.n
    }
}

/// Coin-flip storm: every node awake and flipping a biased coin every
/// round, forever — the decide-phase-dominated workload (one RNG draw
/// per node per round). The [`FusedDecide`] impl is stateless, so the
/// identical protocol drives the v1 engine (shared serial stream) and
/// the fused v2 engine (per-node counter-based streams).
struct CoinStorm {
    n: usize,
    coin: rand::Bernoulli,
}

impl CoinStorm {
    fn new(n: usize, q: f64) -> Self {
        // The coin's threshold is precomputed once, as a real protocol
        // would (`rand::Bernoulli` is bit-compatible with `random_bool`),
        // so the bench measures stream setup + draw, not float math.
        CoinStorm {
            n,
            coin: rand::Bernoulli::new(q),
        }
    }
}

impl Protocol for CoinStorm {
    type Msg = ();
    fn initially_awake(&self) -> Vec<NodeId> {
        (0..self.n as NodeId).collect()
    }
    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        self.decide_and_commit(node, round, rng)
    }
    fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
    fn on_receive(
        &mut self,
        _n: NodeId,
        _f: NodeId,
        _r: u64,
        _m: &Self::Msg,
        _rng: &mut ChaCha8Rng,
    ) {
    }
    fn is_complete(&self) -> bool {
        false
    }
    fn informed_count(&self) -> usize {
        self.n
    }
    fn active_count(&self) -> usize {
        self.n
    }
}

impl FusedDecide for CoinStorm {
    fn decide_pure(&self, _node: NodeId, _round: u64, rng: &mut ChaCha8Rng) -> Action {
        if self.coin.sample(rng) {
            Action::Transmit
        } else {
            Action::Silent
        }
    }
    fn commit_decide(&mut self, _node: NodeId, _round: u64, _action: Action) {}
}

fn storm_graph(n: usize) -> DiGraph {
    let p = 6.0 * (n as f64).ln() / n as f64;
    gnp_directed(n, p, &mut derive_rng(7, b"csr-bench-g", 0))
}

fn cfg() -> EngineConfig {
    EngineConfig::with_max_rounds(ROUNDS)
}

/// The acceptance-gate size from the storage-refactor issue.
const N: usize = 10_000;

fn bench_engine_csr(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_csr");
    group.sample_size(10);
    let g = storm_graph(N);
    group.throughput(Throughput::Elements(g.m() as u64 * ROUNDS));
    group.bench_with_input(BenchmarkId::new("gnp", N), &g, |b, g| {
        b.iter(|| {
            let mut p = Storm { n: N };
            let mut rng = derive_rng(1, b"csr-bench", 0);
            black_box(run_protocol(g, &mut p, cfg(), &mut rng))
        });
    });
    group.finish();
}

fn bench_engine_adjlist(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_adjlist");
    group.sample_size(10);
    let g = storm_graph(N);
    let a = AdjListGraph::from_digraph(&g);
    group.throughput(Throughput::Elements(g.m() as u64 * ROUNDS));
    group.bench_with_input(BenchmarkId::new("gnp", N), &a, |b, a| {
        b.iter(|| {
            let mut p = Storm { n: N };
            let mut rng = derive_rng(1, b"csr-bench", 0);
            black_box(run_adjlist(a, &mut p, cfg(), &mut rng))
        });
    });
    group.finish();
}

fn bench_engine_par(c: &mut Criterion) {
    // The same storm through the intra-run parallel scatter
    // (receiver-range partition, bit-identical to `engine_csr/gnp` by
    // the engine's determinism contract) at 2 and 8 workers. On a
    // multi-core box this is where the scatter's random `HitRecord`
    // writes — the dominant cost at scale — spread across cores; on a
    // single-core runner it instead pins the partition overhead
    // (duplicate row binary-searches plus scoped-thread spawns), which
    // the CI gate keeps from regressing either way.
    let mut group = c.benchmark_group("engine_par");
    group.sample_size(10);
    let g = storm_graph(N);
    group.throughput(Throughput::Elements(g.m() as u64 * ROUNDS));
    for threads in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new(format!("{threads}t"), N), &g, |b, g| {
            b.iter(|| {
                let mut p = Storm { n: N };
                let mut rng = derive_rng(1, b"csr-bench", 0);
                black_box(run_protocol_par(g, &mut p, cfg(), &mut rng, threads))
            });
        });
    }
    group.finish();
}

fn bench_decide_phase(c: &mut Criterion) {
    // The decide loop in isolation: an edgeless graph (no scatter, no
    // delivery) with every node coin-flipping each round. `v1` consumes
    // the shared serial stream; the v2 entries run the fused engine's
    // serial path over batched per-node counter-based streams (the wide
    // ChaCha kernel). `v2_cold` builds a fresh engine per run — scratch
    // allocation plus the per-node key derivation are on the clock, as
    // in a one-shot `run_protocol_fused` call. `v2_warm` reuses one
    // engine across runs, the steady state of a sweep loop: pools and
    // the node-key cache persist, so it isolates the per-draw cost. The
    // headline gate is `v2_warm ≤ 2 × v1` (see ISSUE 7 / bench_compare).
    let mut group = c.benchmark_group("decide_phase");
    group.sample_size(10);
    let g = DiGraph::from_edges(N, &[]);
    group.throughput(Throughput::Elements(N as u64 * ROUNDS));
    group.bench_with_input(BenchmarkId::new("v1", N), &g, |b, g| {
        b.iter(|| {
            let mut p = CoinStorm::new(N, 0.05);
            let mut rng = derive_rng(2, b"decide-bench", 0);
            black_box(run_protocol(g, &mut p, cfg(), &mut rng))
        });
    });
    group.bench_with_input(BenchmarkId::new("v2_cold", N), &g, |b, g| {
        b.iter(|| {
            let mut p = CoinStorm::new(N, 0.05);
            black_box(run_protocol_fused(g, &mut p, cfg(), 2))
        });
    });
    group.bench_with_input(BenchmarkId::new("v2_warm", N), &g, |b, g| {
        let mut eng = Engine::new(g, cfg());
        // Prime the pools + key cache so every timed run is steady-state.
        let mut warm = CoinStorm::new(N, 0.05);
        black_box(eng.run_fused(&mut warm, 2));
        b.iter(|| {
            let mut p = CoinStorm::new(N, 0.05);
            black_box(eng.run_fused(&mut p, 2))
        });
    });
    group.finish();
}

fn bench_engine_fused(c: &mut Criterion) {
    // The fused v2 engine end to end — parallel decide + receiver-range
    // scatter + serial delivery — on the coin storm over the Gnp graph,
    // at 1 and 8 workers. On a multi-core box the 8t entry measures the
    // whole-round speedup v2 unlocks (decide was the Amdahl cap of
    // engine_par); on a single-core runner it pins the fan-out overhead.
    // `bench_compare` gates the 8t entry only between equal-core hosts
    // (the baseline records `host_threads`).
    let mut group = c.benchmark_group("engine_fused");
    group.sample_size(10);
    let g = storm_graph(N);
    group.throughput(Throughput::Elements(g.m() as u64 * ROUNDS));
    for threads in [1usize, 8] {
        group.bench_with_input(BenchmarkId::new(format!("{threads}t"), N), &g, |b, g| {
            b.iter(|| {
                let mut p = CoinStorm::new(N, 0.2);
                black_box(run_protocol_fused(
                    g,
                    &mut p,
                    cfg().with_threads(threads),
                    3,
                ))
            });
        });
    }
    group.finish();
}

fn bench_engine_trace(c: &mut Criterion) {
    // The trace hook's cost contract, both halves. `off` is the fused
    // coin storm on an edgeless graph with the `NullSink` — the default
    // every untraced entry point compiles down to, so any daylight
    // between this entry and `decide_phase/v2_cold` would mean the hook
    // isn't actually free. `on` records the same run through a
    // `RecordingSink` into a reused in-memory buffer (no disk in the
    // loop): per-round varint encoding of RoundStart/Transmit/RoundEnd
    // events on top of the identical simulation. The workload is
    // decide-dominated on purpose — events are sparse relative to RNG
    // draws, as in a real traced run — and the acceptance bar is
    // `on ≤ 1.05 × off` (gated by `bench_compare`'s trace-overhead
    // check).
    let mut group = c.benchmark_group("engine_trace");
    group.sample_size(10);
    let g = DiGraph::from_edges(N, &[]);
    group.throughput(Throughput::Elements(N as u64 * ROUNDS));
    group.bench_with_input(BenchmarkId::new("off", N), &g, |b, g| {
        b.iter(|| {
            let mut p = CoinStorm::new(N, 0.05);
            black_box(run_protocol_fused(g, &mut p, cfg(), 4))
        });
    });
    group.bench_with_input(BenchmarkId::new("on", N), &g, |b, g| {
        let header = RunHeader::new(4, "v2", "edgeless");
        let mut bytes: Vec<u8> = Vec::with_capacity(1 << 20);
        b.iter(|| {
            bytes.clear();
            let mut sink = RecordingSink::new(&mut bytes, &header).expect("vec write");
            let mut p = CoinStorm::new(N, 0.05);
            let run = run_protocol_fused_traced(g, &mut p, cfg(), 4, &mut sink);
            sink.finish(run.completed).expect("vec write");
            black_box(run)
        });
    });
    group.finish();
}

fn bench_engine_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_energy");
    group.sample_size(10);
    let g = storm_graph(N);
    group.throughput(Throughput::Elements(g.m() as u64 * ROUNDS));
    // Passthrough: TxOnly without batteries skips all per-round charging.
    group.bench_with_input(BenchmarkId::new("txonly", N), &g, |b, g| {
        b.iter(|| {
            let mut p = Storm { n: N };
            let mut rng = derive_rng(1, b"csr-bench", 0);
            let mut session = EnergySession::new(N, TxOnly, 1);
            black_box(run_protocol_energy(
                g,
                &mut p,
                cfg(),
                &mut rng,
                &mut session,
            ))
        });
    });
    // Full overlay: per-transmitter charges plus the end-of-round sweep.
    group.bench_with_input(BenchmarkId::new("linear", N), &g, |b, g| {
        b.iter(|| {
            let mut p = Storm { n: N };
            let mut rng = derive_rng(1, b"csr-bench", 0);
            let mut session = EnergySession::new(N, LinearRadio::with_listen_ratio(0.5), 1);
            black_box(run_protocol_energy(
                g,
                &mut p,
                cfg(),
                &mut rng,
                &mut session,
            ))
        });
    });
    group.finish();
}

fn bench_scatter_phase(c: &mut Criterion) {
    // The scatter/collision phase per partition strategy: the same
    // always-transmit storm driven through `run_protocol_par` at 1 and 8
    // workers, per backend. On `csr` the engine's `Auto` plan picks the
    // receiver-range partition (rows are O(1) to narrow to a receiver
    // range); on the implicit backends (`grid`, `gnp`) a range query
    // costs a full row replay, so `Auto` picks the transmitter-sharded
    // partition — each worker generates its shard's rows exactly once
    // and a receiver-keyed merge reproduces the serial outcome. On a
    // multi-core host the `8t` entries are where the shard path earns
    // its keep (the ≥ 3× acceptance bar lives in the baseline's
    // `host_threads: 8` profile); on a single-core runner they pin the
    // emit/merge overhead instead. `<k>t` entries gate only between
    // equal-`host_threads` runs, like `engine_par`.
    use radio_graph::{ImplicitGnp, ImplicitGrid, Topology};

    fn bench_backend<T: Topology>(
        group: &mut criterion::BenchmarkGroup<'_>,
        name: &str,
        t: &T,
        edges: u64,
    ) {
        group.throughput(Throughput::Elements(edges * ROUNDS));
        for threads in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/{threads}t"), N),
                t,
                |b, t| {
                    b.iter(|| {
                        let mut p = Storm { n: N };
                        let mut rng = derive_rng(1, b"scatter-bench", 0);
                        black_box(run_protocol_par(t, &mut p, cfg(), &mut rng, threads))
                    });
                },
            );
        }
    }

    let mut group = c.benchmark_group("scatter_phase");
    group.sample_size(10);
    let d = 6.0 * (N as f64).ln();

    let csr = storm_graph(N);
    let m = csr.m() as u64;
    bench_backend(&mut group, "csr", &csr, m);

    let grid = ImplicitGrid::with_expected_degree(N, d, &mut derive_rng(7, b"scatter-bench-g", 0));
    let m = grid.materialize().m() as u64;
    bench_backend(&mut group, "grid", &grid, m);

    let gnp = ImplicitGnp::with_expected_degree(N, d, 7);
    let m = gnp.materialize().m() as u64;
    bench_backend(&mut group, "gnp", &gnp, m);

    group.finish();
}

fn bench_topology_neighbors(c: &mut Criterion) {
    // Neighbor-enumeration throughput through the `Topology` trait: a
    // full sweep of `for_each_out` over every node, per backend, at the
    // gate size and a shared expected degree. `csr` is the trait's cost
    // on stored rows (the engine's pre-refactor fast path — this entry
    // existing in the baseline is what pins "the trait costs nothing on
    // CSR"); `grid` pays a torus cell scan with distance filtering per
    // query, `gnp` a ChaCha8 re-seed plus a geometric skip-walk per row.
    // The implicit entries are expected several× slower per edge than
    // `csr` — that is the documented price of O(n)/O(1) memory — and the
    // CI gate keeps each from regressing against itself.
    use radio_graph::{ImplicitGnp, ImplicitGrid, Topology};

    let mut group = c.benchmark_group("topology_neighbors");
    group.sample_size(10);
    let d = 6.0 * (N as f64).ln();

    fn sweep<T: Topology>(t: &T) -> u64 {
        let mut edges = 0u64;
        for u in 0..t.n() as NodeId {
            t.for_each_out(u, |v| edges += u64::from(v) & 1);
        }
        edges
    }

    let csr = storm_graph(N);
    group.throughput(Throughput::Elements(csr.m() as u64));
    group.bench_with_input(BenchmarkId::new("csr", N), &csr, |b, g| {
        b.iter(|| black_box(sweep(g)));
    });

    let grid = ImplicitGrid::with_expected_degree(N, d, &mut derive_rng(7, b"topo-bench", 0));
    group.throughput(Throughput::Elements(grid.materialize().m() as u64));
    group.bench_with_input(BenchmarkId::new("grid", N), &grid, |b, g| {
        b.iter(|| black_box(sweep(g)));
    });

    let gnp = ImplicitGnp::with_expected_degree(N, d, 7);
    group.throughput(Throughput::Elements(gnp.materialize().m() as u64));
    group.bench_with_input(BenchmarkId::new("gnp", N), &gnp, |b, g| {
        b.iter(|| black_box(sweep(g)));
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_engine_csr,
    bench_engine_adjlist,
    bench_engine_par,
    bench_decide_phase,
    bench_engine_fused,
    bench_engine_trace,
    bench_engine_energy,
    bench_scatter_phase,
    bench_topology_neighbors
);
criterion_main!(benches);
