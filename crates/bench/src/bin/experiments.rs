//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p radio-bench --bin experiments -- all
//! cargo run --release -p radio-bench --bin experiments -- e1 e9 e13
//! cargo run --release -p radio-bench --bin experiments -- --quick all
//! ```
//!
//! Reports print to stdout and are written to `results/<id>.md`
//! (`--out DIR` overrides; `--seed N` reseeds everything).

use radio_bench::experiments::registry;
use radio_bench::Ctx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = Ctx::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => ctx.scale = 0.25,
            "--seed" => {
                ctx.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                ctx.out_dir = it
                    .next()
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a path"));
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => wanted.push(other.to_lowercase()),
        }
    }
    if wanted.is_empty() {
        usage();
        die("no experiments requested");
    }

    let reg = registry();
    let selected: Vec<_> = if wanted.iter().any(|w| w == "all") {
        reg
    } else {
        let mut sel = Vec::new();
        for w in &wanted {
            match reg.iter().find(|(id, _)| id == w) {
                Some(e) => sel.push(*e),
                None => die(&format!("unknown experiment `{w}` (try e1..e18, e18i, or all)")),
            }
        }
        sel
    };

    for (id, runner) in selected {
        eprintln!("── running {id} ─────────────────────────────────────");
        let start = std::time::Instant::now();
        let report = runner(&ctx);
        report.emit(&ctx);
        eprintln!("── {id} done in {:.1?}\n", start.elapsed());
    }
}

fn usage() {
    eprintln!(
        "usage: experiments [--quick] [--seed N] [--out DIR] <e1..e18 | e18i | all>...\n\
         Regenerates the paper's tables/figures; see DESIGN.md §5 for the index."
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
