//! CI perf gate: diff two `BENCH_*.json` files from the criterion
//! harness and fail on regression.
//!
//! ```sh
//! cargo run -p radio-bench --bin bench_compare -- \
//!     BENCH_baseline.json BENCH_pr.json --max-regress 0.30 --only engine
//! ```
//!
//! Compares `mean_s` for every `(group, id)` key (optionally filtered to
//! groups whose name starts with `--only`'s prefix). The gating rules
//! live — unit-tested — in [`radio_bench::bench_diff`]; in short:
//!
//! * a shared bench whose mean exceeds `baseline · (1 + max_regress)`
//!   **fails**;
//! * a baseline bench missing from the current run **fails** — a
//!   deleted or renamed bench silently un-gates the path it guarded, so
//!   removals must ship with a baseline refresh in the same commit;
//! * a shared bench that *improved* past the same fraction **warns**
//!   (suspicious: benches that stop measuring the hot path look like
//!   wins) but does not fail;
//! * new benches are reported and start gating at the next refresh.
//!
//! **Thread-scaling entries** — ids of the form `<k>t/...` with `k > 1`
//! (`engine_par/8t/10000`, `engine_fused/8t/10000`) — are only *gated*
//! when both files report the same `host_threads`: on a multi-core host
//! they measure the fan-out's speedup, on a single-core host its
//! partition overhead, and a ratio across the two is noise (the PR-4
//! baseline made `8t` look 7.5× "slower" purely because the baseline
//! runner had one core). On a mismatch they are printed with a warning
//! and excluded from the verdict; single-thread entries always gate.
//!
//! **Multi-profile baselines** close that hole from the other side: the
//! baseline file may carry a `"profiles": [...]` array, each entry a
//! full `{host_threads, benches, provisional?}` baseline recorded on
//! (or projected for) one host class. The profile matching the current
//! run's `host_threads` is gated against; no match falls back to the
//! top level. A profile marked `"provisional": true` holds expectations
//! rather than blessed measurements — failures against it *warn* until
//! the profile is refreshed on matching hardware.
//!
//! **Trace overhead** is gated within the current run alone: when both
//! `engine_trace/on` and `engine_trace/off` are present, `on` must stay
//! within 1.05× `off` — the recording hook's ≤5% cost contract. The
//! ratio shares every noise source, so it gates on any host.

use radio_bench::bench_diff::{
    diff, passes, select_profile, trace_overhead, BaselineProfile, DiffConfig, Entry, Verdict,
};
use radio_util::Json;
use std::process::ExitCode;

struct BenchFile {
    /// The file's top level, as a profile (never provisional).
    top: BaselineProfile,
    /// Optional `"profiles"` array: per-host-class baselines (see
    /// [`BaselineProfile`]); selected by matching `host_threads`.
    profiles: Vec<BaselineProfile>,
}

fn parse_entries(path: &str, json: &Json) -> Result<Vec<Entry>, String> {
    let benches = json
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing \"benches\" array"))?;
    benches
        .iter()
        .map(|b| {
            let group = b
                .get("group")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: bench without group"))?;
            let id = b
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: bench without id"))?;
            let mean_s = b
                .get("mean_s")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: bench without mean_s"))?;
            Ok(Entry {
                key: format!("{group}/{id}"),
                mean_s,
            })
        })
        .collect()
}

fn host_threads_of(json: &Json) -> Option<u64> {
    json.get("host_threads")
        .and_then(Json::as_f64)
        .map(|x| x as u64)
}

fn load(path: &str) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let top = BaselineProfile {
        host_threads: host_threads_of(&json),
        provisional: false,
        entries: parse_entries(path, &json)?,
    };
    let profiles = match json.get("profiles").and_then(Json::as_arr) {
        None => Vec::new(),
        Some(arr) => arr
            .iter()
            .map(|p| {
                Ok(BaselineProfile {
                    host_threads: host_threads_of(p),
                    provisional: p
                        .get("provisional")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    entries: parse_entries(path, p)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    Ok(BenchFile { top, profiles })
}

fn fmt_ms(secs: Option<f64>) -> String {
    match secs {
        Some(s) => format!("{:.3} ms", s * 1e3),
        None => "—".to_string(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut max_regress = 0.30f64;
    let mut only: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regress" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_regress = v,
                None => return die("--max-regress needs a number"),
            },
            "--only" => match it.next() {
                Some(v) => only = Some(v),
                None => return die("--only needs a group prefix"),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, current_path] = match <[String; 2]>::try_from(paths) {
        Ok(p) => p,
        Err(_) => {
            usage();
            return die("expected exactly two JSON files");
        }
    };

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => return die(&e),
    };
    let current_threads = current.top.host_threads;

    // A multi-profile baseline carries per-host-class numbers; gate
    // against the profile recorded on hardware like ours, else the top
    // level.
    let had_profiles = !baseline.profiles.is_empty();
    let baseline = select_profile(baseline.top, baseline.profiles, current_threads);
    if had_profiles {
        println!(
            "baseline profile: host_threads {} ({})",
            baseline
                .host_threads
                .map_or_else(|| "unrecorded".into(), |t| t.to_string()),
            if baseline.provisional {
                "PROVISIONAL — failures warn until refreshed on matching hardware"
            } else {
                "measured"
            },
        );
    }

    // Thread-scaling entries are only comparable between equal-core
    // hosts (see module docs).
    let cores_match = match (baseline.host_threads, current_threads) {
        (Some(b), Some(c)) => b == c,
        _ => false,
    };
    if !cores_match {
        eprintln!(
            "warning: host_threads differ (baseline: {}, current: {}) — \
             thread-scaling benches (<k>t ids, k > 1) are reported but NOT gated; \
             refresh BENCH_baseline.json from a matching host to re-arm them",
            baseline
                .host_threads
                .map_or_else(|| "unrecorded".into(), |t| t.to_string()),
            current_threads.map_or_else(|| "unrecorded".into(), |t| t.to_string()),
        );
    }

    let keep = |e: &Entry| {
        only.as_deref()
            .is_none_or(|prefix| e.key.starts_with(prefix))
    };
    let baseline_kept: Vec<Entry> = baseline.entries.into_iter().filter(keep).collect();
    let current_kept: Vec<Entry> = current.top.entries.into_iter().filter(keep).collect();
    let cfg = DiffConfig {
        max_regress,
        warn_improve: max_regress,
        cores_match,
    };
    let findings = diff(&baseline_kept, &current_kept, &cfg);

    println!(
        "{:<32} {:>12} {:>12} {:>8}  verdict (gate: ±{:.0}%)",
        "bench",
        "baseline",
        "current",
        "ratio",
        max_regress * 100.0
    );
    let mut compared = 0usize;
    let mut failures = 0usize;
    for f in &findings {
        let ratio = f.ratio().map_or_else(String::new, |r| format!("{r:.2}x"));
        let verdict = match f.verdict {
            Verdict::Ok => {
                compared += 1;
                "ok".to_string()
            }
            Verdict::Regressed => {
                compared += 1;
                failures += 1;
                "REGRESSED".to_string()
            }
            Verdict::Suspicious => {
                compared += 1;
                format!(
                    "suspicious: improved >{:.0}% — verify the bench still \
                     measures the hot path, then refresh the baseline",
                    max_regress * 100.0
                )
            }
            Verdict::Vanished => {
                failures += 1;
                "VANISHED from current run — removed/renamed benches must ship \
                 with a baseline refresh"
                    .to_string()
            }
            Verdict::New => "new bench (not gated)".to_string(),
            Verdict::NotGated => "host_threads mismatch (not gated)".to_string(),
        };
        println!(
            "{:<32} {:>12} {:>12} {:>8}  {}",
            f.key,
            fmt_ms(f.baseline_s),
            fmt_ms(f.current_s),
            ratio,
            verdict,
        );
    }

    if compared == 0 {
        return die("no comparable benches between the two files");
    }

    // The trace hook's within-run cost contract: `engine_trace/on` vs
    // `engine_trace/off` in the *current* file. Relative, so it holds
    // on any host; skipped when `--only` filters the group out.
    const MAX_TRACE_OVERHEAD: f64 = 0.05;
    let mut trace_failed = false;
    if let Some((on, off, ratio)) = trace_overhead(&current_kept, "engine_trace") {
        let ok = ratio <= 1.0 + MAX_TRACE_OVERHEAD;
        println!(
            "trace overhead: on {} / off {} = {ratio:.3}x (budget {:.2}x) — {}",
            fmt_ms(Some(on)),
            fmt_ms(Some(off)),
            1.0 + MAX_TRACE_OVERHEAD,
            if ok { "ok" } else { "OVER BUDGET" },
        );
        trace_failed = !ok;
    }

    if !passes(&findings) || trace_failed {
        if baseline.provisional && !trace_failed {
            eprintln!(
                "warning: {failures} bench(es) outside the provisional profile's \
                 budget — not fatal; refresh this profile on matching hardware \
                 to arm the gate"
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "error: gate failed ({failures} bench(es) regressed more than \
             {:.0}% or vanished{})",
            max_regress * 100.0,
            if trace_failed {
                "; engine_trace/on exceeded its overhead budget"
            } else {
                ""
            }
        );
        return ExitCode::FAILURE;
    }
    println!("all {compared} compared bench(es) within the regression budget");
    ExitCode::SUCCESS
}

fn usage() {
    eprintln!(
        "usage: bench_compare <baseline.json> <current.json> [--max-regress FRAC] [--only GROUP_PREFIX]\n\
         Compares criterion-shim JSON results; exits 1 when a shared bench's mean\n\
         regresses beyond the budget (default 0.30 = +30%) or a baseline bench is\n\
         missing from the current run. Improvements beyond the same fraction warn\n\
         (the bench may have stopped measuring the hot path)."
    );
}

fn die(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
