//! CI perf gate: diff two `BENCH_*.json` files from the criterion
//! harness and fail on regression.
//!
//! ```sh
//! cargo run -p radio-bench --bin bench_compare -- \
//!     BENCH_baseline.json BENCH_pr.json --max-regress 0.30 --only engine
//! ```
//!
//! Compares `mean_s` for every `(group, id)` present in both files
//! (optionally filtered to groups whose name starts with `--only`'s
//! prefix) and exits non-zero if any current mean exceeds
//! `baseline · (1 + max_regress)`. Benches present in only one file are
//! reported but never fail the gate, so adding or removing benches does
//! not require touching the baseline in the same commit.

use radio_util::Json;
use std::process::ExitCode;

struct Entry {
    key: String,
    mean_s: f64,
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let benches = json
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing \"benches\" array"))?;
    benches
        .iter()
        .map(|b| {
            let group = b
                .get("group")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: bench without group"))?;
            let id = b
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: bench without id"))?;
            let mean_s = b
                .get("mean_s")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: bench without mean_s"))?;
            Ok(Entry {
                key: format!("{group}/{id}"),
                mean_s,
            })
        })
        .collect()
}

fn fmt_ms(secs: f64) -> String {
    format!("{:.3} ms", secs * 1e3)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut max_regress = 0.30f64;
    let mut only: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regress" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_regress = v,
                None => return die("--max-regress needs a number"),
            },
            "--only" => match it.next() {
                Some(v) => only = Some(v),
                None => return die("--only needs a group prefix"),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, current_path] = match <[String; 2]>::try_from(paths) {
        Ok(p) => p,
        Err(_) => {
            usage();
            return die("expected exactly two JSON files");
        }
    };

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => return die(&e),
    };

    let keep = |key: &str| only.as_deref().is_none_or(|prefix| key.starts_with(prefix));
    let mut failures = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<32} {:>12} {:>12} {:>8}  verdict (gate: +{:.0}%)",
        "bench",
        "baseline",
        "current",
        "ratio",
        max_regress * 100.0
    );
    for cur in current.iter().filter(|e| keep(&e.key)) {
        match baseline.iter().find(|b| b.key == cur.key) {
            Some(base) => {
                compared += 1;
                let ratio = cur.mean_s / base.mean_s;
                let regressed = ratio > 1.0 + max_regress;
                if regressed {
                    failures += 1;
                }
                println!(
                    "{:<32} {:>12} {:>12} {:>7.2}x  {}",
                    cur.key,
                    fmt_ms(base.mean_s),
                    fmt_ms(cur.mean_s),
                    ratio,
                    if regressed { "REGRESSED" } else { "ok" }
                );
            }
            None => println!(
                "{:<32} {:>12} {:>12}   new bench (not gated)",
                cur.key,
                "—",
                fmt_ms(cur.mean_s)
            ),
        }
    }
    for base in baseline.iter().filter(|e| keep(&e.key)) {
        if !current.iter().any(|c| c.key == base.key) {
            println!(
                "{:<32} {:>12} {:>12}   missing from current (not gated)",
                base.key,
                fmt_ms(base.mean_s),
                "—"
            );
        }
    }

    if compared == 0 {
        return die("no comparable benches between the two files");
    }
    if failures > 0 {
        eprintln!(
            "error: {failures} bench(es) regressed more than {:.0}%",
            max_regress * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("all {compared} compared bench(es) within the regression budget");
    ExitCode::SUCCESS
}

fn usage() {
    eprintln!(
        "usage: bench_compare <baseline.json> <current.json> [--max-regress FRAC] [--only GROUP_PREFIX]\n\
         Compares criterion-shim JSON results; exits 1 when a shared bench's mean\n\
         regresses beyond the budget (default 0.30 = +30%)."
    );
}

fn die(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
