//! Benchmark and experiment harness for the `adhoc-radio` reproduction.
//!
//! Every table and figure of the paper maps to an experiment `E1..E18`
//! (see `DESIGN.md` §5 for the index). The [`experiments`] modules
//! regenerate them; run
//!
//! ```sh
//! cargo run --release -p radio-bench --bin experiments -- all
//! cargo run --release -p radio-bench --bin experiments -- e7 e8
//! ```
//!
//! Each experiment prints a markdown table (pasteable into
//! `EXPERIMENTS.md`) and writes the same content to `results/<id>.md`.
//! Criterion micro-benchmarks of the substrate live under `benches/`.

pub mod bench_diff;
pub mod common;
pub mod experiments;

pub use common::{Ctx, Report};
