//! Shared experiment plumbing.

use std::fs;
use std::path::PathBuf;

/// Execution context for experiments.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Master seed; every experiment derives all randomness from it.
    pub seed: u64,
    /// Trial multiplier (1.0 = paper defaults; `--quick` uses 0.25).
    pub scale: f64,
    /// Output directory for markdown reports.
    pub out_dir: PathBuf,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            seed: 0xAD0C_2007,
            scale: 1.0,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl Ctx {
    /// Trials after scaling, at least `min`.
    pub fn trials(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(min)
    }
}

/// A rendered experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (`e1` … `e15`).
    pub id: &'static str,
    /// Human title, e.g. `"E1 — Theorem 2.1"`.
    pub title: String,
    /// Markdown body (tables + notes).
    pub body: String,
}

impl Report {
    /// Assemble a report from sections.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Report {
            id,
            title: title.into(),
            body: String::new(),
        }
    }

    /// Append a paragraph.
    pub fn para(&mut self, text: impl AsRef<str>) -> &mut Self {
        self.body.push_str(text.as_ref());
        self.body.push_str("\n\n");
        self
    }

    /// Append a rendered table.
    pub fn table(&mut self, t: &radio_util::TextTable) -> &mut Self {
        self.body.push_str(&t.render());
        self.body.push('\n');
        self
    }

    /// Full markdown (title + body).
    pub fn markdown(&self) -> String {
        format!("## {}\n\n{}", self.title, self.body)
    }

    /// Print to stdout and persist under `ctx.out_dir`.
    pub fn emit(&self, ctx: &Ctx) {
        let md = self.markdown();
        println!("{md}");
        if let Err(e) = fs::create_dir_all(&ctx.out_dir) {
            eprintln!("warning: cannot create {}: {e}", ctx.out_dir.display());
            return;
        }
        let path = ctx.out_dir.join(format!("{}.md", self.id));
        if let Err(e) = fs::write(&path, md) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

/// Format a mean ± half-CI pair compactly.
pub fn pm(stats: &radio_stats::SummaryStats) -> String {
    format!("{:.1} ± {:.1}", stats.mean, stats.ci95_half_width())
}

/// Lift a broadcast outcome into a sweep trial row — thin alias for
/// [`radio_core::broadcast::BroadcastOutcome::to_trial`].
pub fn broadcast_trial(out: &radio_core::broadcast::BroadcastOutcome) -> radio_sim::TrialResult {
    out.to_trial()
}

/// Mean-informed fraction of a sweep cell.
pub fn informed_frac(cell: &radio_sim::CellSummary) -> f64 {
    cell.mean_informed / cell.cell.n as f64
}

/// Look up an extra's stats by key on a sweep cell.
pub fn cell_extra<'a>(
    cell: &'a radio_sim::CellSummary,
    key: &str,
) -> Option<&'a radio_stats::SummaryStats> {
    cell.extras.iter().find(|(k, _)| k == key).map(|(_, s)| s)
}

/// Note appended to reports whose sweep JSON landed under `results/`.
pub fn sweep_note(path: &std::path::Path) -> String {
    format!(
        "Machine-readable sweep report: `{}` (see the sweep API in `radio-sim`).",
        path.display()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_title_and_body() {
        let mut r = Report::new("e0", "E0 — smoke");
        r.para("hello");
        let md = r.markdown();
        assert!(md.starts_with("## E0 — smoke"));
        assert!(md.contains("hello"));
    }

    #[test]
    fn ctx_trials_scale_and_floor() {
        let ctx = Ctx {
            scale: 0.25,
            ..Ctx::default()
        };
        assert_eq!(ctx.trials(40, 5), 10);
        assert_eq!(ctx.trials(8, 5), 5);
    }
}
