//! The comparison core of the `bench_compare` CI gate, split out of the
//! binary so the gating rules are unit-testable (the gate guards every
//! PR; a silent hole in *it* is worse than a perf regression, which at
//! least shows up in the numbers eventually).
//!
//! Rules, in verdict order:
//!
//! * **Regressed** — shared bench whose mean exceeds `baseline · (1 +
//!   max_regress)`. Fails the gate.
//! * **Vanished** — baseline bench absent from the current run. Fails
//!   the gate: a deleted or renamed bench silently un-gates the path it
//!   guarded, so removals must land together with a baseline refresh
//!   (the PR that renames `decide_phase/v2` to `v2_cold`/`v2_warm` also
//!   rewrites `BENCH_baseline.json`, keeping the gate airtight).
//! * **Suspicious** — shared bench that *improved* beyond
//!   `1 / (1 + warn_improve)`. Warns, never fails: a genuine win is
//!   welcome, but a 30%+ "improvement" is at least as often a bench that
//!   stopped measuring the hot path (dead-code elimination, a changed
//!   workload constant), so it is flagged for a human to bless — by
//!   refreshing the baseline, which records the new expectation.
//! * **NotGated** — thread-scaling entry (`<k>t` id, `k > 1`) compared
//!   across hosts with different `host_threads`. Reported only; see the
//!   binary's docs for why cross-core ratios are noise.
//! * **New** — current bench with no baseline entry. Reported only;
//!   it starts gating once the baseline is refreshed.
//! * **Ok** — within budget.

/// One bench entry (flattened `group/id` key + measured mean).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub key: String,
    pub mean_s: f64,
}

/// Gate outcome for one key; `Regressed` and `Vanished` fail the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Ok,
    Regressed,
    /// Improved so much the bench itself is suspect (warn only).
    Suspicious,
    /// In the baseline, not in the current run (fails).
    Vanished,
    /// In the current run, not in the baseline (informational).
    New,
    /// Thread-scaling entry across mismatched hosts (informational).
    NotGated,
}

/// One row of the comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub key: String,
    pub baseline_s: Option<f64>,
    pub current_s: Option<f64>,
    pub verdict: Verdict,
}

impl Finding {
    /// `current / baseline` where both sides exist.
    pub fn ratio(&self) -> Option<f64> {
        Some(self.current_s? / self.baseline_s?)
    }
}

/// Gating thresholds + host comparability.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Fail when `current > baseline · (1 + max_regress)`.
    pub max_regress: f64,
    /// Warn when `current < baseline / (1 + warn_improve)`.
    pub warn_improve: f64,
    /// Whether the two files come from hosts with equal `host_threads`
    /// (gates the `<k>t` thread-scaling entries).
    pub cores_match: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            max_regress: 0.30,
            warn_improve: 0.30,
            cores_match: true,
        }
    }
}

/// Worker count a thread-scaling bench key declares
/// (`"engine_par/8t/10000"` → 8); `None` for ordinary keys.
pub fn id_threads(key: &str) -> Option<u64> {
    key.split('/')
        .nth(1)?
        .strip_suffix('t')
        .and_then(|d| d.parse().ok())
}

/// Compare `current` against `baseline` under `cfg`. Findings come out
/// in current-file order, followed by the baseline-only (vanished)
/// keys in baseline order — stable input order makes the report diffable.
pub fn diff(baseline: &[Entry], current: &[Entry], cfg: &DiffConfig) -> Vec<Finding> {
    let mut findings = Vec::with_capacity(current.len() + baseline.len());
    for cur in current {
        let base = baseline.iter().find(|b| b.key == cur.key);
        let verdict = match base {
            None => Verdict::New,
            Some(base) => {
                let ratio = cur.mean_s / base.mean_s;
                if !cfg.cores_match && id_threads(&cur.key).is_some_and(|t| t > 1) {
                    Verdict::NotGated
                } else if ratio > 1.0 + cfg.max_regress {
                    Verdict::Regressed
                } else if ratio < 1.0 / (1.0 + cfg.warn_improve) {
                    Verdict::Suspicious
                } else {
                    Verdict::Ok
                }
            }
        };
        findings.push(Finding {
            key: cur.key.clone(),
            baseline_s: base.map(|b| b.mean_s),
            current_s: Some(cur.mean_s),
            verdict,
        });
    }
    for base in baseline {
        if !current.iter().any(|c| c.key == base.key) {
            findings.push(Finding {
                key: base.key.clone(),
                baseline_s: Some(base.mean_s),
                current_s: None,
                verdict: Verdict::Vanished,
            });
        }
    }
    findings
}

/// Whether a finding set passes the gate (no regressions, no vanished
/// baselines) — the binary's exit code, minus the I/O.
pub fn passes(findings: &[Finding]) -> bool {
    !findings
        .iter()
        .any(|f| matches!(f.verdict, Verdict::Regressed | Verdict::Vanished))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(key: &str, mean_s: f64) -> Entry {
        Entry {
            key: key.to_string(),
            mean_s,
        }
    }

    fn verdict_of(findings: &[Finding], key: &str) -> Verdict {
        findings
            .iter()
            .find(|f| f.key == key)
            .unwrap_or_else(|| panic!("no finding for {key}"))
            .verdict
    }

    #[test]
    fn within_budget_passes() {
        let base = vec![e("g/a/1", 1.0), e("g/b/1", 2.0)];
        let cur = vec![e("g/a/1", 1.25), e("g/b/1", 1.9)];
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "g/a/1"), Verdict::Ok);
        assert_eq!(verdict_of(&f, "g/b/1"), Verdict::Ok);
        assert!(passes(&f));
    }

    #[test]
    fn regression_fails() {
        let base = vec![e("g/a/1", 1.0)];
        let cur = vec![e("g/a/1", 1.31)];
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "g/a/1"), Verdict::Regressed);
        assert!(!passes(&f));
    }

    #[test]
    fn vanished_baseline_entry_fails() {
        // The rule this module exists for: deleting or renaming a bench
        // must fail until the baseline is refreshed alongside it.
        let base = vec![e("decide_phase/v2/10000", 0.032), e("g/a/1", 1.0)];
        let cur = vec![e("g/a/1", 1.0), e("decide_phase/v2_warm/10000", 0.006)];
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "decide_phase/v2/10000"), Verdict::Vanished);
        assert_eq!(verdict_of(&f, "decide_phase/v2_warm/10000"), Verdict::New);
        assert!(!passes(&f));
    }

    #[test]
    fn large_improvement_warns_but_passes() {
        let base = vec![e("g/a/1", 1.0)];
        let cur = vec![e("g/a/1", 0.5)]; // 2× faster: suspicious, not fatal
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "g/a/1"), Verdict::Suspicious);
        assert!(passes(&f));
    }

    #[test]
    fn improvement_inside_the_warn_band_is_ok() {
        let base = vec![e("g/a/1", 1.0)];
        let cur = vec![e("g/a/1", 0.8)]; // −20% < the 30% warn threshold
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "g/a/1"), Verdict::Ok);
    }

    #[test]
    fn thread_entries_ungated_on_core_mismatch_but_vanish_still_fails() {
        let cfg = DiffConfig {
            cores_match: false,
            ..DiffConfig::default()
        };
        let base = vec![
            e("engine_par/8t/10000", 1.0),
            e("engine_par/2t/10000", 1.0),
            e("engine_csr/gnp/10000", 1.0),
        ];
        // 8t regressed 10x but is not gated across hosts; 2t vanished —
        // presence is host-independent, so that still fails.
        let cur = vec![
            e("engine_par/8t/10000", 10.0),
            e("engine_csr/gnp/10000", 1.0),
        ];
        let f = diff(&base, &cur, &cfg);
        assert_eq!(verdict_of(&f, "engine_par/8t/10000"), Verdict::NotGated);
        assert_eq!(verdict_of(&f, "engine_par/2t/10000"), Verdict::Vanished);
        assert_eq!(verdict_of(&f, "engine_csr/gnp/10000"), Verdict::Ok);
        assert!(!passes(&f));
    }

    #[test]
    fn id_threads_parses_only_thread_ids() {
        assert_eq!(id_threads("engine_par/8t/10000"), Some(8));
        assert_eq!(id_threads("engine_fused/1t/10000"), Some(1));
        assert_eq!(id_threads("engine_csr/gnp/10000"), None);
        assert_eq!(id_threads("decide_phase/v2_warm/10000"), None);
    }
}
