//! The comparison core of the `bench_compare` CI gate, split out of the
//! binary so the gating rules are unit-testable (the gate guards every
//! PR; a silent hole in *it* is worse than a perf regression, which at
//! least shows up in the numbers eventually).
//!
//! Rules, in verdict order:
//!
//! * **Regressed** — shared bench whose mean exceeds `baseline · (1 +
//!   max_regress)`. Fails the gate.
//! * **Vanished** — baseline bench absent from the current run. Fails
//!   the gate: a deleted or renamed bench silently un-gates the path it
//!   guarded, so removals must land together with a baseline refresh
//!   (the PR that renames `decide_phase/v2` to `v2_cold`/`v2_warm` also
//!   rewrites `BENCH_baseline.json`, keeping the gate airtight).
//! * **Suspicious** — shared bench that *improved* beyond
//!   `1 / (1 + warn_improve)`. Warns, never fails: a genuine win is
//!   welcome, but a 30%+ "improvement" is at least as often a bench that
//!   stopped measuring the hot path (dead-code elimination, a changed
//!   workload constant), so it is flagged for a human to bless — by
//!   refreshing the baseline, which records the new expectation.
//! * **NotGated** — thread-scaling entry (`<k>t` id, `k > 1`) compared
//!   across hosts with different `host_threads`. Reported only; see the
//!   binary's docs for why cross-core ratios are noise.
//! * **New** — current bench with no baseline entry. Reported only;
//!   it starts gating once the baseline is refreshed.
//! * **Ok** — within budget.

/// One bench entry (flattened `group/id` key + measured mean).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub key: String,
    pub mean_s: f64,
}

/// Gate outcome for one key; `Regressed` and `Vanished` fail the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Ok,
    Regressed,
    /// Improved so much the bench itself is suspect (warn only).
    Suspicious,
    /// In the baseline, not in the current run (fails).
    Vanished,
    /// In the current run, not in the baseline (informational).
    New,
    /// Thread-scaling entry across mismatched hosts (informational).
    NotGated,
}

/// One row of the comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub key: String,
    pub baseline_s: Option<f64>,
    pub current_s: Option<f64>,
    pub verdict: Verdict,
}

impl Finding {
    /// `current / baseline` where both sides exist.
    pub fn ratio(&self) -> Option<f64> {
        Some(self.current_s? / self.baseline_s?)
    }
}

/// Gating thresholds + host comparability.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Fail when `current > baseline · (1 + max_regress)`.
    pub max_regress: f64,
    /// Warn when `current < baseline / (1 + warn_improve)`.
    pub warn_improve: f64,
    /// Whether the two files come from hosts with equal `host_threads`
    /// (gates the `<k>t` thread-scaling entries).
    pub cores_match: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            max_regress: 0.30,
            warn_improve: 0.30,
            cores_match: true,
        }
    }
}

/// Worker count a thread-scaling bench key declares
/// (`"engine_par/8t/10000"` → 8, `"scatter_phase/grid/8t/10000"` → 8);
/// `None` for ordinary keys. The `<digits>t` token may sit in any
/// `/`-segment — groups that fan out per backend put it third.
pub fn id_threads(key: &str) -> Option<u64> {
    key.split('/').find_map(|seg| {
        let digits = seg.strip_suffix('t')?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    })
}

/// Compare `current` against `baseline` under `cfg`. Findings come out
/// in current-file order, followed by the baseline-only (vanished)
/// keys in baseline order — stable input order makes the report diffable.
pub fn diff(baseline: &[Entry], current: &[Entry], cfg: &DiffConfig) -> Vec<Finding> {
    let mut findings = Vec::with_capacity(current.len() + baseline.len());
    for cur in current {
        let base = baseline.iter().find(|b| b.key == cur.key);
        let verdict = match base {
            None => Verdict::New,
            Some(base) => {
                let ratio = cur.mean_s / base.mean_s;
                if !cfg.cores_match && id_threads(&cur.key).is_some_and(|t| t > 1) {
                    Verdict::NotGated
                } else if ratio > 1.0 + cfg.max_regress {
                    Verdict::Regressed
                } else if ratio < 1.0 / (1.0 + cfg.warn_improve) {
                    Verdict::Suspicious
                } else {
                    Verdict::Ok
                }
            }
        };
        findings.push(Finding {
            key: cur.key.clone(),
            baseline_s: base.map(|b| b.mean_s),
            current_s: Some(cur.mean_s),
            verdict,
        });
    }
    for base in baseline {
        if !current.iter().any(|c| c.key == base.key) {
            findings.push(Finding {
                key: base.key.clone(),
                baseline_s: Some(base.mean_s),
                current_s: None,
                verdict: Verdict::Vanished,
            });
        }
    }
    findings
}

/// Whether a finding set passes the gate (no regressions, no vanished
/// baselines) — the binary's exit code, minus the I/O.
pub fn passes(findings: &[Finding]) -> bool {
    !findings
        .iter()
        .any(|f| matches!(f.verdict, Verdict::Regressed | Verdict::Vanished))
}

/// One baseline candidate: either the file's top level or one entry of
/// its optional `"profiles"` array. Multi-profile baselines exist
/// because thread-scaling benches (`<k>t` ids) measure *different
/// things* on different hosts — speedup on a multi-core box, partition
/// overhead on a single core — so each host class gets its own numbers
/// instead of the cross-core `NotGated` hole.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineProfile {
    /// `host_threads` the profile was recorded on (`None`: unrecorded).
    pub host_threads: Option<u64>,
    /// A provisional profile's numbers are expectations, not
    /// measurements from a blessed runner: `Regressed`/`Vanished`
    /// findings against it warn instead of failing, until someone
    /// refreshes the profile on real matching hardware (which clears
    /// the flag).
    pub provisional: bool,
    pub entries: Vec<Entry>,
}

/// Pick the baseline to gate against: the profile whose `host_threads`
/// equals the current run's, else the file's top level. A `None`
/// current (unrecorded host) never matches a profile — falling back to
/// the top level keeps old files working unchanged.
pub fn select_profile(
    top: BaselineProfile,
    profiles: Vec<BaselineProfile>,
    current_threads: Option<u64>,
) -> BaselineProfile {
    if current_threads.is_some() {
        if let Some(p) = profiles
            .into_iter()
            .find(|p| p.host_threads == current_threads)
        {
            return p;
        }
    }
    top
}

/// The trace hook's overhead gate: `engine_trace/on` must stay within
/// `max_ratio` × `engine_trace/off` **within the current run**. This is
/// a relative gate, not a baseline diff — the two entries share every
/// noise source (host, load, frequency scaling), so their ratio is
/// meaningful even when absolute numbers drift. Returns the measured
/// `(on_s, off_s, ratio)` when both entries are present, `None`
/// otherwise (a run filtered with `--only` that drops the group simply
/// skips the check).
pub fn trace_overhead(current: &[Entry], group: &str) -> Option<(f64, f64, f64)> {
    let find = |id: &str| {
        current
            .iter()
            .find(|e| {
                e.key
                    .strip_prefix(group)
                    .and_then(|rest| rest.strip_prefix('/'))
                    .is_some_and(|rest| rest.split('/').next() == Some(id))
            })
            .map(|e| e.mean_s)
    };
    let on = find("on")?;
    let off = find("off")?;
    Some((on, off, on / off))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(key: &str, mean_s: f64) -> Entry {
        Entry {
            key: key.to_string(),
            mean_s,
        }
    }

    fn verdict_of(findings: &[Finding], key: &str) -> Verdict {
        findings
            .iter()
            .find(|f| f.key == key)
            .unwrap_or_else(|| panic!("no finding for {key}"))
            .verdict
    }

    #[test]
    fn within_budget_passes() {
        let base = vec![e("g/a/1", 1.0), e("g/b/1", 2.0)];
        let cur = vec![e("g/a/1", 1.25), e("g/b/1", 1.9)];
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "g/a/1"), Verdict::Ok);
        assert_eq!(verdict_of(&f, "g/b/1"), Verdict::Ok);
        assert!(passes(&f));
    }

    #[test]
    fn regression_fails() {
        let base = vec![e("g/a/1", 1.0)];
        let cur = vec![e("g/a/1", 1.31)];
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "g/a/1"), Verdict::Regressed);
        assert!(!passes(&f));
    }

    #[test]
    fn vanished_baseline_entry_fails() {
        // The rule this module exists for: deleting or renaming a bench
        // must fail until the baseline is refreshed alongside it.
        let base = vec![e("decide_phase/v2/10000", 0.032), e("g/a/1", 1.0)];
        let cur = vec![e("g/a/1", 1.0), e("decide_phase/v2_warm/10000", 0.006)];
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "decide_phase/v2/10000"), Verdict::Vanished);
        assert_eq!(verdict_of(&f, "decide_phase/v2_warm/10000"), Verdict::New);
        assert!(!passes(&f));
    }

    #[test]
    fn large_improvement_warns_but_passes() {
        let base = vec![e("g/a/1", 1.0)];
        let cur = vec![e("g/a/1", 0.5)]; // 2× faster: suspicious, not fatal
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "g/a/1"), Verdict::Suspicious);
        assert!(passes(&f));
    }

    #[test]
    fn improvement_inside_the_warn_band_is_ok() {
        let base = vec![e("g/a/1", 1.0)];
        let cur = vec![e("g/a/1", 0.8)]; // −20% < the 30% warn threshold
        let f = diff(&base, &cur, &DiffConfig::default());
        assert_eq!(verdict_of(&f, "g/a/1"), Verdict::Ok);
    }

    #[test]
    fn thread_entries_ungated_on_core_mismatch_but_vanish_still_fails() {
        let cfg = DiffConfig {
            cores_match: false,
            ..DiffConfig::default()
        };
        let base = vec![
            e("engine_par/8t/10000", 1.0),
            e("engine_par/2t/10000", 1.0),
            e("engine_csr/gnp/10000", 1.0),
        ];
        // 8t regressed 10x but is not gated across hosts; 2t vanished —
        // presence is host-independent, so that still fails.
        let cur = vec![
            e("engine_par/8t/10000", 10.0),
            e("engine_csr/gnp/10000", 1.0),
        ];
        let f = diff(&base, &cur, &cfg);
        assert_eq!(verdict_of(&f, "engine_par/8t/10000"), Verdict::NotGated);
        assert_eq!(verdict_of(&f, "engine_par/2t/10000"), Verdict::Vanished);
        assert_eq!(verdict_of(&f, "engine_csr/gnp/10000"), Verdict::Ok);
        assert!(!passes(&f));
    }

    #[test]
    fn id_threads_parses_only_thread_ids() {
        assert_eq!(id_threads("engine_par/8t/10000"), Some(8));
        assert_eq!(id_threads("engine_fused/1t/10000"), Some(1));
        assert_eq!(id_threads("scatter_phase/grid/8t/10000"), Some(8));
        assert_eq!(id_threads("scatter_phase/csr/1t/10000"), Some(1));
        assert_eq!(id_threads("engine_csr/gnp/10000"), None);
        assert_eq!(id_threads("decide_phase/v2_warm/10000"), None);
        // A bare "t" segment is not a thread id.
        assert_eq!(id_threads("weird/t/10000"), None);
    }

    fn profile(threads: Option<u64>, provisional: bool, key: &str) -> BaselineProfile {
        BaselineProfile {
            host_threads: threads,
            provisional,
            entries: vec![e(key, 1.0)],
        }
    }

    #[test]
    fn select_profile_matches_on_host_threads() {
        let top = profile(Some(1), false, "top");
        let profiles = vec![
            profile(Some(8), true, "eight"),
            profile(Some(4), true, "four"),
        ];
        let picked = select_profile(top, profiles, Some(8));
        assert_eq!(picked.entries[0].key, "eight");
        assert!(picked.provisional);
    }

    #[test]
    fn select_profile_falls_back_to_top_level() {
        let top = profile(Some(1), false, "top");
        let profiles = vec![profile(Some(8), true, "eight")];
        // No matching core count → top level (including for the current
        // host the top level was recorded on).
        let picked = select_profile(top.clone(), profiles.clone(), Some(2));
        assert_eq!(picked.entries[0].key, "top");
        assert!(!picked.provisional);
        // An unrecorded current host never matches a profile.
        let picked = select_profile(top, profiles, None);
        assert_eq!(picked.entries[0].key, "top");
    }

    #[test]
    fn trace_overhead_reads_the_current_run_pair() {
        let cur = vec![
            e("engine_trace/off/10000", 0.010),
            e("engine_trace/on/10000", 0.0104),
            e("engine_csr/gnp/10000", 1.0),
        ];
        let (on, off, ratio) = trace_overhead(&cur, "engine_trace").expect("both present");
        assert_eq!(on, 0.0104);
        assert_eq!(off, 0.010);
        assert!((ratio - 1.04).abs() < 1e-9);
    }

    #[test]
    fn trace_overhead_requires_both_entries() {
        let cur = vec![e("engine_trace/off/10000", 0.010)];
        assert!(trace_overhead(&cur, "engine_trace").is_none());
        // `off` must not match a key whose id merely starts with "on".
        let cur = vec![
            e("engine_trace/only/10000", 0.010),
            e("engine_trace/off/10000", 0.010),
        ];
        assert!(trace_overhead(&cur, "engine_trace").is_none());
    }
}
