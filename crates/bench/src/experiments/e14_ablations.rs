//! **E14 — Ablations.** The design choices DESIGN.md calls out:
//! (a) the two readings of Phase 2's passivation wording;
//! (b) Phase-3 length β;
//! (c) Algorithm 3 with a shared vs a private random sequence;
//! (d) gossip's round-budget constant γ.

use crate::{Ctx, Report};
use radio_core::broadcast::ee_general::{run_general_broadcast, GeneralBroadcastConfig};
use radio_core::broadcast::ee_random::{run_ee_broadcast, EeBroadcastConfig};
use radio_core::gossip::{run_ee_gossip, EeGossipConfig};
use radio_graph::analysis::diameter_from;
use radio_graph::generate::{caterpillar, gnp_directed};
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{derive_rng, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e14",
        "E14 — ablations (Phase-2 reading, β, shared sequence, γ)",
    );
    let trials = ctx.trials(16, 6);

    // (a) Phase-2 passivation reading — including the T-boundary instance
    // where it decides success (E1's "T=3 boundary" row).
    let mut t_a = TextTable::new(&[
        "instance",
        "Phase-2 reading",
        "success",
        "informed frac",
        "bcast time",
        "total msgs",
    ]);
    let mut instances: Vec<(&str, usize, f64)> =
        vec![("n=4096 δ=6", 4096, 6.0 * (4096f64).ln() / 4096.0)];
    if ctx.scale >= 0.9 {
        instances.push((
            "n=2^18 d=64 (T=3 boundary)",
            1 << 18,
            64.0 / (1 << 18) as f64,
        ));
    }
    for (label, n, p) in instances {
        for literal in [true, false] {
            let cfg = EeBroadcastConfig {
                phase2_all_passive: literal,
                ..EeBroadcastConfig::for_gnp(n, p)
            };
            let outs = parallel_trials(trials, ctx.seed ^ literal as u64 ^ n as u64, |_, seed| {
                let g = gnp_directed(n, p, &mut derive_rng(seed, b"e14a-g", 0));
                let out = run_ee_broadcast(&g, 0, &cfg, seed);
                (
                    out.all_informed,
                    out.broadcast_time,
                    out.metrics.total_transmissions() as f64,
                    out.informed as f64 / n as f64,
                )
            });
            let succ = outs.iter().filter(|o| o.0).count();
            let times: Vec<f64> = outs.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
            let totals: Vec<f64> = outs.iter().map(|o| o.2).collect();
            let fracs: Vec<f64> = outs.iter().map(|o| o.3).collect();
            t_a.row(&[
                label.to_string(),
                if literal {
                    "literal (all passivate)"
                } else {
                    "transmitters only"
                }
                .to_string(),
                format!("{succ}/{trials}"),
                format!("{:.5}", radio_stats::mean(&fracs)),
                if times.is_empty() {
                    "—".into()
                } else {
                    format!("{:.0}", SummaryStats::from_slice(&times).mean)
                },
                format!("{:.0}", SummaryStats::from_slice(&totals).mean),
            ]);
        }
    }
    report.para("(a) Phase-2 pseudocode reading: at comfortable densities both readings complete; at the T-boundary the literal reading throws away the Phase-1 actives that the lenient reading keeps, and those extra one-shot transmitters are exactly what rescues the stranded nodes.");
    report.table(&t_a);
    let n = 4096;
    let p = 6.0 * (n as f64).ln() / n as f64;

    // (b) Phase-3 length β.
    let mut t_b = TextTable::new(&["β", "success", "informed (min)", "total msgs"]);
    for beta in [2.0, 4.0, 8.0, 16.0, 32.0] {
        let cfg = EeBroadcastConfig {
            beta,
            ..EeBroadcastConfig::for_gnp(n, p)
        };
        let outs = parallel_trials(trials, ctx.seed ^ (beta as u64) << 3, |_, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"e14b-g", 0));
            let out = run_ee_broadcast(&g, 0, &cfg, seed);
            (
                out.all_informed,
                out.informed,
                out.metrics.total_transmissions() as f64,
            )
        });
        let succ = outs.iter().filter(|o| o.0).count();
        let min_informed = outs.iter().map(|o| o.1).min().unwrap_or(0);
        let totals: Vec<f64> = outs.iter().map(|o| o.2).collect();
        t_b.row(&[
            format!("{beta}"),
            format!("{succ}/{trials}"),
            format!("{min_informed}/{n}"),
            format!("{:.0}", SummaryStats::from_slice(&totals).mean),
        ]);
    }
    report.para("(b) Phase-3 length β (paper: 128/c for a tiny c, i.e. 'large enough'): success saturates by β ≈ 8 at this size; energy barely moves because Phase-3 actives are one-shot.");
    report.table(&t_b);

    // (c) Shared vs private sequence for Algorithm 3 on a star-heavy
    // network, where the shared-k coordination matters.
    let g = caterpillar(24, 63); // n = 1536: big 64-ish star layers
    let gn = g.n();
    let gd = diameter_from(&g, 0).expect("connected");
    let mut t_c = TextTable::new(&["sequence", "success", "bcast time", "mean msgs/node"]);
    for private in [false, true] {
        let cfg = GeneralBroadcastConfig {
            private_sequence: private,
            ..GeneralBroadcastConfig::new(gn, gd)
        };
        let outs = parallel_trials(trials, ctx.seed ^ (private as u64) << 5, |_, seed| {
            let out = run_general_broadcast(&g, 0, &cfg, seed);
            (
                out.all_informed,
                out.broadcast_time,
                out.mean_msgs_per_node(),
            )
        });
        let succ = outs.iter().filter(|o| o.0).count();
        let times: Vec<f64> = outs.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
        let msgs: Vec<f64> = outs.iter().map(|o| o.2).collect();
        t_c.row(&[
            if private {
                "private (per node)"
            } else {
                "shared (Algorithm 3)"
            }
            .to_string(),
            format!("{succ}/{trials}"),
            if times.is_empty() {
                "—".into()
            } else {
                format!("{:.0}", SummaryStats::from_slice(&times).mean)
            },
            format!("{:.2}", SummaryStats::from_slice(&msgs).mean),
        ]);
    }
    report.para(format!(
        "(c) Shared vs private sequence (caterpillar n = {gn}, D = {gd}, 64-leaf \
         clusters): the analysis needs all of a node's neighbours on the *same* \
         2^(−k) in a round; private sampling mixes scales within a round and \
         slows star traversal."
    ));
    report.table(&t_c);

    // (d) Gossip γ.
    let n_g = 1024;
    let p_g = 6.0 * (n_g as f64).ln() / n_g as f64;
    let mut t_d = TextTable::new(&["γ", "success", "gossip time", "max msgs/node"]);
    for gamma in [1.0, 2.0, 4.0, 6.0] {
        let cfg = EeGossipConfig {
            gamma,
            tracked: Some(64),
            ..EeGossipConfig::for_gnp(n_g, p_g)
        };
        let outs = parallel_trials(trials, ctx.seed ^ (gamma as u64) << 7, |_, seed| {
            let g = gnp_directed(n_g, p_g, &mut derive_rng(seed, b"e14d-g", 0));
            let out = run_ee_gossip(&g, &cfg, seed);
            (
                out.completed,
                out.gossip_time,
                out.max_msgs_per_node() as f64,
            )
        });
        let succ = outs.iter().filter(|o| o.0).count();
        let times: Vec<f64> = outs.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
        let maxs: Vec<f64> = outs.iter().map(|o| o.2).collect();
        t_d.row(&[
            format!("{gamma}"),
            format!("{succ}/{trials}"),
            if times.is_empty() {
                "—".into()
            } else {
                format!("{:.0}", SummaryStats::from_slice(&times).mean)
            },
            format!("{:.1}", SummaryStats::from_slice(&maxs).mean),
        ]);
    }
    report.para("(d) Gossip budget γ (paper constant: 128): γ ≈ 2 already suffices at n = 1024 — the 128 is proof slack, and energy scales linearly with the chosen γ only until early-stop kicks in.");
    report.table(&t_d);
    report
}
