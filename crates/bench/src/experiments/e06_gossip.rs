//! **E6 — Theorem 3.2.** Algorithm 2 gossip: time `O(d log n)`, per-node
//! transmissions `O(log n)`, tightly concentrated.

use crate::{Ctx, Report};
use radio_core::gossip::{run_ee_gossip, EeGossipConfig};
use radio_graph::generate::gnp_directed;
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{derive_rng, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e6",
        "E6 — Theorem 3.2: Algorithm 2 gossiping time and per-node energy",
    );
    let trials = ctx.trials(12, 4);

    let mut table = TextTable::new(&[
        "n",
        "d",
        "success",
        "gossip time",
        "time/(d·log2 n)",
        "max msgs/node",
        "mean msgs/node",
        "msgs/log2 n",
    ]);

    for (n, delta) in [
        (512usize, 6.0),
        (1024, 6.0),
        (2048, 6.0),
        (4096, 6.0),
        (1024, 12.0),
        (2048, 12.0),
    ] {
        let p = delta * (n as f64).ln() / n as f64;
        let cfg = EeGossipConfig {
            tracked: Some(64.min(n)),
            ..EeGossipConfig::for_gnp(n, p)
        };
        let d = cfg.params.d;
        let outs = parallel_trials(trials, ctx.seed ^ (n as u64 * delta as u64), |_, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"e6-g", 0));
            let out = run_ee_gossip(&g, &cfg, seed);
            (
                out.completed,
                out.gossip_time.map(|t| t as f64),
                out.max_msgs_per_node() as f64,
                out.mean_msgs_per_node(),
            )
        });
        let successes = outs.iter().filter(|o| o.0).count();
        let times: Vec<f64> = outs.iter().filter_map(|o| o.1).collect();
        let maxs: Vec<f64> = outs.iter().map(|o| o.2).collect();
        let means: Vec<f64> = outs.iter().map(|o| o.3).collect();
        if times.is_empty() {
            continue;
        }
        let t = SummaryStats::from_slice(&times);
        let mx = SummaryStats::from_slice(&maxs);
        let mn = SummaryStats::from_slice(&means);
        let log2n = (n as f64).log2();
        table.row(&[
            n.to_string(),
            format!("{d:.0}"),
            format!("{successes}/{trials}"),
            format!("{:.0} ± {:.0}", t.mean, t.ci95_half_width()),
            format!("{:.2}", t.mean / (d * log2n)),
            format!("{:.1}", mx.mean),
            format!("{:.1}", mn.mean),
            format!("{:.2}", mx.mean / log2n),
        ]);
    }

    report.para(format!(
        "{trials} runs per row, early-stopping on completion (64 tracked rumors — \
         content-independent dynamics make sampling exact for time/energy). \
         Theorem 3.2's shape: time/(d·log n) and msgs/log n stay bounded as n \
         grows; doubling δ (hence d) leaves msgs/node unchanged while time \
         scales with d."
    ));
    report.table(&table);
    report
}
