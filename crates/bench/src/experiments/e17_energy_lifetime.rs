//! **E17 — extension: listen-cost crossover and network lifetime.** The
//! paper charges energy for transmissions only (§1.2); real ad-hoc
//! radios pay the same order for *listening*. This experiment reruns the
//! §1.3-style comparison under the pluggable `radio-energy` overlay and
//! asks two deployment questions:
//!
//! * **(a) Crossover** — sweep the listen/tx cost ratio ρ
//!   (`LinearRadio::with_listen_ratio`) × algorithm × graph family. At
//!   ρ = 0 the measure degenerates to the paper's and Algorithm 1's
//!   ≤ 1-transmission guarantee wins outright; as ρ grows, its long
//!   waiting schedule (every passive-but-uninformed node keeps its
//!   receiver on) starts to cost, while a genie-stopped flood finishes —
//!   and stops paying — within a few rounds. The sweep locates the ratio
//!   regime where each side wins.
//! * **(b) Lifetime** — give every node a finite jittered battery, run a
//!   fixed horizon, and record the first-depletion round (network
//!   lifetime) and depleted-node counts. Algorithm 1's duty-cycling
//!   (passive ⇒ radio off) outlives the always-listening baselines.
//!
//! Both sweeps load committed scenario IR
//! (`scenarios/e17_energy.scenario.json`,
//! `scenarios/e17_lifetime.scenario.json`) and run through the
//! `radio-campaign` compiler, byte-identical to the historical
//! hand-written sweeps. JSON: `results/sweep_e17_energy.json`,
//! `results/sweep_e17_lifetime.json`.

use crate::common::{cell_extra, sweep_note};
use crate::{Ctx, Report};
use radio_campaign::{Compiled, Scenario};
use radio_util::TextTable;

/// The committed scenario IR for part (a).
pub const ENERGY_SPEC: &str = include_str!("../../../../scenarios/e17_energy.scenario.json");
/// The committed scenario IR for part (b).
pub const LIFETIME_SPEC: &str = include_str!("../../../../scenarios/e17_lifetime.scenario.json");

/// `"alg1:r=0.1"` → `("alg1", 0.1)`.
fn parse_label(label: &str) -> (&str, f64) {
    let (alg, r) = label.split_once(":r=").expect("algorithm label");
    (alg, r.parse().expect("ratio"))
}

/// Compile a committed spec, rescaling trials/seed from the context (at
/// default scale the overrides equal the spec's own values).
fn compile(spec: &str, ctx: &Ctx, seed: u64) -> Compiled {
    let scenario = Scenario::parse(spec).expect("committed scenario must validate");
    let mut compiled = Compiled::new(scenario);
    compiled.sweep_mut().trials = ctx.trials(12, 5);
    compiled.sweep_mut().base_seed = seed;
    compiled
}

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e17", "E17 — extension: listen-cost crossover and lifetime");

    // --- (a) listen/tx-ratio crossover -----------------------------------
    let energy = compile(ENERGY_SPEC, ctx, ctx.seed);
    let n = energy.scenario().cells[0].n;
    let trials = energy.sweep().trials;
    let energy_report = energy.run_report();

    let mut t_a = TextTable::new(&[
        "family",
        "listen/tx ρ",
        "Alg 1 E/node",
        "flood E/node",
        "decay E/node",
        "winner",
    ]);
    for chunk in energy_report.cells.chunks(3) {
        let per_node: Vec<f64> = chunk
            .iter()
            .map(|c| cell_extra(c, "energy_per_node").map_or(f64::NAN, |s| s.mean))
            .collect();
        let (_, ratio) = parse_label(&chunk[0].cell.algorithm);
        let names = ["Alg 1 (paper)", "flood (genie-stop)", "Decay"];
        let winner = per_node
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map_or("—", |(i, _)| names[i]);
        t_a.row(&[
            chunk[0].cell.family.label(),
            format!("{ratio}"),
            format!("{:.2}", per_node[0]),
            format!("{:.2}", per_node[1]),
            format!("{:.2}", per_node[2]),
            winner.to_string(),
        ]);
    }
    report.para(format!(
        "(a) Mean model-based energy per node (LinearRadio, tx = 1, \
         listen = idle = ρ, sleep = 0) on n = {n} networks, {trials} \
         trials/cell. At ρ = 0 this is the paper's measure and \
         Algorithm 1's ≤ 1-transmission guarantee dominates. Charging \
         listeners moves the optimum: flooding (with a completion genie \
         it stops the moment everyone is informed) pays ≈ q·n·T_bcast \
         transmissions but listens only for its short run, while \
         Algorithm 1 keeps every not-yet-informed receiver powered \
         through its full O(log n)-round schedule. The table locates the \
         crossover ratio per topology family; Decay loses on both axes \
         (Θ(D + log n) messages *and* no retirement)."
    ));
    report.table(&t_a);

    // --- (b) network lifetime on finite batteries -------------------------
    let life = compile(LIFETIME_SPEC, ctx, ctx.seed ^ 0x17);
    let horizon = match life.scenario().protocols[0].1 {
        radio_campaign::ProtocolSpec::EnergyLifetime { horizon, .. } => horizon,
        _ => unreachable!("e17_lifetime carries energy_lifetime protocols"),
    };
    let life_report = life.run_report();

    let mut t_b = TextTable::new(&[
        "algorithm",
        "informed (mean)",
        "first depletion (mean round)",
        "depleted frac (mean)",
    ]);
    for cell in &life_report.cells {
        let name = match cell.cell.algorithm.as_str() {
            "alg1" => "Alg 1 (paper)",
            "flood" => "flood (no stop)",
            _ => "Decay (no stop)",
        };
        t_b.row(&[
            name.to_string(),
            format!("{:.0}", cell.mean_informed),
            cell.lifetime
                .as_ref()
                .map_or("none (outlived horizon)".into(), |s| {
                    format!("{:.0}", s.mean)
                }),
            format!(
                "{:.2}",
                cell_extra(cell, "depleted_frac").map_or(0.0, |s| s.mean)
            ),
        ]);
    }
    report.para(format!(
        "(b) Finite batteries (capacity 100 ± 20 %, listen ratio 1, fixed \
         {horizon}-round horizon, idle charged through quiescence). First \
         death comes early everywhere — under Algorithm 1 it is the \
         occasional never-informed straggler whose receiver stays on — \
         but the *fraction* of the network that dies separates the \
         protocols completely: the always-listening baselines burn every \
         battery at ≈ round 100 and die wholesale, while Algorithm 1's \
         passive nodes power down after one transmission and ~97 % of \
         the network finishes the horizon with charge to spare — the \
         duty-cycling the paper's energy measure anticipates, made \
         visible by the battery workload."
    ));
    report.table(&t_b);

    for sweep_report in [&energy_report, &life_report] {
        match sweep_report.write_json(&ctx.out_dir) {
            Ok(path) => {
                report.para(sweep_note(&path));
            }
            Err(e) => eprintln!("warning: cannot write e17 sweep JSON: {e}"),
        }
    }
    report
}
