//! **E17 — extension: listen-cost crossover and network lifetime.** The
//! paper charges energy for transmissions only (§1.2); real ad-hoc
//! radios pay the same order for *listening*. This experiment reruns the
//! §1.3-style comparison under the pluggable `radio-energy` overlay and
//! asks two deployment questions:
//!
//! * **(a) Crossover** — sweep the listen/tx cost ratio ρ
//!   (`LinearRadio::with_listen_ratio`) × algorithm × graph family. At
//!   ρ = 0 the measure degenerates to the paper's and Algorithm 1's
//!   ≤ 1-transmission guarantee wins outright; as ρ grows, its long
//!   waiting schedule (every passive-but-uninformed node keeps its
//!   receiver on) starts to cost, while a genie-stopped flood finishes —
//!   and stops paying — within a few rounds. The sweep locates the ratio
//!   regime where each side wins.
//! * **(b) Lifetime** — give every node a finite jittered battery, run a
//!   fixed horizon, and record the first-depletion round (network
//!   lifetime) and depleted-node counts. Algorithm 1's duty-cycling
//!   (passive ⇒ radio off) outlives the always-listening baselines.
//!
//! JSON: `results/sweep_e17_energy.json`, `results/sweep_e17_lifetime.json`.

use crate::common::{cell_extra, sweep_note};
use crate::{Ctx, Report};
use radio_core::broadcast::decay::DecayConfig;
use radio_core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use radio_core::broadcast::flood::FloodConfig;
use radio_core::broadcast::windowed::run_windowed_energy;
use radio_energy::{Battery, EnergySession, LinearRadio};
use radio_graph::{DiGraph, GraphFamily};
use radio_sim::engine::run_protocol_energy;
use radio_sim::{EngineConfig, Protocol, Sweep, SweepCell, TrialResult};
use radio_util::{derive_rng, split_seed, TextTable};

/// Listen/tx cost ratios swept in part (a).
const RATIOS: [f64; 4] = [0.0, 0.01, 0.1, 1.0];
/// Flooding's per-round transmit probability.
const FLOOD_Q: f64 = 0.1;
/// Diameter hint handed to Decay on these dense-ish topologies.
const D_HINT: u32 = 8;

/// `"alg1:r=0.1"` → `("alg1", 0.1)`.
fn parse_label(label: &str) -> (&str, f64) {
    let (alg, r) = label.split_once(":r=").expect("algorithm label");
    (alg, r.parse().expect("ratio"))
}

/// Equivalent `G(n,p)` edge probability for a generated topology, used to
/// parameterise Algorithm 1 on the geometric family (it only needs a
/// degree estimate, as in the sensor-field example).
fn p_equiv(cell: &SweepCell, graph: &DiGraph) -> f64 {
    match cell.family {
        GraphFamily::GnpDirected => cell.p,
        _ => (graph.m() as f64 / cell.n as f64) / cell.n as f64,
    }
}

/// One part-(a) trial: run `alg` under the ρ-parameterised linear radio
/// (infinite batteries) and report model-based energy.
fn crossover_trial(cell: &SweepCell, graph: &DiGraph, seed: u64) -> TrialResult {
    let n = cell.n;
    let (alg, ratio) = parse_label(&cell.algorithm);
    // Charge-to-cap: Algorithm 1 cannot detect completion, so any node
    // still listening (uninformed, radio on) pays for the whole schedule
    // even after the transmitters quiesce — the honest listen bill.
    let mut session = EnergySession::new(
        n,
        LinearRadio::with_listen_ratio(ratio),
        split_seed(seed, b"e17-energy", 0),
    )
    .with_charge_to_cap(true);
    let out = match alg {
        "alg1" => {
            let cfg = EeBroadcastConfig::for_gnp(n, p_equiv(cell, graph));
            let mut protocol = EeRandomBroadcast::new(n, 0, cfg);
            let mut rng = derive_rng(seed, b"engine", 0);
            let run = run_protocol_energy(
                graph,
                &mut protocol,
                EngineConfig::with_max_rounds(cfg.schedule_end() + 2),
                &mut rng,
                &mut session,
            );
            let informed = protocol.informed_count();
            return TrialResult::from_energy_run(&run, informed == n, informed)
                .extra("energy_per_node", run.energy.mean_energy_per_node());
        }
        "flood" => {
            // Genie-stopped probabilistic flooding: the most favourable
            // accounting for the baseline (it stops paying the moment
            // everyone is informed, which no real flood can detect).
            let cfg = FloodConfig::with_prob(FLOOD_Q, DecayConfig::new(n, D_HINT).max_rounds());
            run_windowed_energy(
                graph,
                0,
                cfg.spec(),
                EngineConfig::with_max_rounds(cfg.max_rounds),
                seed,
                &mut session,
            )
        }
        "decay" => {
            let cfg = DecayConfig::new(n, D_HINT); // early-stops
            run_windowed_energy(
                graph,
                0,
                cfg.spec(),
                EngineConfig::with_max_rounds(cfg.max_rounds()),
                seed,
                &mut session,
            )
        }
        other => unreachable!("unknown algorithm {other}"),
    };
    let energy_per_node = out
        .energy
        .as_ref()
        .map_or(0.0, |e| e.mean_energy_per_node());
    out.to_trial().extra("energy_per_node", energy_per_node)
}

/// One part-(b) trial: finite jittered batteries, ρ = 1 radio, fixed
/// horizon, no early stopping — how long until the first battery dies,
/// and how much of the network is dead by the end?
fn lifetime_trial(cell: &SweepCell, graph: &DiGraph, seed: u64, horizon: u64) -> TrialResult {
    let n = cell.n;
    let capacity = 100.0;
    let battery = Battery::jittered(n, capacity, 0.2, &mut derive_rng(seed, b"e17-battery", 0));
    // Charge-to-cap: the mission horizon is fixed, so receivers that
    // never power down keep draining after the protocol quiesces.
    let mut session = EnergySession::new(
        n,
        LinearRadio::with_listen_ratio(1.0),
        split_seed(seed, b"e17-life", 0),
    )
    .with_battery(battery)
    .with_charge_to_cap(true);
    let engine_cfg = EngineConfig::with_max_rounds(horizon);
    let trial = match cell.algorithm.as_str() {
        "alg1" => {
            let cfg = EeBroadcastConfig::for_gnp(n, cell.p);
            let mut protocol = EeRandomBroadcast::new(n, 0, cfg);
            let mut rng = derive_rng(seed, b"engine", 0);
            let run = run_protocol_energy(graph, &mut protocol, engine_cfg, &mut rng, &mut session);
            let informed = protocol.informed_count();
            TrialResult::from_energy_run(&run, informed == n, informed)
        }
        "flood" => {
            // No early stop, no retirement: the classic always-listening
            // flood burns its batteries for the whole horizon.
            let cfg = FloodConfig {
                early_stop: false,
                ..FloodConfig::with_prob(FLOOD_Q, horizon)
            };
            run_windowed_energy(graph, 0, cfg.spec(), engine_cfg, seed, &mut session).to_trial()
        }
        "decay" => {
            let cfg = DecayConfig {
                early_stop: false,
                ..DecayConfig::new(n, D_HINT)
            };
            run_windowed_energy(graph, 0, cfg.spec(), engine_cfg, seed, &mut session).to_trial()
        }
        other => unreachable!("unknown algorithm {other}"),
    };
    let depleted_frac = trial
        .energy
        .as_ref()
        .map_or(0.0, |e| e.depleted as f64 / n as f64);
    trial.extra("depleted_frac", depleted_frac)
}

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e17", "E17 — extension: listen-cost crossover and lifetime");
    let trials = ctx.trials(12, 5);
    let n = 512;
    let gnp_p = 8.0 * (n as f64).ln() / n as f64;
    let geo_r = radio_graph::generate::GeoParams::with_expected_degree(n, 30.0).r_min;

    // --- (a) listen/tx-ratio crossover -----------------------------------
    let mut sw_energy = Sweep::new("e17_energy", ctx.seed, trials);
    for (family, p) in [
        (GraphFamily::GnpDirected, gnp_p),
        (GraphFamily::Geometric, geo_r),
    ] {
        for &ratio in &RATIOS {
            for alg in ["alg1", "flood", "decay"] {
                sw_energy.push(SweepCell::new(
                    format!("{alg}:r={ratio}"),
                    family.clone(),
                    n,
                    p,
                ));
            }
        }
    }
    let energy_report = sw_energy.run(crossover_trial);

    let mut t_a = TextTable::new(&[
        "family",
        "listen/tx ρ",
        "Alg 1 E/node",
        "flood E/node",
        "decay E/node",
        "winner",
    ]);
    for chunk in energy_report.cells.chunks(3) {
        let per_node: Vec<f64> = chunk
            .iter()
            .map(|c| cell_extra(c, "energy_per_node").map_or(f64::NAN, |s| s.mean))
            .collect();
        let (_, ratio) = parse_label(&chunk[0].cell.algorithm);
        let names = ["Alg 1 (paper)", "flood (genie-stop)", "Decay"];
        let winner = per_node
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map_or("—", |(i, _)| names[i]);
        t_a.row(&[
            chunk[0].cell.family.label(),
            format!("{ratio}"),
            format!("{:.2}", per_node[0]),
            format!("{:.2}", per_node[1]),
            format!("{:.2}", per_node[2]),
            winner.to_string(),
        ]);
    }
    report.para(format!(
        "(a) Mean model-based energy per node (LinearRadio, tx = 1, \
         listen = idle = ρ, sleep = 0) on n = {n} networks, {trials} \
         trials/cell. At ρ = 0 this is the paper's measure and \
         Algorithm 1's ≤ 1-transmission guarantee dominates. Charging \
         listeners moves the optimum: flooding (with a completion genie \
         it stops the moment everyone is informed) pays ≈ q·n·T_bcast \
         transmissions but listens only for its short run, while \
         Algorithm 1 keeps every not-yet-informed receiver powered \
         through its full O(log n)-round schedule. The table locates the \
         crossover ratio per topology family; Decay loses on both axes \
         (Θ(D + log n) messages *and* no retirement)."
    ));
    report.table(&t_a);

    // --- (b) network lifetime on finite batteries -------------------------
    let horizon = 400u64;
    let mut sw_life = Sweep::new("e17_lifetime", ctx.seed ^ 0x17, trials);
    for alg in ["alg1", "flood", "decay"] {
        sw_life.push(SweepCell::new(alg, GraphFamily::GnpDirected, n, gnp_p));
    }
    let life_report = sw_life.run(|cell, graph, seed| lifetime_trial(cell, graph, seed, horizon));

    let mut t_b = TextTable::new(&[
        "algorithm",
        "informed (mean)",
        "first depletion (mean round)",
        "depleted frac (mean)",
    ]);
    for cell in &life_report.cells {
        let name = match cell.cell.algorithm.as_str() {
            "alg1" => "Alg 1 (paper)",
            "flood" => "flood (no stop)",
            _ => "Decay (no stop)",
        };
        t_b.row(&[
            name.to_string(),
            format!("{:.0}", cell.mean_informed),
            cell.lifetime
                .as_ref()
                .map_or("none (outlived horizon)".into(), |s| {
                    format!("{:.0}", s.mean)
                }),
            format!(
                "{:.2}",
                cell_extra(cell, "depleted_frac").map_or(0.0, |s| s.mean)
            ),
        ]);
    }
    report.para(format!(
        "(b) Finite batteries (capacity 100 ± 20 %, listen ratio 1, fixed \
         {horizon}-round horizon, idle charged through quiescence). First \
         death comes early everywhere — under Algorithm 1 it is the \
         occasional never-informed straggler whose receiver stays on — \
         but the *fraction* of the network that dies separates the \
         protocols completely: the always-listening baselines burn every \
         battery at ≈ round 100 and die wholesale, while Algorithm 1's \
         passive nodes power down after one transmission and ~97 % of \
         the network finishes the horizon with charge to spare — the \
         duty-cycling the paper's energy measure anticipates, made \
         visible by the battery workload."
    ));
    report.table(&t_b);

    for sweep_report in [&energy_report, &life_report] {
        match sweep_report.write_json(&ctx.out_dir) {
            Ok(path) => {
                report.para(sweep_note(&path));
            }
            Err(e) => eprintln!("warning: cannot write e17 sweep JSON: {e}"),
        }
    }
    report
}
