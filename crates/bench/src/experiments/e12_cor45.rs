//! **E12 — Corollary 4.5.** With `D = Θ(n)` the trade-off degenerates:
//! any oblivious algorithm finishing in `cn` rounds with probability
//! `1 − 1/n` needs `Ω(log² n)` transmissions (per participating node).

use crate::{Ctx, Report};
use radio_core::lower_bound::{thm44_trial, TimeInvariant};
use radio_core::seq::KDistribution;
use radio_graph::generate::lower_bound_net;
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{ilog2_ceil, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e12",
        "E12 — Corollary 4.5: deep networks (D = Θ(n)) force Ω(log² n) messages",
    );
    let trials = ctx.trials(14, 6);

    let mut table = TextTable::new(&[
        "n",
        "D",
        "log²n",
        "strategy",
        "success",
        "mean msgs/node",
        "msgs / log²n",
    ]);

    for (k, diameter) in [(4u32, 48u32), (5, 96), (6, 192)] {
        let net = lower_bound_net(k, diameter);
        let l = ilog2_ceil(net.graph.n() as u64);
        let log2n = (net.n_param as f64).log2();
        let strategies: Vec<(String, TimeInvariant)> = vec![
            ("fixed q=1/8".into(), TimeInvariant::Fixed(1.0 / 8.0)),
            ("fixed q=1/16".into(), TimeInvariant::Fixed(1.0 / 16.0)),
            (
                "α λ=1".into(),
                TimeInvariant::Dist(KDistribution::paper_alpha(l, 1.0)),
            ),
        ];
        for (name, strat) in &strategies {
            // Budget c·D·λ with λ clamped to 1 in the deep regime ⇒ c·D.
            let outs = parallel_trials(
                trials,
                ctx.seed ^ (diameter as u64) ^ name.len() as u64,
                |_, seed| {
                    let out = thm44_trial(&net, strat, 40.0, seed);
                    (out.all_informed, out.mean_msgs_per_node())
                },
            );
            let succ = outs.iter().filter(|o| o.0).count();
            let msgs: Vec<f64> = outs.iter().filter(|o| o.0).map(|o| o.1).collect();
            let msg_str = if msgs.is_empty() {
                ("—".to_string(), "—".to_string())
            } else {
                let m = SummaryStats::from_slice(&msgs);
                (
                    format!("{:.1}", m.mean),
                    format!("{:.2}", m.mean / (log2n * log2n)),
                )
            };
            table.row(&[
                net.n_param.to_string(),
                diameter.to_string(),
                format!("{:.0}", log2n * log2n),
                name.clone(),
                format!("{succ}/{trials}"),
                msg_str.0,
                msg_str.1,
            ]);
        }
    }

    report.para(format!(
        "{trials} runs per cell on path-dominated Figure-2 networks (D ≫ log n, so \
         λ = 1 and the Theorem 4.4 floor reads log²n / 8). The msgs/log²n column \
         stays bounded below across sizes for every reliable strategy — the \
         Corollary 4.5 shape: going deep costs every transmitter Ω(log² n) energy."
    ));
    report.table(&table);
    report
}
