//! **E18 — extension: million-node scaling on the parallel engine.** The
//! paper's asymptotic claims — Theorem 2.1's `O(log² n / log(n/D))`
//! message bound, Decay's `Θ(D + log n)` rounds — only separate cleanly
//! from the baselines once `n` is large enough that constant factors stop
//! dominating. This experiment runs the §1.3-style comparison at
//! `n = 2¹⁸ … 2²⁰` (raise `ADHOC_RADIO_E18_MAX_EXP` to 21+ for the full
//! million-node column; the default keeps the committed JSON
//! regenerable in reasonable wall-clock on one core) on both `G(n,p)`
//! and geometric topologies, driving the **fused v2 engine**
//! ([`radio_sim::Engine::run_fused`]) instead of trial-level fan-out: at
//! these sizes a single run saturates memory bandwidth, so the sweep is
//! built `with_threads_per_run` and each trial hands the engine
//! `EngineConfig::with_threads`. Under the v2 counter-based per-node
//! stream contract the decide phase — one RNG draw per awake node per
//! round, the serial bottleneck that Amdahl-capped the v1 `run_par`
//! here — fans out with the scatter.
//!
//! Reported per cell: mean rounds, mean total messages, messages per
//! node, and a wall-clock column (seconds per trial, *not* serialized —
//! the JSON stays a pure function of the sweep description).
//!
//! JSON: `results/sweep_e18.json` — bit-identical for any thread count
//! by the v2 stream contract (`(run_seed, node, round)`-keyed draws +
//! receiver-range scatter). Note the v2 switch changed these bytes
//! relative to the PR-4 file, which consumed the v1 shared stream.
//!
//! Env knobs (the examples' scale-shrinking idiom):
//! `ADHOC_RADIO_E18_MIN_EXP` / `ADHOC_RADIO_E18_MAX_EXP` bound the
//! `log₂ n` range (defaults 18 / 20; the smoke test runs 9 / 10), and
//! `ADHOC_RADIO_E18_THREADS` overrides the per-run worker count
//! (default: machine parallelism, capped at 8).

use crate::common::cell_extra;
use crate::{Ctx, Report};
use radio_core::broadcast::decay::DecayConfig;
use radio_core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use radio_core::broadcast::flood::FloodConfig;
use radio_core::broadcast::windowed::run_windowed_fused;
use radio_graph::{DiGraph, GraphFamily};
use radio_sim::engine::run_protocol_fused;
use radio_sim::{EngineConfig, Protocol, Sweep, SweepCell, TrialResult};
use radio_util::TextTable;

/// Degree factor: expected degree is `DEGREE_C · ln n` for both families
/// — the workspace's standard `p = 8 ln n / n` regime, which satisfies
/// Theorem 2.1's `p > δ log n / n` precondition with room to spare (at a
/// fixed degree like 32, Algorithm 1's phase constants stop working by
/// `n = 2¹⁸` and it informs almost nobody).
const DEGREE_C: f64 = 8.0;
/// Diameter hint for Decay: these degree-Θ(log n) graphs have
/// `D ≈ log n / log d ≈ 4`; 8 is a comfortable over-estimate.
const D_HINT: u32 = 8;

/// Expected degree at `n` (see [`DEGREE_C`]).
fn degree(n: usize) -> f64 {
    DEGREE_C * (n as f64).ln()
}

/// Flooding's per-round transmit probability, tuned to the degree: a
/// fixed `q` collision-chokes at degree Θ(log n) (with `q·d ≈ 10` a
/// receiver hears exactly one transmitter with probability
/// `≈ 10·e⁻¹⁰`), so use the classic `q = 1/d`, which maximizes the
/// per-round success probability at `≈ e⁻¹` per informed neighborhood.
fn flood_q(n: usize) -> f64 {
    (1.0 / degree(n)).min(1.0)
}

/// Parse an env knob, *loudly* falling back on garbage — a silently
/// ignored typo here costs the user a multi-minute run at the wrong
/// scale (same policy as `adhoc_radio::example_scale`).
fn env_usize(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Ok(v) => match v.trim().parse() {
            Ok(x) => x,
            Err(_) => {
                eprintln!("warning: ignoring unparsable {key}={v:?}; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Equivalent `G(n,p)` edge probability for Algorithm 1's degree
/// estimate on non-Gnp families (same convention as E17).
fn p_equiv(cell: &SweepCell, graph: &DiGraph) -> f64 {
    match cell.family {
        GraphFamily::GnpDirected => cell.p,
        _ => (graph.m() as f64 / cell.n as f64) / cell.n as f64,
    }
}

/// One trial: run `cell.algorithm` through the **fused v2 engine**
/// ([`radio_sim::Engine::run_fused`]) with `threads` intra-run workers —
/// under the v2 contract the decide phase fans out with the scatter, so
/// run-level parallelism covers the whole round, not just the
/// collision count. Pure in `(cell, graph, seed)` — the thread count
/// cannot influence the result (property-tested in
/// `tests/determinism.rs`, asserted on the JSON bytes by the smoke
/// test).
fn scale_trial(cell: &SweepCell, graph: &DiGraph, seed: u64, threads: usize) -> TrialResult {
    let n = cell.n;
    let cfg = |max_rounds: u64| EngineConfig::with_max_rounds(max_rounds).with_threads(threads);
    let trial = match cell.algorithm.as_str() {
        "alg1" => {
            let acfg = EeBroadcastConfig::for_gnp(n, p_equiv(cell, graph));
            let mut protocol = EeRandomBroadcast::new(n, 0, acfg);
            let run = run_protocol_fused(graph, &mut protocol, cfg(acfg.schedule_end() + 2), seed);
            let informed = protocol.informed_count();
            TrialResult::from_run(&run, informed == n, informed)
        }
        "flood" => {
            let fcfg = FloodConfig::with_prob(flood_q(n), DecayConfig::new(n, D_HINT).max_rounds());
            run_windowed_fused(graph, 0, fcfg.spec(), cfg(fcfg.max_rounds), seed).to_trial()
        }
        "decay" => {
            let dcfg = DecayConfig::new(n, D_HINT);
            run_windowed_fused(graph, 0, dcfg.spec(), cfg(dcfg.max_rounds()), seed).to_trial()
        }
        other => unreachable!("unknown algorithm {other}"),
    };
    let tx = trial.total_transmissions as f64;
    trial.extra("msgs_per_node", tx / n as f64)
}

/// The experiment body at an explicit `log₂ n` range — the smoke test
/// calls this directly (no env mutation in a multi-threaded test
/// binary); [`run`] wraps it with the env-derived defaults.
pub fn run_scaled(ctx: &Ctx, min_exp: u32, max_exp: u32, threads: usize) -> Report {
    assert!(min_exp <= max_exp);
    assert!(
        max_exp < usize::BITS,
        "max_exp {max_exp} would overflow the node-count shift"
    );
    let mut report = Report::new(
        "e18",
        "E18 — extension: million-node scaling, parallel engine",
    );
    let trials = ctx.trials(3, 2);
    let ns: Vec<usize> = (min_exp..=max_exp).map(|e| 1usize << e).collect();

    let mut sweep = Sweep::new("e18", ctx.seed ^ 0x18, trials).with_threads_per_run(threads);
    for &n in &ns {
        let gnp_p = degree(n) / n as f64;
        let geo_r = radio_graph::generate::GeoParams::with_expected_degree(n, degree(n)).r_min;
        for (family, p) in [
            (GraphFamily::GnpDirected, gnp_p),
            (GraphFamily::Geometric, geo_r),
        ] {
            for alg in ["alg1", "flood", "decay"] {
                sweep.push(SweepCell::new(alg, family.clone(), n, p));
            }
        }
    }

    // Per-cell execution with wall-clock bookkeeping: `run_cell` uses the
    // exact seeds and aggregation of `Sweep::run`, so the JSON is
    // bit-identical to a plain `sweep.run(...)` — the timings ride along
    // in the markdown only. The runner reads the thread count from the
    // sweep (single source of truth), as `with_threads_per_run`
    // prescribes.
    let sweep_ref = &sweep;
    let runner = |cell: &SweepCell, graph: &DiGraph, seed: u64| -> TrialResult {
        scale_trial(cell, graph, seed, sweep_ref.run_threads())
    };
    let mut results = Vec::with_capacity(sweep.cells().len());
    let mut wall_per_trial = Vec::with_capacity(sweep.cells().len());
    for i in 0..sweep.cells().len() {
        let cell = &sweep.cells()[i];
        let start = std::time::Instant::now();
        results.push(sweep.run_cell(i, &runner));
        let secs = start.elapsed().as_secs_f64();
        wall_per_trial.push(secs / trials as f64);
        // Progress to stderr: big cells run for minutes, and a silent
        // harness is indistinguishable from a hung one.
        eprintln!(
            "e18: {}/{} {} {} n=2^{} done in {:.1}s ({} trials)",
            i + 1,
            sweep.cells().len(),
            cell.family.label(),
            cell.algorithm,
            cell.n.trailing_zeros(),
            secs,
            trials
        );
    }
    let sweep_report = sweep.report(&results);

    for family in [GraphFamily::GnpDirected, GraphFamily::Geometric] {
        let mut t = TextTable::new(&[
            "algorithm",
            "n",
            "success",
            "rounds (mean)",
            "messages (mean)",
            "msgs/node",
            "max msgs/node",
            "wall s/trial",
        ]);
        for (cell, &wall) in sweep_report.cells.iter().zip(&wall_per_trial) {
            if cell.cell.family != family {
                continue;
            }
            let rounds = cell.rounds.as_ref().map_or(f64::NAN, |s| s.mean);
            let msgs = cell
                .total_transmissions
                .as_ref()
                .map_or(f64::NAN, |s| s.mean);
            t.row(&[
                cell.cell.algorithm.clone(),
                format!("2^{}", cell.cell.n.trailing_zeros()),
                format!("{}/{}", cell.successes, cell.trials),
                format!("{rounds:.1}"),
                format!("{msgs:.0}"),
                format!(
                    "{:.3}",
                    cell_extra(cell, "msgs_per_node").map_or(f64::NAN, |s| s.mean)
                ),
                format!("{}", cell.max_transmissions_per_node),
                format!("{wall:.2}"),
            ]);
        }
        let story = match family {
            GraphFamily::GnpDirected => {
                "All three complete w.h.p. and rounds grow ≈ logarithmically, \
                 but the energy measures separate: Algorithm 1 keeps its \
                 structural ≤ 1-transmission-per-node invariant (max \
                 msgs/node = 1, the paper's Theorem 2.1 guarantee) at every \
                 n; flood at q = 1/d is cheap in *total* messages but \
                 unlucky nodes transmit several times; Decay pays \
                 Θ((D + log n)·log n)-flavored totals — two orders of \
                 magnitude more — because its nodes never retire."
            }
            _ => {
                "The geometric family is where the paper's §5 caveat bites: \
                 Algorithm 1's phase schedule is tuned to G(n,p)'s \
                 exponential neighborhood growth, and on a spatial topology \
                 (diameter Θ(√(n/d)), not Θ(log n / log d)) its Phase-1/3 \
                 budget ends long before the frontier crosses the torus — \
                 it informs almost nobody (success 0/N with a handful of \
                 messages). Flood and Decay, which keep transmitting until \
                 the message arrives, complete at diameter-driven round \
                 counts instead."
            }
        };
        report.para(format!(
            "Scaling on `{}` (expected degree {DEGREE_C}·ln n, {trials} \
             trials/cell, {threads} fused worker(s) per run — run-level \
             parallelism via `Sweep::with_threads_per_run` + \
             `EngineConfig::with_threads`, decide + scatter fused under \
             the v2 per-node stream contract; results are thread-count \
             independent). {story} Wall-clock is per trial, graph \
             generation included, and is *not* serialized to the sweep \
             JSON (which stays deterministic).",
            family.label()
        ));
        report.table(&t);
    }

    match sweep_report.write_json(&ctx.out_dir) {
        Ok(path) => {
            report.para(format!(
                "Machine-readable sweep report: `{}` — bit-identical across \
                 engine thread counts and regenerable with the default env \
                 (`ADHOC_RADIO_E18_MIN_EXP={min_exp}`, \
                 `ADHOC_RADIO_E18_MAX_EXP={max_exp}`).",
                path.display()
            ));
        }
        Err(e) => eprintln!("warning: cannot write e18 sweep JSON: {e}"),
    }
    report
}

/// Largest accepted `log₂ n`: at the experiment's degree 8·ln n, a
/// `n = 2²⁵` graph already has ~4.7·10⁹ expected edges — past the CSR
/// `u32` offset budget (and tens of GB of edge list) — so runs beyond
/// 2²⁴ are guaranteed to abort after hours of generation. The guard also
/// keeps an absurd value (say 64) from shift-overflowing into a silent
/// 1-node "scaling" run.
const MAX_EXP_BOUND: usize = 24;

pub fn run(ctx: &Ctx) -> Report {
    // Range-check in usize before narrowing, so an out-of-range value
    // fails the assert instead of truncating into it.
    let min_exp = env_usize("ADHOC_RADIO_E18_MIN_EXP", 18);
    let max_exp = env_usize("ADHOC_RADIO_E18_MAX_EXP", 20);
    assert!(
        (4..=MAX_EXP_BOUND).contains(&min_exp) && (4..=MAX_EXP_BOUND).contains(&max_exp),
        "ADHOC_RADIO_E18_MIN_EXP/ADHOC_RADIO_E18_MAX_EXP must lie in 4..={MAX_EXP_BOUND} \
         (got {min_exp}/{max_exp})"
    );
    assert!(
        min_exp <= max_exp,
        "ADHOC_RADIO_E18_MIN_EXP ({min_exp}) must be ≤ ADHOC_RADIO_E18_MAX_EXP ({max_exp})"
    );
    let (min_exp, max_exp) = (min_exp as u32, max_exp as u32);
    let threads = env_usize(
        "ADHOC_RADIO_E18_THREADS",
        std::thread::available_parallelism().map_or(1, |p| p.get().min(8)),
    );
    run_scaled(ctx, min_exp, max_exp, threads.max(1))
}
