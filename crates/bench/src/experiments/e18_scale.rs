//! **E18 — extension: million-node scaling on the parallel engine.** The
//! paper's asymptotic claims — Theorem 2.1's `O(log² n / log(n/D))`
//! message bound, Decay's `Θ(D + log n)` rounds — only separate cleanly
//! from the baselines once `n` is large enough that constant factors stop
//! dominating. This experiment runs the §1.3-style comparison at
//! `n = 2¹⁸ … 2²⁰` (raise `ADHOC_RADIO_E18_MAX_EXP` to 21+ for the full
//! million-node column; the default keeps the committed JSON
//! regenerable in reasonable wall-clock on one core) on both `G(n,p)`
//! and geometric topologies, driving the **fused v2 engine**
//! ([`radio_sim::Engine::run_fused`]) instead of trial-level fan-out: at
//! these sizes a single run saturates memory bandwidth, so the sweep is
//! built `with_threads_per_run` and each trial hands the engine
//! `EngineConfig::with_threads`. Under the v2 counter-based per-node
//! stream contract the decide phase — one RNG draw per awake node per
//! round, the serial bottleneck that Amdahl-capped the v1 `run_par`
//! here — fans out with the scatter.
//!
//! Reported per cell: mean rounds, mean total messages, messages per
//! node, and a wall-clock column (seconds per trial, *not* serialized —
//! the JSON stays a pure function of the sweep description).
//!
//! JSON: `results/sweep_e18.json` — bit-identical for any thread count
//! by the v2 stream contract (`(run_seed, node, round)`-keyed draws +
//! receiver-range scatter). Note the v2 switch changed these bytes
//! relative to the PR-4 file, which consumed the v1 shared stream.
//!
//! Past the CSR memory wall, the **implicit-backend section**
//! ([`run_implicit_section`]) re-runs the comparison with no stored
//! graph at all: [`ImplicitGnp`] re-samples rows per query,
//! [`ImplicitGrid`] answers by torus cell scan, and the engine reaches
//! both through the [`Topology`] trait — same trial code, O(n) instead
//! of O(m) memory, valid to `n = 2²⁶`. Its JSON goes to
//! `sweep_e18_implicit.json` (the CSR sweep's artifact is untouched).
//!
//! Env knobs (the examples' scale-shrinking idiom):
//! `ADHOC_RADIO_E18_MIN_EXP` / `ADHOC_RADIO_E18_MAX_EXP` bound the
//! `log₂ n` range (defaults 18 / 20; the smoke test runs 9 / 10),
//! `ADHOC_RADIO_E18_THREADS` overrides the per-run worker count
//! (default: machine parallelism, capped at 8),
//! `ADHOC_RADIO_E18_IMPLICIT` / `ADHOC_RADIO_E18_IMPLICIT_{MIN,MAX}_EXP`
//! gate and bound the implicit section (defaults on, 20 / 21; raise to
//! 24–26 for the past-the-wall columns), and `ADHOC_RADIO_TRACE=dir`
//! records a per-round `.rtrc` trace of the first trial of every CSR
//! cell into `dir` (a [`radio_sim::TracePlan`] with cap 1 — capture
//! only observes, so the sweep JSON is byte-identical either way).

use crate::common::cell_extra;
use crate::{Ctx, Report};
use radio_core::broadcast::decay::DecayConfig;
use radio_core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use radio_core::broadcast::flood::FloodConfig;
use radio_core::broadcast::windowed::run_windowed_fused_traced;
use radio_graph::{DiGraph, GraphFamily, ImplicitGnp, ImplicitGrid, Topology};
use radio_sim::engine::run_protocol_fused_traced;
use radio_sim::trace::{NullSink, TraceSink};
use radio_sim::{EngineConfig, Protocol, Sweep, SweepCell, TracePlan, TrialResult};
use radio_util::{derive_rng, split_seed, Json, TextTable};

/// Degree factor: expected degree is `DEGREE_C · ln n` for both families
/// — the workspace's standard `p = 8 ln n / n` regime, which satisfies
/// Theorem 2.1's `p > δ log n / n` precondition with room to spare (at a
/// fixed degree like 32, Algorithm 1's phase constants stop working by
/// `n = 2¹⁸` and it informs almost nobody).
const DEGREE_C: f64 = 8.0;
/// Diameter hint for Decay: these degree-Θ(log n) graphs have
/// `D ≈ log n / log d ≈ 4`; 8 is a comfortable over-estimate.
const D_HINT: u32 = 8;

/// Expected degree at `n` (see [`DEGREE_C`]).
fn degree(n: usize) -> f64 {
    DEGREE_C * (n as f64).ln()
}

/// Flooding's per-round transmit probability, tuned to the degree: a
/// fixed `q` collision-chokes at degree Θ(log n) (with `q·d ≈ 10` a
/// receiver hears exactly one transmitter with probability
/// `≈ 10·e⁻¹⁰`), so use the classic `q = 1/d`, which maximizes the
/// per-round success probability at `≈ e⁻¹` per informed neighborhood.
fn flood_q(n: usize) -> f64 {
    (1.0 / degree(n)).min(1.0)
}

/// Parse an env knob, *loudly* falling back on garbage — a silently
/// ignored typo here costs the user a multi-minute run at the wrong
/// scale (same policy as `adhoc_radio::example_scale`).
fn env_usize(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Ok(v) => match v.trim().parse() {
            Ok(x) => x,
            Err(_) => {
                eprintln!("warning: ignoring unparsable {key}={v:?}; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Equivalent `G(n,p)` edge probability for Algorithm 1's degree
/// estimate on non-Gnp families (same convention as E17).
fn p_equiv(cell: &SweepCell, graph: &DiGraph) -> f64 {
    match cell.family {
        GraphFamily::GnpDirected => cell.p,
        _ => (graph.m() as f64 / cell.n as f64) / cell.n as f64,
    }
}

/// One trial: run `alg` through the **fused v2 engine**
/// ([`radio_sim::Engine::run_fused`]) with `threads` intra-run workers —
/// under the v2 contract the decide phase fans out with the scatter, so
/// run-level parallelism covers the whole round, not just the
/// collision count. Pure in `(alg, graph, p_eq, seed)` — the thread
/// count cannot influence the result (property-tested in
/// `tests/determinism.rs`, asserted on the JSON bytes by the smoke
/// test). Generic over [`Topology`] so the implicit-backend section
/// drives the exact same trial code as the CSR sweep.
fn trial_body<T: Topology>(
    alg: &str,
    graph: &T,
    p_eq: f64,
    seed: u64,
    threads: usize,
) -> TrialResult {
    trial_body_traced(alg, graph, p_eq, seed, threads, &mut NullSink)
}

/// [`trial_body`] with a [`TraceSink`] attached — the sink only
/// observes (the engine's zero-interference property), so traced and
/// untraced trials report identical `TrialResult`s and the sweep JSON
/// stays byte-stable whether or not `ADHOC_RADIO_TRACE` is set.
fn trial_body_traced<T: Topology, S: TraceSink>(
    alg: &str,
    graph: &T,
    p_eq: f64,
    seed: u64,
    threads: usize,
    sink: &mut S,
) -> TrialResult {
    let n = Topology::n(graph);
    let cfg = |max_rounds: u64| EngineConfig::with_max_rounds(max_rounds).with_threads(threads);
    let trial = match alg {
        "alg1" => {
            let acfg = EeBroadcastConfig::for_gnp(n, p_eq);
            let mut protocol = EeRandomBroadcast::new(n, 0, acfg);
            let run = run_protocol_fused_traced(
                graph,
                &mut protocol,
                cfg(acfg.schedule_end() + 2),
                seed,
                sink,
            );
            let informed = protocol.informed_count();
            TrialResult::from_run(&run, informed == n, informed)
        }
        "flood" => {
            let fcfg = FloodConfig::with_prob(flood_q(n), DecayConfig::new(n, D_HINT).max_rounds());
            run_windowed_fused_traced(graph, 0, fcfg.spec(), cfg(fcfg.max_rounds), seed, sink)
                .to_trial()
        }
        "decay" => {
            let dcfg = DecayConfig::new(n, D_HINT);
            run_windowed_fused_traced(graph, 0, dcfg.spec(), cfg(dcfg.max_rounds()), seed, sink)
                .to_trial()
        }
        other => unreachable!("unknown algorithm {other}"),
    };
    let tx = trial.total_transmissions as f64;
    trial.extra("msgs_per_node", tx / n as f64)
}

/// The CSR-sweep adapter around [`trial_body`]: derives Algorithm 1's
/// degree estimate from the materialized edge count. When the sweep has
/// a [`TracePlan`], the first trial of each cell records its `.rtrc`
/// through [`trial_body_traced`] instead.
fn scale_trial(cell: &SweepCell, graph: &DiGraph, seed: u64, threads: usize) -> TrialResult {
    trial_body(&cell.algorithm, graph, p_equiv(cell, graph), seed, threads)
}

/// The traced twin of [`scale_trial`].
fn scale_trial_traced<S: TraceSink>(
    cell: &SweepCell,
    graph: &DiGraph,
    seed: u64,
    threads: usize,
    sink: &mut S,
) -> TrialResult {
    trial_body_traced(
        &cell.algorithm,
        graph,
        p_equiv(cell, graph),
        seed,
        threads,
        sink,
    )
}

/// The experiment body at an explicit `log₂ n` range — the smoke test
/// calls this directly (no env mutation in a multi-threaded test
/// binary); [`run`] wraps it with the env-derived defaults, including
/// `trace_dir` from `ADHOC_RADIO_TRACE`. When `trace_dir` is set, the
/// first trial of every cell records a `.rtrc` trace there (a
/// [`TracePlan`] with cap 1); tracing never changes the run or the
/// JSON — the sink only observes.
pub fn run_scaled(
    ctx: &Ctx,
    min_exp: u32,
    max_exp: u32,
    threads: usize,
    trace_dir: Option<&std::path::Path>,
) -> Report {
    assert!(min_exp <= max_exp);
    assert!(
        max_exp < usize::BITS,
        "max_exp {max_exp} would overflow the node-count shift"
    );
    let mut report = Report::new(
        "e18",
        "E18 — extension: million-node scaling, parallel engine",
    );
    let trials = ctx.trials(3, 2);
    let ns: Vec<usize> = (min_exp..=max_exp).map(|e| 1usize << e).collect();

    let mut sweep = Sweep::new("e18", ctx.seed ^ 0x18, trials).with_threads_per_run(threads);
    for &n in &ns {
        let gnp_p = degree(n) / n as f64;
        let geo_r = radio_graph::generate::GeoParams::with_expected_degree(n, degree(n)).r_min;
        for (family, p) in [
            (GraphFamily::GnpDirected, gnp_p),
            (GraphFamily::Geometric, geo_r),
        ] {
            for alg in ["alg1", "flood", "decay"] {
                sweep.push(SweepCell::new(alg, family.clone(), n, p));
            }
        }
    }

    // Per-cell execution with wall-clock bookkeeping: `run_cell` uses the
    // exact seeds and aggregation of `Sweep::run`, so the JSON is
    // bit-identical to a plain `sweep.run(...)` — the timings ride along
    // in the markdown only. The runner reads the thread count from the
    // sweep (single source of truth), as `with_threads_per_run`
    // prescribes.
    let plan = trace_dir.map(|dir| TracePlan::new(dir, 1));
    let sweep_ref = &sweep;
    let plan_ref = plan.as_ref();
    let runner = |cell: &SweepCell, graph: &DiGraph, seed: u64| -> TrialResult {
        let threads = sweep_ref.run_threads();
        match plan_ref.and_then(|p| p.open(cell, seed, "v2")) {
            Some(mut sink) => {
                let trial = scale_trial_traced(cell, graph, seed, threads, &mut sink);
                if let Err(e) = sink.finish(trial.success) {
                    eprintln!("warning: e18 trace footer write failed: {e}");
                }
                trial
            }
            None => scale_trial(cell, graph, seed, threads),
        }
    };
    let mut results = Vec::with_capacity(sweep.cells().len());
    let mut wall_per_trial = Vec::with_capacity(sweep.cells().len());
    for i in 0..sweep.cells().len() {
        let cell = &sweep.cells()[i];
        let start = std::time::Instant::now();
        results.push(sweep.run_cell(i, &runner));
        let secs = start.elapsed().as_secs_f64();
        wall_per_trial.push(secs / trials as f64);
        // Progress to stderr: big cells run for minutes, and a silent
        // harness is indistinguishable from a hung one.
        eprintln!(
            "e18: {}/{} {} {} n=2^{} done in {:.1}s ({} trials)",
            i + 1,
            sweep.cells().len(),
            cell.family.label(),
            cell.algorithm,
            cell.n.trailing_zeros(),
            secs,
            trials
        );
    }
    let sweep_report = sweep.report(&results);

    for family in [GraphFamily::GnpDirected, GraphFamily::Geometric] {
        let mut t = TextTable::new(&[
            "algorithm",
            "n",
            "success",
            "rounds (mean)",
            "messages (mean)",
            "msgs/node",
            "max msgs/node",
            "wall s/trial",
        ]);
        for (cell, &wall) in sweep_report.cells.iter().zip(&wall_per_trial) {
            if cell.cell.family != family {
                continue;
            }
            let rounds = cell.rounds.as_ref().map_or(f64::NAN, |s| s.mean);
            let msgs = cell
                .total_transmissions
                .as_ref()
                .map_or(f64::NAN, |s| s.mean);
            t.row(&[
                cell.cell.algorithm.clone(),
                format!("2^{}", cell.cell.n.trailing_zeros()),
                format!("{}/{}", cell.successes, cell.trials),
                format!("{rounds:.1}"),
                format!("{msgs:.0}"),
                format!(
                    "{:.3}",
                    cell_extra(cell, "msgs_per_node").map_or(f64::NAN, |s| s.mean)
                ),
                format!("{}", cell.max_transmissions_per_node),
                format!("{wall:.2}"),
            ]);
        }
        let story = match family {
            GraphFamily::GnpDirected => {
                "All three complete w.h.p. and rounds grow ≈ logarithmically, \
                 but the energy measures separate: Algorithm 1 keeps its \
                 structural ≤ 1-transmission-per-node invariant (max \
                 msgs/node = 1, the paper's Theorem 2.1 guarantee) at every \
                 n; flood at q = 1/d is cheap in *total* messages but \
                 unlucky nodes transmit several times; Decay pays \
                 Θ((D + log n)·log n)-flavored totals — two orders of \
                 magnitude more — because its nodes never retire."
            }
            _ => {
                "The geometric family is where the paper's §5 caveat bites: \
                 Algorithm 1's phase schedule is tuned to G(n,p)'s \
                 exponential neighborhood growth, and on a spatial topology \
                 (diameter Θ(√(n/d)), not Θ(log n / log d)) its Phase-1/3 \
                 budget ends long before the frontier crosses the torus — \
                 it informs almost nobody (success 0/N with a handful of \
                 messages). Flood and Decay, which keep transmitting until \
                 the message arrives, complete at diameter-driven round \
                 counts instead."
            }
        };
        report.para(format!(
            "Scaling on `{}` (expected degree {DEGREE_C}·ln n, {trials} \
             trials/cell, {threads} fused worker(s) per run — run-level \
             parallelism via `Sweep::with_threads_per_run` + \
             `EngineConfig::with_threads`, decide + scatter fused under \
             the v2 per-node stream contract; results are thread-count \
             independent). {story} Wall-clock is per trial, graph \
             generation included, and is *not* serialized to the sweep \
             JSON (which stays deterministic).",
            family.label()
        ));
        report.table(&t);
    }

    match sweep_report.write_json(&ctx.out_dir) {
        Ok(path) => {
            report.para(format!(
                "Machine-readable sweep report: `{}` — bit-identical across \
                 engine thread counts and regenerable with the default env \
                 (`ADHOC_RADIO_E18_MIN_EXP={min_exp}`, \
                 `ADHOC_RADIO_E18_MAX_EXP={max_exp}`).",
                path.display()
            ));
        }
        Err(e) => eprintln!("warning: cannot write e18 sweep JSON: {e}"),
    }
    if let Some(plan) = &plan {
        report.para(format!(
            "Trace capture was on (`ADHOC_RADIO_TRACE`): {} per-round \
             `.rtrc` recording(s) — the first trial of each cell — under \
             `{}`. Inspect with `cargo run --release -p radio-trace --bin \
             trace -- info/export`, or re-drive the seed through a \
             `ReplayVerifier` to check bit-identical replay. Capture does \
             not perturb the runs: the sweep JSON above is byte-identical \
             with tracing on or off.",
            plan.recorded(),
            plan.dir().display()
        ));
    }
    report
}

/// The two implicit topology backends of the ≥ 2²⁴ rows. Deliberately
/// *not* [`GraphFamily`]: that enum's contract is "materialize a
/// `DiGraph`", which is exactly the O(m) step these backends exist to
/// skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ImplicitFamily {
    /// [`ImplicitGnp`] — O(1) graph memory, rows re-sampled per query.
    Gnp,
    /// [`ImplicitGrid`] — O(n) positions + buckets, neighbors by cell scan.
    Grid,
}

impl ImplicitFamily {
    fn label(self) -> &'static str {
        match self {
            ImplicitFamily::Gnp => "implicit_gnp",
            ImplicitFamily::Grid => "implicit_grid",
        }
    }

    /// Build the backend for one `(n, d)` cell. The grid's position draws
    /// come from a stream derived from `gseed`, so like the Gnp case the
    /// whole topology is a pure function of the seed.
    fn build(self, n: usize, d: f64, gseed: u64) -> ImplicitBackend {
        match self {
            ImplicitFamily::Gnp => {
                ImplicitBackend::Gnp(ImplicitGnp::with_expected_degree(n, d, gseed))
            }
            ImplicitFamily::Grid => ImplicitBackend::Grid(ImplicitGrid::with_expected_degree(
                n,
                d,
                &mut derive_rng(gseed, b"geo", 0),
            )),
        }
    }
}

/// A built implicit topology — monomorphized dispatch into the generic
/// [`trial_body`], one arm per backend.
enum ImplicitBackend {
    Gnp(ImplicitGnp),
    Grid(ImplicitGrid),
}

impl ImplicitBackend {
    fn trial(&self, alg: &str, p_eq: f64, seed: u64, threads: usize) -> TrialResult {
        match self {
            ImplicitBackend::Gnp(g) => trial_body(alg, g, p_eq, seed, threads),
            ImplicitBackend::Grid(g) => trial_body(alg, g, p_eq, seed, threads),
        }
    }
}

/// The implicit-backend scaling section: the same three algorithms and
/// the same [`trial_body`], but the graph is never materialized — the
/// engine queries neighbors through the [`Topology`] trait, so the
/// per-run footprint is O(n) state instead of O(m) CSR. This is what
/// breaks the CSR memory wall: the materializing sweep is hard-capped at
/// `n = 2²⁴` ([`MAX_EXP_BOUND`]); here `n = 2²⁶` at degree `8 ln n`
/// (~10¹⁰ virtual edges) fits because those edges are re-derived on
/// demand.
///
/// Hand-rolled rather than a [`Sweep`] because `SweepCell`'s
/// [`GraphFamily`] is a materializing enum. Seeds are `split_seed`
/// fan-outs of `ctx.seed ^ 0x18` (same root as the CSR sweep, disjoint
/// labels), so the section is a pure function of `(ctx.seed, range)` —
/// the JSON it writes (`sweep_e18_implicit.json`; the CSR sweep's
/// `sweep_e18.json` is untouched) must be bit-identical across thread
/// counts, and the smoke test asserts exactly that.
///
/// Algorithm 1's degree estimate uses the analytic `p = d/n` for both
/// backends: an implicit topology never learns `m`, and by construction
/// both families target expected degree `d` (the grid via the clamped
/// `GeoParams` radius), so the analytic value is what the materialized
/// `m/n²` estimates.
pub fn run_implicit_section(
    ctx: &Ctx,
    report: &mut Report,
    min_exp: u32,
    max_exp: u32,
    threads: usize,
) {
    assert!(min_exp <= max_exp);
    assert!(
        max_exp < usize::BITS,
        "implicit max_exp {max_exp} would overflow the node-count shift"
    );
    let trials = ctx.trials(2, 1);
    let root = ctx.seed ^ 0x18;

    // With more than one worker the table grows a scaling pair: trial 0
    // re-timed at 1 thread, and the resulting speedup. Wall-clock (both
    // columns) stays markdown-only — the JSON below carries neither.
    let scaling = threads > 1;
    let mut headers = vec![
        "backend",
        "algorithm",
        "n",
        "success",
        "rounds (mean)",
        "messages (mean)",
        "msgs/node",
        "max msgs/node",
        "wall s/trial",
    ];
    if scaling {
        headers.push("wall 1t s/trial");
        headers.push("speedup");
    }
    let mut t = TextTable::new(&headers);
    let mut cells_json: Vec<Json> = Vec::new();

    let mut cell_idx: u64 = 0;
    for exp in min_exp..=max_exp {
        let n = 1usize << exp;
        let d = degree(n);
        for family in [ImplicitFamily::Gnp, ImplicitFamily::Grid] {
            // One graph per (n, backend), shared by all three algorithms
            // — mirrors `Sweep::run_cell`'s graph reuse. The seed depends
            // only on (root, exp, backend), not on the algorithm order.
            let gseed = split_seed(root, b"e18i-graph", (u64::from(exp) << 1) | family as u64);
            let graph = family.build(n, d, gseed);
            for alg in ["alg1", "flood", "decay"] {
                let start = std::time::Instant::now();
                let mut results = Vec::with_capacity(trials);
                for trial in 0..trials as u64 {
                    let seed = split_seed(root, b"e18i-trial", (cell_idx << 16) | trial);
                    results.push(graph.trial(alg, d / n as f64, seed, threads));
                }
                let secs = start.elapsed().as_secs_f64();
                let wall = secs / trials as f64;
                // Scaling column: re-time trial 0 serially. The result
                // is discarded (it is bit-identical to the threaded
                // trial 0 by the engine's determinism contract — the
                // cross-thread smoke test pins that); only the clock
                // matters here.
                let wall_1t = scaling.then(|| {
                    let seed = split_seed(root, b"e18i-trial", cell_idx << 16);
                    let start = std::time::Instant::now();
                    let _ = graph.trial(alg, d / n as f64, seed, 1);
                    start.elapsed().as_secs_f64()
                });
                eprintln!(
                    "e18 implicit: {} {} n=2^{exp} done in {secs:.1}s ({trials} trials)",
                    family.label(),
                    alg
                );

                let successes = results.iter().filter(|r| r.success).count();
                let mean = |f: &dyn Fn(&TrialResult) -> f64| {
                    results.iter().map(f).sum::<f64>() / results.len() as f64
                };
                let rounds = mean(&|r| r.rounds as f64);
                let msgs = mean(&|r| r.total_transmissions as f64);
                let max_per_node = results
                    .iter()
                    .map(|r| r.max_transmissions_per_node)
                    .max()
                    .unwrap_or(0);
                let mut row = vec![
                    family.label().to_string(),
                    alg.to_string(),
                    format!("2^{exp}"),
                    format!("{successes}/{trials}"),
                    format!("{rounds:.1}"),
                    format!("{msgs:.0}"),
                    format!("{:.3}", msgs / n as f64),
                    format!("{max_per_node}"),
                    format!("{wall:.2}"),
                ];
                if let Some(w1) = wall_1t {
                    row.push(format!("{w1:.2}"));
                    row.push(format!("{:.2}x", w1 / wall.max(1e-9)));
                }
                t.row(&row);
                // Wall-clock stays out of the JSON so the bytes remain a
                // pure function of (seed, range) — thread-count
                // independent, like the CSR sweep's artifact.
                cells_json.push(Json::obj(vec![
                    ("backend", Json::str(family.label())),
                    ("algorithm", Json::str(alg)),
                    ("n", Json::Num(n as f64)),
                    ("expected_degree", Json::Num(d)),
                    ("trials", Json::Num(trials as f64)),
                    ("successes", Json::Num(successes as f64)),
                    ("rounds_mean", Json::Num(rounds)),
                    ("transmissions_mean", Json::Num(msgs)),
                    ("msgs_per_node_mean", Json::Num(msgs / n as f64)),
                    (
                        "max_transmissions_per_node",
                        Json::Num(f64::from(max_per_node)),
                    ),
                ]));
                cell_idx += 1;
            }
        }
    }

    report.para(format!(
        "**Implicit backends (no CSR):** the same three algorithms at \
         `n = 2^{min_exp} … 2^{max_exp}` on `implicit_gnp` (O(1) graph \
         memory, rows re-sampled per query from per-row seeded streams) \
         and `implicit_grid` (O(n) positions, neighbors by torus cell \
         scan), expected degree {DEGREE_C}·ln n, {trials} trial(s)/cell, \
         {threads} fused worker(s) per run. The materializing sweep \
         above is hard-capped at n = 2²⁴ by the CSR prealloc/offset \
         budget; these rows have no stored edges at all, so the same \
         engine and the same trial code keep scaling (at an \
         O(degree)-per-query regeneration cost). Results remain \
         bit-identical across thread counts: rows are pure functions of \
         the backend value, so every worker sees the same neighbor sets."
    ));
    if scaling {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        report.para(format!(
            "The scatter here takes the engine's **transmitter-sharded** \
             parallel path (picked by the `Auto` plan from the backends' \
             `RangeQueryCost::FullRowReplay` hint): each worker generates \
             its shard's rows exactly once and a deterministic \
             receiver-keyed merge reproduces the serial outcome. The \
             `wall 1t` column re-times the first trial of each cell with \
             one worker; `speedup` is `wall 1t / wall s/trial`. Recorded \
             on a {cores}-core host with {threads} worker(s) per run — \
             on a single core the sharded fan-out can only cost (spawn + \
             merge overhead, speedup ≤ 1); the ≥ 3× bar lives in \
             `BENCH_baseline.json`'s provisional multi-core profile and \
             the `--ignored` acceptance test."
        ));
    }
    report.table(&t);

    let json = Json::obj(vec![
        ("name", Json::str("e18_implicit")),
        ("seed", Json::Num(ctx.seed as f64)),
        ("min_exp", Json::Num(f64::from(min_exp))),
        ("max_exp", Json::Num(f64::from(max_exp))),
        ("cells", Json::Arr(cells_json)),
    ]);
    let path = ctx.out_dir.join("sweep_e18_implicit.json");
    match std::fs::create_dir_all(&ctx.out_dir)
        .and_then(|()| std::fs::write(&path, json.to_string_pretty()))
    {
        Ok(()) => {
            report.para(format!(
                "Machine-readable implicit-backend report: `{}` — \
                 bit-identical across engine thread counts; the CSR \
                 sweep's `sweep_e18.json` is not touched by this section.",
                path.display()
            ));
        }
        Err(e) => eprintln!("warning: cannot write e18 implicit JSON: {e}"),
    }
}

/// Largest accepted `log₂ n`: at the experiment's degree 8·ln n, a
/// `n = 2²⁵` graph already has ~4.7·10⁹ expected edges — past the CSR
/// `u32` offset budget (and tens of GB of edge list) — so runs beyond
/// 2²⁴ are guaranteed to abort after hours of generation. The guard also
/// keeps an absurd value (say 64) from shift-overflowing into a silent
/// 1-node "scaling" run.
const MAX_EXP_BOUND: usize = 24;

/// Largest accepted `log₂ n` for the **implicit** section: no CSR, so
/// the binding constraints are the O(n) per-run state (bit sets,
/// positions for the grid backend — ~1 GiB at 2²⁶) and wall-clock, not
/// edge memory.
const IMPLICIT_MAX_EXP_BOUND: usize = 26;

pub fn run(ctx: &Ctx) -> Report {
    // Range-check in usize before narrowing, so an out-of-range value
    // fails the assert instead of truncating into it.
    let min_exp = env_usize("ADHOC_RADIO_E18_MIN_EXP", 18);
    let max_exp = env_usize("ADHOC_RADIO_E18_MAX_EXP", 20);
    assert!(
        (4..=MAX_EXP_BOUND).contains(&min_exp) && (4..=MAX_EXP_BOUND).contains(&max_exp),
        "ADHOC_RADIO_E18_MIN_EXP/ADHOC_RADIO_E18_MAX_EXP must lie in 4..={MAX_EXP_BOUND} \
         (got {min_exp}/{max_exp})"
    );
    assert!(
        min_exp <= max_exp,
        "ADHOC_RADIO_E18_MIN_EXP ({min_exp}) must be ≤ ADHOC_RADIO_E18_MAX_EXP ({max_exp})"
    );
    let (min_exp, max_exp) = (min_exp as u32, max_exp as u32);
    let threads = env_usize(
        "ADHOC_RADIO_E18_THREADS",
        std::thread::available_parallelism().map_or(1, |p| p.get().min(8)),
    );
    let trace_dir = std::env::var_os("ADHOC_RADIO_TRACE").map(std::path::PathBuf::from);
    let mut report = run_scaled(ctx, min_exp, max_exp, threads.max(1), trace_dir.as_deref());

    // The implicit-backend rows. Defaults keep the whole experiment
    // regenerable in reasonable wall-clock; raise
    // ADHOC_RADIO_E18_IMPLICIT_MAX_EXP to 24–26 for the past-the-wall
    // columns, or set ADHOC_RADIO_E18_IMPLICIT=0 to skip the section.
    if env_usize("ADHOC_RADIO_E18_IMPLICIT", 1) != 0 {
        let imin = env_usize("ADHOC_RADIO_E18_IMPLICIT_MIN_EXP", 20);
        let imax = env_usize("ADHOC_RADIO_E18_IMPLICIT_MAX_EXP", 21);
        assert!(
            (4..=IMPLICIT_MAX_EXP_BOUND).contains(&imin)
                && (4..=IMPLICIT_MAX_EXP_BOUND).contains(&imax),
            "ADHOC_RADIO_E18_IMPLICIT_MIN_EXP/MAX_EXP must lie in \
             4..={IMPLICIT_MAX_EXP_BOUND} (got {imin}/{imax})"
        );
        assert!(
            imin <= imax,
            "ADHOC_RADIO_E18_IMPLICIT_MIN_EXP ({imin}) must be ≤ \
             ADHOC_RADIO_E18_IMPLICIT_MAX_EXP ({imax})"
        );
        run_implicit_section(ctx, &mut report, imin as u32, imax as u32, threads.max(1));
    }
    report
}

/// The implicit-backend section as its own experiment (`e18i`): the
/// committed scaling artifact for the transmitter-sharded scatter
/// without re-running E18's CSR sweeps (whose committed JSON must stay
/// byte-stable). Defaults are sized so `results/e18_implicit.md` +
/// `sweep_e18_implicit.json` regenerate in minutes on one core; the
/// same `ADHOC_RADIO_E18_IMPLICIT_{MIN,MAX}_EXP` /
/// `ADHOC_RADIO_E18_THREADS` knobs scale it up. With > 1 worker the
/// table carries the `wall 1t` / `speedup` pair — the committed view of
/// what the sharded path buys (or costs, on a single core).
pub fn run_implicit_only(ctx: &Ctx) -> Report {
    let imin = env_usize("ADHOC_RADIO_E18_IMPLICIT_MIN_EXP", 14);
    let imax = env_usize("ADHOC_RADIO_E18_IMPLICIT_MAX_EXP", 16);
    assert!(
        (4..=IMPLICIT_MAX_EXP_BOUND).contains(&imin)
            && (4..=IMPLICIT_MAX_EXP_BOUND).contains(&imax),
        "ADHOC_RADIO_E18_IMPLICIT_MIN_EXP/MAX_EXP must lie in \
         4..={IMPLICIT_MAX_EXP_BOUND} (got {imin}/{imax})"
    );
    assert!(
        imin <= imax,
        "ADHOC_RADIO_E18_IMPLICIT_MIN_EXP ({imin}) must be ≤ \
         ADHOC_RADIO_E18_IMPLICIT_MAX_EXP ({imax})"
    );
    let threads = env_usize(
        "ADHOC_RADIO_E18_THREADS",
        std::thread::available_parallelism().map_or(1, |p| p.get().min(8)),
    );
    let mut report = Report::new(
        "e18_implicit",
        "E18i — implicit backends: transmitter-sharded scatter scaling",
    );
    run_implicit_section(ctx, &mut report, imin as u32, imax as u32, threads.max(1));
    report
}
