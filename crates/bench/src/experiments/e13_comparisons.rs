//! **E13 — §1.3 head-to-head comparisons.** The paper's "New results"
//! table, measured: Algorithm 1 vs Elsässer–Gasieniec on `G(n,p)`;
//! Algorithm 3 vs Czumaj–Rytter vs Decay on a known-`D` network; gossip
//! vs the naive always-transmit strawman.

use crate::{Ctx, Report};
use radio_core::broadcast::cr::{run_cr_broadcast, CrBroadcastConfig};
use radio_core::broadcast::decay::{run_decay_broadcast, DecayConfig};
use radio_core::broadcast::ee_general::{run_general_broadcast, GeneralBroadcastConfig};
use radio_core::broadcast::ee_random::{run_ee_broadcast, EeBroadcastConfig};
use radio_core::broadcast::eg::{run_eg_broadcast, EgBroadcastConfig};
use radio_core::params::lambda;
use radio_graph::analysis::diameter_from;
use radio_graph::generate::{caterpillar, gnp_directed};
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{derive_rng, TextTable};

/// Per-seed runner: (all_informed, time, mean msgs/node, max msgs/node).
type AlgRunner<'a> = Box<dyn Fn(u64) -> (bool, Option<u64>, f64, u32) + Sync + 'a>;

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e13", "E13 — §1.3 comparison tables");
    let trials = ctx.trials(12, 5);

    // --- Random networks: Algorithm 1 vs Elsässer–Gasieniec --------------
    let mut t1 = TextTable::new(&[
        "n",
        "d",
        "D̂",
        "algorithm",
        "success",
        "bcast time",
        "max msgs/node",
        "total msgs",
    ]);
    for (n, d_target) in [(4096usize, 48.0), (16384, 36.0)] {
        let p = d_target / n as f64;
        let a_cfg = EeBroadcastConfig::for_gnp(n, p);
        let e_cfg = EgBroadcastConfig::for_gnp(n, p);
        let outs = parallel_trials(trials, ctx.seed ^ n as u64, |_, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"e13-g", 0));
            let a = run_ee_broadcast(&g, 0, &a_cfg, seed);
            let e = run_eg_broadcast(&g, 0, &e_cfg, seed);
            (
                (
                    a.all_informed,
                    a.broadcast_time,
                    a.max_msgs_per_node(),
                    a.metrics.total_transmissions(),
                ),
                (
                    e.all_informed,
                    e.broadcast_time,
                    e.max_msgs_per_node(),
                    e.metrics.total_transmissions(),
                ),
            )
        });
        for (name, sel) in [("Alg 1 (paper)", 0usize), ("Elsässer–Gasieniec", 1)] {
            let rows: Vec<(bool, Option<u64>, u32, u64)> = outs
                .iter()
                .map(|(a, e)| if sel == 0 { *a } else { *e })
                .collect();
            let succ = rows.iter().filter(|r| r.0).count();
            let times: Vec<f64> = rows.iter().filter_map(|r| r.1.map(|t| t as f64)).collect();
            let max_msgs = rows.iter().map(|r| r.2).max().unwrap_or(0);
            let totals: Vec<f64> = rows.iter().map(|r| r.3 as f64).collect();
            let ts = SummaryStats::from_slice(&times);
            let tot = SummaryStats::from_slice(&totals);
            t1.row(&[
                n.to_string(),
                format!("{d_target:.0}"),
                e_cfg.d_hat().to_string(),
                name.to_string(),
                format!("{succ}/{trials}"),
                format!("{:.0}", ts.mean),
                max_msgs.to_string(),
                format!("{:.0}", tot.mean),
            ]);
        }
    }
    report.para(
        "Random networks (both algorithms know n and p). Paper claim: same O(log n) \
         time; Algorithm 1 transmits at most once per node while EG retransmits \
         every Phase-1 round (max msgs ≈ D̂−1 at the source side).",
    );
    report.table(&t1);

    // --- General networks: Alg 3 vs CR vs Decay --------------------------
    let g = caterpillar(96, 20); // n = 2016, D = 97
    let n = g.n();
    let d = diameter_from(&g, 0).expect("connected");
    let lam = lambda(n, d);
    let mut t2 = TextTable::new(&[
        "algorithm",
        "success",
        "bcast time",
        "mean msgs/node",
        "max msgs/node",
        "msgs vs Alg3",
    ]);
    let mut base_msgs = 0.0;
    let algs: Vec<(&str, AlgRunner<'_>)> = vec![
        (
            "Alg 3 (α)",
            Box::new(|seed| {
                let o = run_general_broadcast(&g, 0, &GeneralBroadcastConfig::new(n, d), seed);
                (
                    o.all_informed,
                    o.broadcast_time,
                    o.mean_msgs_per_node(),
                    o.max_msgs_per_node(),
                )
            }),
        ),
        (
            "CR (α') + stop",
            Box::new(|seed| {
                let o = run_cr_broadcast(&g, 0, &CrBroadcastConfig::new(n, d), seed);
                (
                    o.all_informed,
                    o.broadcast_time,
                    o.mean_msgs_per_node(),
                    o.max_msgs_per_node(),
                )
            }),
        ),
        (
            "Decay",
            Box::new(|seed| {
                let o = run_decay_broadcast(&g, 0, &DecayConfig::new(n, d), seed);
                (
                    o.all_informed,
                    o.broadcast_time,
                    o.mean_msgs_per_node(),
                    o.max_msgs_per_node(),
                )
            }),
        ),
    ];
    for (name, runner) in &algs {
        let outs = parallel_trials(trials, ctx.seed ^ name.len() as u64, |_, seed| runner(seed));
        let succ = outs.iter().filter(|o| o.0).count();
        let times: Vec<f64> = outs.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
        let msgs: Vec<f64> = outs.iter().map(|o| o.2).collect();
        let maxs: Vec<f64> = outs.iter().map(|o| o.3 as f64).collect();
        let ts = SummaryStats::from_slice(&times);
        let ms = SummaryStats::from_slice(&msgs);
        let mx = SummaryStats::from_slice(&maxs);
        if base_msgs == 0.0 {
            base_msgs = ms.mean;
        }
        t2.row(&[
            name.to_string(),
            format!("{succ}/{trials}"),
            format!("{:.0}", ts.mean),
            format!("{:.1}", ms.mean),
            format!("{:.0}", mx.mean),
            format!("{:.1}×", ms.mean / base_msgs),
        ]);
    }
    report.para(format!(
        "General network: caterpillar n = {n}, D = {d}, λ = {lam:.1}. Paper claim: \
         CR pays ≈ λ× ({lam:.1}×) Algorithm 3's messages at comparable time; \
         Decay pays Θ(D)-scale energy."
    ));
    report.table(&t2);
    report
}
