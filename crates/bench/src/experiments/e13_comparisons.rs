//! **E13 — §1.3 head-to-head comparisons.** The paper's "New results"
//! table, measured: Algorithm 1 vs Elsässer–Gasieniec on `G(n,p)`;
//! Algorithm 3 vs Czumaj–Rytter vs Decay on a known-`D` network; gossip
//! vs the naive always-transmit strawman.
//!
//! Ported to the `radio-sim` sweep API as two sweeps — one over random
//! networks (`algorithm × (n, p)` grid cells), one over the caterpillar
//! general network — with the algorithm label dispatched inside the
//! runner. JSON lands in `results/sweep_e13_random.json` and
//! `results/sweep_e13_general.json`.

use crate::common::{broadcast_trial, cell_extra, sweep_note};
use crate::{Ctx, Report};
use radio_core::broadcast::cr::{run_cr_broadcast, CrBroadcastConfig};
use radio_core::broadcast::decay::{run_decay_broadcast, DecayConfig};
use radio_core::broadcast::ee_general::{run_general_broadcast, GeneralBroadcastConfig};
use radio_core::broadcast::ee_random::{run_ee_broadcast, EeBroadcastConfig};
use radio_core::broadcast::eg::{run_eg_broadcast, EgBroadcastConfig};
use radio_core::params::lambda;
use radio_graph::analysis::diameter_from;
use radio_graph::generate::caterpillar;
use radio_graph::GraphFamily;
use radio_sim::{Sweep, SweepCell};
use radio_util::TextTable;

const CATERPILLAR_LEGS: usize = 20;

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e13", "E13 — §1.3 comparison tables");
    let trials = ctx.trials(12, 5);

    // --- Random networks: Algorithm 1 vs Elsässer–Gasieniec --------------
    let grid = [(4096usize, 48.0), (16384, 36.0)];
    let mut sw_random = Sweep::new("e13_random", ctx.seed, trials);
    for &(n, d_target) in &grid {
        for alg in ["ee_broadcast", "eg_broadcast"] {
            sw_random.push(SweepCell::new(
                alg,
                GraphFamily::GnpDirected,
                n,
                d_target / n as f64,
            ));
        }
    }
    let random_report = sw_random.run(|cell, graph, seed| {
        let out = match cell.algorithm.as_str() {
            "ee_broadcast" => {
                run_ee_broadcast(graph, 0, &EeBroadcastConfig::for_gnp(cell.n, cell.p), seed)
            }
            "eg_broadcast" => {
                run_eg_broadcast(graph, 0, &EgBroadcastConfig::for_gnp(cell.n, cell.p), seed)
            }
            other => unreachable!("unknown algorithm {other}"),
        };
        broadcast_trial(&out)
    });

    let mut t1 = TextTable::new(&[
        "n",
        "d",
        "D̂",
        "algorithm",
        "success",
        "bcast time",
        "max msgs/node",
        "total msgs",
    ]);
    for cell in &random_report.cells {
        let (n, p) = (cell.cell.n, cell.cell.p);
        let name = match cell.cell.algorithm.as_str() {
            "ee_broadcast" => "Alg 1 (paper)",
            _ => "Elsässer–Gasieniec",
        };
        t1.row(&[
            n.to_string(),
            format!("{:.0}", n as f64 * p),
            EgBroadcastConfig::for_gnp(n, p).d_hat().to_string(),
            name.to_string(),
            format!("{}/{}", cell.successes, cell.trials),
            format!(
                "{:.0}",
                cell_extra(cell, "bcast_time").map_or(0.0, |s| s.mean)
            ),
            cell.max_transmissions_per_node.to_string(),
            format!("{:.0}", cell.total_transmissions.map_or(0.0, |s| s.mean)),
        ]);
    }
    report.para(
        "Random networks (both algorithms know n and p). Paper claim: same O(log n) \
         time; Algorithm 1 transmits at most once per node while EG retransmits \
         every Phase-1 round (max msgs ≈ D̂−1 at the source side).",
    );
    report.table(&t1);

    // --- General networks: Alg 3 vs CR vs Decay --------------------------
    // The caterpillar is deterministic, so every trial sees the same
    // graph; its diameter is recomputed per trial inside the runner (a
    // 2k-node BFS — negligible next to the broadcast run).
    let g = caterpillar(96, CATERPILLAR_LEGS); // n = 2016, D = 97
    let n = g.n();
    let d = diameter_from(&g, 0).expect("connected");
    let lam = lambda(n, d);

    let mut sw_general = Sweep::new("e13_general", ctx.seed ^ 0x13, trials);
    for alg in ["alg3_alpha", "cr_alpha_stop", "decay"] {
        sw_general.push(SweepCell::new(
            alg,
            GraphFamily::Caterpillar {
                legs: CATERPILLAR_LEGS,
            },
            n,
            0.0,
        ));
    }
    let general_report = sw_general.run(|cell, graph, seed| {
        let n = graph.n();
        let d = diameter_from(graph, 0).expect("caterpillar is connected");
        let out = match cell.algorithm.as_str() {
            "alg3_alpha" => {
                run_general_broadcast(graph, 0, &GeneralBroadcastConfig::new(n, d), seed)
            }
            "cr_alpha_stop" => run_cr_broadcast(graph, 0, &CrBroadcastConfig::new(n, d), seed),
            "decay" => run_decay_broadcast(graph, 0, &DecayConfig::new(n, d), seed),
            other => unreachable!("unknown algorithm {other}"),
        };
        let mean_msgs = out.mean_msgs_per_node();
        let max_msgs = out.max_msgs_per_node();
        broadcast_trial(&out)
            .extra("mean_msgs_per_node", mean_msgs)
            .extra("max_msgs_per_node", f64::from(max_msgs))
    });

    let mut t2 = TextTable::new(&[
        "algorithm",
        "success",
        "bcast time",
        "mean msgs/node",
        "max msgs/node",
        "msgs vs Alg3",
    ]);
    let base_msgs =
        cell_extra(&general_report.cells[0], "mean_msgs_per_node").map_or(1.0, |s| s.mean);
    for cell in &general_report.cells {
        let name = match cell.cell.algorithm.as_str() {
            "alg3_alpha" => "Alg 3 (α)",
            "cr_alpha_stop" => "CR (α') + stop",
            _ => "Decay",
        };
        let mean_msgs = cell_extra(cell, "mean_msgs_per_node").map_or(0.0, |s| s.mean);
        t2.row(&[
            name.to_string(),
            format!("{}/{}", cell.successes, cell.trials),
            format!(
                "{:.0}",
                cell_extra(cell, "bcast_time").map_or(0.0, |s| s.mean)
            ),
            format!("{mean_msgs:.1}"),
            format!(
                "{:.0}",
                cell_extra(cell, "max_msgs_per_node").map_or(0.0, |s| s.mean)
            ),
            format!("{:.1}×", mean_msgs / base_msgs),
        ]);
    }
    report.para(format!(
        "General network: caterpillar n = {n}, D = {d}, λ = {lam:.1}. Paper claim: \
         CR pays ≈ λ× ({lam:.1}×) Algorithm 3's messages at comparable time; \
         Decay pays Θ(D)-scale energy."
    ));
    report.table(&t2);

    for sweep_report in [&random_report, &general_report] {
        match sweep_report.write_json(&ctx.out_dir) {
            Ok(path) => {
                report.para(sweep_note(&path));
            }
            Err(e) => eprintln!("warning: cannot write e13 sweep JSON: {e}"),
        }
    }
    report
}
