//! **E1 — Theorem 2.1.** Algorithm 1 on directed `G(n,p)`:
//! time `O(log n)`, ≤ 1 transmission per node, total `O(log n / p)`.
//!
//! Ported to the `radio-sim` sweep API: the row list becomes sweep
//! cells, the trial loop becomes the sweep's rayon fan-out, and the
//! aggregates land both in this markdown table and in
//! `results/sweep_e1.json`.

use crate::common::{broadcast_trial, cell_extra, informed_frac, pm, sweep_note};
use crate::{Ctx, Report};
use radio_core::broadcast::ee_random::{run_ee_broadcast, EeBroadcastConfig};
use radio_graph::GraphFamily;
use radio_sim::{Sweep, SweepCell};
use radio_util::TextTable;

struct Row {
    n: usize,
    regime: &'static str,
    p: f64,
}

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e1",
        "E1 — Theorem 2.1: Algorithm 1 on G(n,p) (time, energy, ≤1 msg/node)",
    );
    let trials = ctx.trials(30, 8);

    let mut rows = Vec::new();
    for n in [1024usize, 2048, 4096, 8192, 16384] {
        rows.push(Row {
            n,
            regime: "sparse δ=6",
            p: 6.0 * (n as f64).ln() / n as f64,
        });
    }
    // T = 3 sits at the d³ = n saturation boundary: Phase 1's third round
    // already burns the collision budget and Phase 2 under-activates
    // (A₀ ≈ 10 < ln n), stranding a handful of nodes per run under the
    // literal Phase-2 reading. E14(a) shows the lenient reading repairs it.
    if ctx.scale >= 0.9 {
        rows.push(Row {
            n: 1 << 18,
            regime: "T=3 boundary",
            p: 64.0 / (1 << 18) as f64,
        });
    }
    // Below the δ threshold: d = n^{1/3} ≈ 2·ln n at this size. The paper
    // requires δ "sufficiently large"; this row shows what breaks first
    // (Phase 2 under-activates, stranding Θ(e^{−A₀}·n) nodes).
    rows.push(Row {
        n: 4096,
        regime: "below-δ (d=16)",
        p: 16.0 / 4096.0,
    });
    for n in [2048usize, 8192] {
        // Dense branch (no Phase 2): p = n^{-1/3} > n^{-2/5}.
        rows.push(Row {
            n,
            regime: "dense p=n^(-1/3)",
            p: (n as f64).powf(-1.0 / 3.0),
        });
    }

    let mut sweep = Sweep::new("e1", ctx.seed, trials);
    for row in &rows {
        sweep.push(SweepCell::new(
            "ee_broadcast",
            GraphFamily::GnpDirected,
            row.n,
            row.p,
        ));
    }
    let sweep_report = sweep.run(|cell, graph, seed| {
        let cfg = EeBroadcastConfig::for_gnp(cell.n, cell.p);
        broadcast_trial(&run_ee_broadcast(graph, 0, &cfg, seed))
    });

    let mut table = TextTable::new(&[
        "n",
        "regime",
        "d=np",
        "T",
        "success",
        "informed frac",
        "bcast time",
        "time/log2 n",
        "max msg/node",
        "total msgs",
        "msgs·p/ln n",
    ]);

    for (row, cell) in rows.iter().zip(&sweep_report.cells) {
        let cfg = EeBroadcastConfig::for_gnp(row.n, row.p);
        let log2n = (row.n as f64).log2();
        let (time_str, ratio_str) = match cell_extra(cell, "bcast_time") {
            Some(t_stats) => (pm(t_stats), format!("{:.2}", t_stats.mean / log2n)),
            None => ("—".to_string(), "—".to_string()),
        };
        let total_mean = cell.total_transmissions.map_or(0.0, |s| s.mean);
        table.row(&[
            row.n.to_string(),
            row.regime.to_string(),
            format!("{:.0}", row.n as f64 * row.p),
            cfg.params.t.to_string(),
            format!("{}/{}", cell.successes, cell.trials),
            format!("{:.5}", informed_frac(cell)),
            time_str,
            ratio_str,
            cell.max_transmissions_per_node.to_string(),
            format!("{total_mean:.0}"),
            format!("{:.2}", total_mean * row.p / (row.n as f64).ln()),
        ]);
    }

    report.para(format!(
        "{} trials per row; `success` counts runs informing all n nodes (failures at \
         these sizes strand 1–2 nodes with no Phase-2-activated in-neighbour, an \
         e^(−A₀)·n finite-size effect). Paper claims: max msg/node ≤ 1 (always), \
         time/log₂ n bounded (O(log n)), msgs·p/ln n bounded (total O(log n/p)).",
        trials
    ));
    report.table(&table);
    match sweep_report.write_json(&ctx.out_dir) {
        Ok(path) => {
            report.para(sweep_note(&path));
        }
        Err(e) => eprintln!("warning: cannot write e1 sweep JSON: {e}"),
    }
    report
}
