//! **E1 — Theorem 2.1.** Algorithm 1 on directed `G(n,p)`:
//! time `O(log n)`, ≤ 1 transmission per node, total `O(log n / p)`.

use crate::{common::pm, Ctx, Report};
use radio_core::broadcast::ee_random::{run_ee_broadcast, EeBroadcastConfig};
use radio_graph::generate::gnp_directed;
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{derive_rng, TextTable};

struct Row {
    n: usize,
    regime: &'static str,
    p: f64,
}

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e1",
        "E1 — Theorem 2.1: Algorithm 1 on G(n,p) (time, energy, ≤1 msg/node)",
    );
    let trials = ctx.trials(30, 8);

    let mut rows = Vec::new();
    for n in [1024usize, 2048, 4096, 8192, 16384] {
        rows.push(Row {
            n,
            regime: "sparse δ=6",
            p: 6.0 * (n as f64).ln() / n as f64,
        });
    }
    // T = 3 sits at the d³ = n saturation boundary: Phase 1's third round
    // already burns the collision budget and Phase 2 under-activates
    // (A₀ ≈ 10 < ln n), stranding a handful of nodes per run under the
    // literal Phase-2 reading. E14(a) shows the lenient reading repairs it.
    if ctx.scale >= 0.9 {
        rows.push(Row {
            n: 1 << 18,
            regime: "T=3 boundary",
            p: 64.0 / (1 << 18) as f64,
        });
    }
    // Below the δ threshold: d = n^{1/3} ≈ 2·ln n at this size. The paper
    // requires δ "sufficiently large"; this row shows what breaks first
    // (Phase 2 under-activates, stranding Θ(e^{−A₀}·n) nodes).
    rows.push(Row {
        n: 4096,
        regime: "below-δ (d=16)",
        p: 16.0 / 4096.0,
    });
    for n in [2048usize, 8192] {
        // Dense branch (no Phase 2): p = n^{-1/3} > n^{-2/5}.
        rows.push(Row {
            n,
            regime: "dense p=n^(-1/3)",
            p: (n as f64).powf(-1.0 / 3.0),
        });
    }

    let mut table = TextTable::new(&[
        "n",
        "regime",
        "d=np",
        "T",
        "success",
        "informed frac",
        "bcast time",
        "time/log2 n",
        "max msg/node",
        "total msgs",
        "msgs·p/ln n",
    ]);

    for row in &rows {
        let cfg = EeBroadcastConfig::for_gnp(row.n, row.p);
        let outs = parallel_trials(trials, ctx.seed ^ row.n as u64, |_, seed| {
            let g = gnp_directed(row.n, row.p, &mut derive_rng(seed, b"e1-g", 0));
            let out = run_ee_broadcast(&g, 0, &cfg, seed);
            (
                out.all_informed,
                out.broadcast_time,
                out.max_msgs_per_node(),
                out.metrics.total_transmissions(),
                out.informed,
            )
        });
        let successes = outs.iter().filter(|o| o.0).count();
        let times: Vec<f64> = outs.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
        let max_msg = outs.iter().map(|o| o.2).max().unwrap_or(0);
        let totals: Vec<f64> = outs.iter().map(|o| o.3 as f64).collect();
        let informed_frac: Vec<f64> = outs.iter().map(|o| o.4 as f64 / row.n as f64).collect();
        let total_stats = SummaryStats::from_slice(&totals);
        let log2n = (row.n as f64).log2();
        let (time_str, ratio_str) = if times.is_empty() {
            ("—".to_string(), "—".to_string())
        } else {
            let t_stats = SummaryStats::from_slice(&times);
            (pm(&t_stats), format!("{:.2}", t_stats.mean / log2n))
        };
        table.row(&[
            row.n.to_string(),
            row.regime.to_string(),
            format!("{:.0}", row.n as f64 * row.p),
            cfg.params.t.to_string(),
            format!("{successes}/{trials}"),
            format!("{:.5}", radio_stats::mean(&informed_frac)),
            time_str,
            ratio_str,
            max_msg.to_string(),
            format!("{:.0}", total_stats.mean),
            format!("{:.2}", total_stats.mean * row.p / (row.n as f64).ln()),
        ]);
    }

    report.para(format!(
        "{} trials per row; `success` counts runs informing all n nodes (failures at \
         these sizes strand 1–2 nodes with no Phase-2-activated in-neighbour, an \
         e^(−A₀)·n finite-size effect). Paper claims: max msg/node ≤ 1 (always), \
         time/log₂ n bounded (O(log n)), msgs·p/ln n bounded (total O(log n/p)).",
        trials
    ));
    report.table(&table);
    report
}
