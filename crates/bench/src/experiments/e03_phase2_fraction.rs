//! **E3 — Lemma 2.5.** After Phase 2 (round `T+1`), a constant fraction
//! of the network is active (`|U_{T+2}| > c·n` w.h.p., `p ≤ n^{−2/5}`).

use crate::{Ctx, Report};
use radio_core::broadcast::ee_random::{run_ee_broadcast_traced, EeBroadcastConfig};
use radio_graph::generate::gnp_directed;
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{derive_rng, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e3",
        "E3 — Lemma 2.5: fraction of nodes activated by the end of Phase 2",
    );
    let trials = ctx.trials(20, 6);

    let mut table = TextTable::new(&["n", "d", "T", "active after Phase 2 / n", "min over trials"]);

    for (n, delta) in [(2048usize, 6.0), (8192, 6.0), (8192, 10.0), (32768, 8.0)] {
        let p = delta * (n as f64).ln() / n as f64;
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        if !cfg.params.use_phase2 {
            continue;
        }
        let t_phase1 = cfg.params.t as usize;
        let fracs = parallel_trials(trials, ctx.seed ^ (n as u64 * delta as u64), |_, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"e3-g", 0));
            let out = run_ee_broadcast_traced(&g, 0, &cfg, seed);
            let series = out.trace.expect("traced").active_series();
            // active_series[t_phase1] = |U_{T+2}| (after the Phase-2 round).
            series.get(t_phase1).copied().unwrap_or(0) as f64 / n as f64
        });
        let st = SummaryStats::from_slice(&fracs);
        table.row(&[
            n.to_string(),
            format!("{:.0}", cfg.params.d),
            cfg.params.t.to_string(),
            format!("{:.3} ± {:.3}", st.mean, st.ci95_half_width()),
            format!("{:.3}", st.min),
        ]);
    }

    report.para(format!(
        "{trials} traced runs per row (sparse regime only — Phase 2 exists only for \
         p ≤ n^(−2/5)). Lemma 2.5 asserts a constant fraction; measured fractions \
         sit near 1/e·(1−1/e)-style constants ≈ 0.2–0.4 and are stable in n, \
         i.e. genuinely Θ(n)."
    ));
    report.table(&table);
    report
}
