//! **E5 — Lemma 3.1.** The diameter of directed `G(n,p)` is
//! `⌈log n / log d⌉` w.h.p. for `p > δ log n / n`.
//!
//! Ported to the `radio-sim` sweep API. This experiment runs no
//! protocol — the runner just measures each sampled graph — which
//! exercises the sweep's raw-results path ([`Sweep::collect`]): the
//! histogram needs per-trial values, the JSON gets the aggregates.

use crate::common::sweep_note;
use crate::{Ctx, Report};
use radio_graph::analysis::diameter_from;
use radio_graph::GraphFamily;
use radio_sim::{Sweep, SweepCell, TrialResult};
use radio_util::TextTable;

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e5", "E5 — Lemma 3.1: diameter of G(n,p) = ⌈log n/log d⌉");
    let trials = ctx.trials(25, 10);

    let grid = [
        (1024usize, 16.0),
        (4096, 16.0),
        (4096, 64.0),
        (16384, 26.0),
        (16384, 128.0),
        (65536, 41.0),
    ];
    let mut sweep = Sweep::new("e5", ctx.seed, trials);
    for &(n, d_target) in &grid {
        sweep.push(SweepCell::new(
            "diameter",
            GraphFamily::GnpDirected,
            n,
            d_target / n as f64,
        ));
    }

    let raw = sweep.collect(|_, graph, _| {
        let diam = diameter_from(graph, 0);
        let mut trial = TrialResult {
            completed: true,
            success: diam.is_some(),
            rounds: 0,
            hit_round_cap: false,
            total_transmissions: 0,
            max_transmissions_per_node: 0,
            informed: 0,
            energy: None,
            extras: Vec::new(),
        };
        if let Some(d) = diam {
            trial = trial.extra("diameter", f64::from(d));
        }
        trial
    });
    let sweep_report = sweep.report(&raw);

    let mut table = TextTable::new(&[
        "n",
        "d",
        "predicted ⌈log n/log d⌉",
        "measured diameters (histogram)",
        "hit rate (exact)",
        "hit rate (≤ +1)",
    ]);

    for (&(n, d_target), cell_results) in grid.iter().zip(&raw) {
        let predicted = ((n as f64).log2() / d_target.log2()).ceil() as u32;
        let diams: Vec<u32> = cell_results
            .trials
            .iter()
            .flat_map(|t| t.extras.iter())
            .filter(|(k, _)| k == "diameter")
            .map(|&(_, v)| v as u32)
            .collect();
        let mut hist = std::collections::BTreeMap::new();
        for d in &diams {
            *hist.entry(*d).or_insert(0usize) += 1;
        }
        let exact = diams.iter().filter(|&&d| d == predicted).count();
        let plus_one = diams
            .iter()
            .filter(|&&d| d == predicted || d == predicted + 1)
            .count();
        let hist_str = hist
            .iter()
            .map(|(k, v)| format!("{k}×{v}"))
            .collect::<Vec<_>>()
            .join(" ");
        table.row(&[
            n.to_string(),
            format!("{d_target:.0}"),
            predicted.to_string(),
            hist_str,
            format!("{exact}/{trials}"),
            format!("{plus_one}/{trials}"),
        ]);
    }

    report.para(format!(
        "{trials} sampled graphs per row; diameter = source eccentricity from node 0 \
         (unreachable ⇒ excluded). Measured diameters land at the prediction or one \
         hop above it: the Lemma is stated as (1+o(1))·log n/log d, and at laptop \
         sizes the o(1) term is worth exactly one hop whenever the BFS ball of \
         radius ⌊log n/log d⌋ covers only a modest constant fraction of the graph \
         (δ = d/ln n small). The shape — logarithmic, with the log d denominator — \
         is unambiguous."
    ));
    report.table(&table);
    match sweep_report.write_json(&ctx.out_dir) {
        Ok(path) => {
            report.para(sweep_note(&path));
        }
        Err(e) => eprintln!("warning: cannot write e5 sweep JSON: {e}"),
    }
    report
}
