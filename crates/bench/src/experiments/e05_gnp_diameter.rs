//! **E5 — Lemma 3.1.** The diameter of directed `G(n,p)` is
//! `⌈log n / log d⌉` w.h.p. for `p > δ log n / n`.

use crate::{Ctx, Report};
use radio_graph::analysis::diameter_from;
use radio_graph::generate::gnp_directed;
use radio_sim::parallel_trials;
use radio_util::{derive_rng, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e5", "E5 — Lemma 3.1: diameter of G(n,p) = ⌈log n/log d⌉");
    let trials = ctx.trials(25, 10);

    let mut table = TextTable::new(&[
        "n",
        "d",
        "predicted ⌈log n/log d⌉",
        "measured diameters (histogram)",
        "hit rate (exact)",
        "hit rate (≤ +1)",
    ]);

    for (n, d_target) in [
        (1024usize, 16.0),
        (4096, 16.0),
        (4096, 64.0),
        (16384, 26.0),
        (16384, 128.0),
        (65536, 41.0),
    ] {
        let p = d_target / n as f64;
        let predicted = ((n as f64).log2() / d_target.log2()).ceil() as u32;
        let diams = parallel_trials(
            trials,
            ctx.seed ^ (n as u64 + d_target as u64),
            |_, seed| {
                let g = gnp_directed(n, p, &mut derive_rng(seed, b"e5-g", 0));
                diameter_from(&g, 0)
            },
        );
        let mut hist = std::collections::BTreeMap::new();
        for d in diams.iter().flatten() {
            *hist.entry(*d).or_insert(0usize) += 1;
        }
        let exact = diams.iter().filter(|x| **x == Some(predicted)).count();
        let plus_one = diams
            .iter()
            .filter(|x| {
                x.map(|v| v == predicted || v == predicted + 1)
                    .unwrap_or(false)
            })
            .count();
        let hist_str = hist
            .iter()
            .map(|(k, v)| format!("{k}×{v}"))
            .collect::<Vec<_>>()
            .join(" ");
        table.row(&[
            n.to_string(),
            format!("{d_target:.0}"),
            predicted.to_string(),
            hist_str,
            format!("{exact}/{trials}"),
            format!("{plus_one}/{trials}"),
        ]);
    }

    report.para(format!(
        "{trials} sampled graphs per row; diameter = source eccentricity from node 0 \
         (unreachable ⇒ excluded). Measured diameters land at the prediction or one \
         hop above it: the Lemma is stated as (1+o(1))·log n/log d, and at laptop \
         sizes the o(1) term is worth exactly one hop whenever the BFS ball of \
         radius ⌊log n/log d⌋ covers only a modest constant fraction of the graph \
         (δ = d/ln n small). The shape — logarithmic, with the log d denominator — \
         is unambiguous."
    ));
    report.table(&table);
    report
}
