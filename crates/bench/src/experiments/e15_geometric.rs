//! **E15 — §5 future work.** The paper's algorithms on random geometric
//! graphs: Algorithm 1's phase structure assumes `G(n,p)`-style expansion
//! that unit-disk graphs lack (diameter Θ(1/r), local growth only), so
//! this measures where it degrades and how Algorithm 3 and gossip fare.

use crate::{Ctx, Report};
use radio_core::broadcast::ee_general::{run_general_broadcast, GeneralBroadcastConfig};
use radio_core::broadcast::ee_random::{run_ee_broadcast, EeBroadcastConfig};
use radio_core::gossip::{run_ee_gossip, EeGossipConfig};
use radio_graph::analysis::diameter_from;
use radio_graph::generate::{random_geometric, GeoParams};
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{derive_rng, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e15",
        "E15 — §5 future work: the algorithms on random geometric graphs",
    );
    let trials = ctx.trials(10, 4);

    let n = 2048;
    let mut table = TextTable::new(&[
        "E[deg]",
        "diam (mean)",
        "algorithm",
        "success",
        "time",
        "max msgs/node",
        "mean msgs/node",
    ]);

    for target_deg in [20.0, 40.0, 80.0] {
        let params = GeoParams::with_expected_degree(n, target_deg);
        // Pre-sample diameters for the header column.
        let diams: Vec<f64> = (0..4)
            .filter_map(|i| {
                let (g, _) =
                    random_geometric(n, params.r_min, &mut derive_rng(ctx.seed, b"e15-d", i));
                diameter_from(&g, 0).map(|d| d as f64)
            })
            .collect();
        let mean_diam = if diams.is_empty() {
            f64::NAN
        } else {
            radio_stats::mean(&diams)
        };

        // Algorithm 1 with the equivalent-density parameterisation.
        let p_equiv = target_deg / n as f64;
        let outs = parallel_trials(trials, ctx.seed ^ target_deg as u64, |_, seed| {
            let (g, _) = random_geometric(n, params.r_min, &mut derive_rng(seed, b"e15-g", 0));
            let out = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p_equiv), seed);
            (
                out.all_informed,
                out.broadcast_time,
                out.max_msgs_per_node() as f64,
                out.mean_msgs_per_node(),
                out.informed,
            )
        });
        let succ = outs.iter().filter(|o| o.0).count();
        let times: Vec<f64> = outs.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
        let informed: Vec<f64> = outs.iter().map(|o| o.4 as f64).collect();
        table.row(&[
            format!("{target_deg:.0}"),
            format!("{mean_diam:.0}"),
            "Alg 1 (G(n,p) params)".to_string(),
            format!("{succ}/{trials}"),
            if times.is_empty() {
                format!(
                    "informed {:.0}/{n}",
                    SummaryStats::from_slice(&informed).mean
                )
            } else {
                format!("{:.0}", SummaryStats::from_slice(&times).mean)
            },
            format!(
                "{:.0}",
                SummaryStats::from_slice(&outs.iter().map(|o| o.2).collect::<Vec<_>>()).max
            ),
            format!(
                "{:.2}",
                SummaryStats::from_slice(&outs.iter().map(|o| o.3).collect::<Vec<_>>()).mean
            ),
        ]);

        // Algorithm 3 with the true (measured) diameter: geometry-agnostic.
        let outs = parallel_trials(trials, ctx.seed ^ (target_deg as u64) << 2, |_, seed| {
            let (g, _) = random_geometric(n, params.r_min, &mut derive_rng(seed, b"e15-g", 0));
            let d = diameter_from(&g, 0)?;
            let out = run_general_broadcast(&g, 0, &GeneralBroadcastConfig::new(n, d), seed);
            Some((
                out.all_informed,
                out.broadcast_time,
                out.max_msgs_per_node() as f64,
                out.mean_msgs_per_node(),
            ))
        });
        let valid: Vec<_> = outs.into_iter().flatten().collect();
        let succ = valid.iter().filter(|o| o.0).count();
        let times: Vec<f64> = valid.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
        if !valid.is_empty() {
            table.row(&[
                format!("{target_deg:.0}"),
                format!("{mean_diam:.0}"),
                "Alg 3 (known D)".to_string(),
                format!("{succ}/{}", valid.len()),
                if times.is_empty() {
                    "—".into()
                } else {
                    format!("{:.0}", SummaryStats::from_slice(&times).mean)
                },
                format!(
                    "{:.0}",
                    SummaryStats::from_slice(&valid.iter().map(|o| o.2).collect::<Vec<_>>()).max
                ),
                format!(
                    "{:.2}",
                    SummaryStats::from_slice(&valid.iter().map(|o| o.3).collect::<Vec<_>>()).mean
                ),
            ]);
        }

        // Gossip (local protocol: geometry-friendly).
        let gossip_cfg = EeGossipConfig {
            gamma: 12.0,
            tracked: Some(64),
            ..EeGossipConfig::for_gnp(n, p_equiv)
        };
        let outs = parallel_trials(trials, ctx.seed ^ (target_deg as u64) << 4, |_, seed| {
            let (g, _) = random_geometric(n, params.r_min, &mut derive_rng(seed, b"e15-g", 0));
            let out = run_ee_gossip(&g, &gossip_cfg, seed);
            (
                out.completed,
                out.gossip_time,
                out.max_msgs_per_node() as f64,
                out.mean_msgs_per_node(),
            )
        });
        let succ = outs.iter().filter(|o| o.0).count();
        let times: Vec<f64> = outs.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
        table.row(&[
            format!("{target_deg:.0}"),
            format!("{mean_diam:.0}"),
            "Alg 2 gossip".to_string(),
            format!("{succ}/{trials}"),
            if times.is_empty() {
                "—".into()
            } else {
                format!("{:.0}", SummaryStats::from_slice(&times).mean)
            },
            format!(
                "{:.0}",
                SummaryStats::from_slice(&outs.iter().map(|o| o.2).collect::<Vec<_>>()).max
            ),
            format!(
                "{:.2}",
                SummaryStats::from_slice(&outs.iter().map(|o| o.3).collect::<Vec<_>>()).mean
            ),
        ]);
    }

    report.para(format!(
        "n = {n} uniform torus points, {trials} runs per cell. The paper's own \
         caveat (§5) measured: Algorithm 1's Phase-1 'multiply by d each round' \
         logic is built for expander-like G(n,p); on a unit-disk graph the informed \
         set grows only along its boundary, Phase 2's Θ(n) activation never \
         happens, and completion collapses — while the geometry-agnostic \
         Algorithm 3 (given the true D) and the purely local gossip keep working."
    ));
    report.table(&table);
    report
}
