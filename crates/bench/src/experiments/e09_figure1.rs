//! **E9 — Figure 1.** The distribution `α` vs Czumaj–Rytter's `α'`:
//! tabulated values and every relation the paper states between them.

use crate::{Ctx, Report};
use radio_core::seq::{KDistribution, TransmitDistribution};
use radio_util::TextTable;

pub fn run(_ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e9",
        "E9 — Figure 1: the α distribution vs Czumaj–Rytter's α'",
    );

    let log2_n = 14u32; // n = 16384
    let lambda = 6.0; // e.g. D = n / 2^6 = 256
    let a = KDistribution::paper_alpha(log2_n, lambda);
    let ap = KDistribution::cr_alpha(log2_n, lambda);
    let l = log2_n as f64;

    let mut table = TextTable::new(&[
        "k",
        "α_k (paper)",
        "α'_k (CR)",
        "α_k/α'_k",
        "floor 1/(2·log n)",
        "cap 1/(4λ)",
    ]);
    for k in 1..=log2_n {
        table.row(&[
            k.to_string(),
            format!("{:.5}", a.alpha(k)),
            format!("{:.5}", ap.alpha(k)),
            format!("{:.2}", a.alpha(k) / ap.alpha(k)),
            format!("{:.5}", 1.0 / (2.0 * l)),
            format!("{:.5}", 1.0 / (4.0 * lambda)),
        ]);
    }

    report.para(format!(
        "L = log₂ n = {log2_n}, λ = log₂(n/D) = {lambda}. Both distributions share \
         the flat head (k ≤ λ) and geometric decay; the paper's α clips the decay \
         at the 1/(2 log n) floor — that floor is the entire difference, and it is \
         what lets every node retire after β·log²n rounds instead of β·log²n·λ."
    ));
    report.table(&table);

    let mut props = TextTable::new(&["property", "value / verdict"]);
    props.row(&[
        "Σ α_k + silent".to_string(),
        format!(
            "{:.4} + {:.4} = 1",
            (1..=log2_n).map(|k| a.alpha(k)).sum::<f64>(),
            a.silent_mass()
        ),
    ]);
    props.row(&[
        "E[q] (α)".to_string(),
        format!("{:.4} ≈ Θ(1/λ) = {:.4}", a.mean_q(), 1.0 / lambda),
    ]);
    props.row(&["E[q] (α')".to_string(), format!("{:.4}", ap.mean_q())]);
    props.row(&[
        "∀k: α_k ≥ α'_k / 2".to_string(),
        (1..=log2_n)
            .all(|k| a.alpha(k) >= ap.alpha(k) / 2.0 - 1e-12)
            .to_string(),
    ]);
    props.row(&[
        "∀k: 1/(2 log n) ≤ α_k ≤ 1/(4λ)".to_string(),
        (1..=log2_n)
            .all(|k| {
                a.alpha(k) >= 1.0 / (2.0 * l) - 1e-12 && a.alpha(k) <= 1.0 / (4.0 * lambda) + 1e-12
            })
            .to_string(),
    ]);
    props.row(&[
        "min_k α'_k (no floor)".to_string(),
        format!("{:.2e}", ap.alpha(log2_n)),
    ]);
    report.para("Stated Figure-1 properties, checked numerically:");
    report.table(&props);
    report
}
