//! One module per experiment; ids match `DESIGN.md` §5.

pub mod e01_alg1_theorem21;
pub mod e02_phase1_growth;
pub mod e03_phase2_fraction;
pub mod e04_phase3_rounds;
pub mod e05_gnp_diameter;
pub mod e06_gossip;
pub mod e07_general_broadcast;
pub mod e08_tradeoff;
pub mod e09_figure1;
pub mod e10_obs43;
pub mod e11_thm44;
pub mod e12_cor45;
pub mod e13_comparisons;
pub mod e14_ablations;
pub mod e15_geometric;
pub mod e16_robustness;
pub mod e17_energy_lifetime;
pub mod e18_scale;

use crate::{Ctx, Report};

/// An experiment entry point.
pub type Runner = fn(&Ctx) -> Report;

/// All experiments, in order, as `(id, runner)`.
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("e1", e01_alg1_theorem21::run),
        ("e2", e02_phase1_growth::run),
        ("e3", e03_phase2_fraction::run),
        ("e4", e04_phase3_rounds::run),
        ("e5", e05_gnp_diameter::run),
        ("e6", e06_gossip::run),
        ("e7", e07_general_broadcast::run),
        ("e8", e08_tradeoff::run),
        ("e9", e09_figure1::run),
        ("e10", e10_obs43::run),
        ("e11", e11_thm44::run),
        ("e12", e12_cor45::run),
        ("e13", e13_comparisons::run),
        ("e14", e14_ablations::run),
        ("e15", e15_geometric::run),
        ("e16", e16_robustness::run),
        ("e17", e17_energy_lifetime::run),
        ("e18", e18_scale::run),
        ("e18i", e18_scale::run_implicit_only),
    ]
}
