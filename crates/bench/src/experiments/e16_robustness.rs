//! **E16 — extension: mobility and fail-stop faults.** The paper's §1
//! motivates its local, memoryless protocols with node mobility and
//! fragile devices; this experiment quantifies both on the implemented
//! system:
//!
//! * gossip (Algorithm 2) on a *moving* geometric network — topology
//!   snapshots drift under Brownian mobility while the protocol runs;
//! * broadcast under fail-stop crashes of a random node fraction.

use crate::{Ctx, Report};
use radio_core::broadcast::ee_general::GeneralBroadcastConfig;
use radio_core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use radio_core::broadcast::windowed::{ProbSource, WindowedBroadcast, WindowedSpec};
use radio_core::gossip::{EeGossip, EeGossipConfig};
use radio_core::seq::SharedSequence;
use radio_graph::generate::{gnp_directed, mobile_geometric_sequence, GeoParams};
use radio_sim::engine::run_protocol;
use radio_sim::{parallel_trials, CrashPlan, EngineConfig, Faulty};
use radio_stats::SummaryStats;
use radio_util::{derive_rng, split_seed, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e16", "E16 — extension: mobility and fail-stop robustness");
    let trials = ctx.trials(10, 4);

    // --- (a) Gossip under mobility ---------------------------------------
    let n = 512;
    let deg = 30.0;
    let r = GeoParams::with_expected_degree(n, deg).r_min;
    let p_equiv = deg / n as f64;
    let mut t_a = TextTable::new(&[
        "mobility σ / snapshot",
        "switch every",
        "success",
        "gossip time",
        "mean msgs/node",
    ]);
    for sigma in [0.0, 0.01, 0.05, 0.15] {
        let outs = parallel_trials(trials, ctx.seed ^ (sigma * 1000.0) as u64, |_, seed| {
            let cfg = EeGossipConfig {
                gamma: 10.0,
                tracked: Some(64),
                ..EeGossipConfig::for_gnp(n, p_equiv)
            };
            let switch = 40u64;
            let snapshots = (cfg.schedule_rounds() / switch + 2) as usize;
            let graphs = mobile_geometric_sequence(
                n,
                r,
                sigma,
                snapshots,
                &mut derive_rng(seed, b"e16-mob", 0),
            );
            let refs: Vec<&radio_graph::DiGraph> = graphs.iter().collect();
            let mut protocol = EeGossip::new(cfg);
            let mut rng = derive_rng(seed, b"engine", 0);
            let run = radio_sim::run_dynamic(
                &refs,
                switch,
                &mut protocol,
                EngineConfig::with_max_rounds(cfg.schedule_rounds() + 1),
                &mut rng,
            );
            (
                protocol.gossip_time(),
                run.metrics.mean_transmissions_per_node(),
            )
        });
        let succ = outs.iter().filter(|o| o.0.is_some()).count();
        let times: Vec<f64> = outs.iter().filter_map(|o| o.0.map(|t| t as f64)).collect();
        let msgs: Vec<f64> = outs.iter().map(|o| o.1).collect();
        t_a.row(&[
            format!("{sigma}"),
            "40 rounds".to_string(),
            format!("{succ}/{trials}"),
            if times.is_empty() {
                "—".into()
            } else {
                format!("{:.0}", SummaryStats::from_slice(&times).mean)
            },
            format!("{:.1}", SummaryStats::from_slice(&msgs).mean),
        ]);
    }
    report.para(format!(
        "(a) Algorithm 2 on a mobile geometric field (n = {n}, E[deg] ≈ {deg:.0}, \
         topology re-sampled every 40 rounds with Brownian step σ): mobility \
         *helps* gossip — moving nodes carry rumors across what would otherwise \
         be slow multi-hop distances, a well-known delay-tolerant-network effect \
         the local transmit-w.p.-1/d rule exploits for free."
    ));
    report.table(&t_a);

    // --- (b) Broadcast under fail-stop crashes ----------------------------
    let n_b = 2048;
    let p_b = 6.0 * (n_b as f64).ln() / n_b as f64;
    let mut t_b = TextTable::new(&[
        "crash fraction @ round 3",
        "algorithm",
        "survivors informed (mean frac)",
        "runs with all survivors informed",
    ]);
    for frac in [0.0, 0.3, 0.6, 0.8] {
        // Algorithm 1 (fragile: one-shot actives) vs Algorithm 3 (window
        // gives surviving nodes many chances).
        let outs = parallel_trials(trials, ctx.seed ^ (frac * 100.0) as u64, |_, seed| {
            let g = gnp_directed(n_b, p_b, &mut derive_rng(seed, b"e16-g", 0));
            // Spare the source: the measurement is dissemination under
            // relay loss, not "the message died with its originator".
            let plan =
                CrashPlan::random_fraction(n_b, frac, 3, &mut derive_rng(seed, b"e16-crash", 0))
                    .spare(0);
            let survivors = plan.survivors();

            let a_cfg = EeBroadcastConfig::for_gnp(n_b, p_b);
            let mut alg1 = Faulty::new(EeRandomBroadcast::new(n_b, 0, a_cfg), plan.clone());
            let mut rng = derive_rng(seed, b"engine", 0);
            let _ = run_protocol(
                &g,
                &mut alg1,
                EngineConfig::with_max_rounds(a_cfg.schedule_end() + 2),
                &mut rng,
            );
            let alg1_frac = informed_fraction(alg1.inner(), &survivors);

            let g_cfg = GeneralBroadcastConfig::new(n_b, 6); // D ≈ 4–6 on this G(n,p)
            let spec = WindowedSpec {
                source: ProbSource::Shared(SharedSequence::new(
                    g_cfg.distribution(),
                    split_seed(seed, b"seq", 0),
                )),
                window: Some(g_cfg.window()),
                early_stop: false,
            };
            let mut alg3 = Faulty::new(WindowedBroadcast::new(n_b, 0, spec), plan);
            let mut rng = derive_rng(seed, b"engine3", 0);
            let _ = run_protocol(
                &g,
                &mut alg3,
                EngineConfig::with_max_rounds(g_cfg.max_rounds()),
                &mut rng,
            );
            let alg3_frac = survivors
                .iter()
                .filter(|&&v| alg3.inner().informed_round(v) != u64::MAX)
                .count() as f64
                / survivors.len().max(1) as f64;
            (alg1_frac, alg3_frac)
        });
        for (name, idx) in [("Alg 1", 0usize), ("Alg 3", 1)] {
            let fracs: Vec<f64> = outs
                .iter()
                .map(|o| if idx == 0 { o.0 } else { o.1 })
                .collect();
            let full = fracs.iter().filter(|&&f| f >= 1.0).count();
            t_b.row(&[
                format!("{:.0}%", frac * 100.0),
                name.to_string(),
                format!("{:.4}", SummaryStats::from_slice(&fracs).mean),
                format!("{full}/{trials}"),
            ]);
        }
    }
    report.para(format!(
        "(b) Fail-stop crashes at round 3 (just as Phase 3 starts) on \
         G(n = {n_b}, δ = 6), source spared. Both algorithms shrug off \
         moderate relay loss: Algorithm 1's Phase-2 activation margin \
         (A₀ ≈ 14 active in-neighbours per node) tolerates killing half of \
         them, and Algorithm 3's β log²n window re-tries through survivors. \
         Degradation appears only past ~60 % crashes and is graceful — the \
         uninformed survivors are the e^(−A₀(1−f))-starved tail, not \
         partitioned islands."
    ));
    report.table(&t_b);
    report
}

/// Fraction of surviving nodes that were informed.
fn informed_fraction(p: &EeRandomBroadcast, survivors: &[radio_graph::NodeId]) -> f64 {
    let known = survivors
        .iter()
        .filter(|&&v| p.informed_round(v).is_some())
        .count();
    known as f64 / survivors.len().max(1) as f64
}
