//! **E16 — extension: mobility and fail-stop faults.** The paper's §1
//! motivates its local, memoryless protocols with node mobility and
//! fragile devices; this experiment quantifies both on the implemented
//! system:
//!
//! * gossip (Algorithm 2) on a *moving* geometric network — topology
//!   snapshots drift under Brownian mobility while the protocol runs;
//! * broadcast under fail-stop node loss of a random fraction, injected
//!   three ways: scheduled crashes (`CrashPlan`), battery depletion (the
//!   `radio-energy` path — a capacity-2 battery under unit drain dies at
//!   the end of round 2, i.e. is exactly a crash scheduled for round 3),
//!   and *both at once* on the same nodes, which pins the sweep-level
//!   guarantee that a node crashing **and** depleting in the same round
//!   is counted once (`CrashPlan::failed_by`).
//!
//! Ported to the `radio-sim` sweep API (it predated it): one sweep per
//! part, scenario parameters encoded in the algorithm label, JSON in
//! `results/sweep_e16_mobility.json` / `results/sweep_e16_crash.json`.

use crate::common::{cell_extra, sweep_note};
use crate::{Ctx, Report};
use radio_core::broadcast::ee_general::GeneralBroadcastConfig;
use radio_core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use radio_core::broadcast::windowed::{ProbSource, WindowedBroadcast, WindowedSpec};
use radio_core::gossip::{EeGossip, EeGossipConfig};
use radio_core::seq::SharedSequence;
use radio_energy::{Battery, EnergySession, LinearRadio};
use radio_graph::generate::{mobile_geometric_sequence, GeoParams};
use radio_graph::{DiGraph, GraphFamily, NodeId};
use radio_sim::engine::{run_protocol, run_protocol_energy};
use radio_sim::{CrashPlan, EngineConfig, Faulty, Protocol, Sweep, SweepCell, TrialResult};
use radio_util::{derive_rng, split_seed, TextTable};

/// Topology re-sample interval for the mobility runs, in rounds.
const SWITCH_EVERY: u64 = 40;

/// `"alg1_battery:f=0.3"` → `("alg1_battery", 0.3)`.
fn parse_label(label: &str) -> (&str, f64) {
    let (alg, f) = label.split_once(":f=").expect("scenario label");
    (alg, f.parse().expect("fraction"))
}

/// One mobility trial. The sweep hands us a static geometric snapshot;
/// mobility needs the whole Brownian sequence, so the runner regenerates
/// it from the trial seed (`cell.p` is the connection radius, σ rides in
/// the label as `gossip:f=σ`).
fn mobility_trial(cell: &SweepCell, _graph: &DiGraph, seed: u64) -> TrialResult {
    let n = cell.n;
    let (_, sigma) = parse_label(&cell.algorithm);
    // G(n,p)-equivalent density for the gossip config: on the unit torus
    // a radius-r disk holds π r² n expected neighbours, so p = π r².
    let p_equiv = std::f64::consts::PI * cell.p * cell.p;
    let cfg = EeGossipConfig {
        gamma: 10.0,
        tracked: Some(64),
        ..EeGossipConfig::for_gnp(n, p_equiv)
    };
    let snapshots = (cfg.schedule_rounds() / SWITCH_EVERY + 2) as usize;
    let graphs = mobile_geometric_sequence(
        n,
        cell.p,
        sigma,
        snapshots,
        &mut derive_rng(seed, b"e16-mob", 0),
    );
    let refs: Vec<&DiGraph> = graphs.iter().collect();
    let mut protocol = EeGossip::new(cfg);
    let mut rng = derive_rng(seed, b"engine", 0);
    let run = radio_sim::run_dynamic(
        &refs,
        SWITCH_EVERY,
        &mut protocol,
        EngineConfig::with_max_rounds(cfg.schedule_rounds() + 1),
        &mut rng,
    );
    let time = protocol.gossip_time();
    let mut t = TrialResult::from_run(&run, time.is_some(), protocol.informed_count()).extra(
        "mean_msgs_per_node",
        run.metrics.mean_transmissions_per_node(),
    );
    if let Some(gt) = time {
        t = t.extra("gossip_time", gt as f64);
    }
    t
}

/// One crash/depletion trial. The doomed node set is drawn once per
/// trial (fraction `f`, round 3, source spared) and then injected via
/// the path named in the label.
fn crash_trial(cell: &SweepCell, graph: &DiGraph, seed: u64) -> TrialResult {
    let n = cell.n;
    let (variant, frac) = parse_label(&cell.algorithm);
    let plan =
        CrashPlan::random_fraction(n, frac, 3, &mut derive_rng(seed, b"e16-crash", 0)).spare(0);
    let survivors = plan.survivors();
    // Battery equivalent of "crash at round 3": capacity 2 under unit
    // drain depletes at the end of round 2 — dead from round 3 on.
    let doomed_battery = || {
        Battery::per_node(
            (0..n)
                .map(|v| {
                    if plan.is_crashed(v as NodeId, u64::MAX) {
                        2.0
                    } else {
                        f64::INFINITY
                    }
                })
                .collect(),
        )
    };
    let session = || {
        EnergySession::new(
            n,
            LinearRadio::uniform_drain(1.0),
            split_seed(seed, b"e16-bat", 0),
        )
        .with_battery(doomed_battery())
    };

    let a_cfg = EeBroadcastConfig::for_gnp(n, cell.p);
    let engine_cfg = EngineConfig::with_max_rounds(a_cfg.schedule_end() + 2);
    let survivor_frac = |p: &EeRandomBroadcast| {
        let known = survivors
            .iter()
            .filter(|&&v| p.informed_round(v).is_some())
            .count();
        known as f64 / survivors.len().max(1) as f64
    };

    let (trial, frac_informed, failed) = match variant {
        "alg1" => {
            let mut p = Faulty::new(EeRandomBroadcast::new(n, 0, a_cfg), plan.clone());
            let mut rng = derive_rng(seed, b"engine", 0);
            let run = run_protocol(graph, &mut p, engine_cfg, &mut rng);
            let fi = survivor_frac(p.inner());
            let failed = plan.failed_by(run.rounds, &[]);
            (
                TrialResult::from_run(&run, fi >= 1.0, p.informed_count()),
                fi,
                failed,
            )
        }
        "alg1_battery" => {
            // Same doomed set, injected purely through depletion.
            let mut p = EeRandomBroadcast::new(n, 0, a_cfg);
            let mut rng = derive_rng(seed, b"engine", 0);
            let mut s = session();
            let run = run_protocol_energy(graph, &mut p, engine_cfg, &mut rng, &mut s);
            let fi = survivor_frac(&p);
            let failed = CrashPlan::none(n).failed_by(run.run.rounds, &run.energy.depleted_at);
            let informed = p.informed_count();
            (
                TrialResult::from_energy_run(&run, fi >= 1.0, informed),
                fi,
                failed,
            )
        }
        "alg1_both" => {
            // Crash AND depletion injected on the *same* nodes: every
            // doomed node fails through both paths, and the summary
            // count must still be the doomed-set size, not twice it.
            let mut p = Faulty::new(EeRandomBroadcast::new(n, 0, a_cfg), plan.clone());
            let mut rng = derive_rng(seed, b"engine", 0);
            let mut s = session();
            let run = run_protocol_energy(graph, &mut p, engine_cfg, &mut rng, &mut s);
            let fi = survivor_frac(p.inner());
            let failed = plan.failed_by(run.run.rounds, &run.energy.depleted_at);
            assert!(
                run.run.rounds < 3 || failed == plan.crash_count(),
                "dedup broken: {} failed via two paths over {} doomed nodes",
                failed,
                plan.crash_count()
            );
            let informed = p.informed_count();
            (
                TrialResult::from_energy_run(&run, fi >= 1.0, informed),
                fi,
                failed,
            )
        }
        "alg3" => {
            let g_cfg = GeneralBroadcastConfig::new(n, 6); // D ≈ 4–6 on this G(n,p)
            let spec = WindowedSpec {
                source: ProbSource::Shared(SharedSequence::new(
                    g_cfg.distribution(),
                    split_seed(seed, b"seq", 0),
                )),
                window: Some(g_cfg.window()),
                early_stop: false,
            };
            let mut p = Faulty::new(WindowedBroadcast::new(n, 0, spec), plan.clone());
            let mut rng = derive_rng(seed, b"engine3", 0);
            let run = run_protocol(
                graph,
                &mut p,
                EngineConfig::with_max_rounds(g_cfg.max_rounds()),
                &mut rng,
            );
            let fi = survivors
                .iter()
                .filter(|&&v| p.inner().informed_round(v) != u64::MAX)
                .count() as f64
                / survivors.len().max(1) as f64;
            let failed = plan.failed_by(run.rounds, &[]);
            (
                TrialResult::from_run(&run, fi >= 1.0, p.informed_count()),
                fi,
                failed,
            )
        }
        other => unreachable!("unknown variant {other}"),
    };
    trial
        .extra("survivor_informed_frac", frac_informed)
        .extra("failed_nodes", failed as f64)
}

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e16", "E16 — extension: mobility and fail-stop robustness");
    let trials = ctx.trials(10, 4);

    // --- (a) Gossip under mobility ---------------------------------------
    let n = 512;
    let r = GeoParams::with_expected_degree(n, 30.0).r_min;
    let mut sw_mob = Sweep::new("e16_mobility", ctx.seed, trials);
    for sigma in [0.0, 0.01, 0.05, 0.15] {
        sw_mob.push(SweepCell::new(
            format!("gossip:f={sigma}"),
            GraphFamily::Geometric,
            n,
            r,
        ));
    }
    let mob_report = sw_mob.run(mobility_trial);

    let mut t_a = TextTable::new(&[
        "mobility σ / snapshot",
        "switch every",
        "success",
        "gossip time",
        "mean msgs/node",
    ]);
    for cell in &mob_report.cells {
        let (_, sigma) = parse_label(&cell.cell.algorithm);
        t_a.row(&[
            format!("{sigma}"),
            format!("{SWITCH_EVERY} rounds"),
            format!("{}/{}", cell.successes, cell.trials),
            cell_extra(cell, "gossip_time").map_or("—".into(), |s| format!("{:.0}", s.mean)),
            format!(
                "{:.1}",
                cell_extra(cell, "mean_msgs_per_node").map_or(0.0, |s| s.mean)
            ),
        ]);
    }
    report.para(format!(
        "(a) Algorithm 2 on a mobile geometric field (n = {n}, E[deg] ≈ 30, \
         topology re-sampled every {SWITCH_EVERY} rounds with Brownian step σ): \
         mobility *helps* gossip — moving nodes carry rumors across what would \
         otherwise be slow multi-hop distances, a well-known \
         delay-tolerant-network effect the local transmit-w.p.-1/d rule \
         exploits for free."
    ));
    report.table(&t_a);

    // --- (b) Broadcast under fail-stop loss: crash vs battery paths -------
    let n_b = 2048;
    let p_b = 6.0 * (n_b as f64).ln() / n_b as f64;
    let mut sw_crash = Sweep::new("e16_crash", ctx.seed ^ 0x16, trials);
    for frac in [0.0, 0.3, 0.6, 0.8] {
        for variant in ["alg1", "alg1_battery", "alg1_both", "alg3"] {
            sw_crash.push(SweepCell::new(
                format!("{variant}:f={frac}"),
                GraphFamily::GnpDirected,
                n_b,
                p_b,
            ));
        }
    }
    let crash_report = sw_crash.run(crash_trial);

    let mut t_b = TextTable::new(&[
        "loss fraction @ round 3",
        "scenario",
        "survivors informed (mean frac)",
        "runs with all survivors informed",
        "failed nodes (mean)",
    ]);
    for cell in &crash_report.cells {
        let (variant, frac) = parse_label(&cell.cell.algorithm);
        let name = match variant {
            "alg1" => "Alg 1 + CrashPlan",
            "alg1_battery" => "Alg 1 + battery death",
            "alg1_both" => "Alg 1 + both (dedup)",
            _ => "Alg 3 + CrashPlan",
        };
        t_b.row(&[
            format!("{:.0}%", frac * 100.0),
            name.to_string(),
            format!(
                "{:.4}",
                cell_extra(cell, "survivor_informed_frac").map_or(0.0, |s| s.mean)
            ),
            format!("{}/{}", cell.successes, cell.trials),
            format!(
                "{:.0}",
                cell_extra(cell, "failed_nodes").map_or(0.0, |s| s.mean)
            ),
        ]);
    }
    report.para(format!(
        "(b) Fail-stop loss at round 3 (just as Phase 3 starts) on \
         G(n = {n_b}, δ = 6), source spared. The crash-plan and \
         battery-depletion paths are interchangeable (capacity 2 under \
         unit drain ≡ crash at round 3): survivor-informed fractions \
         match within noise, and the doubly-injected scenario reports the \
         same failed-node count as either single path — a node that \
         crashes and depletes in the same round is counted once. Both \
         algorithms shrug off moderate relay loss; degradation appears \
         only past ~60 % and is graceful."
    ));
    report.table(&t_b);

    for sweep_report in [&mob_report, &crash_report] {
        match sweep_report.write_json(&ctx.out_dir) {
            Ok(path) => {
                report.para(sweep_note(&path));
            }
            Err(e) => eprintln!("warning: cannot write e16 sweep JSON: {e}"),
        }
    }
    report
}
