//! **E16 — extension: mobility and fail-stop faults.** The paper's §1
//! motivates its local, memoryless protocols with node mobility and
//! fragile devices; this experiment quantifies both on the implemented
//! system:
//!
//! * gossip (Algorithm 2) on a *moving* geometric network — topology
//!   snapshots drift under Brownian mobility while the protocol runs;
//! * broadcast under fail-stop node loss of a random fraction, injected
//!   three ways: scheduled crashes (`CrashPlan`), battery depletion (the
//!   `radio-energy` path — a capacity-2 battery under unit drain dies at
//!   the end of round 2, i.e. is exactly a crash scheduled for round 3),
//!   and *both at once* on the same nodes, which pins the sweep-level
//!   guarantee that a node crashing **and** depleting in the same round
//!   is counted once (`CrashPlan::failed_by`).
//!
//! The sweeps are no longer hand-built here: both parts load committed
//! scenario IR (`scenarios/e16_mobility.scenario.json`,
//! `scenarios/e16_crash.scenario.json`) and run through the
//! `radio-campaign` compiler — the declarative specs reproduce the
//! historical hand-written sweeps byte-identically (the
//! `scenario_fidelity` tests pin this). JSON lands at
//! `results/sweep_e16_mobility.json` / `results/sweep_e16_crash.json`.

use crate::common::{cell_extra, sweep_note};
use crate::{Ctx, Report};
use radio_campaign::{Compiled, Scenario};
use radio_util::TextTable;

/// The committed scenario IR for part (a).
pub const MOBILITY_SPEC: &str = include_str!("../../../../scenarios/e16_mobility.scenario.json");
/// The committed scenario IR for part (b).
pub const CRASH_SPEC: &str = include_str!("../../../../scenarios/e16_crash.scenario.json");

/// Topology re-sample interval for the mobility runs, in rounds (the
/// value the committed spec carries; the table narrates it).
const SWITCH_EVERY: u64 = 40;

/// `"alg1_battery:f=0.3"` → `("alg1_battery", 0.3)`.
fn parse_label(label: &str) -> (&str, f64) {
    let (alg, f) = label.split_once(":f=").expect("scenario label");
    (alg, f.parse().expect("fraction"))
}

/// Compile a committed spec, rescaling trials/seed from the context
/// (at default scale the overrides equal the spec's own values, so the
/// committed results stay byte-identical).
fn compile(spec: &str, ctx: &Ctx, trials: usize, seed: u64) -> Compiled {
    let scenario = Scenario::parse(spec).expect("committed scenario must validate");
    let mut compiled = Compiled::new(scenario);
    compiled.sweep_mut().trials = ctx.trials(trials, 4);
    compiled.sweep_mut().base_seed = seed;
    compiled
}

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e16", "E16 — extension: mobility and fail-stop robustness");

    // --- (a) Gossip under mobility ---------------------------------------
    let mob = compile(MOBILITY_SPEC, ctx, 10, ctx.seed);
    let n = mob.scenario().cells[0].n;
    let mob_report = mob.run_report();

    let mut t_a = TextTable::new(&[
        "mobility σ / snapshot",
        "switch every",
        "success",
        "gossip time",
        "mean msgs/node",
    ]);
    for cell in &mob_report.cells {
        let (_, sigma) = parse_label(&cell.cell.algorithm);
        t_a.row(&[
            format!("{sigma}"),
            format!("{SWITCH_EVERY} rounds"),
            format!("{}/{}", cell.successes, cell.trials),
            cell_extra(cell, "gossip_time").map_or("—".into(), |s| format!("{:.0}", s.mean)),
            format!(
                "{:.1}",
                cell_extra(cell, "mean_msgs_per_node").map_or(0.0, |s| s.mean)
            ),
        ]);
    }
    report.para(format!(
        "(a) Algorithm 2 on a mobile geometric field (n = {n}, E[deg] ≈ 30, \
         topology re-sampled every {SWITCH_EVERY} rounds with Brownian step σ): \
         mobility *helps* gossip — moving nodes carry rumors across what would \
         otherwise be slow multi-hop distances, a well-known \
         delay-tolerant-network effect the local transmit-w.p.-1/d rule \
         exploits for free."
    ));
    report.table(&t_a);

    // --- (b) Broadcast under fail-stop loss: crash vs battery paths -------
    let crash = compile(CRASH_SPEC, ctx, 10, ctx.seed ^ 0x16);
    let n_b = crash.scenario().cells[0].n;
    let crash_report = crash.run_report();

    let mut t_b = TextTable::new(&[
        "loss fraction @ round 3",
        "scenario",
        "survivors informed (mean frac)",
        "runs with all survivors informed",
        "failed nodes (mean)",
    ]);
    for cell in &crash_report.cells {
        let (variant, frac) = parse_label(&cell.cell.algorithm);
        let name = match variant {
            "alg1" => "Alg 1 + CrashPlan",
            "alg1_battery" => "Alg 1 + battery death",
            "alg1_both" => "Alg 1 + both (dedup)",
            _ => "Alg 3 + CrashPlan",
        };
        t_b.row(&[
            format!("{:.0}%", frac * 100.0),
            name.to_string(),
            format!(
                "{:.4}",
                cell_extra(cell, "survivor_informed_frac").map_or(0.0, |s| s.mean)
            ),
            format!("{}/{}", cell.successes, cell.trials),
            format!(
                "{:.0}",
                cell_extra(cell, "failed_nodes").map_or(0.0, |s| s.mean)
            ),
        ]);
    }
    report.para(format!(
        "(b) Fail-stop loss at round 3 (just as Phase 3 starts) on \
         G(n = {n_b}, δ = 6), source spared. The crash-plan and \
         battery-depletion paths are interchangeable (capacity 2 under \
         unit drain ≡ crash at round 3): survivor-informed fractions \
         match within noise, and the doubly-injected scenario reports the \
         same failed-node count as either single path — a node that \
         crashes and depletes in the same round is counted once. Both \
         algorithms shrug off moderate relay loss; degradation appears \
         only past ~60 % and is graceful."
    ));
    report.table(&t_b);

    for sweep_report in [&mob_report, &crash_report] {
        match sweep_report.write_json(&ctx.out_dir) {
            Ok(path) => {
                report.para(sweep_note(&path));
            }
            Err(e) => eprintln!("warning: cannot write e16 sweep JSON: {e}"),
        }
    }
    report
}
