//! **E4 — Lemma 2.6.** Phase 3 finishes the job within `O(log n)` rounds:
//! measure rounds-from-Phase-3-start to full information vs `log n`.

use crate::{Ctx, Report};
use radio_core::broadcast::ee_random::{run_ee_broadcast, EeBroadcastConfig};
use radio_graph::generate::gnp_directed;
use radio_sim::parallel_trials;
use radio_stats::{fit_against, SummaryStats};
use radio_util::{derive_rng, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e4",
        "E4 — Lemma 2.6: Phase-3 mop-up time scales like log n",
    );
    let trials = ctx.trials(25, 8);

    let mut table = TextTable::new(&[
        "n",
        "phase-3 start",
        "completion round",
        "phase-3 rounds used",
        "/log2 n",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();

    for n in [1024usize, 2048, 4096, 8192, 16384, 32768] {
        let p = 6.0 * (n as f64).ln() / n as f64;
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        let p3_start = cfg.params.t + u64::from(cfg.params.use_phase2) + 1;
        let durations = parallel_trials(trials, ctx.seed ^ (n as u64) << 2, |_, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"e4-g", 0));
            let out = run_ee_broadcast(&g, 0, &cfg, seed);
            out.broadcast_time
                .map(|t| (t.saturating_sub(p3_start - 1)) as f64)
        });
        let used: Vec<f64> = durations.into_iter().flatten().collect();
        if used.len() < trials / 2 {
            continue;
        }
        let st = SummaryStats::from_slice(&used);
        let log2n = (n as f64).log2();
        table.row(&[
            n.to_string(),
            p3_start.to_string(),
            format!("{:.1}", st.mean + p3_start as f64 - 1.0),
            format!("{:.1} ± {:.1}", st.mean, st.ci95_half_width()),
            format!("{:.2}", st.mean / log2n),
        ]);
        xs.push(n as f64);
        ys.push(st.mean);
    }

    let fit = fit_against(&xs, &ys, |x| x.ln());
    let max_ratio = xs
        .iter()
        .zip(ys.iter())
        .map(|(x, y)| y / x.log2())
        .fold(0.0f64, f64::max);
    report.para(format!(
        "{trials} runs per n (completed runs only). The O(log n) claim is checked \
         as a bounded ratio: Phase-3 rounds / log₂ n stays ≤ {max_ratio:.1} across \
         a 32× size range (a linear-time mop-up would grow this 32×). The bump at \
         n = 4096 is the T = 1→2 transition, where Phase 2 activates fewer nodes \
         and the one-shot Phase-3 pool thins out; the ln-n fit (slope {:.1}, \
         R² = {:.2}) is noisy for the same reason.",
        fit.slope, fit.r2
    ));
    report.table(&table);
    report
}
