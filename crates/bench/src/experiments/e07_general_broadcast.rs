//! **E7 — Theorem 4.1.** Algorithm 3 on general networks with known `D`:
//! time `O(D log(n/D) + log² n)`, messages/node `O(log² n / log(n/D))`,
//! across the topology zoo; Czumaj–Rytter and Decay alongside.

use crate::{Ctx, Report};
use radio_core::broadcast::cr::{run_cr_broadcast, CrBroadcastConfig};
use radio_core::broadcast::decay::{run_decay_broadcast, DecayConfig};
use radio_core::broadcast::ee_general::{run_general_broadcast, GeneralBroadcastConfig};
use radio_core::params::{general_time_scale, lambda};
use radio_graph::analysis::diameter_from;
use radio_graph::generate::{binary_tree, caterpillar, gnp_undirected, grid2d, path};
use radio_graph::DiGraph;
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{derive_rng, TextTable};

/// One algorithm's per-seed runner: (all_informed, broadcast_time, mean msgs/node).
type AlgRunner<'a> = Box<dyn Fn(u64) -> (bool, Option<u64>, f64) + Sync + 'a>;

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e7",
        "E7 — Theorem 4.1: Algorithm 3 across topologies (vs CR and Decay)",
    );
    let trials = ctx.trials(10, 4);

    let zoo: Vec<(&str, DiGraph)> = vec![
        ("path-512", path(512)),
        ("grid-32x32", grid2d(32, 32)),
        ("tree-1023", binary_tree(1023)),
        ("caterpillar-64x15", caterpillar(64, 15)),
        ("gnp-1024", {
            let n = 1024;
            let p = 8.0 * (n as f64).ln() / n as f64;
            gnp_undirected(n, p, &mut derive_rng(ctx.seed, b"e7-gnp", 0))
        }),
    ];

    let mut table = TextTable::new(&[
        "network",
        "n",
        "D",
        "λ",
        "algorithm",
        "success",
        "bcast time",
        "time/scale",
        "mean msgs/node",
        "msgs/(log²n/λ)",
    ]);

    for (name, g) in &zoo {
        let n = g.n();
        let d = match diameter_from(g, 0) {
            Some(d) => d,
            None => continue,
        };
        let lam = lambda(n, d);
        let scale = general_time_scale(n, d);
        let l2 = (n as f64).log2().powi(2);

        let algs: Vec<(&str, AlgRunner<'_>)> = vec![
            (
                "Alg 3 (α)",
                Box::new(move |seed| {
                    let out = run_general_broadcast(g, 0, &GeneralBroadcastConfig::new(n, d), seed);
                    (
                        out.all_informed,
                        out.broadcast_time,
                        out.mean_msgs_per_node(),
                    )
                }),
            ),
            (
                "CR (α')",
                Box::new(move |seed| {
                    let out = run_cr_broadcast(g, 0, &CrBroadcastConfig::new(n, d), seed);
                    (
                        out.all_informed,
                        out.broadcast_time,
                        out.mean_msgs_per_node(),
                    )
                }),
            ),
            (
                "Decay",
                Box::new(move |seed| {
                    let out = run_decay_broadcast(g, 0, &DecayConfig::new(n, d), seed);
                    (
                        out.all_informed,
                        out.broadcast_time,
                        out.mean_msgs_per_node(),
                    )
                }),
            ),
        ];

        for (alg_name, runner) in &algs {
            let outs = parallel_trials(
                trials,
                ctx.seed ^ (n as u64).wrapping_mul(31) ^ alg_name.len() as u64,
                |_, seed| runner(seed),
            );
            let successes = outs.iter().filter(|o| o.0).count();
            let times: Vec<f64> = outs.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
            let msgs: Vec<f64> = outs.iter().map(|o| o.2).collect();
            if times.is_empty() {
                continue;
            }
            let t = SummaryStats::from_slice(&times);
            let m = SummaryStats::from_slice(&msgs);
            table.row(&[
                name.to_string(),
                n.to_string(),
                d.to_string(),
                format!("{lam:.1}"),
                alg_name.to_string(),
                format!("{successes}/{trials}"),
                format!("{:.0}", t.mean),
                format!("{:.2}", t.mean / scale),
                format!("{:.1}", m.mean),
                format!("{:.2}", m.mean / (l2 / lam)),
            ]);
        }
    }

    report.para(format!(
        "{trials} runs per cell; `scale` = D·log(n/D) + log²n, the Theorem 4.1 time \
         bound. Paper shape to check: Alg 3's time/scale and msgs/(log²n/λ) stay O(1) \
         across topologies; CR matches on time (up to the ×2 from α ≥ α'/2) but pays \
         ≈ λ× more messages; Decay's msgs grow with D, not with log²n/λ."
    ));
    report.table(&table);
    report
}
