//! **E11 — Theorem 4.4 / Figure 2.** On the star-cascade + path network,
//! time-invariant oblivious algorithms that finish within `c·D·log(n/D)`
//! rounds pay `≥ log²n / (max{4c,8}·log(n/D))` transmissions per node.

use crate::{Ctx, Report};
use radio_core::lower_bound::{thm44_bound, thm44_round_budget, thm44_trial, TimeInvariant};
use radio_core::seq::KDistribution;
use radio_graph::generate::lower_bound_net;
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{ilog2_ceil, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e11",
        "E11 — Theorem 4.4 (Figure 2): message floor for time-invariant algorithms",
    );
    let trials = ctx.trials(16, 6);

    let k = 7; // n = 128: stars S₁..S₇, biggest star 128 leaves
    let diameter = 64;
    let net = lower_bound_net(k, diameter);
    let l = ilog2_ceil(net.graph.n() as u64);
    let c = 60.0;
    let budget = thm44_round_budget(&net, c);
    let floor = thm44_bound(net.n_param, diameter, c);

    let strategies: Vec<(String, TimeInvariant)> = vec![
        ("fixed q=1/4".into(), TimeInvariant::Fixed(0.25)),
        ("fixed q=1/16".into(), TimeInvariant::Fixed(1.0 / 16.0)),
        ("fixed q=1/64".into(), TimeInvariant::Fixed(1.0 / 64.0)),
        ("fixed q=1/256".into(), TimeInvariant::Fixed(1.0 / 256.0)),
        (
            "uniform k".into(),
            TimeInvariant::Dist(KDistribution::uniform_k(l)),
        ),
        (
            "α λ=2".into(),
            TimeInvariant::Dist(KDistribution::paper_alpha(l, 2.0)),
        ),
        (
            "α λ=3".into(),
            TimeInvariant::Dist(KDistribution::paper_alpha(l, 3.0)),
        ),
        (
            "α λ=4".into(),
            TimeInvariant::Dist(KDistribution::paper_alpha(l, 4.0)),
        ),
        (
            "α' λ=3".into(),
            TimeInvariant::Dist(KDistribution::cr_alpha(l, 3.0)),
        ),
    ];

    let lam = (net.n_param as f64 / diameter as f64).log2().max(1.0);
    let l2_over_lam = (net.n_param as f64).log2().powi(2) / lam;
    let mut table = TextTable::new(&[
        "strategy",
        "E[q]",
        "success",
        "mean msgs/node (successes)",
        "vs log²n/λ",
        "vs theorem floor",
    ]);
    for (name, strat) in &strategies {
        let outs = parallel_trials(trials, ctx.seed ^ name.len() as u64, |_, seed| {
            let out = thm44_trial(&net, strat, c, seed);
            (out.all_informed, out.mean_msgs_per_node())
        });
        let succ = outs.iter().filter(|o| o.0).count();
        let msgs: Vec<f64> = outs.iter().filter(|o| o.0).map(|o| o.1).collect();
        let (msg_str, struct_str, ratio_str) = if msgs.is_empty() {
            ("—".to_string(), "—".to_string(), "—".to_string())
        } else {
            let m = SummaryStats::from_slice(&msgs);
            (
                format!("{:.1}", m.mean),
                format!("{:.1}×", m.mean / l2_over_lam),
                format!("{:.1}×", m.mean / floor),
            )
        };
        table.row(&[
            name.clone(),
            format!("{:.4}", strat.mean_q()),
            format!("{succ}/{trials}"),
            msg_str,
            struct_str,
            ratio_str,
        ]);
    }

    report.para(format!(
        "Figure-2 network: n = {} ({} nodes total), D = {diameter}, λ = {lam:.0}, \
         budget c·D·log(n/D) = {budget} rounds (c = {c}); {trials} runs per \
         strategy. The structural scale is log²n/λ = {l2_over_lam:.0} msgs/node; \
         with the generous c the theorem's own constant deflates the formal floor \
         to {floor:.1}. The predicted pattern: hot single-scale algorithms \
         (E[q] ≳ 1/8) jam the 2ⁱ-leaf stars and *never* succeed; cold ones crawl \
         past the budget; every reliable survivor spends Θ(log²n/λ)-scale energy — \
         around 1–3× the structural scale, never materially below it.",
        net.n_param,
        net.graph.n(),
    ));
    report.table(&table);
    report
}
