//! **E2 — Lemmas 2.3 & 2.4.** Phase-1 growth: the active set multiplies
//! by a factor in `[d/16, 2d]` per round, landing at `|U_{T+1}| = Θ(d^T)`.
//!
//! Ported to the `radio-sim` sweep API: each traced run reports its
//! per-round growth factors as sweep extras, which aggregate into the
//! tables here and into `results/sweep_e2.json`.

use crate::common::{broadcast_trial, cell_extra, sweep_note};
use crate::{Ctx, Report};
use radio_core::broadcast::ee_random::{run_ee_broadcast_traced, EeBroadcastConfig};
use radio_graph::GraphFamily;
use radio_sim::{Sweep, SweepCell};
use radio_util::TextTable;

/// Phase-1 length and mean degree for a cell (shared by runner + table).
fn phase1_params(n: usize, p: f64) -> (usize, f64) {
    let cfg = EeBroadcastConfig::for_gnp(n, p);
    (cfg.params.t as usize, cfg.params.d)
}

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e2",
        "E2 — Lemmas 2.3/2.4: Phase-1 active-set growth on G(n,p)",
    );
    let trials = ctx.trials(20, 6);

    // d ≈ n^{1/3} gives T = 3 Phase-1 rounds at n = 2^15.
    let mut sweep = Sweep::new("e2", ctx.seed, trials);
    for n in [4096usize, 32768] {
        let d_target = (n as f64).powf(1.0 / 3.0).round();
        sweep.push(SweepCell::new(
            "ee_broadcast_traced",
            GraphFamily::GnpDirected,
            n,
            d_target / n as f64,
        ));
    }

    let sweep_report = sweep.run(|cell, graph, seed| {
        let cfg = EeBroadcastConfig::for_gnp(cell.n, cell.p);
        let (t_phase1, d) = phase1_params(cell.n, cell.p);
        let out = run_ee_broadcast_traced(graph, 0, &cfg, seed);
        // active_series[r] = |U_{r+2}| after round r+1; |U_1| = 1 (the
        // source).
        let series = out
            .trace
            .as_ref()
            .expect("traced run carries a trace")
            .active_series();
        let mut trial = broadcast_trial(&out);
        for round in 0..t_phase1 {
            let prev = if round == 0 {
                1.0
            } else {
                series.get(round - 1).copied().unwrap_or(0) as f64
            };
            let next = series.get(round).copied().unwrap_or(0) as f64;
            if prev > 0.0 {
                let growth = next / prev;
                let in_range = growth >= d / 16.0 && growth <= 2.0 * d;
                trial = trial
                    .extra(format!("growth_r{}", round + 1), growth)
                    .extra(format!("in_range_r{}", round + 1), f64::from(in_range));
            }
        }
        if let Some(&u_final) = series.get(t_phase1 - 1) {
            trial = trial.extra("final_ratio", u_final as f64 / d.powi(t_phase1 as i32));
        }
        trial
    });

    let mut table = TextTable::new(&[
        "n",
        "d",
        "T",
        "round",
        "growth |U_{t+1}|/|U_t|",
        "growth/d",
        "in [d/16, 2d]?",
    ]);
    let mut final_table = TextTable::new(&[
        "n",
        "d",
        "T",
        "|U_{T+1}|/d^T (mean)",
        "paper range [c1, c2]",
    ]);

    for cell in &sweep_report.cells {
        let (t_phase1, d) = phase1_params(cell.cell.n, cell.cell.p);
        for round in 1..=t_phase1 {
            let Some(growth) = cell_extra(cell, &format!("growth_r{round}")) else {
                continue;
            };
            let within = cell_extra(cell, &format!("in_range_r{round}"))
                .map_or(0, |s| (s.mean * s.n as f64).round() as usize);
            table.row(&[
                cell.cell.n.to_string(),
                format!("{d:.0}"),
                t_phase1.to_string(),
                round.to_string(),
                format!("{:.1} ± {:.1}", growth.mean, growth.ci95_half_width()),
                format!("{:.2}", growth.mean / d),
                format!("{within}/{}", growth.n),
            ]);
        }
        if let Some(fr) = cell_extra(cell, "final_ratio") {
            final_table.row(&[
                cell.cell.n.to_string(),
                format!("{d:.0}"),
                t_phase1.to_string(),
                format!("{:.3} (min {:.3}, max {:.3})", fr.mean, fr.min, fr.max),
                "[1.5e-7, 43.5] (loose theory constants)".to_string(),
            ]);
        }
    }

    report.para(format!(
        "{trials} traced runs per n. Lemma 2.3 predicts per-round growth in \
         [d/16, 2d]; in practice the factor hugs d·e^{{−dp·|U|}} ≈ d early on. \
         Lemma 2.4's constants c1 = 16⁻⁴4⁻³, c2 = 16e are astronomically loose; \
         the measured |U_(T+1)|/d^T ratio lands well inside them."
    ));
    report.table(&table);
    report.para("Final Phase-1 size (Lemma 2.4):");
    report.table(&final_table);
    match sweep_report.write_json(&ctx.out_dir) {
        Ok(path) => {
            report.para(sweep_note(&path));
        }
        Err(e) => eprintln!("warning: cannot write e2 sweep JSON: {e}"),
    }
    report
}
