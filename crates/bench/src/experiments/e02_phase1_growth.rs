//! **E2 — Lemmas 2.3 & 2.4.** Phase-1 growth: the active set multiplies
//! by a factor in `[d/16, 2d]` per round, landing at `|U_{T+1}| = Θ(d^T)`.

use crate::{Ctx, Report};
use radio_core::broadcast::ee_random::{run_ee_broadcast_traced, EeBroadcastConfig};
use radio_graph::generate::gnp_directed;
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{derive_rng, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e2",
        "E2 — Lemmas 2.3/2.4: Phase-1 active-set growth on G(n,p)",
    );
    let trials = ctx.trials(20, 6);

    // d ≈ n^{1/3} gives T = 3 Phase-1 rounds at n = 2^15.
    let mut table = TextTable::new(&[
        "n",
        "d",
        "T",
        "round",
        "growth |U_{t+1}|/|U_t|",
        "growth/d",
        "in [d/16, 2d]?",
    ]);
    let mut final_table = TextTable::new(&[
        "n",
        "d",
        "T",
        "|U_{T+1}|/d^T (mean)",
        "paper range [c1, c2]",
    ]);

    for n in [4096usize, 32768] {
        let d_target = (n as f64).powf(1.0 / 3.0).round();
        let p = d_target / n as f64;
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        let t_phase1 = cfg.params.t as usize;
        let d = cfg.params.d;

        // Collect the active-series for each trial.
        let traces = parallel_trials(trials, ctx.seed ^ (n as u64) << 1, |_, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"e2-g", 0));
            let out = run_ee_broadcast_traced(&g, 0, &cfg, seed);
            out.trace.expect("traced").active_series()
        });

        // Per-round growth factors. active_series[r] = |U_{r+2}| after
        // round r+1; |U_1| = 1 (the source).
        for round in 0..t_phase1 {
            let growths: Vec<f64> = traces
                .iter()
                .filter_map(|s| {
                    let prev = if round == 0 {
                        1.0
                    } else {
                        s.get(round - 1).copied().unwrap_or(0) as f64
                    };
                    let next = s.get(round).copied().unwrap_or(0) as f64;
                    (prev > 0.0).then_some(next / prev)
                })
                .collect();
            if growths.is_empty() {
                continue;
            }
            let st = SummaryStats::from_slice(&growths);
            let within = growths
                .iter()
                .filter(|&&g| g >= d / 16.0 && g <= 2.0 * d)
                .count();
            table.row(&[
                n.to_string(),
                format!("{d:.0}"),
                t_phase1.to_string(),
                (round + 1).to_string(),
                format!("{:.1} ± {:.1}", st.mean, st.ci95_half_width()),
                format!("{:.2}", st.mean / d),
                format!("{within}/{}", growths.len()),
            ]);
        }

        // |U_{T+1}| concentration (Lemma 2.4): measured against d^T.
        let finals: Vec<f64> = traces
            .iter()
            .filter_map(|s| {
                s.get(t_phase1 - 1)
                    .map(|&u| u as f64 / d.powi(t_phase1 as i32))
            })
            .collect();
        let st = SummaryStats::from_slice(&finals);
        final_table.row(&[
            n.to_string(),
            format!("{d:.0}"),
            t_phase1.to_string(),
            format!("{:.3} (min {:.3}, max {:.3})", st.mean, st.min, st.max),
            "[1.5e-7, 43.5] (loose theory constants)".to_string(),
        ]);
    }

    report.para(format!(
        "{trials} traced runs per n. Lemma 2.3 predicts per-round growth in \
         [d/16, 2d]; in practice the factor hugs d·e^{{−dp·|U|}} ≈ d early on. \
         Lemma 2.4's constants c1 = 16⁻⁴4⁻³, c2 = 16e are astronomically loose; \
         the measured |U_(T+1)|/d^T ratio lands well inside them."
    ));
    report.table(&table);
    report.para("Final Phase-1 size (Lemma 2.4):");
    report.table(&final_table);
    report
}
