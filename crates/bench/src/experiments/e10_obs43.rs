//! **E10 — Observation 4.3.** On the star-chain, any oblivious algorithm
//! needs ≈ `n log n / 2` total transmissions for `1 − 1/n` success:
//! sweep the per-round probability `q`, find each `q`'s
//! rounds-to-reliable-completion, and compare implied energy to the bound.

use crate::{Ctx, Report};
use radio_core::lower_bound::{obs43_bound, obs43_trial};
use radio_graph::generate::star_chain;
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::TextTable;

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "e10",
        "E10 — Observation 4.3: n·log n/2 total-transmission floor on the star-chain",
    );
    let trials = ctx.trials(20, 8);

    let mut table = TextTable::new(&[
        "n (destinations)",
        "q",
        "success",
        "completion round (q95)",
        "measured total msgs (mean)",
        "bound n·log n/2",
        "measured/bound",
    ]);

    for n_dest in [32usize, 64, 128] {
        let net = star_chain(n_dest);
        let bound = obs43_bound(n_dest);
        for q in [0.02, 0.05, 0.1, 0.2, 0.4] {
            let outs = parallel_trials(
                trials,
                ctx.seed ^ (n_dest as u64 * 7919) ^ (q * 1000.0) as u64,
                |_, seed| {
                    let out = obs43_trial(&net, q, 400_000, seed);
                    (
                        out.all_informed,
                        out.broadcast_time.map(|t| t as f64),
                        out.metrics.total_transmissions() as f64,
                    )
                },
            );
            let succ = outs.iter().filter(|o| o.0).count();
            let rounds: Vec<f64> = outs.iter().filter_map(|o| o.1).collect();
            let totals: Vec<f64> = outs.iter().filter(|o| o.0).map(|o| o.2).collect();
            if totals.is_empty() {
                table.row(&[
                    n_dest.to_string(),
                    format!("{q}"),
                    format!("{succ}/{trials}"),
                    "—".into(),
                    "—".into(),
                    format!("{bound:.0}"),
                    "—".into(),
                ]);
                continue;
            }
            let r = SummaryStats::from_slice(&rounds);
            let t = SummaryStats::from_slice(&totals);
            table.row(&[
                n_dest.to_string(),
                format!("{q}"),
                format!("{succ}/{trials}"),
                format!("{:.0}", r.q95),
                format!("{:.0}", t.mean),
                format!("{bound:.0}"),
                format!("{:.2}", t.mean / bound),
            ]);
        }
    }

    report.para(format!(
        "{trials} runs per (n, q); every informed node (including the 2n \
         intermediates) transmits with fixed probability q each round until the \
         run completes. The proof's mechanism: each destination hears exactly two \
         intermediates, so its per-round inform probability is 2q(1−q) and the \
         slowest of n destinations forces Σq ≈ log n/4 per intermediate. \
         Measured totals at every q sit at or above the n·log n/2 floor — \
         no q beats it, which is the Observation's content."
    ));
    report.table(&table);
    report
}
