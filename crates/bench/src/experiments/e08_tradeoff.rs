//! **E8 — Theorem 4.2.** The λ trade-off: time `O(Dλ + log² n)` vs
//! messages `O(log² n / λ)`, swept on a deep network.

use crate::{Ctx, Report};
use radio_core::broadcast::ee_general::{run_general_broadcast, GeneralBroadcastConfig};
use radio_core::params::lambda;
use radio_graph::analysis::diameter_from;
use radio_graph::generate::caterpillar;
use radio_sim::parallel_trials;
use radio_stats::SummaryStats;
use radio_util::{derive_rng, TextTable};

pub fn run(ctx: &Ctx) -> Report {
    let mut report = Report::new("e8", "E8 — Theorem 4.2: the time/energy trade-off in λ");
    let trials = ctx.trials(8, 4);
    let _ = derive_rng(ctx.seed, b"unused", 0);

    let g = caterpillar(384, 1); // n = 768, D = 385: deep ⇒ λ spans [1, log n]
    let n = g.n();
    let d = diameter_from(&g, 0).expect("connected");
    let lam_min = lambda(n, d);
    let l = (n as f64).log2();

    let mut table = TextTable::new(&[
        "λ",
        "success",
        "bcast time",
        "time/(Dλ+log²n)",
        "mean msgs/node",
        "msgs/(log²n/λ)",
        "time × msgs",
    ]);

    let mut lam = lam_min;
    while lam <= l + 1e-9 {
        let cfg = GeneralBroadcastConfig::new(n, d).with_lambda(lam);
        let outs = parallel_trials(trials, ctx.seed ^ (lam * 100.0) as u64, |_, seed| {
            let out = run_general_broadcast(&g, 0, &cfg, seed);
            (
                out.all_informed,
                out.broadcast_time,
                out.mean_msgs_per_node(),
            )
        });
        let succ = outs.iter().filter(|o| o.0).count();
        let times: Vec<f64> = outs.iter().filter_map(|o| o.1.map(|t| t as f64)).collect();
        let msgs: Vec<f64> = outs.iter().map(|o| o.2).collect();
        if !times.is_empty() {
            let t = SummaryStats::from_slice(&times);
            let m = SummaryStats::from_slice(&msgs);
            let scale = d as f64 * lam + l * l;
            table.row(&[
                format!("{lam:.1}"),
                format!("{succ}/{trials}"),
                format!("{:.0}", t.mean),
                format!("{:.2}", t.mean / scale),
                format!("{:.1}", m.mean),
                format!("{:.2}", m.mean / (l * l / lam)),
                format!("{:.0}", t.mean * m.mean),
            ]);
        }
        lam += 1.0;
    }

    report.para(format!(
        "caterpillar n = {n}, D = {d}; {trials} runs per λ. Theorem 4.2 predicts \
         time ∝ λ and msgs ∝ 1/λ, i.e. a constant time×msgs product — the last \
         column. Past λ ≈ log n / 2 the distribution's 1/(2 log n) floor dominates \
         and both curves flatten (the bounds coincide there up to constants)."
    ));
    report.table(&table);
    report
}
