//! The Chernoff bounds of the paper's Appendix A (Lemma A.1), as
//! computable functions.
//!
//! These give the *theoretical* failure probabilities that the paper's
//! proofs plug in; the experiment tables print them next to measured
//! failure rates so the reader can see how loose the theory constants are
//! at simulated sizes.

/// Lemma A.1(1): `Pr[X < (1 − ε)µ] < exp(−µ ε² / 2)` for `0 ≤ ε ≤ 1`.
///
/// # Panics
/// Panics if `ε ∉ [0, 1]` or `µ < 0`.
pub fn chernoff_lower_tail(mu: f64, eps: f64) -> f64 {
    assert!((0.0..=1.0).contains(&eps), "ε = {eps} out of [0,1]");
    assert!(mu >= 0.0);
    (-mu * eps * eps / 2.0).exp()
}

/// Lemma A.1(2): `Pr[X > (1 + ε)µ] < exp(−µ ε² / 3)` for `ε > 0`.
///
/// # Panics
/// Panics if `ε ≤ 0` or `µ < 0`.
pub fn chernoff_upper_tail(mu: f64, eps: f64) -> f64 {
    assert!(eps > 0.0, "ε must be positive");
    assert!(mu >= 0.0);
    (-mu * eps * eps / 3.0).exp()
}

/// Lemma A.1(3): `Pr[|X − µ| > εµ] < 2·exp(−µ ε² / 3)` for `0 ≤ ε ≤ 1`.
pub fn chernoff_two_sided(mu: f64, eps: f64) -> f64 {
    assert!((0.0..=1.0).contains(&eps), "ε = {eps} out of [0,1]");
    assert!(mu >= 0.0);
    (2.0 * (-mu * eps * eps / 3.0).exp()).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_shrink_with_mu() {
        let small = chernoff_lower_tail(10.0, 0.5);
        let large = chernoff_lower_tail(1000.0, 0.5);
        assert!(large < small);
        assert!(large < 1e-50);
    }

    #[test]
    fn bounds_shrink_with_eps() {
        assert!(chernoff_upper_tail(100.0, 1.0) < chernoff_upper_tail(100.0, 0.1));
    }

    #[test]
    fn two_sided_is_capped_at_one() {
        assert_eq!(chernoff_two_sided(0.0, 0.5), 1.0);
    }

    #[test]
    fn known_value() {
        // µ = 72, ε = 1/2: exp(−72·(1/4)/2) = exp(−9).
        let b = chernoff_lower_tail(72.0, 0.5);
        assert!((b - (-9.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn upper_tail_rejects_zero_eps() {
        let _ = chernoff_upper_tail(10.0, 0.0);
    }
}
