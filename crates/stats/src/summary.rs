//! Descriptive statistics over trial samples.

use serde::{Deserialize, Serialize};

/// Mean of a sample; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Linear-interpolated quantile (`q ∈ [0, 1]`) of a sample.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q = {q} out of [0,1]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Full summary of a sample: count, mean, sample variance/std, extremes,
/// median and the 5 %/95 % quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    pub n: usize,
    pub mean: f64,
    /// Unbiased sample variance (n − 1 denominator); 0 when `n < 2`.
    pub var: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
    pub q05: f64,
    pub q95: f64,
}

impl SummaryStats {
    /// Summarise a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn from_slice(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        let n = xs.len();
        let m = mean(xs);
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        SummaryStats {
            n,
            mean: m,
            var,
            std: var.sqrt(),
            min,
            max,
            median: quantile(xs, 0.5),
            q05: quantile(xs, 0.05),
            q95: quantile(xs, 0.95),
        }
    }

    /// Summarise integer-valued samples (round counts, message counts).
    pub fn from_ints<I: IntoIterator<Item = u64>>(xs: I) -> Self {
        let v: Vec<f64> = xs.into_iter().map(|x| x as f64).collect();
        Self::from_slice(&v)
    }

    /// Half-width of the normal-approximation 95 % CI for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }

    /// `"12.3 ± 0.4"` rendering for tables.
    pub fn mean_pm(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.ci95_half_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(quantile(&a, 0.5), quantile(&b, 0.5));
    }

    #[test]
    fn summary_known_values() {
        let s = SummaryStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.var - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_single_point() {
        let s = SummaryStats::from_slice(&[3.0]);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn from_ints_matches() {
        let s = SummaryStats::from_ints([1u64, 2, 3]);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn summary_of_empty_panics() {
        let _ = SummaryStats::from_slice(&[]);
    }
}
