//! Statistics for the `adhoc-radio` experiment harness.
//!
//! The paper's claims are asymptotic ("`O(log n)` rounds w.h.p.",
//! "`Θ(d)` growth per round", "success probability `≥ 1 − 1/n`"). Checking
//! them empirically needs:
//!
//! * [`summary`] — descriptive statistics over repeated trials.
//! * [`fit`] — least-squares fits: measured rounds vs. `log n`, messages
//!   vs. `log² n / λ`, and log-log slope estimation to distinguish
//!   logarithmic from polynomial growth.
//! * [`proportion`] — Wilson score intervals for success probabilities
//!   (the right tool for "did broadcasting finish in ≥ 1 − 1/n of
//!   trials?").
//! * [`bounds`] — the Chernoff bounds of the paper's Appendix A, used to
//!   overlay theory curves on measured tables.

pub mod bounds;
pub mod fit;
pub mod proportion;
pub mod summary;

pub use bounds::{chernoff_lower_tail, chernoff_two_sided, chernoff_upper_tail};
pub use fit::{fit_against, log_log_slope, LinearFit};
pub use proportion::{wilson_interval, SuccessCounter};
pub use summary::{mean, quantile, SummaryStats};
