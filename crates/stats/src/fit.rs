//! Least-squares fits for scaling-law checks.
//!
//! The experiments ask questions like *"do measured rounds grow like
//! `log n`?"* ([`fit_against`] with `x = log n`, check `R²`) and *"is
//! total-message growth polynomial or logarithmic in `n`?"*
//! ([`log_log_slope`]: slope ≈ 0 ⇒ polylog, slope ≈ 1 ⇒ linear).

use serde::{Deserialize, Serialize};

/// Ordinary least squares `y ≈ intercept + slope · x` with `R²`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination; 1 = perfect linear relationship.
    pub r2: f64,
}

impl LinearFit {
    /// Fit `y` against `x`.
    ///
    /// # Panics
    /// Panics if the slices differ in length or hold fewer than 2 points.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        assert!(xs.len() >= 2, "need ≥ 2 points to fit a line");
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            sxx += (x - mx) * (x - mx);
            sxy += (x - mx) * (y - my);
            syy += (y - my) * (y - my);
        }
        assert!(sxx > 0.0, "all x values identical; slope undefined");
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        // R² = 1 − SS_res / SS_tot; for constant y define R² = 1 (the line
        // y = const fits perfectly).
        let r2 = if syy == 0.0 {
            1.0
        } else {
            let ss_res: f64 = xs
                .iter()
                .zip(ys.iter())
                .map(|(&x, &y)| {
                    let e = y - (intercept + slope * x);
                    e * e
                })
                .sum();
            1.0 - ss_res / syy
        };
        LinearFit {
            slope,
            intercept,
            r2,
        }
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit `y` against a transformed predictor `f(x)` — e.g.
/// `fit_against(&ns, &rounds, |n| n.ln())` tests `rounds ~ a + b·ln n`.
pub fn fit_against<F: Fn(f64) -> f64>(xs: &[f64], ys: &[f64], f: F) -> LinearFit {
    let tx: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
    LinearFit::fit(&tx, ys)
}

/// Slope of `ln y` against `ln x` — the empirical polynomial exponent.
///
/// A measurement that is truly `Θ(polylog)` shows a slope drifting toward
/// 0 as `x` grows; `Θ(x)` shows slope ≈ 1.
///
/// # Panics
/// Panics if any value is non-positive (log undefined).
pub fn log_log_slope(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert!(
        xs.iter().chain(ys.iter()).all(|&v| v > 0.0),
        "log-log fit needs strictly positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    LinearFit::fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let f = LinearFit::fit(&xs, &ys);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 29.0).abs() < 1e-12);
    }

    #[test]
    fn r2_degrades_with_noise() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        // Deterministic "noise" with zero mean.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + if i % 2 == 0 { 20.0 } else { -20.0 })
            .collect();
        let f = LinearFit::fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 0.1);
        assert!(f.r2 < 0.95);
        assert!(f.r2 > 0.5);
    }

    #[test]
    fn constant_y_has_r2_one() {
        let f = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn log_log_recovers_exponent() {
        let xs: Vec<f64> = (1..=20).map(|i| (i * 100) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x.powf(1.5)).collect();
        let f = log_log_slope(&xs, &ys);
        assert!((f.slope - 1.5).abs() < 1e-9, "slope = {}", f.slope);
    }

    #[test]
    fn log_growth_has_near_zero_loglog_slope() {
        let xs: Vec<f64> = (4..=17).map(|k| (1u64 << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 * x.ln()).collect();
        let f = log_log_slope(&xs, &ys);
        assert!(
            f.slope < 0.2,
            "log data fit slope {} should be ≪ 1",
            f.slope
        );
    }

    #[test]
    fn fit_against_log_predictor() {
        let ns: Vec<f64> = (4..=16).map(|k| (1u64 << k) as f64).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 3.0 + 4.0 * n.ln()).collect();
        let f = fit_against(&ns, &ys, |n| n.ln());
        assert!((f.slope - 4.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn identical_x_panics() {
        let _ = LinearFit::fit(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn log_log_rejects_nonpositive() {
        let _ = log_log_slope(&[1.0, 0.0], &[1.0, 1.0]);
    }
}
