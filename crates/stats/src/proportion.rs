//! Success-probability estimation.
//!
//! The paper's guarantees are of the form "event `A` holds with
//! probability `≥ 1 − n⁻¹`". Empirically we run `k` independent trials
//! and report the Wilson score interval for the success proportion — the
//! standard interval that stays honest near 0 and 1, exactly where
//! w.h.p. claims live.

use serde::{Deserialize, Serialize};

/// Wilson score interval for `successes / trials` at confidence `z`
/// (z = 1.96 for 95 %).
///
/// Returns `(low, high)`.
///
/// # Panics
/// Panics if `trials == 0` or `successes > trials`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "no trials");
    assert!(successes <= trials, "successes > trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

/// Accumulates success/failure outcomes across trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuccessCounter {
    pub successes: u64,
    pub trials: u64,
}

impl SuccessCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one trial outcome.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        self.successes += u64::from(success);
    }

    /// Point estimate of the success probability.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// 95 % Wilson interval.
    pub fn wilson95(&self) -> (f64, f64) {
        wilson_interval(self.successes, self.trials, 1.96)
    }

    /// True if, at 95 % confidence, the success probability exceeds
    /// `threshold` (the Wilson lower bound clears it).
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.wilson95().0 > threshold
    }

    /// Table rendering: `"29/30 (0.97)"`.
    pub fn display(&self) -> String {
        format!("{}/{} ({:.2})", self.successes, self.trials, self.rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_is_sane_at_extremes() {
        let (lo, hi) = wilson_interval(0, 20, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.25);
        let (lo, hi) = wilson_interval(20, 20, 1.96);
        assert!(lo > 0.75 && lo < 1.0);
        assert!(hi > 1.0 - 1e-9, "hi = {hi}");
    }

    #[test]
    fn wilson_known_value() {
        // 15/20 at 95 %: classic textbook value ≈ (0.531, 0.888).
        let (lo, hi) = wilson_interval(15, 20, 1.96);
        assert!((lo - 0.531).abs() < 0.005, "lo = {lo}");
        assert!((hi - 0.888).abs() < 0.005, "hi = {hi}");
    }

    #[test]
    fn wilson_contains_point_estimate() {
        for s in 0..=30u64 {
            let (lo, hi) = wilson_interval(s, 30, 1.96);
            let p = s as f64 / 30.0;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        }
    }

    #[test]
    fn counter_accumulates() {
        let mut c = SuccessCounter::new();
        for i in 0..10 {
            c.record(i % 5 != 0);
        }
        assert_eq!(c.trials, 10);
        assert_eq!(c.successes, 8);
        assert!((c.rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn exceeds_requires_confidence_not_just_rate() {
        let mut few = SuccessCounter::new();
        few.record(true);
        few.record(true);
        // 2/2 but the Wilson lower bound is far below 0.9.
        assert!(!few.exceeds(0.9));
        let mut many = SuccessCounter::new();
        for _ in 0..200 {
            many.record(true);
        }
        assert!(many.exceeds(0.9));
    }

    #[test]
    #[should_panic]
    fn zero_trials_panics() {
        let _ = wilson_interval(0, 0, 1.96);
    }
}
