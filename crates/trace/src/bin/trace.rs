//! `trace` — inspect, export, and diff `.rtrc` recordings.
//!
//! ```sh
//! trace info run.rtrc                 # header, round/event counts
//! trace export run.rtrc [out.jsonl]   # JSONL (stdout by default)
//! trace diff a.rtrc b.rtrc            # first divergent event; exit 1 if any
//! ```

use radio_trace::{diff, first_divergence, jsonl, Recording};
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage:\n  trace info <file.rtrc>\n  trace export <file.rtrc> [out.jsonl]\n  \
         trace diff <a.rtrc> <b.rtrc>"
    );
}

fn die(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Recording, String> {
    Recording::read_from(path)
}

fn cmd_info(path: &str) -> ExitCode {
    let rec = match load(path) {
        Ok(r) => r,
        Err(e) => return die(&e),
    };
    let h = &rec.header;
    println!("file:         {path}");
    println!("seed:         {}", h.seed);
    println!("engine:       {}", h.engine);
    println!("topology:     {}", h.topology);
    println!("max_rounds:   {}", h.max_rounds);
    println!("half_duplex:  {}", h.half_duplex);
    println!("code_version: {}", h.code_version);
    println!("rounds:       {}", rec.rounds.len());
    println!("events:       {}", rec.event_count());
    match rec.footer {
        Some(f) => println!("completed:    {}", f.completed),
        None => println!("completed:    unknown (no footer)"),
    }
    ExitCode::SUCCESS
}

fn cmd_export(path: &str, out: Option<&str>) -> ExitCode {
    let rec = match load(path) {
        Ok(r) => r,
        Err(e) => return die(&e),
    };
    let result = match out {
        Some(out_path) => std::fs::File::create(out_path)
            .and_then(|f| jsonl::export_jsonl(&rec, f))
            .map_err(|e| format!("cannot write {out_path}: {e}")),
        None => {
            let stdout = std::io::stdout();
            jsonl::export_jsonl(&rec, stdout.lock()).map_err(|e| format!("stdout: {e}"))
        }
    };
    match result {
        Ok(lines) => {
            if let Some(out_path) = out {
                eprintln!("wrote {lines} lines to {out_path}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => die(&e),
    }
}

fn cmd_diff(path_a: &str, path_b: &str) -> ExitCode {
    let (a, b) = match (load(path_a), load(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return die(&e),
    };
    let hdr = diff::header_diff(&a, &b);
    for (field, va, vb) in &hdr {
        println!("header {field}: A = {va}, B = {vb}");
    }
    match first_divergence(&a, &b) {
        None => {
            println!(
                "event streams identical ({} rounds, {} events)",
                a.rounds.len(),
                a.event_count()
            );
            ExitCode::SUCCESS
        }
        Some(d) => {
            println!("{d}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "info" => cmd_info(path),
        [cmd, path] if cmd == "export" => cmd_export(path, None),
        [cmd, path, out] if cmd == "export" => cmd_export(path, Some(out)),
        [cmd, a, b] if cmd == "diff" => cmd_diff(a, b),
        [cmd] if cmd == "--help" || cmd == "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        _ => {
            usage();
            ExitCode::FAILURE
        }
    }
}
