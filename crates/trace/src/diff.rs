//! Differential debugging over two recordings: align them round by
//! round and report the first event where the histories part ways.
//!
//! This is the offline counterpart of [`ReplayVerifier`]: replay
//! compares a recording against a *live* run, diff compares two files
//! after the fact (a seed-perturbed pair, a before/after of a suspect
//! change, a v1 vs v2 capture). Alignment uses the blocks' round
//! numbers, so a run that skipped or repeated rounds is caught before
//! any event-level comparison.
//!
//! [`ReplayVerifier`]: crate::replay::ReplayVerifier

use crate::binary::Recording;
use crate::event::TraceEvent;

/// The first point where two recordings disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDivergence {
    /// Round of the divergent position (side A's numbering where both
    /// exist).
    pub round: u64,
    /// Event index within the round.
    pub index: usize,
    /// Side A's event at this position (`None`: A ended first).
    pub a: Option<TraceEvent>,
    /// Side B's event at this position (`None`: B ended first).
    pub b: Option<TraceEvent>,
}

impl std::fmt::Display for EventDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let node = self
            .a
            .and_then(|e| e.node())
            .or_else(|| self.b.and_then(|e| e.node()));
        write!(
            f,
            "first divergence at round {}, event #{}",
            self.round, self.index
        )?;
        if let Some(node) = node {
            write!(f, ", node {node}")?;
        }
        match (&self.a, &self.b) {
            (Some(a), Some(b)) => write!(f, ": A has {a:?}, B has {b:?}"),
            (Some(a), None) => write!(f, ": A has {a:?}, B ended"),
            (None, Some(b)) => write!(f, ": A ended, B has {b:?}"),
            (None, None) => Ok(()),
        }
    }
}

/// Header fields that differ between two recordings, as
/// `(field, a_value, b_value)` — a seed or config mismatch usually
/// *explains* the event divergence, so the CLI prints these first.
pub fn header_diff(a: &Recording, b: &Recording) -> Vec<(&'static str, String, String)> {
    let (ha, hb) = (&a.header, &b.header);
    let mut out = Vec::new();
    if ha.seed != hb.seed {
        out.push(("seed", ha.seed.to_string(), hb.seed.to_string()));
    }
    if ha.engine != hb.engine {
        out.push(("engine", ha.engine.clone(), hb.engine.clone()));
    }
    if ha.topology != hb.topology {
        out.push(("topology", ha.topology.clone(), hb.topology.clone()));
    }
    if ha.max_rounds != hb.max_rounds {
        out.push((
            "max_rounds",
            ha.max_rounds.to_string(),
            hb.max_rounds.to_string(),
        ));
    }
    if ha.half_duplex != hb.half_duplex {
        out.push((
            "half_duplex",
            ha.half_duplex.to_string(),
            hb.half_duplex.to_string(),
        ));
    }
    if ha.code_version != hb.code_version {
        out.push((
            "code_version",
            ha.code_version.clone(),
            hb.code_version.clone(),
        ));
    }
    out
}

/// The first divergent event between two recordings, or `None` when
/// their event streams are identical (headers are *not* compared —
/// see [`header_diff`] for that; a re-recorded run under a newer code
/// version should still diff clean when behavior is unchanged).
pub fn first_divergence(a: &Recording, b: &Recording) -> Option<EventDivergence> {
    let rounds = a.rounds.len().max(b.rounds.len());
    for k in 0..rounds {
        let (ra, rb) = (a.rounds.get(k), b.rounds.get(k));
        match (ra, rb) {
            (Some(ra), Some(rb)) => {
                let len = ra.events.len().max(rb.events.len());
                for i in 0..len {
                    let (ea, eb) = (ra.events.get(i).copied(), rb.events.get(i).copied());
                    if ea != eb {
                        return Some(EventDivergence {
                            round: ra.round,
                            index: i,
                            a: ea,
                            b: eb,
                        });
                    }
                }
            }
            (Some(ra), None) => {
                return Some(EventDivergence {
                    round: ra.round,
                    index: 0,
                    a: ra.events.first().copied(),
                    b: None,
                })
            }
            (None, Some(rb)) => {
                return Some(EventDivergence {
                    round: rb.round,
                    index: 0,
                    a: None,
                    b: rb.events.first().copied(),
                })
            }
            (None, None) => unreachable!("k < max(len_a, len_b)"),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::RoundEvents;
    use crate::event::RunHeader;

    fn rec(seed: u64, rounds: Vec<Vec<TraceEvent>>) -> Recording {
        Recording {
            header: RunHeader::new(seed, "v2", "test"),
            rounds: rounds
                .into_iter()
                .enumerate()
                .map(|(i, events)| RoundEvents {
                    round: i as u64 + 1,
                    events,
                })
                .collect(),
            footer: None,
        }
    }

    fn round(r: u64, mid: Vec<TraceEvent>) -> Vec<TraceEvent> {
        let mut events = vec![TraceEvent::RoundStart { round: r }];
        events.extend(mid);
        events.push(TraceEvent::RoundEnd {
            transmitters: 0,
            deliveries: 0,
            awake: 2,
        });
        events
    }

    #[test]
    fn identical_recordings_diff_clean() {
        let a = rec(1, vec![round(1, vec![TraceEvent::Transmit { node: 4 }])]);
        assert_eq!(first_divergence(&a, &a.clone()), None);
        assert!(header_diff(&a, &a.clone()).is_empty());
    }

    #[test]
    fn event_level_divergence_is_pinpointed() {
        let a = rec(
            1,
            vec![
                round(1, vec![TraceEvent::Transmit { node: 4 }]),
                round(2, vec![TraceEvent::Transmit { node: 5 }]),
            ],
        );
        let b = rec(
            1,
            vec![
                round(1, vec![TraceEvent::Transmit { node: 4 }]),
                round(2, vec![TraceEvent::Transmit { node: 6 }]),
            ],
        );
        let d = first_divergence(&a, &b).expect("divergence");
        assert_eq!(d.round, 2);
        assert_eq!(d.index, 1);
        assert_eq!(d.a, Some(TraceEvent::Transmit { node: 5 }));
        assert_eq!(d.b, Some(TraceEvent::Transmit { node: 6 }));
        let msg = d.to_string();
        assert!(msg.contains("round 2") && msg.contains("node 5"), "{msg}");
    }

    #[test]
    fn extra_rounds_and_extra_events_are_divergences() {
        let a = rec(1, vec![round(1, vec![])]);
        let b = rec(1, vec![round(1, vec![]), round(2, vec![])]);
        let d = first_divergence(&a, &b).expect("divergence");
        assert_eq!((d.round, d.a), (2, None));

        let short = rec(1, vec![round(1, vec![])]);
        let long = rec(1, vec![round(1, vec![TraceEvent::Sleep { node: 0 }])]);
        let d = first_divergence(&short, &long).expect("divergence");
        assert_eq!(d.round, 1);
        assert_eq!(d.index, 1); // short's RoundEnd vs long's Sleep
    }

    #[test]
    fn header_diff_reports_changed_fields_only() {
        let a = rec(1, vec![]);
        let mut b = rec(2, vec![]);
        b.header.half_duplex = true;
        let d = header_diff(&a, &b);
        let fields: Vec<&str> = d.iter().map(|(f, _, _)| *f).collect();
        assert_eq!(fields, vec!["seed", "half_duplex"]);
    }
}
