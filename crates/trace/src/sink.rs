//! The engine-facing hook: [`TraceSink`] and its three implementations.
//!
//! Same zero-cost contract as the engine's energy hook: the engine's
//! round loops are generic over `S: TraceSink` and gate every emission
//! site on `S::ACTIVE`, so with [`NullSink`] the compiler deletes the
//! sites entirely — the plain path is today's codegen, not today's
//! codegen plus dead branches. When a sink *is* active, `emit` must
//! stay cheap: the engine calls it from the serial side of the round
//! loop, so every nanosecond is on the critical path. Both real sinks
//! therefore buffer the raw [`TraceEvent`] (a 16-byte `Copy` value)
//! per round and do their heavier work — binary encoding, block
//! flushing, ring rotation — once per `RoundEnd`.

use crate::binary::{
    encode_event, encode_footer, encode_header, write_varint, RoundEvents, RunFooter,
};
use crate::event::{RunHeader, TraceEvent};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::Path;

/// Receives the engine's event stream. Implementations must not carry
/// any randomness or influence control flow — the zero-interference
/// property tests will catch a sink that does.
pub trait TraceSink {
    /// `false` compiles every emission site out of the engine.
    const ACTIVE: bool;

    /// One event, in deterministic serial order.
    fn emit(&mut self, ev: TraceEvent);
}

/// The do-nothing sink: the default for every untraced entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// Streams the `.rtrc` binary format into any [`io::Write`].
///
/// Events buffer in a reused `Vec<TraceEvent>` until `RoundEnd`, then
/// the round encodes and flushes as one length-prefixed block — so a
/// crash loses at most the in-flight round, and the hot `emit` path is
/// a plain vector push. I/O errors cannot surface mid-run (the engine
/// hook is infallible by design), so the sink parks the first error
/// and [`RecordingSink::finish`] reports it; a recording is only
/// trustworthy if `finish` returned `Ok`.
#[derive(Debug)]
pub struct RecordingSink<W: io::Write> {
    w: W,
    round_buf: Vec<TraceEvent>,
    encode_buf: Vec<u8>,
    rounds: u64,
    events: u64,
    err: Option<io::Error>,
}

impl RecordingSink<BufWriter<File>> {
    /// Create `path` (and missing parent directories) and write the
    /// header. The buffered file form is what the sweep/e18 knobs use.
    pub fn create(path: impl AsRef<Path>, header: &RunHeader) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Self::new(BufWriter::new(File::create(path)?), header)
    }
}

impl<W: io::Write> RecordingSink<W> {
    /// Wrap a writer and emit the file preamble immediately.
    pub fn new(mut w: W, header: &RunHeader) -> io::Result<Self> {
        w.write_all(&encode_header(header))?;
        Ok(RecordingSink {
            w,
            round_buf: Vec::with_capacity(256),
            encode_buf: Vec::with_capacity(1024),
            rounds: 0,
            events: 0,
            err: None,
        })
    }

    /// Rounds flushed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Events recorded so far (flushed rounds only).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Write the end marker + footer, flush, and surface any I/O error
    /// parked during the run. `completed` is the protocol's completion
    /// flag from the `RunResult`.
    pub fn finish(mut self, completed: bool) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        debug_assert!(
            self.round_buf.is_empty(),
            "finish() called mid-round: {} unflushed events",
            self.round_buf.len()
        );
        self.w.write_all(&encode_footer(&RunFooter {
            rounds: self.rounds,
            completed,
            events: self.events,
        }))?;
        self.w.flush()
    }

    fn flush_round(&mut self) {
        self.encode_buf.clear();
        for ev in &self.round_buf {
            encode_event(&mut self.encode_buf, ev);
        }
        self.events += self.round_buf.len() as u64;
        self.rounds += 1;
        self.round_buf.clear();
        let mut prefix = Vec::with_capacity(10);
        write_varint(&mut prefix, self.encode_buf.len() as u64);
        let res = self
            .w
            .write_all(&prefix)
            .and_then(|()| self.w.write_all(&self.encode_buf));
        if let (Err(e), None) = (res, &self.err) {
            self.err = Some(e);
        }
    }
}

impl<W: io::Write> TraceSink for RecordingSink<W> {
    const ACTIVE: bool = true;

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        self.round_buf.push(ev);
        if matches!(ev, TraceEvent::RoundEnd { .. }) {
            self.flush_round();
        }
    }
}

/// In-memory sink retaining the last `cap` rounds — the capped-retention
/// form the sweep API offers, and the flight-recorder shape for "keep
/// the tail of a huge run": memory is bounded by `cap` × events-per-round
/// no matter how long the run is. Evicted rounds recycle their event
/// vectors, so the steady state allocates only when a round out-sizes
/// every buffer seen before.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    rounds: VecDeque<RoundEvents>,
    cur: Vec<TraceEvent>,
    cur_round: u64,
    spare: Vec<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Retain at most `cap` (≥ 1) most-recent rounds.
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            rounds: VecDeque::new(),
            cur: Vec::new(),
            cur_round: 0,
            spare: Vec::new(),
            dropped: 0,
        }
    }

    /// The retained rounds, oldest first.
    pub fn rounds(&self) -> impl Iterator<Item = &RoundEvents> {
        self.rounds.iter()
    }

    /// Rounds evicted to stay under the cap.
    pub fn dropped_rounds(&self) -> u64 {
        self.dropped
    }

    /// Package the retained window as a [`Recording`] (footer present,
    /// `rounds`/`events` describing the *window*, not the full run).
    ///
    /// [`Recording`]: crate::binary::Recording
    pub fn into_recording(self, header: RunHeader, completed: bool) -> crate::binary::Recording {
        let rounds: Vec<RoundEvents> = self.rounds.into();
        let events = rounds.iter().map(|r| r.events.len() as u64).sum();
        crate::binary::Recording {
            header,
            footer: Some(RunFooter {
                rounds: rounds.len() as u64,
                completed,
                events,
            }),
            rounds,
        }
    }
}

impl TraceSink for RingSink {
    const ACTIVE: bool = true;

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if let TraceEvent::RoundStart { round } = ev {
            self.cur_round = round;
        }
        self.cur.push(ev);
        if matches!(ev, TraceEvent::RoundEnd { .. }) {
            let mut events = std::mem::take(&mut self.spare);
            events.clear();
            events.extend_from_slice(&self.cur);
            self.cur.clear();
            self.rounds.push_back(RoundEvents {
                round: self.cur_round,
                events,
            });
            if self.rounds.len() > self.cap {
                let evicted = self.rounds.pop_front().expect("len > cap ≥ 1");
                self.spare = evicted.events;
                self.dropped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::Recording;

    fn header() -> RunHeader {
        RunHeader::new(1, "v2", "test").with_config(10, false)
    }

    fn drive<S: TraceSink>(sink: &mut S, rounds: u64) {
        for r in 1..=rounds {
            sink.emit(TraceEvent::RoundStart { round: r });
            sink.emit(TraceEvent::Transmit { node: r as u32 });
            sink.emit(TraceEvent::RoundEnd {
                transmitters: 1,
                deliveries: 0,
                awake: 4,
            });
        }
    }

    // The zero-cost contract, checked at compile time.
    const _: () = assert!(!NullSink::ACTIVE);

    #[test]
    fn null_sink_emit_is_a_no_op() {
        NullSink.emit(TraceEvent::RoundStart { round: 1 }); // no-op, no panic
    }

    #[test]
    fn recording_sink_round_trips_through_the_reader() {
        let mut buf = Vec::new();
        let mut sink = RecordingSink::new(&mut buf, &header()).unwrap();
        drive(&mut sink, 3);
        assert_eq!(sink.rounds(), 3);
        assert_eq!(sink.events(), 9);
        sink.finish(true).unwrap();
        let rec = Recording::from_bytes(&buf).unwrap();
        assert_eq!(rec.header, header());
        assert_eq!(rec.rounds.len(), 3);
        assert_eq!(rec.rounds[2].round, 3);
        assert!(rec.footer.unwrap().completed);
    }

    #[test]
    fn recording_sink_create_writes_a_readable_file() {
        let dir = std::env::temp_dir().join(format!("rtrc-sink-{}", std::process::id()));
        let path = dir.join("nested/run.rtrc");
        let mut sink = RecordingSink::create(&path, &header()).unwrap();
        drive(&mut sink, 1);
        sink.finish(false).unwrap();
        let rec = Recording::read_from(&path).unwrap();
        assert_eq!(rec.rounds.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ring_sink_keeps_only_the_tail() {
        let mut sink = RingSink::new(2);
        drive(&mut sink, 5);
        assert_eq!(sink.dropped_rounds(), 3);
        let kept: Vec<u64> = sink.rounds().map(|r| r.round).collect();
        assert_eq!(kept, vec![4, 5]);
        let rec = sink.into_recording(header(), true);
        assert_eq!(rec.rounds.len(), 2);
        assert_eq!(rec.footer.unwrap().rounds, 2);
        // The packaged window re-encodes and re-reads cleanly.
        let back = Recording::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(back, rec);
    }
}
