//! The `.rtrc` on-disk format: a compact length-prefixed binary
//! encoding of a run's event stream, and the in-memory [`Recording`]
//! the reader produces.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic "RTRC" · version u16-LE
//! header:  seed · engine str · topology str · max_rounds ·
//!          half_duplex u8 · code_version str      (str = len · utf8)
//! blocks:  (payload_len > 0 · payload)*           one block per round
//! end:     payload_len = 0
//! footer:  rounds · completed u8 · total_events
//! ```
//!
//! Each block's payload is the round's events back-to-back, each a tag
//! byte plus varint fields (see [`encode_event`]). The length prefix is
//! what makes the format *navigable*: a reader can skip to round `k`
//! without decoding the rounds before it, which keeps ring retention,
//! diff alignment, and future visualization seeking cheap. Every
//! executed round produces a block (it always contains at least
//! `RoundStart` + `RoundEnd`), so a zero length is unambiguous as the
//! end marker, and the footer cross-checks truncation: a file that dies
//! mid-write fails loudly, not by silently looking like a shorter run.

use crate::event::{RunHeader, TraceEvent};
use radio_graph::NodeId;

/// Format version written after the magic; readers reject anything else.
pub const FORMAT_VERSION: u16 = 1;
/// File magic: "RTRC" (Radio TRaCe).
pub const MAGIC: &[u8; 4] = b"RTRC";

const TAG_ROUND_START: u8 = 0;
const TAG_TRANSMIT: u8 = 1;
const TAG_SLEEP: u8 = 2;
const TAG_DEPLETED: u8 = 3;
const TAG_COLLISION: u8 = 4;
const TAG_DELIVER: u8 = 5;
const TAG_ROUND_END: u8 = 6;

/// Append `x` as a LEB128 varint (7 bits per byte, high bit = more).
pub fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint at `*pos`, advancing it.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| format!("truncated varint at byte {pos}", pos = *pos))?;
        *pos += 1;
        if shift >= 64 {
            return Err(format!("varint overflow at byte {pos}", pos = *pos));
        }
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| format!("truncated string at byte {pos}", pos = *pos))?;
    let s = std::str::from_utf8(&bytes[*pos..end]).map_err(|e| e.to_string())?;
    *pos = end;
    Ok(s.to_string())
}

/// Encode the file preamble: magic, version, header.
pub fn encode_header(header: &RunHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    write_varint(&mut out, header.seed);
    write_str(&mut out, &header.engine);
    write_str(&mut out, &header.topology);
    write_varint(&mut out, header.max_rounds);
    out.push(u8::from(header.half_duplex));
    write_str(&mut out, &header.code_version);
    out
}

/// Append one event (tag byte + varint fields).
pub fn encode_event(out: &mut Vec<u8>, ev: &TraceEvent) {
    match *ev {
        TraceEvent::RoundStart { round } => {
            out.push(TAG_ROUND_START);
            write_varint(out, round);
        }
        TraceEvent::Transmit { node } => {
            out.push(TAG_TRANSMIT);
            write_varint(out, u64::from(node));
        }
        TraceEvent::Sleep { node } => {
            out.push(TAG_SLEEP);
            write_varint(out, u64::from(node));
        }
        TraceEvent::Depleted { node } => {
            out.push(TAG_DEPLETED);
            write_varint(out, u64::from(node));
        }
        TraceEvent::Collision { node } => {
            out.push(TAG_COLLISION);
            write_varint(out, u64::from(node));
        }
        TraceEvent::Deliver { node, from, woke } => {
            out.push(TAG_DELIVER);
            write_varint(out, u64::from(node));
            write_varint(out, u64::from(from));
            out.push(u8::from(woke));
        }
        TraceEvent::RoundEnd {
            transmitters,
            deliveries,
            awake,
        } => {
            out.push(TAG_ROUND_END);
            write_varint(out, transmitters);
            write_varint(out, deliveries);
            write_varint(out, awake);
        }
    }
}

fn read_node(bytes: &[u8], pos: &mut usize) -> Result<NodeId, String> {
    let x = read_varint(bytes, pos)?;
    NodeId::try_from(x).map_err(|_| format!("node id {x} exceeds u32"))
}

/// Decode one event at `*pos`, advancing it.
pub fn decode_event(bytes: &[u8], pos: &mut usize) -> Result<TraceEvent, String> {
    let tag = *bytes
        .get(*pos)
        .ok_or_else(|| format!("truncated event at byte {pos}", pos = *pos))?;
    *pos += 1;
    Ok(match tag {
        TAG_ROUND_START => TraceEvent::RoundStart {
            round: read_varint(bytes, pos)?,
        },
        TAG_TRANSMIT => TraceEvent::Transmit {
            node: read_node(bytes, pos)?,
        },
        TAG_SLEEP => TraceEvent::Sleep {
            node: read_node(bytes, pos)?,
        },
        TAG_DEPLETED => TraceEvent::Depleted {
            node: read_node(bytes, pos)?,
        },
        TAG_COLLISION => TraceEvent::Collision {
            node: read_node(bytes, pos)?,
        },
        TAG_DELIVER => {
            let node = read_node(bytes, pos)?;
            let from = read_node(bytes, pos)?;
            let woke = *bytes
                .get(*pos)
                .ok_or_else(|| format!("truncated deliver at byte {pos}", pos = *pos))?;
            *pos += 1;
            TraceEvent::Deliver {
                node,
                from,
                woke: woke != 0,
            }
        }
        TAG_ROUND_END => TraceEvent::RoundEnd {
            transmitters: read_varint(bytes, pos)?,
            deliveries: read_varint(bytes, pos)?,
            awake: read_varint(bytes, pos)?,
        },
        other => return Err(format!("unknown event tag {other} at byte {}", *pos - 1)),
    })
}

/// Run totals written after the end marker; the reader uses them to
/// detect truncated files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFooter {
    /// Rounds executed (must equal the number of blocks).
    pub rounds: u64,
    /// Whether the protocol reported completion.
    pub completed: bool,
    /// Total events across all blocks (must match).
    pub events: u64,
}

/// Encode the end marker + footer.
pub fn encode_footer(footer: &RunFooter) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    write_varint(&mut out, 0); // end-of-blocks marker
    write_varint(&mut out, footer.rounds);
    out.push(u8::from(footer.completed));
    write_varint(&mut out, footer.events);
    out
}

/// One round's decoded events, in emission order (starts with
/// `RoundStart`, ends with `RoundEnd`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundEvents {
    /// The 1-based round number (from the block's `RoundStart`).
    pub round: u64,
    /// All events of the round, `RoundStart`/`RoundEnd` included.
    pub events: Vec<TraceEvent>,
}

/// A fully decoded trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recording {
    /// Run provenance.
    pub header: RunHeader,
    /// One entry per executed round, in order.
    pub rounds: Vec<RoundEvents>,
    /// Totals; `None` for a truncated file read with
    /// [`Recording::from_bytes_lossy`].
    pub footer: Option<RunFooter>,
}

impl Recording {
    /// Total event count across all rounds.
    pub fn event_count(&self) -> u64 {
        self.rounds.iter().map(|r| r.events.len() as u64).sum()
    }

    /// Encode back to the `.rtrc` byte format (exact inverse of
    /// [`Recording::from_bytes`]; a missing footer is synthesized from
    /// the rounds with `completed = false`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = encode_header(&self.header);
        for round in &self.rounds {
            let mut payload = Vec::new();
            for ev in &round.events {
                encode_event(&mut payload, ev);
            }
            write_varint(&mut out, payload.len() as u64);
            out.extend_from_slice(&payload);
        }
        let footer = self.footer.unwrap_or(RunFooter {
            rounds: self.rounds.len() as u64,
            completed: false,
            events: self.event_count(),
        });
        out.extend_from_slice(&encode_footer(&footer));
        out
    }

    /// Write the encoded form to `path`.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Decode a complete `.rtrc` file, validating the footer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Recording, String> {
        let rec = Self::decode(bytes, true)?;
        Ok(rec)
    }

    /// Decode as much of a (possibly truncated) file as is intact —
    /// the crash-forensics path: a run that died mid-write still yields
    /// every fully flushed round.
    pub fn from_bytes_lossy(bytes: &[u8]) -> Result<Recording, String> {
        Self::decode(bytes, false)
    }

    /// Read and decode a file.
    pub fn read_from(path: impl AsRef<std::path::Path>) -> Result<Recording, String> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| format!("cannot read {path}: {e}", path = path.display()))?;
        Self::from_bytes(&bytes).map_err(|e| format!("{path}: {e}", path = path.display()))
    }

    fn decode(bytes: &[u8], strict: bool) -> Result<Recording, String> {
        if bytes.len() < 6 || &bytes[..4] != MAGIC {
            return Err("not a trace file (bad magic; expected \"RTRC\")".to_string());
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != FORMAT_VERSION {
            return Err(format!(
                "unsupported format version {version} (reader supports {FORMAT_VERSION})"
            ));
        }
        let mut pos = 6usize;
        let seed = read_varint(bytes, &mut pos)?;
        let engine = read_str(bytes, &mut pos)?;
        let topology = read_str(bytes, &mut pos)?;
        let max_rounds = read_varint(bytes, &mut pos)?;
        let half_duplex = *bytes.get(pos).ok_or("truncated header (half_duplex)")? != 0;
        pos += 1;
        let code_version = read_str(bytes, &mut pos)?;
        let header = RunHeader {
            seed,
            engine,
            topology,
            max_rounds,
            half_duplex,
            code_version,
        };

        let mut rounds = Vec::new();
        let mut events_total = 0u64;
        let footer = loop {
            let block_start = pos;
            let len = match read_varint(bytes, &mut pos) {
                Ok(l) => l as usize,
                Err(_) if !strict => {
                    pos = block_start;
                    break None;
                }
                Err(e) => return Err(e),
            };
            if len == 0 {
                // End marker: the footer follows.
                let rounds_f = read_varint(bytes, &mut pos)?;
                let completed = *bytes.get(pos).ok_or("truncated footer (completed)")? != 0;
                pos += 1;
                let events_f = read_varint(bytes, &mut pos)?;
                break Some(RunFooter {
                    rounds: rounds_f,
                    completed,
                    events: events_f,
                });
            }
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| format!("truncated block at byte {block_start}"));
            let end = match end {
                Ok(e) => e,
                Err(_) if !strict => {
                    pos = block_start;
                    break None;
                }
                Err(e) => return Err(e),
            };
            let mut events = Vec::new();
            while pos < end {
                events.push(decode_event(bytes, &mut pos)?);
            }
            if pos != end {
                return Err(format!("event overran its block at byte {pos}"));
            }
            let round = match events.first() {
                Some(TraceEvent::RoundStart { round }) => *round,
                other => {
                    return Err(format!(
                        "block at byte {block_start} does not begin with RoundStart \
                         (got {other:?})"
                    ))
                }
            };
            events_total += events.len() as u64;
            rounds.push(RoundEvents { round, events });
        };

        if strict {
            let footer = footer.ok_or("missing footer")?;
            if pos != bytes.len() {
                return Err(format!("trailing bytes after footer at {pos}"));
            }
            if footer.rounds != rounds.len() as u64 {
                return Err(format!(
                    "footer claims {} rounds, file has {} (truncated?)",
                    footer.rounds,
                    rounds.len()
                ));
            }
            if footer.events != events_total {
                return Err(format!(
                    "footer claims {} events, file has {events_total}",
                    footer.events
                ));
            }
        }
        Ok(Recording {
            header,
            rounds,
            footer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> RunHeader {
        RunHeader::new(0xDEAD_BEEF, "v2", "gnp/n=16/p=0.25").with_config(50, true)
    }

    fn sample_events() -> Vec<Vec<TraceEvent>> {
        vec![
            vec![
                TraceEvent::RoundStart { round: 1 },
                TraceEvent::Transmit { node: 0 },
                TraceEvent::Deliver {
                    node: 3,
                    from: 0,
                    woke: false,
                },
                TraceEvent::RoundEnd {
                    transmitters: 1,
                    deliveries: 1,
                    awake: 16,
                },
            ],
            vec![
                TraceEvent::RoundStart { round: 2 },
                TraceEvent::Transmit { node: 0 },
                TraceEvent::Transmit { node: 3 },
                TraceEvent::Collision { node: 5 },
                TraceEvent::Sleep { node: 0 },
                TraceEvent::Depleted { node: 9 },
                TraceEvent::RoundEnd {
                    transmitters: 2,
                    deliveries: 0,
                    awake: 14,
                },
            ],
        ]
    }

    fn encode_all(header: &RunHeader, rounds: &[Vec<TraceEvent>], completed: bool) -> Vec<u8> {
        let mut out = encode_header(header);
        let mut events = 0u64;
        for round in rounds {
            let mut payload = Vec::new();
            for ev in round {
                encode_event(&mut payload, ev);
            }
            write_varint(&mut out, payload.len() as u64);
            out.extend_from_slice(&payload);
            events += round.len() as u64;
        }
        out.extend_from_slice(&encode_footer(&RunFooter {
            rounds: rounds.len() as u64,
            completed,
            events,
        }));
        out
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(x));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert!(read_varint(&[0x80], &mut pos).is_err());
        let mut pos = 0;
        assert!(read_varint(&[0x80; 11], &mut pos).is_err());
    }

    #[test]
    fn recording_round_trips() {
        let header = sample_header();
        let rounds = sample_events();
        let bytes = encode_all(&header, &rounds, true);
        let rec = Recording::from_bytes(&bytes).expect("decode");
        assert_eq!(rec.header, header);
        assert_eq!(rec.rounds.len(), 2);
        assert_eq!(rec.rounds[0].round, 1);
        assert_eq!(rec.rounds[1].events, rounds[1]);
        assert_eq!(
            rec.footer,
            Some(RunFooter {
                rounds: 2,
                completed: true,
                events: 11,
            })
        );
        assert_eq!(rec.event_count(), 11);
    }

    #[test]
    fn strict_read_rejects_truncation_lossy_recovers_whole_rounds() {
        let bytes = encode_all(&sample_header(), &sample_events(), false);
        // Chop inside the second block.
        let cut = bytes.len() - 12;
        assert!(Recording::from_bytes(&bytes[..cut]).is_err());
        let rec = Recording::from_bytes_lossy(&bytes[..cut]).expect("lossy");
        assert_eq!(rec.rounds.len(), 1, "only the intact round survives");
        assert!(rec.footer.is_none());
    }

    #[test]
    fn bad_magic_and_version_fail() {
        assert!(Recording::from_bytes(b"NOPE\x01\x00").is_err());
        let mut bytes = encode_all(&sample_header(), &sample_events(), true);
        bytes[4] = 99;
        let err = Recording::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn footer_mismatch_fails_strict() {
        let mut bytes = encode_header(&sample_header());
        bytes.extend_from_slice(&encode_footer(&RunFooter {
            rounds: 3, // claims rounds the file does not contain
            completed: false,
            events: 0,
        }));
        let err = Recording::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("rounds"), "{err}");
    }
}
