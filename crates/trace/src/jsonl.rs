//! JSON-lines export for external timeline tooling.
//!
//! Line 1 is the [`RunHeader`] object; every following line is one
//! event, stamped with its round so each line stands alone (the
//! property JSONL consumers — `jq`, timeline viewers, log shippers —
//! rely on). Lines are built as tiny `Json` trees and streamed through
//! [`radio_util::Json::write_compact_to`] into the caller's writer
//! behind one `BufWriter`, so export memory stays O(largest line) no
//! matter how large the recording: a multi-GB trace never materializes
//! a second multi-GB `String`.
//!
//! [`RunHeader`]: crate::event::RunHeader

use crate::binary::Recording;
use std::io::{self, BufWriter, Write};

/// Stream `rec` as JSONL into `w`. Returns the number of lines written
/// (1 header + events).
pub fn export_jsonl<W: io::Write>(rec: &Recording, w: W) -> io::Result<u64> {
    let mut w = BufWriter::new(w);
    let mut lines = 0u64;
    rec.header.to_json().write_compact_to(&mut w)?;
    w.write_all(b"\n")?;
    lines += 1;
    for round in &rec.rounds {
        for ev in &round.events {
            ev.to_json(round.round).write_compact_to(&mut w)?;
            w.write_all(b"\n")?;
            lines += 1;
        }
    }
    w.flush()?;
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::RoundEvents;
    use crate::event::{RunHeader, TraceEvent};
    use radio_util::Json;

    #[test]
    fn export_emits_one_self_contained_line_per_event() {
        let rec = Recording {
            header: RunHeader::new(9, "v2", "gnp/n=4/p=0.5"),
            rounds: vec![RoundEvents {
                round: 1,
                events: vec![
                    TraceEvent::RoundStart { round: 1 },
                    TraceEvent::Transmit { node: 2 },
                    TraceEvent::Deliver {
                        node: 3,
                        from: 2,
                        woke: true,
                    },
                    TraceEvent::RoundEnd {
                        transmitters: 1,
                        deliveries: 1,
                        awake: 4,
                    },
                ],
            }],
            footer: None,
        };
        let mut buf = Vec::new();
        assert_eq!(export_jsonl(&rec, &mut buf).unwrap(), 5);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(header.get("type").and_then(Json::as_str), Some("header"));
        assert_eq!(header.get("seed").and_then(Json::as_f64), Some(9.0));
        let deliver = Json::parse(lines[3]).unwrap();
        assert_eq!(deliver.get("type").and_then(Json::as_str), Some("deliver"));
        assert_eq!(deliver.get("round").and_then(Json::as_f64), Some(1.0));
        assert_eq!(deliver.get("woke"), Some(&Json::Bool(true)));
    }
}
