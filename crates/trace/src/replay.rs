//! Replay verification: re-drive a recorded run through the engine and
//! check the fresh event stream against the recording, bit for bit.
//!
//! The verifier is itself a [`TraceSink`], which is what keeps this
//! crate independent of the engine: the caller reconstructs the run's
//! inputs (graph from the header's topology spec + seed, protocol,
//! config) and hands the engine a [`ReplayVerifier`] where a recording
//! sink would go. Every emitted event is compared against the expected
//! stream in order; the first mismatch is captured as a [`Divergence`]
//! — round, position, expected vs got — and comparison stops (one
//! divergence makes every later comparison meaningless, as the streams
//! have lost alignment).
//!
//! This turns "v1 vs v2 disagree" or "1t vs 8t disagree" from a diff
//! of final metrics into *the first round and node where the histories
//! part ways*.

use crate::binary::Recording;
use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// The first point where a replayed stream left the recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Round of the divergent position (from the live stream's last
    /// `RoundStart`, so it is meaningful even when the recording ran
    /// out of rounds).
    pub round: u64,
    /// Event index within that round (0 = the `RoundStart` itself).
    pub index: usize,
    /// What the recording says happens here (`None`: recording ended).
    pub expected: Option<TraceEvent>,
    /// What the replayed run emitted (`None`: the run ended while the
    /// recording still had events — set by [`ReplayVerifier::finish`]).
    pub got: Option<TraceEvent>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let node = self
            .got
            .and_then(|e| e.node())
            .or_else(|| self.expected.and_then(|e| e.node()));
        write!(
            f,
            "first divergence at round {}, event #{}",
            self.round, self.index
        )?;
        if let Some(node) = node {
            write!(f, ", node {node}")?;
        }
        match (&self.expected, &self.got) {
            (Some(e), Some(g)) => write!(f, ": expected {e:?}, got {g:?}"),
            (Some(e), None) => write!(f, ": expected {e:?}, but the run ended"),
            (None, Some(g)) => write!(f, ": recording ended, but the run emitted {g:?}"),
            (None, None) => Ok(()),
        }
    }
}

/// A [`TraceSink`] that checks the live stream against a [`Recording`].
#[derive(Debug)]
pub struct ReplayVerifier<'r> {
    rec: &'r Recording,
    round_idx: usize,
    event_idx: usize,
    live_round: u64,
    live_index: usize,
    verified: u64,
    divergence: Option<Divergence>,
}

impl<'r> ReplayVerifier<'r> {
    /// Verify against `rec`, starting at its first round.
    pub fn new(rec: &'r Recording) -> Self {
        ReplayVerifier {
            rec,
            round_idx: 0,
            event_idx: 0,
            live_round: 0,
            live_index: 0,
            verified: 0,
            divergence: None,
        }
    }

    /// The divergence found so far, if any.
    pub fn divergence(&self) -> Option<Divergence> {
        self.divergence
    }

    /// Events that matched before any divergence.
    pub fn verified_events(&self) -> u64 {
        self.verified
    }

    fn expected(&self) -> Option<TraceEvent> {
        self.rec
            .rounds
            .get(self.round_idx)
            .and_then(|r| r.events.get(self.event_idx))
            .copied()
    }

    /// Finish verification after the replayed run returned: a recording
    /// with events left over is a divergence too (the replay ended
    /// early). Returns the number of verified events on success.
    pub fn finish(self) -> Result<u64, Divergence> {
        if let Some(d) = self.divergence {
            return Err(d);
        }
        if let Some(expected) = self.expected() {
            let round = self
                .rec
                .rounds
                .get(self.round_idx)
                .map_or(self.live_round, |r| r.round);
            return Err(Divergence {
                round,
                index: self.event_idx,
                expected: Some(expected),
                got: None,
            });
        }
        Ok(self.verified)
    }
}

impl TraceSink for ReplayVerifier<'_> {
    const ACTIVE: bool = true;

    fn emit(&mut self, ev: TraceEvent) {
        if self.divergence.is_some() {
            return;
        }
        if let TraceEvent::RoundStart { round } = ev {
            self.live_round = round;
            self.live_index = 0;
        }
        let expected = self.expected();
        if expected == Some(ev) {
            self.verified += 1;
            self.event_idx += 1;
            if self
                .rec
                .rounds
                .get(self.round_idx)
                .is_some_and(|r| self.event_idx >= r.events.len())
            {
                self.round_idx += 1;
                self.event_idx = 0;
            }
            self.live_index += 1;
            return;
        }
        self.divergence = Some(Divergence {
            round: self.live_round,
            index: self.live_index,
            expected,
            got: Some(ev),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::RoundEvents;
    use crate::event::RunHeader;

    fn rec(rounds: Vec<Vec<TraceEvent>>) -> Recording {
        Recording {
            header: RunHeader::new(1, "v2", "test"),
            rounds: rounds
                .into_iter()
                .map(|events| RoundEvents {
                    round: match events[0] {
                        TraceEvent::RoundStart { round } => round,
                        _ => panic!("test rounds start with RoundStart"),
                    },
                    events,
                })
                .collect(),
            footer: None,
        }
    }

    fn round(r: u64, mid: Vec<TraceEvent>) -> Vec<TraceEvent> {
        let mut events = vec![TraceEvent::RoundStart { round: r }];
        events.extend(mid);
        events.push(TraceEvent::RoundEnd {
            transmitters: 0,
            deliveries: 0,
            awake: 2,
        });
        events
    }

    #[test]
    fn identical_stream_verifies() {
        let recording = rec(vec![
            round(1, vec![TraceEvent::Transmit { node: 0 }]),
            round(2, vec![TraceEvent::Sleep { node: 1 }]),
        ]);
        let mut v = ReplayVerifier::new(&recording);
        for r in &recording.rounds {
            for ev in &r.events {
                v.emit(*ev);
            }
        }
        assert_eq!(v.finish(), Ok(6));
    }

    #[test]
    fn first_mismatch_is_pinned_with_round_and_node() {
        let recording = rec(vec![round(1, vec![TraceEvent::Transmit { node: 0 }])]);
        let mut v = ReplayVerifier::new(&recording);
        v.emit(TraceEvent::RoundStart { round: 1 });
        v.emit(TraceEvent::Transmit { node: 7 }); // wrong node
        v.emit(TraceEvent::Transmit { node: 0 }); // ignored after divergence
        let d = v.finish().unwrap_err();
        assert_eq!(d.round, 1);
        assert_eq!(d.index, 1);
        assert_eq!(d.expected, Some(TraceEvent::Transmit { node: 0 }));
        assert_eq!(d.got, Some(TraceEvent::Transmit { node: 7 }));
        let msg = d.to_string();
        assert!(msg.contains("round 1") && msg.contains("node 7"), "{msg}");
    }

    #[test]
    fn short_replay_is_a_divergence() {
        let recording = rec(vec![round(1, vec![]), round(2, vec![])]);
        let mut v = ReplayVerifier::new(&recording);
        for ev in &recording.rounds[0].events {
            v.emit(*ev);
        }
        let d = v.finish().unwrap_err();
        assert_eq!(d.round, 2);
        assert_eq!(d.got, None);
        assert_eq!(d.expected, Some(TraceEvent::RoundStart { round: 2 }));
    }

    #[test]
    fn long_replay_is_a_divergence() {
        let recording = rec(vec![round(1, vec![])]);
        let mut v = ReplayVerifier::new(&recording);
        for ev in &recording.rounds[0].events {
            v.emit(*ev);
        }
        v.emit(TraceEvent::RoundStart { round: 2 });
        let d = v.finish().unwrap_err();
        assert_eq!(d.round, 2);
        assert_eq!(d.expected, None);
        assert_eq!(d.got, Some(TraceEvent::RoundStart { round: 2 }));
    }
}
