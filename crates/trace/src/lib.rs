//! Per-round structured trace capture, replay, and differential
//! debugging for the radio engine — the observability layer ROADMAP
//! item 5 called for.
//!
//! Everything the Berenbrink–Cooper–Hu analysis reasons about is
//! *per-round* structure: who transmitted in round `t`, who heard a
//! collision, when the informed set stopped growing. Aggregate sweep
//! JSON throws that structure away, so debugging a divergence at
//! `n = 2²⁰` used to be println archaeology. This crate records the
//! structure instead:
//!
//! * [`TraceEvent`] — the event model: one `RoundStart`, then the
//!   round's decide outcomes ([`TraceEvent::Transmit`],
//!   [`TraceEvent::Sleep`], [`TraceEvent::Depleted`]) and channel
//!   outcomes ([`TraceEvent::Collision`], [`TraceEvent::Deliver`] with
//!   its wake flag), then one `RoundEnd` carrying the round's
//!   aggregates. Silent polls are *not* recorded — they are the
//!   overwhelmingly common outcome and carry no information the
//!   `RoundEnd` aggregates don't.
//! * [`TraceSink`] — the monomorphized engine hook (the pattern the
//!   energy hook proved): [`NullSink`] compiles every emission site
//!   out of the plain path, [`RecordingSink`] streams the binary
//!   format, [`RingSink`] retains the last *k* rounds in memory.
//! * [`Recording`] — the compact length-prefixed binary format
//!   (`.rtrc`), with a self-describing [`RunHeader`] (seed, engine,
//!   config, topology spec, code version) designed as the provenance
//!   record for the future campaign runner.
//! * [`ReplayVerifier`] — re-drive a recorded run through the engine
//!   and check every event bit-for-bit; the first mismatch becomes a
//!   [`Divergence`] with round, node, and event context.
//! * [`diff::first_divergence`] — align two recordings and report
//!   where they part ways (`trace diff` in the CLI).
//! * [`jsonl`] — a JSON-lines exporter for external timeline tooling,
//!   streamed through `radio_util::Json::write_compact_to` so a
//!   multi-GB trace never doubles peak RSS.
//!
//! The engine guarantees (and property tests enforce) that a sink
//! never touches protocol RNG or event order: a traced run's
//! `RunResult` is bit-identical to the untraced run, and all emission
//! happens on the serial side of the round loop, so recordings are
//! identical across thread counts by construction.

pub mod binary;
pub mod diff;
pub mod event;
pub mod jsonl;
pub mod replay;
pub mod sink;

pub use binary::{Recording, RoundEvents, RunFooter};
pub use diff::{first_divergence, header_diff, EventDivergence};
pub use event::{RunHeader, TraceEvent};
pub use replay::{Divergence, ReplayVerifier};
pub use sink::{NullSink, RecordingSink, RingSink, TraceSink};
