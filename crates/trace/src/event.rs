//! The event model: what one round of the radio engine looks like as a
//! sequence of structured facts, plus the run-level header that makes a
//! recording self-describing.

use radio_graph::NodeId;
use radio_util::Json;

/// One structured fact about a run, in the order the engine's serial
/// round loop establishes it.
///
/// A round's events always form the sentence
/// `RoundStart (Transmit | Sleep | Depleted)* (Collision | Deliver)* RoundEnd`:
/// decide outcomes come out in node poll order (v1) / commit order (v2)
/// — identical by the v2 stream contract — and channel outcomes in
/// ascending receiver order, exactly the delivery sweep's order. Silent
/// decides are not recorded (no state change, dominant case); a
/// receiver that hears exactly one transmitter but is itself
/// transmitting under half-duplex, or is dead, produces no event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The round began (1-based, matching `RunResult::rounds`).
    RoundStart { round: u64 },
    /// `node` decided to transmit this round.
    Transmit { node: NodeId },
    /// `node` left the awake set (protocol-directed state transition).
    Sleep { node: NodeId },
    /// `node`'s battery depleted (or it fail-stopped); it is dead from
    /// this round on.
    Depleted { node: NodeId },
    /// `node` heard ≥ 2 transmitters — the slot carried no message.
    Collision { node: NodeId },
    /// `node` cleanly received `from`'s message; `woke` is true when
    /// the reception pulled a sleeping node back into the awake set.
    Deliver {
        node: NodeId,
        from: NodeId,
        woke: bool,
    },
    /// The round ended with these aggregates (awake counted *after*
    /// the round's sleeps and wakes).
    RoundEnd {
        transmitters: u64,
        deliveries: u64,
        awake: u64,
    },
}

impl TraceEvent {
    /// Stable lower-case tag, used by the binary format's docs, the
    /// JSONL exporter, and divergence reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::Transmit { .. } => "transmit",
            TraceEvent::Sleep { .. } => "sleep",
            TraceEvent::Depleted { .. } => "depleted",
            TraceEvent::Collision { .. } => "collision",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::RoundEnd { .. } => "round_end",
        }
    }

    /// The node the event is about, where there is one.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            TraceEvent::Transmit { node }
            | TraceEvent::Sleep { node }
            | TraceEvent::Depleted { node }
            | TraceEvent::Collision { node }
            | TraceEvent::Deliver { node, .. } => Some(*node),
            TraceEvent::RoundStart { .. } | TraceEvent::RoundEnd { .. } => None,
        }
    }

    /// The event as a flat JSON object (used by the JSONL exporter;
    /// `round` is stamped by the caller so every line is
    /// self-contained).
    pub fn to_json(&self, round: u64) -> Json {
        let mut pairs = vec![
            ("type", Json::str(self.kind())),
            ("round", Json::Num(round as f64)),
        ];
        match self {
            TraceEvent::RoundStart { .. } => {}
            TraceEvent::Transmit { node }
            | TraceEvent::Sleep { node }
            | TraceEvent::Depleted { node }
            | TraceEvent::Collision { node } => {
                pairs.push(("node", Json::Num(f64::from(*node))));
            }
            TraceEvent::Deliver { node, from, woke } => {
                pairs.push(("node", Json::Num(f64::from(*node))));
                pairs.push(("from", Json::Num(f64::from(*from))));
                pairs.push(("woke", Json::Bool(*woke)));
            }
            TraceEvent::RoundEnd {
                transmitters,
                deliveries,
                awake,
            } => {
                pairs.push(("transmitters", Json::Num(*transmitters as f64)));
                pairs.push(("deliveries", Json::Num(*deliveries as f64)));
                pairs.push(("awake", Json::Num(*awake as f64)));
            }
        }
        Json::obj(pairs)
    }
}

/// Run provenance, written once at the head of every recording. This is
/// the record the future campaign runner (ROADMAP item 4) will lean on:
/// enough to re-drive the run (`seed`, `engine`, `max_rounds`,
/// `half_duplex`, the caller's `topology` spec string) and enough to
/// distrust it (`code_version`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunHeader {
    /// The run seed (v2: the stream-key root; v1: the seed the caller
    /// derived the run RNG from).
    pub seed: u64,
    /// Which determinism contract produced the events: `"v1"` or `"v2"`.
    pub engine: String,
    /// Caller-supplied topology spec, e.g. `"gnp_directed/n=65536/p=0.002"`.
    /// Free-form but expected to be regenerable: spec + seed = graph.
    pub topology: String,
    /// The engine's round cap.
    pub max_rounds: u64,
    /// Whether transmitters could hear their own slot.
    pub half_duplex: bool,
    /// `CARGO_PKG_VERSION` of the recording crate at capture time.
    pub code_version: String,
}

impl RunHeader {
    /// A header with the workspace's code version and default engine
    /// config; adjust fields directly or via [`RunHeader::with_config`].
    pub fn new(seed: u64, engine: impl Into<String>, topology: impl Into<String>) -> Self {
        RunHeader {
            seed,
            engine: engine.into(),
            topology: topology.into(),
            max_rounds: u64::MAX,
            half_duplex: false,
            code_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }

    /// Record the engine config fields that change event semantics.
    pub fn with_config(mut self, max_rounds: u64, half_duplex: bool) -> Self {
        self.max_rounds = max_rounds;
        self.half_duplex = half_duplex;
        self
    }

    /// The header as a JSON object (first line of a JSONL export).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", Json::str("header")),
            ("seed", Json::Num(self.seed as f64)),
            ("engine", Json::str(self.engine.clone())),
            ("topology", Json::str(self.topology.clone())),
            ("max_rounds", Json::Num(self.max_rounds as f64)),
            ("half_duplex", Json::Bool(self.half_duplex)),
            ("code_version", Json::str(self.code_version.clone())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_nodes() {
        let d = TraceEvent::Deliver {
            node: 7,
            from: 3,
            woke: true,
        };
        assert_eq!(d.kind(), "deliver");
        assert_eq!(d.node(), Some(7));
        assert_eq!(TraceEvent::RoundStart { round: 1 }.node(), None);
        assert_eq!(
            TraceEvent::RoundEnd {
                transmitters: 0,
                deliveries: 0,
                awake: 0
            }
            .kind(),
            "round_end"
        );
    }

    #[test]
    fn event_json_is_self_contained() {
        let j = TraceEvent::Deliver {
            node: 7,
            from: 3,
            woke: false,
        }
        .to_json(12);
        assert_eq!(j.get("type").and_then(Json::as_str), Some("deliver"));
        assert_eq!(j.get("round").and_then(Json::as_f64), Some(12.0));
        assert_eq!(j.get("from").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("woke"), Some(&Json::Bool(false)));
    }

    #[test]
    fn header_records_config_and_version() {
        let h = RunHeader::new(42, "v2", "gnp/n=64/p=0.1").with_config(100, true);
        assert_eq!(h.max_rounds, 100);
        assert!(h.half_duplex);
        assert_eq!(h.code_version, env!("CARGO_PKG_VERSION"));
        let j = h.to_json();
        assert_eq!(j.get("seed").and_then(Json::as_f64), Some(42.0));
        assert_eq!(j.get("engine").and_then(Json::as_str), Some("v2"));
    }
}
