//! Shared parameter formulas from the paper.
//!
//! All logarithms are base 2, matching the paper's `n = 2^i` convention
//! (the ratios like `T = ⌊log n / log d⌋` are base-independent anyway).

/// Derived parameters for the `G(n,p)` algorithms (§2, §3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnpParams {
    /// Number of nodes.
    pub n: usize,
    /// Edge probability.
    pub p: f64,
    /// Expected in/out degree `d = np`.
    pub d: f64,
    /// Phase-1 length `T = ⌊log n / log d⌋` (Algorithm 1).
    pub t: u64,
    /// Whether Phase 2 runs: the paper's `p ≤ n^{−2/5}` test.
    pub use_phase2: bool,
    /// Phase-2 transmit probability `1/(d^T · p)`, clamped to ≤ 1.
    pub q2: f64,
    /// Phase-3 transmit probability: `1/d` when `p ≤ n^{−2/5}`, else
    /// `1/(dp)`, clamped to ≤ 1.
    pub q3: f64,
}

impl GnpParams {
    /// Compute every derived parameter for a `G(n, p)` instance.
    ///
    /// # Panics
    /// Panics unless `n ≥ 2`, `0 < p ≤ 1` and `d = np > 1` (the paper
    /// assumes `p > δ log n / n`, well above the connectivity threshold,
    /// so `d ≫ 1`).
    pub fn new(n: usize, p: f64) -> Self {
        assert!(n >= 2, "need n ≥ 2");
        assert!(p > 0.0 && p <= 1.0, "p = {p} out of (0, 1]");
        let d = n as f64 * p;
        assert!(d > 1.0, "expected degree d = np = {d} must exceed 1");
        let log_n = (n as f64).log2();
        let log_d = d.log2();
        // For d ≥ n (p = 1 on tiny graphs) log n / log d ≤ 1 → T = 1;
        // the paper's T is always ≥ 1 (Phase 1 runs at least one round).
        let t = ((log_n / log_d).floor() as u64).max(1);
        let use_phase2 = p <= (n as f64).powf(-0.4);
        let q2 = (1.0 / (d.powi(t as i32) * p)).min(1.0);
        let q3 = if use_phase2 {
            (1.0 / d).min(1.0)
        } else {
            (1.0 / (d * p)).min(1.0)
        };
        GnpParams {
            n,
            p,
            d,
            t,
            use_phase2,
            q2,
            q3,
        }
    }

    /// The sparse regime the paper's theorems assume: `p = δ·ln n / n`.
    pub fn sparse(n: usize, delta: f64) -> Self {
        let p = (delta * (n as f64).ln() / n as f64).min(1.0);
        Self::new(n, p)
    }

    /// `⌈log₂ n⌉` — the `L` used by distribution supports.
    pub fn log2_n(&self) -> u32 {
        radio_util::ilog2_ceil(self.n as u64)
    }
}

/// `λ = log₂(n/D)`, clamped to ≥ 1 (for `D` close to `n` the paper's
/// formulas degenerate; `λ ≥ 1` keeps every distribution well-formed and
/// only strengthens the algorithm).
pub fn lambda(n: usize, diameter: u32) -> f64 {
    assert!(n >= 2 && diameter >= 1);
    (n as f64 / diameter as f64).log2().max(1.0)
}

/// The paper's optimal general-network broadcast time scale,
/// `D·log(n/D) + log² n`, used to size round budgets.
pub fn general_time_scale(n: usize, diameter: u32) -> f64 {
    let l = (n as f64).log2();
    diameter as f64 * lambda(n, diameter) + l * l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_matches_formula() {
        // n = 65536, d = 16 → T = 16/4 = 4.
        let n = 65536;
        let p = 16.0 / n as f64;
        let prm = GnpParams::new(n, p);
        assert_eq!(prm.t, 4);
        assert!((prm.d - 16.0).abs() < 1e-9);
    }

    #[test]
    fn dense_graphs_have_t_one() {
        let prm = GnpParams::new(1024, 0.6);
        assert_eq!(prm.t, 1);
        assert!(!prm.use_phase2);
    }

    #[test]
    fn phase2_threshold() {
        let n = 10_000usize;
        let thresh = (n as f64).powf(-0.4); // n^{-2/5} ≈ 0.0251
        assert!(GnpParams::new(n, thresh * 0.9).use_phase2);
        assert!(!GnpParams::new(n, thresh * 1.1).use_phase2);
    }

    #[test]
    fn q2_is_theta_one_over_dt_p() {
        let n = 65536;
        let p = 16.0 / n as f64;
        let prm = GnpParams::new(n, p);
        // d^T = 16^4 = 65536, q2 = 1/(65536 · p) = 1/16.
        assert!((prm.q2 - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn q3_branches_on_density() {
        let sparse = GnpParams::new(65536, 16.0 / 65536.0);
        assert!((sparse.q3 - 1.0 / 16.0).abs() < 1e-9);
        let dense = GnpParams::new(1024, 0.25); // p > n^{-2/5} ≈ 0.0625
        assert!((dense.q3 - 1.0 / (256.0 * 0.25)).abs() < 1e-9);
    }

    #[test]
    fn probabilities_are_clamped() {
        let prm = GnpParams::new(8, 0.3); // tiny: d = 2.4, d^T·p < 1
        assert!(prm.q2 <= 1.0);
        assert!(prm.q3 <= 1.0);
    }

    #[test]
    fn sparse_constructor() {
        let prm = GnpParams::sparse(4096, 8.0);
        assert!((prm.p - 8.0 * (4096f64).ln() / 4096.0).abs() < 1e-12);
        assert!(prm.use_phase2);
    }

    #[test]
    fn lambda_clamps() {
        assert!((lambda(1024, 4) - 8.0).abs() < 1e-12);
        assert_eq!(lambda(1024, 1024), 1.0);
        assert_eq!(lambda(1024, 900), 1.0);
    }

    #[test]
    fn time_scale_grows_with_d() {
        assert!(general_time_scale(4096, 512) > general_time_scale(4096, 16));
    }

    #[test]
    #[should_panic]
    fn rejects_subcritical_degree() {
        let _ = GnpParams::new(1000, 0.0005); // d = 0.5
    }
}
