//! The Berenbrink–Cooper–Hu algorithms (SPAA'07 / TCS 410 (2009) 2549–2561).
//!
//! This crate is the paper. Everything it proposes, everything it compares
//! against, and both of its lower-bound constructions are implemented as
//! [`radio_sim::Protocol`]s over [`radio_graph::DiGraph`]s:
//!
//! | Paper artifact | Module |
//! |----------------|--------|
//! | Algorithm 1 — energy-efficient broadcast on `G(n,p)`, ≤ 1 transmission/node | [`broadcast::ee_random`] |
//! | Algorithm 2 — gossiping on `G(n,p)`, `O(d log n)` time, `O(log n)` msgs/node | [`gossip`] |
//! | Algorithm 3 — broadcast on general graphs with known `D` | [`broadcast::ee_general`] |
//! | Figure 1 — the `α` distribution (and Czumaj–Rytter's `α'`) | [`seq`] |
//! | Baselines: Czumaj–Rytter, BGI Decay, Elsässer–Gasieniec, flooding | [`broadcast::cr`], [`broadcast::decay`], [`broadcast::eg`], [`broadcast::flood`] |
//! | Observation 4.3 / Theorem 4.4 lower-bound harnesses | [`lower_bound`] |
//!
//! Shared parameter math (`T = ⌊log n / log d⌋`, `λ = log(n/D)`, phase
//! thresholds) lives in [`params`].

pub mod broadcast;
pub mod gossip;
pub mod lower_bound;
pub mod params;
pub mod seq;

pub use broadcast::BroadcastOutcome;
pub use gossip::{run_ee_gossip, EeGossipConfig, GossipOutcome};
pub use params::GnpParams;
pub use seq::{AlphaKind, KDistribution, TransmitDistribution};
