//! Lower-bound harnesses (paper §4.2).
//!
//! The paper's lower bounds quantify over *oblivious* algorithms — every
//! node runs the same rule — using, for Theorem 4.4, a *time-invariant*
//! probability distribution over send probabilities. Operationally such
//! an algorithm is exactly a [`WindowedBroadcast`](crate::broadcast::WindowedBroadcast) with an unbounded
//! window and a [`ProbSource`] that does not depend on the round:
//!
//! * **Observation 4.3** (star-chain): any such algorithm needs
//!   `n log n / 2` total transmissions to reach success probability
//!   `1 − 1/n`. [`obs43_trial`] measures (success, transmissions) for a
//!   given per-round probability `q` and budget.
//! * **Theorem 4.4** (Figure 2 network): finishing within
//!   `c·D·log(n/D)` rounds forces `≥ log² n / (max{4c,8}·log(n/D))`
//!   expected transmissions per node. [`thm44_trial`] measures success
//!   and per-node energy for an arbitrary time-invariant distribution
//!   under that round budget.
//!
//! The closed-form bounds themselves are [`obs43_bound`] and
//! [`thm44_bound`]; experiment E10/E11 tables print measured values next
//! to them.

use crate::broadcast::windowed::{run_windowed, ProbSource, WindowedSpec};
use crate::broadcast::BroadcastOutcome;
use crate::seq::KDistribution;
use radio_graph::generate::{LowerBoundNet, StarChain};
use radio_sim::EngineConfig;

/// A time-invariant oblivious algorithm: the object Theorem 4.4
/// quantifies over.
#[derive(Debug, Clone)]
pub enum TimeInvariant {
    /// Transmit each round with fixed probability `q`.
    Fixed(f64),
    /// Draw `k` privately each round from a [`KDistribution`]
    /// (transmit probability `2^{−k}`, or silence).
    Dist(KDistribution),
}

impl TimeInvariant {
    /// Expected per-round send probability (the `µ` of Theorem 4.4's
    /// proof).
    pub fn mean_q(&self) -> f64 {
        use crate::seq::TransmitDistribution;
        match self {
            TimeInvariant::Fixed(q) => *q,
            TimeInvariant::Dist(d) => d.mean_q(),
        }
    }

    fn prob_source(&self) -> ProbSource {
        match self {
            TimeInvariant::Fixed(q) => ProbSource::Fixed(*q),
            TimeInvariant::Dist(d) => ProbSource::Private(d.clone()),
        }
    }
}

/// Run one oblivious-broadcast trial on the Observation 4.3 star-chain
/// with per-round probability `q` and a round budget; returns the outcome
/// (all-informed flag + transmission counts).
pub fn obs43_trial(net: &StarChain, q: f64, budget_rounds: u64, seed: u64) -> BroadcastOutcome {
    let spec = WindowedSpec {
        source: ProbSource::Fixed(q),
        window: None,
        early_stop: true,
    };
    run_windowed(
        &net.graph,
        net.source,
        spec,
        EngineConfig::with_max_rounds(budget_rounds),
        seed,
    )
}

/// Observation 4.3's bound: `n log₂ n / 2` total transmissions are needed
/// for success probability `1 − 1/n` (where `n` is the star-chain
/// parameter, i.e. the destination count).
pub fn obs43_bound(n_destinations: usize) -> f64 {
    let n = n_destinations as f64;
    n * n.log2() / 2.0
}

/// Run one oblivious-broadcast trial on the Theorem 4.4 network under the
/// theorem's round budget `⌈c · D · log₂(n/D)⌉`.
pub fn thm44_trial(
    net: &LowerBoundNet,
    alg: &TimeInvariant,
    c: f64,
    seed: u64,
) -> BroadcastOutcome {
    let budget = thm44_round_budget(net, c);
    let spec = WindowedSpec {
        source: alg.prob_source(),
        window: None,
        early_stop: true,
    };
    run_windowed(
        &net.graph,
        net.source,
        spec,
        EngineConfig::with_max_rounds(budget),
        seed,
    )
}

/// The Theorem 4.4 round budget `⌈c·D·log₂(n/D)⌉` for `net`.
pub fn thm44_round_budget(net: &LowerBoundNet, c: f64) -> u64 {
    let n = net.n_param as f64;
    let d = net.diameter as f64;
    let lambda = (n / d).log2().max(1.0);
    (c * d * lambda).ceil() as u64
}

/// Theorem 4.4's bound on expected transmissions per node for an
/// algorithm finishing in `c·D·log(n/D)` rounds with probability
/// `≥ 1 − 1/n`: `log₂² n / (max{4c, 8} · log₂(n/D))`.
pub fn thm44_bound(n: usize, diameter: u32, c: f64) -> f64 {
    let ln = (n as f64).log2();
    let lambda = (n as f64 / diameter as f64).log2().max(1.0);
    ln * ln / ((4.0 * c).max(8.0) * lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generate::{lower_bound_net, star_chain};
    use radio_stats::SuccessCounter;

    #[test]
    fn obs43_source_informs_intermediates_in_round_one() {
        let net = star_chain(16);
        let out = obs43_trial(&net, 0.2, 500, 1);
        // Whatever happens later, the 2n intermediates hear the lone
        // source in round 1... unless the source's own q keeps it silent —
        // q applies from round 1, so give it time; the check is just that
        // intermediates eventually hear the source alone.
        assert!(out.informed > 1, "source never got through");
    }

    #[test]
    fn obs43_small_q_needs_time_large_q_collides() {
        let net = star_chain(32);
        // q = 1: after the source round, both parents of every destination
        // transmit forever → permanent collision, broadcast cannot finish.
        let out = obs43_trial(&net, 1.0, 300, 2);
        assert!(!out.all_informed, "q=1 must collide at every destination");
        // Moderate q: succeeds within a generous budget.
        let mut succ = SuccessCounter::new();
        for seed in 0..5 {
            let out = obs43_trial(&net, 0.1, 3000, seed);
            succ.record(out.all_informed);
        }
        assert!(succ.successes >= 4, "q=0.1 should usually finish: {succ:?}");
    }

    #[test]
    fn obs43_transmissions_track_q_times_rounds() {
        let net = star_chain(32);
        let out = obs43_trial(&net, 0.05, 4000, 3);
        if out.all_informed {
            // Intermediates (2n of them) transmit ≈ q per round while the
            // run lasts; the total is dominated by them.
            let t = out.metrics.total_transmissions() as f64;
            let rough = 0.05 * (out.rounds_executed as f64) * (2.0 * 32.0 + 1.0);
            assert!(t < 3.0 * rough + 50.0, "total {t} vs rough {rough}");
        }
    }

    #[test]
    fn thm44_budget_and_bound_formulas() {
        let net = lower_bound_net(4, 40); // n = 16, D = 40 → λ = max(1, log2(0.4)) = 1
        assert_eq!(thm44_round_budget(&net, 2.0), 80);
        let b = thm44_bound(16, 40, 2.0);
        assert!((b - 16.0 / 8.0).abs() < 1e-9); // log² 16 / (8·1) = 2
    }

    #[test]
    fn thm44_fixed_one_fails_on_star_cascade() {
        // q = 1 jams every star S_i with 2^i ≥ 2 leaves.
        let net = lower_bound_net(5, 30);
        let out = thm44_trial(&net, &TimeInvariant::Fixed(1.0), 8.0, 4);
        assert!(!out.all_informed);
    }

    #[test]
    fn thm44_alpha_distribution_makes_progress() {
        // The paper's own α (as a private time-invariant distribution)
        // should traverse the cascade given a generous c.
        let net = lower_bound_net(4, 24);
        let l = radio_util::ilog2_ceil(net.graph.n() as u64);
        let dist = KDistribution::paper_alpha(l, 2.0);
        let mut succ = SuccessCounter::new();
        for seed in 0..5 {
            let out = thm44_trial(&net, &TimeInvariant::Dist(dist.clone()), 40.0, seed);
            succ.record(out.all_informed);
        }
        assert!(succ.successes >= 3, "α should usually finish: {succ:?}");
    }

    #[test]
    fn mean_q_matches_source() {
        assert_eq!(TimeInvariant::Fixed(0.3).mean_q(), 0.3);
        let d = KDistribution::uniform_k(4);
        let ti = TimeInvariant::Dist(d.clone());
        use crate::seq::TransmitDistribution;
        assert!((ti.mean_q() - d.mean_q()).abs() < 1e-12);
    }
}
