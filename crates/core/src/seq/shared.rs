//! The shared random sequence `I = ⟨I₁, I₂, …⟩` of Algorithm 3.
//!
//! Algorithm 3, line 1: *"Choose a randomised sequence I = ⟨I₁, I₂, …⟩
//! such that Pr[I_r = k] = α_k"*. The sequence is **common randomness** —
//! in round `r` every active node uses send probability `2^{−I_r}`; the
//! Theorem 4.1 proof sketch relies on this ("if every active neighbor of
//! `w` sends with probability `2^{−k}`"). Operationally the sequence is a
//! pseudorandom stream expanded from a seed all nodes share (e.g. burned
//! into the protocol spec), which is exactly how we realise it.

use super::KDistribution;
use radio_util::derive_rng;
use rand_chacha::ChaCha8Rng;

/// Lazily expanded shared sequence of per-round send probabilities.
#[derive(Debug, Clone)]
pub struct SharedSequence {
    dist: KDistribution,
    rng: ChaCha8Rng,
    /// `qs[r−1]` = send probability of round `r` (0.0 = silent round).
    qs: Vec<f64>,
}

impl SharedSequence {
    /// Create the sequence for `dist`, expanded from `seed`.
    pub fn new(dist: KDistribution, seed: u64) -> Self {
        SharedSequence {
            dist,
            rng: derive_rng(seed, b"shared-seq", 0),
            qs: Vec::new(),
        }
    }

    /// Send probability of (1-based) round `r`; expands on demand.
    pub fn q(&mut self, round: u64) -> f64 {
        let idx = (round - 1) as usize;
        while self.qs.len() <= idx {
            let q = match self.dist.sample(&mut self.rng) {
                Some(k) => 2f64.powi(-(k as i32)),
                None => 0.0,
            };
            self.qs.push(q);
        }
        self.qs[idx]
    }

    /// Expand the sequence through `round` without returning anything —
    /// the fused engine's serial per-round preamble, after which
    /// [`q_cached`](Self::q_cached) can serve any number of read-only
    /// consumers (decide workers) concurrently.
    pub fn ensure(&mut self, round: u64) {
        let _ = self.q(round);
    }

    /// Read-only `q` for an already-expanded round.
    ///
    /// # Panics
    /// Panics if `round` has not been expanded yet (call
    /// [`q`](Self::q) or [`ensure`](Self::ensure) first).
    pub fn q_cached(&self, round: u64) -> f64 {
        self.qs[(round - 1) as usize]
    }

    /// The underlying distribution.
    pub fn distribution(&self) -> &KDistribution {
        &self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_stable_under_revisits() {
        let d = KDistribution::paper_alpha(10, 3.0);
        let mut s1 = SharedSequence::new(d.clone(), 99);
        let mut s2 = SharedSequence::new(d, 99);
        let a: Vec<f64> = (1..=50).map(|r| s1.q(r)).collect();
        let b: Vec<f64> = (1..=50).map(|r| s2.q(r)).collect();
        assert_eq!(a, b);
        // Revisiting earlier rounds returns identical values.
        assert_eq!(s1.q(7), a[6]);
        assert_eq!(s1.q(50), a[49]);
    }

    #[test]
    fn different_seeds_differ() {
        let d = KDistribution::paper_alpha(10, 3.0);
        let mut s1 = SharedSequence::new(d.clone(), 1);
        let mut s2 = SharedSequence::new(d, 2);
        let a: Vec<f64> = (1..=64).map(|r| s1.q(r)).collect();
        let b: Vec<f64> = (1..=64).map(|r| s2.q(r)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn out_of_order_access_expands_correctly() {
        let d = KDistribution::cr_alpha(8, 2.0);
        let mut s1 = SharedSequence::new(d.clone(), 5);
        let mut s2 = SharedSequence::new(d, 5);
        let late_first = s1.q(30);
        let mut seq = Vec::new();
        for r in 1..=30 {
            seq.push(s2.q(r));
        }
        assert_eq!(late_first, seq[29]);
    }
}
