//! Transmission-probability distributions — the paper's **Figure 1**.
//!
//! Algorithm 3 draws, in every round `r`, a value `I_r ∈ {1, …, log n}`
//! from a distribution `α` *shared by all nodes* (common randomness: the
//! analysis of Theorem 4.1 needs every active neighbour of a node to use
//! the same send probability `2^{−I_r}` in round `r`). Each node then
//! transmits independently with probability `2^{−I_r}`.
//!
//! [`KDistribution`] represents such a distribution, including the
//! reconstruction of the paper's `α` ([`KDistribution::paper_alpha`]) and
//! of Czumaj–Rytter's `α'` ([`KDistribution::cr_alpha`]); see `DESIGN.md`
//! §4.3 for the reconstruction argument. The stated properties of `α` —
//! the Figure 1 relations — are unit- and property-tested in this module:
//!
//! * `1/(2 log n) ≤ α_k` for all `1 ≤ k ≤ log n`;
//! * `α_k ≤ 1/(4λ)` (wherever consistent with the floor, i.e. `λ ≤ log n / 2`);
//! * `α_k ≥ α'_k / 2`;
//! * `α_k ≥ 1/(4λ)` for `k ≤ λ`;
//! * `α_k ≥ (1/2λ)·2^{−(k−λ)}` for `k > λ`.

mod alpha;
mod shared;

pub use alpha::{AlphaKind, KDistribution};
pub use shared::SharedSequence;

use rand::Rng;

/// A time-invariant distribution over per-round send probabilities —
/// the object quantified over by the paper's lower bounds (§4.2: *"we
/// assume that every node in the network uses the same probability
/// distribution … and that the distribution does not change over time"*).
pub trait TransmitDistribution {
    /// Draw this round's send probability.
    fn sample_q<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Mean send probability `E[q]` — the expected per-round energy of an
    /// active node (`µ` in the proof of Theorem 4.4).
    fn mean_q(&self) -> f64;
}

/// Always transmit with the same fixed probability (the simplest
/// time-invariant algorithm; used by the Observation 4.3 harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedProb(pub f64);

impl TransmitDistribution for FixedProb {
    fn sample_q<R: Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.0
    }

    fn mean_q(&self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_util::derive_rng;

    #[test]
    fn fixed_prob_is_constant() {
        let d = FixedProb(0.25);
        let mut rng = derive_rng(1, b"fp", 0);
        for _ in 0..10 {
            assert_eq!(d.sample_q(&mut rng), 0.25);
        }
        assert_eq!(d.mean_q(), 0.25);
    }
}
