//! The `α` and `α'` distributions over `k` (send probability `2^{−k}`).

use super::TransmitDistribution;
use rand::{Rng, RngExt};

/// Which published distribution to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlphaKind {
    /// The paper's new distribution (Figure 1, left): flat `1/(4λ)` head
    /// for `k ≤ λ`, geometric tail floored at `1/(2 log n)`.
    Paper,
    /// Czumaj–Rytter's distribution (Figure 1, right): flat `1/(2λ)` head,
    /// pure geometric tail `2^{−(k−λ)}/(2λ)` with no floor.
    CzumajRytter,
}

/// A distribution over `k ∈ {1, …, L}` with an explicit *silent* residual
/// outcome (send probability 0). Sampling returns `Some(k)` (transmit with
/// probability `2^{−k}`) or `None` (stay silent this round).
///
/// The silent outcome absorbs whatever mass the paper's construction does
/// not pin down; every bound the proofs use on `α_k` is a lower bound, so
/// routing the slack to silence is the conservative completion (it can
/// only slow our measured constants, never flatter them).
#[derive(Debug, Clone, PartialEq)]
pub struct KDistribution {
    /// `probs[k−1] = Pr[I = k]` for `k = 1..=L`.
    probs: Vec<f64>,
    /// `Pr[silent] = 1 − Σ probs`.
    silent: f64,
    /// Inclusive-prefix CDF over `probs` for inverse-CDF sampling.
    cdf: Vec<f64>,
    /// The λ the distribution was built with (for reporting).
    lambda: f64,
    /// Normalisation factor applied when the paper's raw masses exceeded
    /// total probability 1 (see [`Self::norm`]); 1.0 in the common case.
    norm: f64,
}

impl KDistribution {
    /// Build from raw per-`k` masses. If the total exceeds 1 the masses
    /// are scaled down by the total (recorded as [`Self::norm`]); any
    /// remaining slack becomes the silent outcome.
    ///
    /// Why normalisation can be needed: the paper's stated lower bounds
    /// on `α_k` — head `1/(4λ)`, tail `2^{−(k−λ)}/(2λ)`, *and* a global
    /// floor `1/(2 log n)` — sum to slightly more than 1 for `λ ≲ 1.3`
    /// with large `log n` (deep networks, `D ≈ n`). Theory-paper
    /// constants; the scaling factor is ≤ ~1.1 and reported so
    /// experiments can account for it.
    ///
    /// # Panics
    /// Panics if any mass is negative.
    pub fn from_probs(mut probs: Vec<f64>, lambda: f64) -> Self {
        assert!(!probs.is_empty(), "empty support");
        assert!(probs.iter().all(|&p| p >= 0.0), "negative probability mass");
        let total: f64 = probs.iter().sum();
        let norm = if total > 1.0 {
            for p in probs.iter_mut() {
                *p /= total;
            }
            total
        } else {
            1.0
        };
        let scaled_total: f64 = probs.iter().sum();
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cdf.push(acc);
        }
        KDistribution {
            silent: (1.0 - scaled_total).max(0.0),
            probs,
            cdf,
            lambda,
            norm,
        }
    }

    /// The factor the raw masses were divided by to fit in total
    /// probability 1 (1.0 unless λ is extreme; see [`Self::from_probs`]).
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// The paper's `α` for support size `L = log₂ n` and parameter `λ`
    /// (Theorem 4.1 uses `λ = log(n/D)`; Theorem 4.2 allows any
    /// `λ ∈ [log(n/D), log n]`).
    ///
    /// ```text
    /// α_k = 1/(4λ)                                    for 1 ≤ k ≤ λ
    /// α_k = max( 2^{−(k−λ)}/(2λ),  1/(2L) )           for λ < k ≤ L
    /// ```
    ///
    /// # Panics
    /// Panics unless `L ≥ 1` and `1 ≤ λ ≤ L`.
    pub fn paper_alpha(log2_n: u32, lambda: f64) -> Self {
        assert!(log2_n >= 1, "need L ≥ 1");
        assert!(
            (1.0..=log2_n as f64).contains(&lambda),
            "λ = {lambda} out of [1, L = {log2_n}]"
        );
        let l = log2_n as f64;
        // The 1/(2 log n) floor applies to the whole support — for
        // λ > log n / 2 it lifts the head above 1/(4λ) (there the paper's
        // cap and floor are mutually inconsistent; the floor is what the
        // Theorem 4.1 proof uses, so it wins).
        let probs = (1..=log2_n)
            .map(|k| {
                let k = k as f64;
                // For fractional λ the first tail slot (λ < k < λ+1) would
                // exceed the 1/(4λ) cap; trim it there (the paper's tail
                // bound is stated for integer offsets k ≥ λ+1).
                let shape = if k <= lambda {
                    1.0 / (4.0 * lambda)
                } else {
                    (2f64.powf(-(k - lambda)) / (2.0 * lambda)).min(1.0 / (4.0 * lambda))
                };
                shape.max(1.0 / (2.0 * l))
            })
            .collect();
        Self::from_probs(probs, lambda)
    }

    /// Czumaj–Rytter's `α'`: the same head/tail shape but *without* the
    /// `1/(2 log n)` floor (and a head at `1/(2λ)`):
    ///
    /// ```text
    /// α'_k = 1/(2λ)                 for 1 ≤ k ≤ λ
    /// α'_k = 2^{−(k−λ)}/(2λ)        for λ < k ≤ L
    /// ```
    ///
    /// This is the unique shape consistent with every property the paper
    /// attributes to \[11\]: per-round transmit probability `Θ(1/λ)`, decay
    /// `2^{−(k−λ)}` above `λ`, and domination `α_k ≥ α'_k / 2`.
    pub fn cr_alpha(log2_n: u32, lambda: f64) -> Self {
        assert!(log2_n >= 1);
        assert!((1.0..=log2_n as f64).contains(&lambda));
        let probs = (1..=log2_n)
            .map(|k| {
                let k = k as f64;
                if k <= lambda {
                    1.0 / (2.0 * lambda)
                } else {
                    2f64.powf(-(k - lambda)) / (2.0 * lambda)
                }
            })
            .collect();
        Self::from_probs(probs, lambda)
    }

    /// Uniform over `k ∈ {1..L}` — a naive strawman used in the
    /// lower-bound sweeps.
    pub fn uniform_k(log2_n: u32) -> Self {
        assert!(log2_n >= 1);
        let l = log2_n as usize;
        Self::from_probs(vec![1.0 / l as f64; l], 1.0)
    }

    /// Build by [`AlphaKind`].
    pub fn of_kind(kind: AlphaKind, log2_n: u32, lambda: f64) -> Self {
        match kind {
            AlphaKind::Paper => Self::paper_alpha(log2_n, lambda),
            AlphaKind::CzumajRytter => Self::cr_alpha(log2_n, lambda),
        }
    }

    /// Support size `L`.
    pub fn support(&self) -> u32 {
        self.probs.len() as u32
    }

    /// `Pr[I = k]`, `k ∈ {1..=L}`.
    pub fn alpha(&self, k: u32) -> f64 {
        assert!(k >= 1 && k <= self.support(), "k = {k} outside support");
        self.probs[(k - 1) as usize]
    }

    /// `Pr[silent]`.
    pub fn silent_mass(&self) -> f64 {
        self.silent
    }

    /// The λ parameter the distribution was built with.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draw `Some(k)` or `None` (silent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        let u: f64 = rng.random::<f64>();
        // Inverse CDF: first k with cdf[k−1] > u; if none, silent.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) | Err(i) if i < self.cdf.len() => Some(i as u32 + 1),
            _ => None,
        }
    }
}

impl TransmitDistribution for KDistribution {
    fn sample_q<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self.sample(rng) {
            Some(k) => 2f64.powi(-(k as i32)),
            None => 0.0,
        }
    }

    /// `E[q] = Σ_k α_k 2^{−k}` — `Θ(1/λ)` for both `α` and `α'`.
    fn mean_q(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p * 2f64.powi(-(i as i32 + 1)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_util::derive_rng;

    /// Check all Figure-1 relations for one (L, λ) pair. Bounds are
    /// checked up to the normalisation factor (1.0 except for extreme λ;
    /// see `KDistribution::from_probs`).
    fn check_figure1(log2_n: u32, lambda: f64) {
        let a = KDistribution::paper_alpha(log2_n, lambda);
        let ap = KDistribution::cr_alpha(log2_n, lambda);
        let l = log2_n as f64;
        let norm = a.norm();
        assert!(
            (1.0..=1.15).contains(&norm),
            "L={log2_n} λ={lambda}: unexpected normalisation {norm}"
        );
        assert!(ap.norm() == 1.0, "α' masses always fit in 1");
        for k in 1..=log2_n {
            let kk = k as f64;
            let ak = a.alpha(k);
            // Floor: α_k ≥ 1/(2 log n).
            assert!(
                ak >= 1.0 / (2.0 * l) / norm - 1e-12,
                "L={log2_n} λ={lambda} k={k}: floor violated ({ak})"
            );
            // Cap: α_k ≤ 1/(4λ) wherever the paper's bounds are mutually
            // consistent (floor ≤ cap requires λ ≤ L/2).
            if lambda <= l / 2.0 {
                assert!(
                    ak <= 1.0 / (4.0 * lambda) + 1e-12,
                    "L={log2_n} λ={lambda} k={k}: cap violated ({ak})"
                );
            }
            // Domination: α_k ≥ α'_k / 2.
            assert!(
                ak >= ap.alpha(k) / 2.0 / norm - 1e-12,
                "L={log2_n} λ={lambda} k={k}: domination violated"
            );
            // Head: α_k ≥ 1/(4λ) for k ≤ λ.
            if kk <= lambda {
                assert!(ak >= 1.0 / (4.0 * lambda) / norm - 1e-12);
            } else if kk >= lambda + 1.0 {
                // Tail: α_k ≥ 2^{−(k−λ)}/(2λ) — stated for integer
                // offsets; the fractional first slot is capped at 1/(4λ).
                assert!(ak >= 2f64.powf(-(kk - lambda)) / (2.0 * lambda) / norm - 1e-12);
            }
        }
        // Mass budgets.
        let total: f64 = (1..=log2_n).map(|k| a.alpha(k)).sum();
        assert!(total <= 1.0 + 1e-9);
        assert!((total + a.silent_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure1_relations_hold_across_parameter_grid() {
        for log2_n in [4u32, 8, 10, 14, 17, 20] {
            let l = log2_n as f64;
            for frac in [0.1, 0.25, 0.5, 0.75, 1.0] {
                let lambda = (l * frac).max(1.0);
                check_figure1(log2_n, lambda);
            }
        }
    }

    #[test]
    fn mean_q_is_theta_one_over_lambda() {
        for log2_n in [10u32, 14, 17] {
            for lambda in [2.0, 4.0, (log2_n as f64) / 2.0] {
                for dist in [
                    KDistribution::paper_alpha(log2_n, lambda),
                    KDistribution::cr_alpha(log2_n, lambda),
                ] {
                    let m = dist.mean_q();
                    assert!(
                        m > 0.05 / lambda && m < 2.0 / lambda,
                        "L={log2_n} λ={lambda}: E[q] = {m} not Θ(1/λ)"
                    );
                }
            }
        }
    }

    #[test]
    fn cr_tail_lacks_floor_paper_tail_has_it() {
        let log2_n = 16;
        let lambda = 3.0;
        let a = KDistribution::paper_alpha(log2_n, lambda);
        let ap = KDistribution::cr_alpha(log2_n, lambda);
        // Deep tail: paper's α sits at the floor, CR's decays below it.
        let l = log2_n as f64;
        assert!((a.alpha(log2_n) - 1.0 / (2.0 * l)).abs() < 1e-12);
        assert!(ap.alpha(log2_n) < 1.0 / (2.0 * l) / 100.0);
    }

    #[test]
    fn sampling_matches_masses() {
        let d = KDistribution::paper_alpha(10, 3.0);
        let mut rng = derive_rng(5, b"alpha", 0);
        let trials = 200_000;
        let mut counts = [0u64; 11]; // index 0 = silent
        for _ in 0..trials {
            match d.sample(&mut rng) {
                None => counts[0] += 1,
                Some(k) => counts[k as usize] += 1,
            }
        }
        let tol = 4.0 / (trials as f64).sqrt();
        assert!(
            (counts[0] as f64 / trials as f64 - d.silent_mass()).abs() < tol,
            "silent mass off"
        );
        for k in 1..=10u32 {
            let emp = counts[k as usize] as f64 / trials as f64;
            assert!(
                (emp - d.alpha(k)).abs() < tol,
                "k={k}: empirical {emp} vs {}",
                d.alpha(k)
            );
        }
    }

    #[test]
    fn sample_q_is_power_of_two_or_zero() {
        let d = KDistribution::cr_alpha(8, 2.0);
        let mut rng = derive_rng(6, b"alpha", 0);
        for _ in 0..1000 {
            let q = d.sample_q(&mut rng);
            if q > 0.0 {
                assert!((q.log2().round() - q.log2()).abs() < 1e-12);
                assert!(q <= 0.5 && q >= 2f64.powi(-8));
            }
        }
    }

    #[test]
    fn uniform_k_masses() {
        let d = KDistribution::uniform_k(8);
        for k in 1..=8 {
            assert!((d.alpha(k) - 0.125).abs() < 1e-12);
        }
        assert!(d.silent_mass() < 1e-12);
    }

    #[test]
    fn of_kind_dispatch() {
        assert_eq!(
            KDistribution::of_kind(AlphaKind::Paper, 8, 2.0),
            KDistribution::paper_alpha(8, 2.0)
        );
        assert_eq!(
            KDistribution::of_kind(AlphaKind::CzumajRytter, 8, 2.0),
            KDistribution::cr_alpha(8, 2.0)
        );
    }

    #[test]
    #[should_panic]
    fn rejects_lambda_above_l() {
        let _ = KDistribution::paper_alpha(4, 5.0);
    }

    #[test]
    fn overfull_mass_is_normalised() {
        let d = KDistribution::from_probs(vec![0.7, 0.7], 1.0);
        assert!((d.norm() - 1.4).abs() < 1e-12);
        assert!((d.alpha(1) - 0.5).abs() < 1e-12);
        assert!(d.silent_mass() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_mass() {
        let _ = KDistribution::from_probs(vec![0.5, -0.1], 1.0);
    }
}
