//! Dynamic gossiping — the variant the paper sketches at the end of §3:
//! *"provide every message with a time stamp (generation time), and …
//! delete old messages out of the `m_t(i)` messages"*.
//!
//! Rumors are born on a schedule (round, origin) and carry a TTL; a node
//! forwards only rumors that are still alive, so the joined message stays
//! bounded even over an infinite run. The interesting measurements are
//! per-rumor: what fraction of the network a rumor reaches before it
//! expires, as a function of TTL relative to the static gossip time
//! `Θ(d log n)`.

use crate::params::GnpParams;
use radio_graph::{DiGraph, NodeId};
use radio_sim::{Action, EngineConfig, Protocol};
use radio_util::BitSet;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// One rumor's birth certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RumorBirth {
    /// Round in which the rumor appears at its origin (1-based; rumors
    /// born in round `r` are first transmittable in round `r + 1`).
    pub round: u64,
    /// Originating node.
    pub origin: NodeId,
}

/// Configuration for the dynamic gossip run.
#[derive(Debug, Clone)]
pub struct DynamicGossipConfig {
    /// `G(n,p)` parameters (transmit probability `1/d`).
    pub params: GnpParams,
    /// Birth schedule, sorted by round.
    pub births: Vec<RumorBirth>,
    /// Rounds a rumor stays alive (is forwarded) after birth.
    pub ttl: u64,
    /// Total rounds to simulate.
    pub rounds: u64,
}

/// Per-rumor dissemination result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumorCoverage {
    /// The rumor's birth.
    pub birth: RumorBirth,
    /// Nodes that knew the rumor when it expired (or the run ended).
    pub reached: usize,
    /// Round the rumor reached every node, if it did so while alive.
    pub full_coverage_round: Option<u64>,
}

/// The dynamic-gossip protocol.
#[derive(Debug)]
pub struct DynamicGossip {
    cfg: DynamicGossipConfig,
    /// `known[v]` — rumor slots node `v` has heard (dead or alive).
    known: Vec<BitSet>,
    /// How many nodes know each rumor.
    reach: Vec<usize>,
    /// First full-coverage round per rumor.
    full_round: Vec<Option<u64>>,
    /// Index of the next birth to process.
    next_birth: usize,
    n: usize,
}

impl DynamicGossip {
    /// Fresh instance.
    ///
    /// # Panics
    /// Panics if the birth schedule is not sorted by round or any origin
    /// is out of range.
    pub fn new(cfg: DynamicGossipConfig) -> Self {
        let n = cfg.params.n;
        assert!(
            cfg.births.windows(2).all(|w| w[0].round <= w[1].round),
            "birth schedule must be sorted by round"
        );
        assert!(
            cfg.births.iter().all(|b| (b.origin as usize) < n),
            "birth origin out of range"
        );
        let k = cfg.births.len();
        DynamicGossip {
            known: (0..n).map(|_| BitSet::new(k)).collect(),
            reach: vec![0; k],
            full_round: vec![None; k],
            next_birth: 0,
            n,
            cfg,
        }
    }

    /// Rumor slots alive in `round`.
    fn alive_mask(&self, round: u64) -> BitSet {
        let mut m = BitSet::new(self.cfg.births.len());
        for (i, b) in self.cfg.births.iter().enumerate() {
            if b.round <= round && round <= b.round + self.cfg.ttl {
                m.insert(i);
            }
        }
        m
    }

    /// Deliver newly born rumors to their origins (called at round start).
    fn process_births(&mut self, round: u64) {
        while self.next_birth < self.cfg.births.len()
            && self.cfg.births[self.next_birth].round <= round
        {
            let b = self.cfg.births[self.next_birth];
            let slot = self.next_birth;
            if self.known[b.origin as usize].insert(slot) {
                self.reach[slot] += 1;
                if self.n == 1 {
                    self.full_round[slot] = Some(round);
                }
            }
            self.next_birth += 1;
        }
    }

    fn learn(&mut self, node: NodeId, slot: usize, round: u64) {
        if self.known[node as usize].insert(slot) {
            self.reach[slot] += 1;
            if self.reach[slot] == self.n && self.full_round[slot].is_none() {
                self.full_round[slot] = Some(round);
            }
        }
    }

    /// Coverage report after the run.
    pub fn coverage(&self) -> Vec<RumorCoverage> {
        self.cfg
            .births
            .iter()
            .enumerate()
            .map(|(i, &birth)| RumorCoverage {
                birth,
                reached: self.reach[i],
                full_coverage_round: self.full_round[i],
            })
            .collect()
    }
}

impl Protocol for DynamicGossip {
    type Msg = BitSet;

    fn initially_awake(&self) -> Vec<NodeId> {
        (0..self.n as NodeId).collect()
    }

    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        // Births are processed once per round, when node polling reaches
        // the first node of the round sweep.
        if node == 0 || self.next_birth < self.cfg.births.len() {
            self.process_births(round);
        }
        if round > self.cfg.rounds {
            return Action::Sleep;
        }
        let q = (1.0 / self.cfg.params.d).min(1.0);
        if rng.random_bool(q) {
            Action::Transmit
        } else {
            Action::Silent
        }
    }

    fn payload(&self, node: NodeId, round: u64) -> Self::Msg {
        // Forward only live rumors: the time-stamp deletion rule.
        let mut msg = self.known[node as usize].clone();
        let alive = self.alive_mask(round);
        let mut filtered = BitSet::new(msg.capacity());
        for slot in msg.iter() {
            if alive.contains(slot) {
                filtered.insert(slot);
            }
        }
        msg = filtered;
        msg
    }

    fn on_receive(
        &mut self,
        node: NodeId,
        _from: NodeId,
        round: u64,
        msg: &Self::Msg,
        _rng: &mut ChaCha8Rng,
    ) {
        for slot in msg.iter() {
            self.learn(node, slot, round);
        }
    }

    fn is_complete(&self) -> bool {
        false // runs to its round budget
    }

    fn informed_count(&self) -> usize {
        self.reach.iter().filter(|&&r| r == self.n).count()
    }

    fn active_count(&self) -> usize {
        self.n
    }
}

/// Run dynamic gossip; returns per-rumor coverage.
pub fn run_dynamic_gossip(
    graph: &DiGraph,
    cfg: DynamicGossipConfig,
    seed: u64,
) -> Vec<RumorCoverage> {
    assert_eq!(graph.n(), cfg.params.n);
    let rounds = cfg.rounds;
    let mut protocol = DynamicGossip::new(cfg);
    let mut rng = radio_util::derive_rng(seed, b"engine", 0);
    let engine_cfg = EngineConfig::with_max_rounds(rounds + 1);
    let _ = radio_sim::engine::run_protocol(graph, &mut protocol, engine_cfg, &mut rng);
    protocol.coverage()
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generate::gnp_directed;
    use radio_util::derive_rng;

    fn setup(n: usize, seed: u64) -> (DiGraph, GnpParams) {
        let p = 8.0 * (n as f64).ln() / n as f64;
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"dyn-g", 0));
        (g, GnpParams::new(n, p))
    }

    #[test]
    fn generous_ttl_reaches_everyone() {
        let (g, params) = setup(128, 0);
        let scale = (params.d * (128f64).log2()) as u64;
        let cfg = DynamicGossipConfig {
            params,
            births: vec![RumorBirth {
                round: 1,
                origin: 0,
            }],
            ttl: 20 * scale,
            rounds: 20 * scale,
        };
        let cov = run_dynamic_gossip(&g, cfg, 0);
        assert_eq!(cov.len(), 1);
        assert_eq!(cov[0].reached, 128, "rumor should saturate the network");
        assert!(cov[0].full_coverage_round.is_some());
    }

    #[test]
    fn tiny_ttl_limits_spread() {
        let (g, params) = setup(128, 1);
        let cfg = DynamicGossipConfig {
            params,
            births: vec![RumorBirth {
                round: 1,
                origin: 0,
            }],
            ttl: 2,
            rounds: 5000,
        };
        let cov = run_dynamic_gossip(&g, cfg, 1);
        assert!(
            cov[0].reached < 128,
            "a 2-round TTL cannot reach all of a d≈39 network"
        );
    }

    #[test]
    fn staggered_births_all_tracked() {
        let (g, params) = setup(64, 2);
        let scale = (params.d * (64f64).log2()) as u64;
        let births: Vec<RumorBirth> = (0..4)
            .map(|i| RumorBirth {
                round: 1 + i * 10,
                origin: (i * 13 % 64) as NodeId,
            })
            .collect();
        let cfg = DynamicGossipConfig {
            params,
            births,
            ttl: 20 * scale,
            rounds: 25 * scale,
        };
        let cov = run_dynamic_gossip(&g, cfg, 2);
        assert_eq!(cov.len(), 4);
        for c in &cov {
            assert_eq!(c.reached, 64, "rumor {:?} under-covered", c.birth);
        }
    }

    #[test]
    #[should_panic]
    fn unsorted_schedule_rejected() {
        let (_, params) = setup(64, 3);
        let cfg = DynamicGossipConfig {
            params,
            births: vec![
                RumorBirth {
                    round: 9,
                    origin: 0,
                },
                RumorBirth {
                    round: 2,
                    origin: 1,
                },
            ],
            ttl: 10,
            rounds: 100,
        };
        let _ = DynamicGossip::new(cfg);
    }
}
