//! **Algorithm 2** — gossiping in random networks (paper §3).
//!
//! Every node starts with its own rumor. For `128·d·log n` rounds
//! (we expose the constant as `γ`), every node transmits with probability
//! `1/d`, sending its *joined* message — the union of every rumor it has
//! heard so far (the join model of \[8, 11, 21\]: combined messages fit in
//! one time step). Nodes never become passive.
//!
//! Theorem 3.2: with `p > δ log n / n`, gossiping completes in
//! `O(d log n)` rounds w.h.p. and every node performs `O(log n)`
//! transmissions (`E[msgs/node] = γ log n`, tightly concentrated).
//!
//! Rumor sets are [`BitSet`]s; [`EeGossipConfig::tracked`] optionally
//! restricts bookkeeping to an evenly spaced rumor sample — legitimate
//! because transmission decisions are content-independent (probability
//! `1/d` regardless of payload), so the sampled run has *identical*
//! dynamics, time and energy, only cheaper completion accounting.
//!
//! [`dynamic`] contains the time-stamped variant the paper sketches
//! ("provide every message with a time stamp … and delete old messages").

pub mod dynamic;

use crate::params::GnpParams;
use radio_graph::{DiGraph, NodeId};
use radio_sim::{Action, EngineConfig, Metrics, Protocol};
use radio_util::BitSet;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Configuration for Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct EeGossipConfig {
    /// Derived `G(n,p)` parameters (`d = np` sets both the transmit
    /// probability `1/d` and the round budget).
    pub params: GnpParams,
    /// Round-budget multiplier: the schedule is `⌈γ·d·log₂ n⌉` rounds
    /// (the paper's constant is 128; γ = 6 empirically suffices at
    /// simulated sizes and is swept in the E14 ablation).
    pub gamma: f64,
    /// Track only `k` evenly spaced rumors instead of all `n`
    /// (`None` = full tracking).
    pub tracked: Option<usize>,
    /// Stop once every node knows every tracked rumor.
    pub early_stop: bool,
}

impl EeGossipConfig {
    /// Defaults: γ = 6, full tracking, early stop.
    pub fn for_gnp(n: usize, p: f64) -> Self {
        EeGossipConfig {
            params: GnpParams::new(n, p),
            gamma: 6.0,
            tracked: None,
            early_stop: true,
        }
    }

    /// Scheduled number of rounds `⌈γ·d·log₂ n⌉`.
    pub fn schedule_rounds(&self) -> u64 {
        (self.gamma * self.params.d * (self.params.n as f64).log2()).ceil() as u64
    }

    /// Number of tracked rumors.
    pub fn tracked_count(&self) -> usize {
        self.tracked.unwrap_or(self.params.n).min(self.params.n)
    }
}

/// Algorithm 2 as a [`Protocol`]. `Msg` is the sender's joined rumor set.
#[derive(Debug)]
pub struct EeGossip {
    cfg: EeGossipConfig,
    /// `rumors[v]` = tracked rumors known to `v`.
    rumors: Vec<BitSet>,
    /// Nodes already holding every tracked rumor.
    nodes_complete: usize,
    /// Round when the last node completed.
    complete_round: Option<u64>,
    n: usize,
}

impl EeGossip {
    /// Fresh instance: node `v` knows exactly its own rumor (if tracked).
    pub fn new(cfg: EeGossipConfig) -> Self {
        let n = cfg.params.n;
        let k = cfg.tracked_count();
        // Tracked rumor j originates at node ⌊j·n/k⌋ (evenly spaced).
        let mut origin_slot = vec![usize::MAX; n];
        for j in 0..k {
            origin_slot[j * n / k] = j;
        }
        let mut rumors = Vec::with_capacity(n);
        let mut nodes_complete = 0;
        for &slot in &origin_slot {
            let mut set = BitSet::new(k);
            if slot != usize::MAX {
                set.insert(slot);
            }
            if set.len() == k {
                nodes_complete += 1; // degenerate k = 1 case
            }
            rumors.push(set);
        }
        EeGossip {
            cfg,
            rumors,
            nodes_complete,
            complete_round: if nodes_complete == n { Some(0) } else { None },
            n,
        }
    }

    /// Round by which every node knew every tracked rumor, if reached —
    /// the paper's *gossiping time*.
    pub fn gossip_time(&self) -> Option<u64> {
        self.complete_round
    }

    /// Minimum number of tracked rumors any node knows (progress metric).
    pub fn min_known(&self) -> usize {
        self.rumors.iter().map(BitSet::len).min().unwrap_or(0)
    }
}

impl Protocol for EeGossip {
    type Msg = BitSet;

    fn initially_awake(&self) -> Vec<NodeId> {
        (0..self.n as NodeId).collect()
    }

    fn decide(&mut self, _node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        if round > self.cfg.schedule_rounds() {
            return Action::Sleep;
        }
        let q = (1.0 / self.cfg.params.d).min(1.0);
        if rng.random_bool(q) {
            Action::Transmit
        } else {
            Action::Silent
        }
    }

    fn payload(&self, node: NodeId, _round: u64) -> Self::Msg {
        self.rumors[node as usize].clone()
    }

    fn on_receive(
        &mut self,
        node: NodeId,
        _from: NodeId,
        round: u64,
        msg: &Self::Msg,
        _rng: &mut ChaCha8Rng,
    ) {
        let k = self.cfg.tracked_count();
        let set = &mut self.rumors[node as usize];
        let was_complete = set.len() == k;
        set.union_with(msg);
        if !was_complete && set.len() == k {
            self.nodes_complete += 1;
            if self.nodes_complete == self.n {
                self.complete_round = Some(round);
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.cfg.early_stop && self.nodes_complete == self.n
    }

    fn informed_count(&self) -> usize {
        self.nodes_complete
    }

    fn active_count(&self) -> usize {
        self.n
    }
}

/// Outcome of a gossip run.
#[derive(Debug, Clone)]
pub struct GossipOutcome {
    /// Number of nodes.
    pub n: usize,
    /// Whether every node learned every tracked rumor.
    pub completed: bool,
    /// The paper's gossiping time, if completed.
    pub gossip_time: Option<u64>,
    /// Rounds executed.
    pub rounds_executed: u64,
    /// Nodes that hold all tracked rumors.
    pub nodes_complete: usize,
    /// Minimum tracked rumors known by any node.
    pub min_known: usize,
    /// Energy accounting.
    pub metrics: Metrics,
}

impl GossipOutcome {
    /// The paper's per-node energy measure.
    pub fn max_msgs_per_node(&self) -> u32 {
        self.metrics.max_transmissions_per_node()
    }

    /// Mean transmissions per node (`≈ γ log₂ n` for a full schedule).
    pub fn mean_msgs_per_node(&self) -> f64 {
        self.metrics.mean_transmissions_per_node()
    }
}

/// Run Algorithm 2 on `graph`.
pub fn run_ee_gossip(graph: &DiGraph, cfg: &EeGossipConfig, seed: u64) -> GossipOutcome {
    assert_eq!(graph.n(), cfg.params.n, "config n must match the graph");
    let mut protocol = EeGossip::new(*cfg);
    let mut rng = radio_util::derive_rng(seed, b"engine", 0);
    let engine_cfg = EngineConfig::with_max_rounds(cfg.schedule_rounds() + 2);
    let run = radio_sim::engine::run_protocol(graph, &mut protocol, engine_cfg, &mut rng);
    GossipOutcome {
        n: graph.n(),
        completed: protocol.nodes_complete == graph.n(),
        gossip_time: protocol.gossip_time(),
        rounds_executed: run.rounds,
        nodes_complete: protocol.nodes_complete,
        min_known: protocol.min_known(),
        metrics: run.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generate::gnp_directed;
    use radio_util::derive_rng;

    fn instance(n: usize, delta: f64, seed: u64) -> (DiGraph, EeGossipConfig) {
        let p = delta * (n as f64).ln() / n as f64;
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"gossip-g", 0));
        (g, EeGossipConfig::for_gnp(n, p))
    }

    #[test]
    fn all_nodes_learn_all_rumors() {
        let (g, cfg) = instance(256, 8.0, 0);
        let out = run_ee_gossip(&g, &cfg, 0);
        assert!(out.completed, "min_known = {}", out.min_known);
        assert_eq!(out.nodes_complete, 256);
    }

    #[test]
    fn gossip_time_scales_with_d_log_n() {
        let (g, cfg) = instance(512, 8.0, 1);
        let out = run_ee_gossip(&g, &cfg, 1);
        assert!(out.completed);
        let t = out.gossip_time.expect("completed") as f64;
        let scale = cfg.params.d * (512f64).log2();
        assert!(t < 3.0 * scale, "gossip time {t} ≫ d log n = {scale}");
        assert!(t > 0.05 * scale, "suspiciously fast: {t} vs scale {scale}");
    }

    #[test]
    fn msgs_per_node_are_logarithmic() {
        let (g, mut cfg) = instance(512, 8.0, 2);
        cfg.early_stop = false; // full schedule = worst-case energy
        let out = run_ee_gossip(&g, &cfg, 2);
        let expect = cfg.gamma * (512f64).log2();
        let mean = out.mean_msgs_per_node();
        assert!(
            (mean - expect).abs() < 0.2 * expect,
            "mean msgs {mean} vs γ log n = {expect}"
        );
        // Concentration: max within a small factor of the mean.
        assert!((out.max_msgs_per_node() as f64) < 2.5 * mean);
    }

    #[test]
    fn sampled_tracking_matches_full_dynamics() {
        // Content-independence: energy and rounds must be identical
        // between full and sampled tracking for the same seed when neither
        // stops early.
        let (g, mut cfg) = instance(128, 8.0, 3);
        cfg.early_stop = false;
        let full = run_ee_gossip(&g, &cfg, 3);
        cfg.tracked = Some(16);
        let sampled = run_ee_gossip(&g, &cfg, 3);
        assert_eq!(full.rounds_executed, sampled.rounds_executed);
        assert_eq!(
            full.metrics.total_transmissions(),
            sampled.metrics.total_transmissions()
        );
        assert!(sampled.completed);
    }

    #[test]
    fn rumor_knowledge_is_monotone_and_complete_per_node() {
        let (g, cfg) = instance(128, 8.0, 4);
        let mut protocol = EeGossip::new(cfg);
        let mut rng = derive_rng(4, b"engine", 0);
        let engine_cfg = EngineConfig::with_max_rounds(cfg.schedule_rounds());
        let _ = radio_sim::engine::run_protocol(&g, &mut protocol, engine_cfg, &mut rng);
        for v in 0..128 {
            assert!(
                protocol.rumors[v].contains(v),
                "node {v} lost its own rumor"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, cfg) = instance(128, 8.0, 5);
        let a = run_ee_gossip(&g, &cfg, 7);
        let b = run_ee_gossip(&g, &cfg, 7);
        assert_eq!(a.gossip_time, b.gossip_time);
        assert_eq!(a.metrics.per_node(), b.metrics.per_node());
    }
}
