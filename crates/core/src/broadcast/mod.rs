//! Broadcasting algorithms.
//!
//! * [`ee_random`] — **Algorithm 1**: the paper's energy-efficient
//!   broadcast for directed `G(n,p)` (≤ 1 transmission per node).
//! * [`ee_general`] — **Algorithm 3**: broadcast for arbitrary networks
//!   with known diameter, driven by the shared `α`-sequence.
//! * [`cr`] — Czumaj–Rytter's known-diameter algorithm (`α'`), with the
//!   paper's stop-after-a-while energy transformation — the baseline
//!   Theorem 4.1 is compared against.
//! * [`decay`] — Bar-Yehuda–Goldreich–Itai Decay, the classic
//!   unknown-topology baseline.
//! * [`eg`] — Elsässer–Gasieniec random-graph broadcast, the §2 baseline
//!   (up to `D − 1` transmissions per node).
//! * [`flood`] — naive and fixed-probability flooding (the collision
//!   motivation).
//! * [`windowed`] — the shared machinery: a node is *active* from the
//!   round it is informed until its window expires, transmitting each
//!   round with a probability taken from a [`ProbSource`]. Algorithm 3,
//!   CR, Decay, flooding and the lower-bound oblivious protocols are all
//!   instances.

pub mod cr;
pub mod decay;
pub mod ee_general;
pub mod ee_random;
pub mod eg;
pub mod epoch;
pub mod flood;
pub mod windowed;

pub use windowed::{
    run_windowed, run_windowed_energy, run_windowed_fused, ProbSource, WindowedBroadcast,
    WindowedSpec,
};

use radio_sim::{EnergyMetrics, EnergyRunResult, Metrics, RunResult, Trace};

/// Outcome of a broadcast run, shared by every algorithm in this module.
#[derive(Debug, Clone)]
pub struct BroadcastOutcome {
    /// Number of nodes in the network.
    pub n: usize,
    /// Nodes holding the message when the run ended.
    pub informed: usize,
    /// Whether every node was informed.
    pub all_informed: bool,
    /// First (1-based) round after which all nodes were informed, if that
    /// happened — the paper's *broadcasting time*.
    pub broadcast_time: Option<u64>,
    /// Rounds actually executed (= `broadcast_time` under early stopping;
    /// the full schedule length under energy-faithful accounting).
    pub rounds_executed: u64,
    /// The engine cut the run off at its round cap while the protocol was
    /// still incomplete (see [`radio_sim::RunResult::hit_round_cap`]).
    pub hit_round_cap: bool,
    /// Energy accounting (per-node and total transmission counts).
    pub metrics: Metrics,
    /// Model-based energy accounting, when the run used an energy overlay
    /// (e.g. [`windowed::run_windowed_energy`]).
    pub energy: Option<EnergyMetrics>,
    /// Per-round trace when requested.
    pub trace: Option<Trace>,
}

impl BroadcastOutcome {
    /// Assemble from an engine result plus the protocol's own bookkeeping.
    pub(crate) fn from_run(
        n: usize,
        informed: usize,
        broadcast_time: Option<u64>,
        run: RunResult,
    ) -> Self {
        BroadcastOutcome {
            n,
            informed,
            all_informed: informed == n,
            broadcast_time,
            rounds_executed: run.rounds,
            hit_round_cap: run.hit_round_cap,
            metrics: run.metrics,
            energy: None,
            trace: run.trace,
        }
    }

    /// As [`BroadcastOutcome::from_run`], from an energy-overlay run.
    pub(crate) fn from_energy_run(
        n: usize,
        informed: usize,
        broadcast_time: Option<u64>,
        run: EnergyRunResult,
    ) -> Self {
        let mut out = Self::from_run(n, informed, broadcast_time, run.run);
        out.energy = Some(run.energy);
        out
    }

    /// Lift this outcome into a sweep [`radio_sim::TrialResult`]:
    /// success = every node informed, with `bcast_time` riding along as
    /// an extra when the broadcast finished (the paper's time metric
    /// conditions on success). The single source of truth for the
    /// mapping — experiment harnesses and tests share it.
    pub fn to_trial(&self) -> radio_sim::TrialResult {
        let mut t = radio_sim::TrialResult {
            completed: self.all_informed,
            success: self.all_informed,
            rounds: self.rounds_executed,
            hit_round_cap: self.hit_round_cap,
            total_transmissions: self.metrics.total_transmissions(),
            max_transmissions_per_node: self.max_msgs_per_node(),
            informed: self.informed,
            energy: self.energy.as_ref().map(radio_sim::TrialEnergy::from),
            extras: Vec::new(),
        };
        if let Some(bt) = self.broadcast_time {
            t = t.extra("bcast_time", bt as f64);
        }
        t
    }

    /// Transmissions per node, averaged.
    pub fn mean_msgs_per_node(&self) -> f64 {
        self.metrics.mean_transmissions_per_node()
    }

    /// The paper's per-node energy measure.
    pub fn max_msgs_per_node(&self) -> u32 {
        self.metrics.max_transmissions_per_node()
    }
}

/// Common bookkeeping for "who is informed" shared by the protocols here.
#[derive(Debug, Clone)]
pub(crate) struct InformedSet {
    informed_at: Vec<u64>, // u64::MAX = uninformed; source = 0
    count: usize,
    complete_round: Option<u64>,
}

impl InformedSet {
    pub(crate) fn new(n: usize, source: radio_graph::NodeId) -> Self {
        let mut informed_at = vec![u64::MAX; n];
        informed_at[source as usize] = 0;
        InformedSet {
            informed_at,
            count: 1,
            complete_round: None,
        }
    }

    /// Mark `v` informed in `round`; true if newly informed.
    #[inline]
    pub(crate) fn inform(&mut self, v: radio_graph::NodeId, round: u64) -> bool {
        let slot = &mut self.informed_at[v as usize];
        if *slot == u64::MAX {
            *slot = round;
            self.count += 1;
            if self.count == self.informed_at.len() && self.complete_round.is_none() {
                self.complete_round = Some(round);
            }
            true
        } else {
            false
        }
    }

    #[inline]
    pub(crate) fn is_informed(&self, v: radio_graph::NodeId) -> bool {
        self.informed_at[v as usize] != u64::MAX
    }

    /// Round in which `v` was informed (`0` for the source).
    #[inline]
    pub(crate) fn informed_round(&self, v: radio_graph::NodeId) -> u64 {
        self.informed_at[v as usize]
    }

    #[inline]
    pub(crate) fn count(&self) -> usize {
        self.count
    }

    #[inline]
    pub(crate) fn all(&self) -> bool {
        self.count == self.informed_at.len()
    }

    #[inline]
    pub(crate) fn complete_round(&self) -> Option<u64> {
        self.complete_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn informed_set_tracks_completion_round() {
        let mut s = InformedSet::new(3, 0);
        assert!(s.is_informed(0));
        assert!(!s.is_informed(2));
        assert_eq!(s.count(), 1);
        assert!(s.inform(2, 4));
        assert!(!s.inform(2, 5), "re-inform is a no-op");
        assert!(s.is_informed(2));
        assert_eq!(s.informed_round(2), 4);
        assert!(!s.all());
        assert!(s.inform(1, 9));
        assert!(s.all());
        assert_eq!(s.complete_round(), Some(9));
    }
}
