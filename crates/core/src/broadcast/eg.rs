//! The Elsässer–Gasieniec random-graph broadcasting baseline \[12\]
//! (SPAA'05), as described in this paper's §1.1/§1.3 — the algorithm
//! Algorithm 1 improves upon.
//!
//! Three phases on `G(n,p)` with `d = np` and `D̂ = ⌈log n / log d⌉`
//! (the w.h.p. diameter, Lemma 3.1):
//!
//! 1. Rounds `1..D̂`: every informed node transmits **every round**
//!    (probability 1) — up to `D̂ − 1` transmissions per node, the energy
//!    cost Algorithm 1 eliminates.
//! 2. Round `D̂`: every informed node transmits with probability `n/d^D̂`.
//! 3. `β log n` rounds: every node informed in the first two phases
//!    transmits with probability `1/d` each round.
//!
//! Broadcast time is `O(log n)` w.h.p. — same as Algorithm 1 — but the
//! per-node message count is `Θ(D̂)` in Phase 1 alone, which is the
//! comparison row in table E13.

use super::{BroadcastOutcome, InformedSet};
use crate::params::GnpParams;
use radio_graph::{DiGraph, NodeId};
use radio_sim::{Action, EngineConfig, Protocol};
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Configuration for the EG baseline.
#[derive(Debug, Clone, Copy)]
pub struct EgBroadcastConfig {
    /// Derived `G(n,p)` parameters.
    pub params: GnpParams,
    /// Phase-3 length multiplier (`⌈β log₂ n⌉` rounds).
    pub beta: f64,
    /// Stop at completion vs. full schedule.
    pub early_stop: bool,
}

impl EgBroadcastConfig {
    /// Defaults mirroring [`super::ee_random::EeBroadcastConfig::for_gnp`].
    pub fn for_gnp(n: usize, p: f64) -> Self {
        EgBroadcastConfig {
            params: GnpParams::new(n, p),
            beta: 16.0,
            early_stop: false,
        }
    }

    /// Same, stopping at completion.
    pub fn for_gnp_timed(n: usize, p: f64) -> Self {
        EgBroadcastConfig {
            early_stop: true,
            ..Self::for_gnp(n, p)
        }
    }

    /// `D̂ = ⌈log n / log d⌉`, the phase-1 horizon.
    pub fn d_hat(&self) -> u64 {
        let p = self.params;
        (((p.n as f64).log2() / p.d.log2()).ceil() as u64).max(1)
    }

    /// Phase-2 probability `n / d^D̂`, clamped to ≤ 1.
    pub fn q2(&self) -> f64 {
        let p = self.params;
        (p.n as f64 / p.d.powi(self.d_hat() as i32)).min(1.0)
    }

    /// Last scheduled round.
    pub fn schedule_end(&self) -> u64 {
        self.d_hat() + (self.beta * (self.params.n as f64).log2()).ceil() as u64
    }
}

/// The EG protocol.
#[derive(Debug)]
pub struct EgBroadcast {
    cfg: EgBroadcastConfig,
    informed: InformedSet,
    source: NodeId,
    retired: Vec<bool>,
    active: usize,
}

impl EgBroadcast {
    /// Fresh instance for a broadcast from `source`.
    pub fn new(n: usize, source: NodeId, cfg: EgBroadcastConfig) -> Self {
        assert_eq!(n, cfg.params.n, "config n must match the graph");
        EgBroadcast {
            cfg,
            informed: InformedSet::new(n, source),
            source,
            retired: vec![false; n],
            active: 1,
        }
    }

    /// First round everyone was informed, if reached.
    pub fn broadcast_time(&self) -> Option<u64> {
        self.informed.complete_round()
    }
}

impl Protocol for EgBroadcast {
    type Msg = ();

    fn initially_awake(&self) -> Vec<NodeId> {
        vec![self.source]
    }

    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        if self.retired[node as usize] {
            return Action::Sleep;
        }
        let d_hat = self.cfg.d_hat();
        if round > self.cfg.schedule_end() {
            self.retired[node as usize] = true;
            self.active -= 1;
            return Action::Sleep;
        }
        if round < d_hat {
            // Phase 1: transmit with probability 1, stay active.
            Action::Transmit
        } else if round == d_hat {
            // Phase 2.
            if rng.random_bool(self.cfg.q2()) {
                Action::Transmit
            } else {
                Action::Silent
            }
        } else {
            // Phase 3: only nodes informed during phases 1–2 (rounds
            // ≤ D̂) participate — "every node informed in the first two
            // phases transmits with probability 1/d".
            if self.informed.informed_round(node) > d_hat {
                self.retired[node as usize] = true;
                self.active -= 1;
                return Action::Sleep;
            }
            if rng.random_bool(self.cfg.params.q3.min(1.0 / self.cfg.params.d)) {
                Action::Transmit
            } else {
                Action::Silent
            }
        }
    }

    fn payload(&self, _node: NodeId, _round: u64) -> Self::Msg {}

    fn on_receive(
        &mut self,
        node: NodeId,
        _from: NodeId,
        round: u64,
        _msg: &Self::Msg,
        _rng: &mut ChaCha8Rng,
    ) {
        if self.informed.inform(node, round) {
            self.active += 1;
        }
    }

    fn is_complete(&self) -> bool {
        self.cfg.early_stop && self.informed.all()
    }

    fn informed_count(&self) -> usize {
        self.informed.count()
    }

    fn active_count(&self) -> usize {
        self.active
    }
}

/// Run the EG baseline on `graph` from `source`.
pub fn run_eg_broadcast(
    graph: &DiGraph,
    source: NodeId,
    cfg: &EgBroadcastConfig,
    seed: u64,
) -> BroadcastOutcome {
    let mut protocol = EgBroadcast::new(graph.n(), source, *cfg);
    let mut rng = radio_util::derive_rng(seed, b"engine", 0);
    let engine_cfg = EngineConfig::with_max_rounds(cfg.schedule_end() + 2);
    let run = radio_sim::engine::run_protocol(graph, &mut protocol, engine_cfg, &mut rng);
    BroadcastOutcome::from_run(
        graph.n(),
        protocol.informed_count(),
        protocol.broadcast_time(),
        run,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generate::gnp_directed;
    use radio_util::derive_rng;

    fn sparse_instance(n: usize, delta: f64, seed: u64) -> (DiGraph, EgBroadcastConfig) {
        let p = delta * (n as f64).ln() / n as f64;
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"eg-g", 0));
        (g, EgBroadcastConfig::for_gnp(n, p))
    }

    #[test]
    fn informs_everyone_on_sparse_gnp() {
        for seed in 0..5 {
            let (g, cfg) = sparse_instance(1024, 8.0, seed);
            let out = run_eg_broadcast(&g, 0, &cfg, seed);
            assert!(out.all_informed, "seed {seed}");
        }
    }

    #[test]
    fn phase1_costs_multiple_transmissions_per_node() {
        // The contrast with Algorithm 1: EG's early-informed nodes send
        // once per Phase-1 round. Pick d = 24 on n = 4096 so that
        // D̂ = ⌈12/4.58⌉ = 3 and Phase 1 spans two rounds.
        let n = 4096;
        let p = 24.0 / n as f64;
        let g = gnp_directed(n, p, &mut derive_rng(1, b"eg-g", 0));
        let cfg = EgBroadcastConfig::for_gnp(n, p);
        assert_eq!(cfg.d_hat(), 3);
        let out = run_eg_broadcast(&g, 0, &cfg, 1);
        assert!(out.all_informed);
        assert!(
            out.max_msgs_per_node() as u64 >= cfg.d_hat() - 1,
            "source alone should transmit every Phase-1 round: max {} < D̂−1 = {}",
            out.max_msgs_per_node(),
            cfg.d_hat() - 1
        );
    }

    #[test]
    fn d_hat_and_q2_formulas() {
        let n = 65536;
        let p = 16.0 / n as f64; // d = 16, D̂ = 4, q2 = n/d^4 = 1
        let cfg = EgBroadcastConfig::for_gnp(n, p);
        assert_eq!(cfg.d_hat(), 4);
        assert!((cfg.q2() - 1.0).abs() < 1e-9);

        let n2 = 32768usize; // d = 16 → log n/log d = 3.75 → D̂ = 4
        let cfg2 = EgBroadcastConfig::for_gnp(n2, 16.0 / n2 as f64);
        assert_eq!(cfg2.d_hat(), 4);
        assert!((cfg2.q2() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn broadcast_time_is_logarithmic() {
        let (g, cfg) = sparse_instance(4096, 12.0, 3);
        let out = run_eg_broadcast(&g, 0, &cfg, 3);
        assert!(out.all_informed);
        let t = out.broadcast_time.expect("completed") as f64;
        assert!(t < 12.0 * (4096f64).log2());
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, cfg) = sparse_instance(512, 8.0, 4);
        let a = run_eg_broadcast(&g, 0, &cfg, 6);
        let b = run_eg_broadcast(&g, 0, &cfg, 6);
        assert_eq!(a.broadcast_time, b.broadcast_time);
        assert_eq!(a.metrics.per_node(), b.metrics.per_node());
    }
}
