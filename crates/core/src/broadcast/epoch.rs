//! Unknown-diameter broadcasting via diameter doubling — the extension
//! the paper gestures at in §4: *"Similarly, the algorithm of \[11\] for
//! unknown diameter can be transformed into an algorithm with an expected
//! number of Θ(log² n) messages per node."*
//!
//! When `D` is unknown, the schedule runs **epochs** `j = 1, 2, …` with
//! diameter guesses `D_j = 2^j`. Epoch `j` lasts
//! `⌈β₁·(D_j·λ_j + log² n)⌉` rounds (the Theorem 4.1 time bound for its
//! guess, `λ_j = max(1, log₂(n/D_j))`) and drives transmissions from a
//! shared `α(λ_j)` sequence. Within an epoch a node participates for at
//! most `⌈β₂ log² n⌉` rounds (counted from `max(informed, epoch start)`),
//! so its energy in epoch `j` is `≈ β₂ log² n · E[q_j] = O(log² n / λ_j)`.
//! Once the guess reaches the true diameter, the epoch is a full
//! known-`D` Algorithm 3 run and completes w.h.p. Per-node energy over
//! the whole schedule is `β₂ log² n · Σ_j 1/λ_j = O(log² n · log log n)`
//! — an `H_{log n}·λ(D)` factor over the known-`D` algorithm (the price
//! of hedging across diameter scales), measured against the known-`D`
//! algorithm in this module's tests.

use super::{BroadcastOutcome, InformedSet};
use crate::seq::{KDistribution, SharedSequence};
use radio_graph::{DiGraph, NodeId};
use radio_sim::{Action, EngineConfig, Protocol};
use radio_util::ilog2_ceil;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Configuration for the unknown-diameter epoch broadcast.
#[derive(Debug, Clone, Copy)]
pub struct EpochBroadcastConfig {
    /// Number of nodes (the only global knowledge).
    pub n: usize,
    /// Epoch-length multiplier (`β₁`).
    pub beta_time: f64,
    /// Per-epoch activity-window multiplier (`β₂`).
    pub beta_window: f64,
    /// Stop at completion vs. run until the final epoch ends.
    pub early_stop: bool,
}

impl EpochBroadcastConfig {
    /// Defaults matching Algorithm 3's constants.
    pub fn new(n: usize) -> Self {
        EpochBroadcastConfig {
            n,
            beta_time: 3.0,
            beta_window: 3.0,
            early_stop: false,
        }
    }

    /// Same, stopping at completion.
    pub fn new_timed(n: usize) -> Self {
        EpochBroadcastConfig {
            early_stop: true,
            ..Self::new(n)
        }
    }

    /// λ for epoch `j` (guess `D_j = 2^j`).
    pub fn lambda_of_epoch(&self, j: u32) -> f64 {
        let l = ilog2_ceil(self.n as u64).max(1) as f64;
        ((self.n as f64) / 2f64.powi(j as i32)).log2().clamp(1.0, l)
    }

    /// Length of epoch `j` in rounds.
    pub fn epoch_len(&self, j: u32) -> u64 {
        let l = (self.n as f64).log2();
        let dj = 2f64.powi(j as i32);
        (self.beta_time * (dj * self.lambda_of_epoch(j) + l * l)).ceil() as u64
    }

    /// Per-epoch activity window `⌈β₂ log² n⌉`.
    pub fn window(&self) -> u64 {
        let l = (self.n as f64).log2();
        (self.beta_window * l * l).ceil() as u64
    }

    /// Last epoch index: guesses stop at `D_j ≥ n` (every diameter).
    pub fn last_epoch(&self) -> u32 {
        ilog2_ceil(self.n as u64).max(1)
    }

    /// Total schedule length over all epochs.
    pub fn schedule_rounds(&self) -> u64 {
        (1..=self.last_epoch()).map(|j| self.epoch_len(j)).sum()
    }
}

/// The epoch-doubling protocol.
#[derive(Debug)]
pub struct EpochBroadcast {
    cfg: EpochBroadcastConfig,
    informed: InformedSet,
    source: NodeId,
    /// Epoch start rounds (1-based), one per epoch, precomputed.
    epoch_starts: Vec<u64>,
    /// One shared sequence per epoch.
    sequences: Vec<SharedSequence>,
    active: usize,
}

impl EpochBroadcast {
    /// Build the protocol; `seed` feeds the shared epoch sequences.
    pub fn new(n: usize, source: NodeId, cfg: EpochBroadcastConfig, seed: u64) -> Self {
        assert_eq!(n, cfg.n);
        let l = ilog2_ceil(n as u64).max(1);
        let mut epoch_starts = Vec::new();
        let mut sequences = Vec::new();
        let mut start = 1u64;
        for j in 1..=cfg.last_epoch() {
            epoch_starts.push(start);
            start += cfg.epoch_len(j);
            let dist = KDistribution::paper_alpha(l, cfg.lambda_of_epoch(j));
            sequences.push(SharedSequence::new(
                dist,
                radio_util::split_seed(seed, b"epoch-seq", j as u64),
            ));
        }
        EpochBroadcast {
            cfg,
            informed: InformedSet::new(n, source),
            source,
            epoch_starts,
            sequences,
            active: 1,
        }
    }

    /// First round all nodes were informed, if reached.
    pub fn broadcast_time(&self) -> Option<u64> {
        self.informed.complete_round()
    }

    /// Epoch index (0-based) containing `round`, or `None` past the end.
    fn epoch_of(&self, round: u64) -> Option<usize> {
        if round > self.cfg.schedule_rounds() {
            return None;
        }
        // Few epochs (≤ log n): linear scan backwards is fine.
        (0..self.epoch_starts.len())
            .rev()
            .find(|&i| self.epoch_starts[i] <= round)
    }
}

impl Protocol for EpochBroadcast {
    type Msg = ();

    fn initially_awake(&self) -> Vec<NodeId> {
        vec![self.source]
    }

    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        let Some(epoch) = self.epoch_of(round) else {
            self.active -= 1;
            return Action::Sleep;
        };
        let t_u = self.informed.informed_round(node);
        // Participation window inside this epoch: β₂ log²n rounds from
        // max(informed round, epoch start).
        let window_start = t_u.max(self.epoch_starts[epoch] - 1);
        if round > window_start + self.cfg.window() {
            // Quiet for the rest of this epoch; the engine will not wake
            // us again unless a duplicate reception arrives, so instead of
            // sleeping (which would miss the next epoch) stay silent.
            return Action::Silent;
        }
        let q = self.sequences[epoch].q(round - (self.epoch_starts[epoch] - 1));
        if q > 0.0 && rng.random_bool(q.min(1.0)) {
            Action::Transmit
        } else {
            Action::Silent
        }
    }

    fn payload(&self, _node: NodeId, _round: u64) -> Self::Msg {}

    fn on_receive(
        &mut self,
        node: NodeId,
        _from: NodeId,
        round: u64,
        _msg: &Self::Msg,
        _rng: &mut ChaCha8Rng,
    ) {
        if self.informed.inform(node, round) {
            self.active += 1;
        }
    }

    fn is_complete(&self) -> bool {
        self.cfg.early_stop && self.informed.all()
    }

    fn informed_count(&self) -> usize {
        self.informed.count()
    }

    fn active_count(&self) -> usize {
        self.active
    }
}

/// Run the unknown-diameter broadcast on `graph` from `source`.
pub fn run_epoch_broadcast(
    graph: &DiGraph,
    source: NodeId,
    cfg: &EpochBroadcastConfig,
    seed: u64,
) -> BroadcastOutcome {
    let mut protocol = EpochBroadcast::new(graph.n(), source, *cfg, seed);
    let mut rng = radio_util::derive_rng(seed, b"engine", 0);
    let engine_cfg = EngineConfig::with_max_rounds(cfg.schedule_rounds() + 1);
    let run = radio_sim::engine::run_protocol(graph, &mut protocol, engine_cfg, &mut rng);
    BroadcastOutcome::from_run(
        graph.n(),
        protocol.informed_count(),
        protocol.broadcast_time(),
        run,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::ee_general::{run_general_broadcast, GeneralBroadcastConfig};
    use radio_graph::analysis::diameter_from;
    use radio_graph::generate::{caterpillar, grid2d, path};

    #[test]
    fn epoch_schedule_is_increasing_and_covers_n() {
        let cfg = EpochBroadcastConfig::new(1024);
        assert_eq!(cfg.last_epoch(), 10);
        let mut prev_end = 0;
        for j in 1..=cfg.last_epoch() {
            assert!(cfg.epoch_len(j) > 0);
            prev_end += cfg.epoch_len(j);
        }
        assert_eq!(prev_end, cfg.schedule_rounds());
        // λ decreases as the guess grows.
        assert!(cfg.lambda_of_epoch(1) >= cfg.lambda_of_epoch(9));
    }

    #[test]
    fn completes_without_knowing_d_on_shallow_and_deep_graphs() {
        for (name, g) in [
            ("path-96", path(96)),
            ("grid-12x12", grid2d(12, 12)),
            ("caterpillar", caterpillar(24, 7)),
        ] {
            let cfg = EpochBroadcastConfig::new_timed(g.n());
            let out = run_epoch_broadcast(&g, 0, &cfg, 11);
            assert!(out.all_informed, "{name}: {}/{}", out.informed, g.n());
        }
    }

    #[test]
    fn energy_overhead_vs_known_d_is_the_epoch_sum() {
        // Predicted overhead of hedging across diameter scales:
        // Σ_j λ(D)/λ_j ≈ λ(D)·H_{log n}. On this instance (λ(D) = 3,
        // L = 9) that is ≈ 8.5×; assert the measured ratio sits in a
        // band around it rather than exploding.
        let g = caterpillar(48, 7); // n = 384
        let n = g.n();
        let d = diameter_from(&g, 0).expect("connected");
        let cfg = EpochBroadcastConfig::new(n);
        let lam_d = crate::params::lambda(n, d);
        let predicted: f64 = (1..=cfg.last_epoch())
            .map(|j| lam_d / cfg.lambda_of_epoch(j))
            .sum();
        let mut unk = 0.0;
        let mut known = 0.0;
        for seed in 0..4 {
            unk += run_epoch_broadcast(&g, 0, &cfg, seed).mean_msgs_per_node();
            known += run_general_broadcast(&g, 0, &GeneralBroadcastConfig::new(n, d), seed)
                .mean_msgs_per_node();
        }
        let ratio = unk / known;
        assert!(
            ratio < 2.5 * predicted,
            "unknown-D overhead {ratio:.1}× far above the epoch-sum prediction {predicted:.1}×"
        );
        assert!(
            ratio > predicted / 4.0,
            "overhead {ratio:.1}× suspiciously below the epoch-sum prediction {predicted:.1}×"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = path(64);
        let cfg = EpochBroadcastConfig::new_timed(64);
        let a = run_epoch_broadcast(&g, 0, &cfg, 3);
        let b = run_epoch_broadcast(&g, 0, &cfg, 3);
        assert_eq!(a.broadcast_time, b.broadcast_time);
        assert_eq!(a.metrics.per_node(), b.metrics.per_node());
    }
}
