//! **Algorithm 3** — energy-efficient broadcasting for arbitrary networks
//! with known diameter `D` (paper §4.1).
//!
//! Every node, once informed at round `t_u`, stays active for
//! `β log² n` rounds, and in each active round transmits with probability
//! `2^{−I_r}` where `⟨I_r⟩` is the *shared* random sequence drawn from the
//! paper's distribution `α` (see [`crate::seq`]).
//!
//! Theorem 4.1: broadcast completes in `O(D log(n/D) + log² n)` rounds
//! w.h.p., with an expected `O(log² n / log(n/D))` transmissions per node.
//! Theorem 4.2 generalises to any `λ ∈ [log(n/D), log n]`: time
//! `O(Dλ + log² n)`, `O(log² n / λ)` transmissions per node — the
//! time/energy trade-off, exposed here through
//! [`GeneralBroadcastConfig::lambda`].

use super::windowed::{run_windowed, ProbSource, WindowedSpec};
use super::BroadcastOutcome;
use crate::params::{general_time_scale, lambda as lambda_of};
use crate::seq::{AlphaKind, KDistribution, SharedSequence};
use radio_graph::{DiGraph, NodeId};
use radio_sim::EngineConfig;
use radio_util::ilog2_ceil;

/// Configuration for Algorithm 3.
#[derive(Debug, Clone, Copy)]
pub struct GeneralBroadcastConfig {
    /// Number of nodes (known to every node in the paper's model).
    pub n: usize,
    /// Known network diameter `D`.
    pub diameter: u32,
    /// Trade-off parameter λ. `None` → the optimal-time choice
    /// `λ = log₂(n/D)` of Theorem 4.1; Theorem 4.2 allows anything in
    /// `[log(n/D), log n]`.
    pub lambda: Option<f64>,
    /// Active-window multiplier: window = `⌈β log₂² n⌉` rounds.
    pub beta: f64,
    /// Which distribution drives the shared sequence (Paper `α` for
    /// Algorithm 3; [`AlphaKind::CzumajRytter`] reproduces the baseline
    /// via [`super::cr`]).
    pub kind: AlphaKind,
    /// Use a *private* sequence per node instead of the shared one — the
    /// E14 ablation probing how much the common randomness matters.
    pub private_sequence: bool,
    /// Stop at completion (time measurement) vs. run the full schedule.
    pub early_stop: bool,
}

impl GeneralBroadcastConfig {
    /// Theorem 4.1 defaults for a network with `n` nodes and diameter `D`:
    /// `λ = log₂(n/D)`, `β = 3`, shared `α` sequence, full schedule.
    pub fn new(n: usize, diameter: u32) -> Self {
        GeneralBroadcastConfig {
            n,
            diameter,
            lambda: None,
            beta: 3.0,
            kind: AlphaKind::Paper,
            private_sequence: false,
            early_stop: false,
        }
    }

    /// Same, stopping at completion.
    pub fn new_timed(n: usize, diameter: u32) -> Self {
        GeneralBroadcastConfig {
            early_stop: true,
            ..Self::new(n, diameter)
        }
    }

    /// Override λ (Theorem 4.2 trade-off sweep).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Effective λ: the override, else `max(1, log₂(n/D))`, capped at `L`.
    pub fn effective_lambda(&self) -> f64 {
        let l = ilog2_ceil(self.n as u64) as f64;
        self.lambda
            .unwrap_or_else(|| lambda_of(self.n, self.diameter))
            .clamp(1.0, l)
    }

    /// Active window `⌈β log₂² n⌉`.
    pub fn window(&self) -> u64 {
        let l = (self.n as f64).log2();
        (self.beta * l * l).ceil() as u64
    }

    /// Round budget: generous multiple of the Theorem 4.2 time scale
    /// `Dλ + log² n`, plus one window (stragglers informed near the end
    /// still get their full activity window under full-schedule runs).
    pub fn max_rounds(&self) -> u64 {
        let l = (self.n as f64).log2();
        let scale = self.diameter as f64 * self.effective_lambda() + l * l;
        (8.0 * scale).ceil() as u64
            + self.window()
            + general_time_scale(self.n, self.diameter) as u64
    }

    /// Build the transmit distribution this config implies.
    pub fn distribution(&self) -> KDistribution {
        KDistribution::of_kind(
            self.kind,
            ilog2_ceil(self.n as u64).max(1),
            self.effective_lambda(),
        )
    }
}

/// Run Algorithm 3 (or a configured variant) on `graph` from `source`.
pub fn run_general_broadcast(
    graph: &DiGraph,
    source: NodeId,
    cfg: &GeneralBroadcastConfig,
    seed: u64,
) -> BroadcastOutcome {
    assert_eq!(graph.n(), cfg.n, "config n must match the graph");
    let dist = cfg.distribution();
    let prob_source = if cfg.private_sequence {
        ProbSource::Private(dist)
    } else {
        ProbSource::Shared(SharedSequence::new(
            dist,
            radio_util::split_seed(seed, b"seq", 0),
        ))
    };
    let spec = WindowedSpec {
        source: prob_source,
        window: Some(cfg.window()),
        early_stop: cfg.early_stop,
    };
    run_windowed(
        graph,
        source,
        spec,
        EngineConfig::with_max_rounds(cfg.max_rounds()),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::analysis::diameter_from;
    use radio_graph::generate::{caterpillar, grid2d, path};

    #[test]
    fn completes_on_a_path() {
        let g = path(64);
        let d = diameter_from(&g, 0).expect("connected");
        let cfg = GeneralBroadcastConfig::new_timed(64, d);
        for seed in 0..3 {
            let out = run_general_broadcast(&g, 0, &cfg, seed);
            assert!(out.all_informed, "seed {seed}");
        }
    }

    #[test]
    fn completes_on_grid_and_caterpillar() {
        let grid = grid2d(16, 16);
        let dg = diameter_from(&grid, 0).expect("connected");
        let out = run_general_broadcast(&grid, 0, &GeneralBroadcastConfig::new_timed(256, dg), 1);
        assert!(out.all_informed);

        let cat = caterpillar(40, 5);
        let dc = diameter_from(&cat, 0).expect("connected");
        let out =
            run_general_broadcast(&cat, 0, &GeneralBroadcastConfig::new_timed(cat.n(), dc), 2);
        assert!(out.all_informed);
    }

    #[test]
    fn energy_stays_near_log2_over_lambda() {
        // On a path of n nodes D = n−1, λ ≈ 1: expected msgs/node is
        // O(log² n). The point here is the *bound*, not tightness.
        let n = 128;
        let g = path(n);
        let cfg = GeneralBroadcastConfig::new(n, (n - 1) as u32);
        let out = run_general_broadcast(&g, 0, &cfg, 3);
        assert!(out.all_informed);
        let l = (n as f64).log2();
        let bound = cfg.beta * l * l / cfg.effective_lambda();
        assert!(
            out.mean_msgs_per_node() < bound,
            "mean msgs {} above window·E[q] budget {bound}",
            out.mean_msgs_per_node()
        );
    }

    #[test]
    fn larger_lambda_reduces_energy() {
        let n = 256;
        let g = path(n);
        let d = (n - 1) as u32;
        let mut low = 0.0;
        let mut high = 0.0;
        for seed in 0..5 {
            let cfg_low = GeneralBroadcastConfig::new(n, d).with_lambda(1.0);
            let cfg_high = GeneralBroadcastConfig::new(n, d).with_lambda(6.0);
            low += run_general_broadcast(&g, 0, &cfg_low, seed).mean_msgs_per_node();
            high += run_general_broadcast(&g, 0, &cfg_high, seed).mean_msgs_per_node();
        }
        assert!(
            high < low,
            "λ=6 energy {high} should be below λ=1 energy {low}"
        );
    }

    #[test]
    fn effective_lambda_clamps_into_valid_range() {
        let cfg = GeneralBroadcastConfig::new(1024, 1020); // log(n/D) ≈ 0
        assert!(cfg.effective_lambda() >= 1.0);
        let cfg = GeneralBroadcastConfig::new(1024, 2).with_lambda(99.0);
        assert!(cfg.effective_lambda() <= 10.0 + 1e-9);
    }

    #[test]
    fn private_sequence_still_completes_on_path() {
        // On a path every frontier has exactly one active predecessor, so
        // shared vs private sequences should both succeed (the difference
        // shows on star-like bottlenecks — exercised in the E14 ablation).
        let g = path(64);
        let mut cfg = GeneralBroadcastConfig::new_timed(64, 63);
        cfg.private_sequence = true;
        let out = run_general_broadcast(&g, 0, &cfg, 4);
        assert!(out.all_informed);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = path(32);
        let cfg = GeneralBroadcastConfig::new_timed(32, 31);
        let a = run_general_broadcast(&g, 0, &cfg, 9);
        let b = run_general_broadcast(&g, 0, &cfg, 9);
        assert_eq!(a.broadcast_time, b.broadcast_time);
        assert_eq!(a.metrics.per_node(), b.metrics.per_node());
    }
}
