//! The Bar-Yehuda–Goldreich–Itai **Decay** protocol \[3\] — the classic
//! randomised broadcast for totally unknown radio networks, used as the
//! "knows nothing, pays `Θ(D + log n)` messages per node" baseline.
//!
//! Time is divided into epochs of `E = ⌈log₂ n⌉ + 1` rounds. In round `j`
//! of an epoch every active node transmits with probability `2^{−j}`
//! (`j = 0, …, E−1`): whatever the number `m ≤ n` of active in-neighbours
//! a node has, the round with `2^{−j} ≈ 1/m` gives a constant
//! per-epoch reception probability. BGI broadcast completes in
//! `O((D + log n)·log n)` rounds w.h.p.; each active node sends
//! `Σ_j 2^{−j} < 2` expected messages per epoch, so a node active for the
//! whole run spends `Θ(D + log n)` messages — linear in `D`, versus
//! Algorithm 3's `O(log² n / log(n/D))`.

use super::windowed::{run_windowed, ProbSource, WindowedSpec};
use super::BroadcastOutcome;
use radio_graph::{DiGraph, NodeId};
use radio_sim::EngineConfig;
use radio_util::ilog2_ceil;

/// Configuration for the Decay baseline.
#[derive(Debug, Clone, Copy)]
pub struct DecayConfig {
    /// Number of nodes (fixes the epoch length `⌈log₂ n⌉ + 1`).
    pub n: usize,
    /// Round budget multiplier: the run is capped at
    /// `⌈β (D + log₂ n) log₂ n⌉` rounds.
    pub beta: f64,
    /// Diameter estimate used only for the round budget.
    pub diameter_hint: u32,
    /// Stop at completion (the usual mode for this baseline; Decay has no
    /// energy story worth a full-schedule run, nodes never retire).
    pub early_stop: bool,
    /// Optional retirement window in rounds after a node is informed
    /// (`None` = classic BGI, active — and listening — forever). Used by
    /// the energy-lifetime experiments to give Decay a fighting chance
    /// once idle listening is charged.
    pub window: Option<u64>,
}

impl DecayConfig {
    /// Defaults: `β = 8`, early stop, no retirement.
    pub fn new(n: usize, diameter_hint: u32) -> Self {
        DecayConfig {
            n,
            beta: 8.0,
            diameter_hint,
            early_stop: true,
            window: None,
        }
    }

    /// Epoch length `E = ⌈log₂ n⌉ + 1`.
    pub fn epoch_len(&self) -> u32 {
        ilog2_ceil(self.n as u64) + 1
    }

    /// The decay probability cycle `1, 1/2, …, 2^{−(E−1)}`.
    pub fn cycle(&self) -> Vec<f64> {
        (0..self.epoch_len())
            .map(|j| 2f64.powi(-(j as i32)))
            .collect()
    }

    /// Round budget.
    pub fn max_rounds(&self) -> u64 {
        let l = (self.n as f64).log2();
        (self.beta * (self.diameter_hint as f64 + l) * l).ceil() as u64
    }

    /// The equivalent windowed-protocol spec.
    pub fn spec(&self) -> WindowedSpec {
        WindowedSpec {
            source: ProbSource::Cycle(self.cycle()),
            window: self.window,
            early_stop: self.early_stop,
        }
    }
}

/// Run Decay on `graph` from `source`.
pub fn run_decay_broadcast(
    graph: &DiGraph,
    source: NodeId,
    cfg: &DecayConfig,
    seed: u64,
) -> BroadcastOutcome {
    assert_eq!(graph.n(), cfg.n, "config n must match the graph");
    run_windowed(
        graph,
        source,
        cfg.spec(),
        EngineConfig::with_max_rounds(cfg.max_rounds()),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::analysis::diameter_from;
    use radio_graph::generate::{gnp_directed, path, star};
    use radio_util::derive_rng;

    #[test]
    fn cycle_halves_each_round() {
        let cfg = DecayConfig::new(1024, 16);
        let c = cfg.cycle();
        assert_eq!(c.len(), 11);
        assert_eq!(c[0], 1.0);
        for w in c.windows(2) {
            assert!((w[1] - w[0] / 2.0).abs() < 1e-15);
        }
    }

    #[test]
    fn decay_breaks_the_star_collision() {
        // Naive flooding dies on a reversed star (all leaves informed,
        // centre not); Decay's low-probability rounds let a single leaf
        // get through. Build: leaves 1..n hear source 0; centre n hears
        // all leaves.
        let n_leaves = 32;
        let mut b = radio_graph::GraphBuilder::new(n_leaves + 2);
        for leaf in 1..=n_leaves as u32 {
            b.add_edge(0, leaf);
            b.add_edge(leaf, (n_leaves + 1) as u32);
        }
        let g = b.build();
        let cfg = DecayConfig::new(g.n(), 2);
        for seed in 0..5 {
            let out = run_decay_broadcast(&g, 0, &cfg, seed);
            assert!(out.all_informed, "seed {seed}");
        }
    }

    #[test]
    fn completes_on_path_and_star_and_gnp() {
        let p = path(50);
        assert!(run_decay_broadcast(&p, 0, &DecayConfig::new(50, 49), 0).all_informed);

        let s = star(64);
        assert!(run_decay_broadcast(&s, 1, &DecayConfig::new(64, 2), 1).all_informed);

        let g = gnp_directed(512, 0.03, &mut derive_rng(2, b"decay-g", 0));
        if let Some(d) = diameter_from(&g, 0) {
            assert!(run_decay_broadcast(&g, 0, &DecayConfig::new(512, d), 2).all_informed);
        }
    }

    #[test]
    fn messages_per_node_grow_with_run_length() {
        // Nodes never retire: per-node expected messages ≈ 2·epochs — the
        // energy hunger the paper contrasts against.
        let g = path(100);
        let cfg = DecayConfig::new(100, 99);
        let out = run_decay_broadcast(&g, 0, &cfg, 3);
        assert!(out.all_informed);
        let epochs = out.rounds_executed as f64 / cfg.epoch_len() as f64;
        let early = out.metrics.transmissions_of(1) as f64; // informed round ~1
        assert!(
            early > epochs * 0.5 && early < epochs * 4.0,
            "node 1 sent {early} msgs over {epochs} epochs"
        );
    }
}
