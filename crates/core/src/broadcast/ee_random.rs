//! **Algorithm 1** — An Energy Efficient Algorithm for Random Networks
//! (paper §2).
//!
//! The paper's central result (Theorem 2.1): on a directed `G(n,p)` with
//! `p > δ log n / n`, the algorithm informs all nodes w.h.p. in `O(log n)`
//! rounds, **every node transmits at most once**, and the expected total
//! number of transmissions is `O(log n / p)`.
//!
//! Structure (`T = ⌊log n / log d⌋`, `d = np`):
//!
//! * **Phase 1** (rounds `1..=T`): every *active* node transmits
//!   unconditionally and becomes *passive*; a node receiving the message
//!   for the first time becomes active. Grows the active set by a factor
//!   `Θ(d)` per round (Lemma 2.3) to `Θ(d^T)` (Lemma 2.4).
//! * **Phase 2** (round `T+1`, only when `p ≤ n^{−2/5}`): each active
//!   node transmits with probability `1/(d^T·p)`. Informs `Θ(n)` nodes
//!   (Lemma 2.5).
//! * **Phase 3** (`β log n` rounds): active nodes transmit with
//!   probability `1/d` (sparse case) or `1/(dp)` (dense case); a node
//!   that transmits becomes passive. Mops up the rest (Lemma 2.6).
//!
//! The *at most one transmission per node* invariant is structural: a
//! node transmits only while active and every transmission flips it to
//! passive forever (checked by a `debug_assert` and asserted by tests on
//! every run).
//!
//! **Phase 2 wording ambiguity.** The pseudocode reads "every active node
//! transmits with probability `1/(d^T p)` *and becomes passive*" — unlike
//! Phase 3, which only passivates nodes that actually transmitted.
//! [`EeBroadcastConfig::phase2_all_passive`] selects the literal reading
//! (default, everyone passivates) or the Phase-3-style reading; the E14
//! ablation compares them.

use super::{BroadcastOutcome, InformedSet};
use crate::params::GnpParams;
use radio_graph::{NodeId, Topology};
use radio_sim::{Action, EngineConfig, Protocol};
use rand::Bernoulli;
use rand_chacha::ChaCha8Rng;

/// Configuration for Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct EeBroadcastConfig {
    /// Derived `G(n,p)` parameters (the nodes know `n` and `p`, as in
    /// Elsässer–Gasieniec).
    pub params: GnpParams,
    /// Phase-3 length multiplier: Phase 3 lasts `⌈β·log₂ n⌉` rounds. The
    /// paper's constant (`128 log n / c` for a microscopic `c`) is wildly
    /// conservative; β is swept in the E14 ablation.
    pub beta: f64,
    /// Literal reading of the Phase-2 pseudocode (see module docs).
    pub phase2_all_passive: bool,
    /// Stop as soon as everyone is informed (time measurement) instead of
    /// running the full energy schedule.
    pub early_stop: bool,
}

impl EeBroadcastConfig {
    /// Defaults for a `G(n, p)` instance: `β = 16`, literal Phase 2,
    /// energy-faithful full schedule.
    pub fn for_gnp(n: usize, p: f64) -> Self {
        EeBroadcastConfig {
            params: GnpParams::new(n, p),
            beta: 16.0,
            phase2_all_passive: true,
            early_stop: false,
        }
    }

    /// Same but stopping at completion (for time measurements).
    pub fn for_gnp_timed(n: usize, p: f64) -> Self {
        EeBroadcastConfig {
            early_stop: true,
            ..Self::for_gnp(n, p)
        }
    }

    /// Phase-3 length in rounds.
    pub fn phase3_len(&self) -> u64 {
        (self.beta * (self.params.n as f64).log2()).ceil() as u64
    }

    /// Last round of the schedule (Phase 3 end).
    pub fn schedule_end(&self) -> u64 {
        let phase2 = u64::from(self.params.use_phase2);
        self.params.t + phase2 + self.phase3_len()
    }
}

/// Per-node protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Informed and willing to transmit.
    Active,
    /// Done forever (transmitted, or passivated by Phase 2).
    Passive,
}

/// Algorithm 1 as a [`Protocol`].
#[derive(Debug)]
pub struct EeRandomBroadcast {
    cfg: EeBroadcastConfig,
    informed: InformedSet,
    /// `None` = uninformed.
    state: Vec<Option<NodeState>>,
    source: NodeId,
    active: usize,
    /// Defensive double-send detector backing the ≤ 1 invariant.
    sent: Vec<bool>,
    /// Phase-2/3 transmit coins with the threshold precomputed once at
    /// construction — `q2`/`q3` are run constants (clamped to `(0, 1]`
    /// by [`GnpParams`]), so nothing round-dependent remains.
    /// [`Bernoulli`] is draw-for-draw bit-compatible with the
    /// `random_bool` calls it replaces.
    coin2: Bernoulli,
    coin3: Bernoulli,
}

impl EeRandomBroadcast {
    /// Fresh protocol instance for a broadcast from `source`.
    pub fn new(n: usize, source: NodeId, cfg: EeBroadcastConfig) -> Self {
        assert_eq!(n, cfg.params.n, "config n must match the graph");
        let mut state = vec![None; n];
        state[source as usize] = Some(NodeState::Active);
        EeRandomBroadcast {
            cfg,
            informed: InformedSet::new(n, source),
            state,
            source,
            active: 1,
            sent: vec![false; n],
            coin2: Bernoulli::new(cfg.params.q2),
            coin3: Bernoulli::new(cfg.params.q3),
        }
    }

    /// First round all nodes were informed, if reached.
    pub fn broadcast_time(&self) -> Option<u64> {
        self.informed.complete_round()
    }

    /// Round in which `node` was informed (`None` if never; `Some(0)` for
    /// the source). Used by the robustness experiments to score partial
    /// runs per node.
    pub fn informed_round(&self, node: NodeId) -> Option<u64> {
        let r = self.informed.informed_round(node);
        (r != u64::MAX).then_some(r)
    }

    fn go_passive(&mut self, node: NodeId) {
        if self.state[node as usize] == Some(NodeState::Active) {
            self.state[node as usize] = Some(NodeState::Passive);
            self.active -= 1;
        }
    }

    fn transmit_now(&mut self, node: NodeId) -> Action {
        debug_assert!(
            !self.sent[node as usize],
            "node {node} would transmit twice"
        );
        self.sent[node as usize] = true;
        self.go_passive(node);
        Action::Transmit
    }
}

impl Protocol for EeRandomBroadcast {
    type Msg = ();

    fn initially_awake(&self) -> Vec<NodeId> {
        vec![self.source]
    }

    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        // One copy of the phase logic: the v1 entry point is the pure
        // half plus the commit half over the shared serial stream (same
        // draws, same passivation — bit-compatible with the pre-split
        // code; the phase structure itself lives in `decide_pure`).
        radio_sim::FusedDecide::decide_and_commit(self, node, round, rng)
    }

    fn payload(&self, _node: NodeId, _round: u64) -> Self::Msg {}

    fn on_receive(
        &mut self,
        node: NodeId,
        _from: NodeId,
        round: u64,
        _msg: &Self::Msg,
        _rng: &mut ChaCha8Rng,
    ) {
        if self.informed.inform(node, round) {
            // Activation happens in Phases 1 and 2 only: the Phase-3
            // pseudocode has no "receives for the first time → active"
            // clause, and §2.4's transmission count relies on it ("no node
            // gets activated in Phase 3"). Later receivers are informed
            // but stay passive forever.
            let p = self.cfg.params;
            let activation_end = p.t + u64::from(p.use_phase2);
            if round <= activation_end {
                self.state[node as usize] = Some(NodeState::Active);
                self.active += 1;
            } else {
                self.state[node as usize] = Some(NodeState::Passive);
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.cfg.early_stop && self.informed.all()
    }

    fn informed_count(&self) -> usize {
        self.informed.count()
    }

    fn active_count(&self) -> usize {
        self.active
    }

    fn radio_off(&self, node: NodeId, _round: u64) -> bool {
        // A passive node is done forever: it holds the message and will
        // never transmit again, so it powers its radio down. Uninformed
        // nodes (state `None`) must keep listening; active nodes are
        // about to transmit. This is Algorithm 1's structural energy
        // advantage once idle listening is charged: per-node radio-on
        // time is bounded by (time-to-informed) + 1.
        self.state[node as usize] == Some(NodeState::Passive)
    }
}

impl radio_sim::FusedDecide for EeRandomBroadcast {
    fn decide_pure(&self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        if self.state[node as usize] != Some(NodeState::Active) {
            // Passive node re-woken by a duplicate reception.
            return Action::Sleep;
        }
        let p = self.cfg.params;
        let phase2_round = p.use_phase2.then_some(p.t + 1);
        if round <= p.t {
            // Phase 1: transmit once, become passive (on commit).
            Action::Transmit
        } else if Some(round) == phase2_round {
            // Phase 2: transmit w.p. 1/(d^T p); passivation per config.
            if self.coin2.sample(rng) {
                Action::Transmit
            } else if self.cfg.phase2_all_passive {
                Action::Sleep
            } else {
                Action::Silent
            }
        } else if round <= self.cfg.schedule_end() {
            // Phase 3: transmit w.p. q3; only transmitters passivate.
            if self.coin3.sample(rng) {
                Action::Transmit
            } else {
                Action::Silent
            }
        } else {
            // Schedule over.
            Action::Sleep
        }
    }

    fn commit_decide(&mut self, node: NodeId, _round: u64, action: Action) {
        match action {
            // Every transmission passivates, in every phase (and trips
            // the double-send detector behind the ≤ 1 invariant).
            Action::Transmit => {
                let _ = self.transmit_now(node);
            }
            // Sleep from an active node means Phase-2 passivation or the
            // schedule ending; from an already-passive node (re-woken by
            // a duplicate reception) there is nothing to apply —
            // `go_passive` is a no-op for non-active nodes either way.
            Action::Sleep => self.go_passive(node),
            Action::Silent => {}
        }
    }
}

/// Run Algorithm 1 on `graph` from `source`.
pub fn run_ee_broadcast<T: Topology>(
    graph: &T,
    source: NodeId,
    cfg: &EeBroadcastConfig,
    seed: u64,
) -> BroadcastOutcome {
    run_ee_broadcast_with(graph, source, cfg, seed, false)
}

/// As [`run_ee_broadcast`], with a per-round trace (for the Lemma 2.3/2.4
/// growth experiments).
pub fn run_ee_broadcast_traced<T: Topology>(
    graph: &T,
    source: NodeId,
    cfg: &EeBroadcastConfig,
    seed: u64,
) -> BroadcastOutcome {
    run_ee_broadcast_with(graph, source, cfg, seed, true)
}

/// Run Algorithm 1 under the **v2 determinism contract**
/// ([`radio_sim::Engine::run_fused`]): per-node counter-based decide
/// streams, bit-identical for every `engine` thread count (set via
/// `EngineConfig::with_threads` inside — here the default serial
/// config; use [`radio_sim::engine::run_protocol_fused`] directly for
/// explicit thread counts). Statistically equivalent to, but not
/// bit-compatible with, the v1 [`run_ee_broadcast`] on the same seed.
pub fn run_ee_broadcast_fused<T: Topology>(
    graph: &T,
    source: NodeId,
    cfg: &EeBroadcastConfig,
    seed: u64,
) -> BroadcastOutcome {
    let mut protocol = EeRandomBroadcast::new(graph.n(), source, *cfg);
    let engine_cfg = EngineConfig::with_max_rounds(cfg.schedule_end() + 2);
    let run = radio_sim::engine::run_protocol_fused(graph, &mut protocol, engine_cfg, seed);
    BroadcastOutcome::from_run(
        graph.n(),
        protocol.informed_count(),
        protocol.broadcast_time(),
        run,
    )
}

fn run_ee_broadcast_with<T: Topology>(
    graph: &T,
    source: NodeId,
    cfg: &EeBroadcastConfig,
    seed: u64,
    traced: bool,
) -> BroadcastOutcome {
    let mut protocol = EeRandomBroadcast::new(graph.n(), source, *cfg);
    let mut rng = radio_util::derive_rng(seed, b"engine", 0);
    let mut engine_cfg = EngineConfig::with_max_rounds(cfg.schedule_end() + 2);
    engine_cfg.record_trace = traced;
    let run = radio_sim::engine::run_protocol(graph, &mut protocol, engine_cfg, &mut rng);
    BroadcastOutcome::from_run(
        graph.n(),
        protocol.informed_count(),
        protocol.broadcast_time(),
        run,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generate::gnp_directed;
    use radio_graph::DiGraph;
    use radio_util::derive_rng;

    fn sparse_instance(n: usize, delta: f64, seed: u64) -> (DiGraph, EeBroadcastConfig) {
        let p = delta * (n as f64).ln() / n as f64;
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"alg1-g", 0));
        (g, EeBroadcastConfig::for_gnp(n, p))
    }

    #[test]
    fn informs_everyone_on_sparse_gnp() {
        for seed in 0..5 {
            let (g, cfg) = sparse_instance(1024, 8.0, seed);
            let out = run_ee_broadcast(&g, 0, &cfg, seed);
            assert!(
                out.all_informed,
                "seed {seed}: {}/{} informed",
                out.informed, out.n
            );
        }
    }

    #[test]
    fn at_most_one_transmission_per_node_always() {
        // The invariant must hold regardless of density, seed or topology.
        for (n, delta) in [(256usize, 6.0), (1024, 10.0), (2048, 20.0)] {
            for seed in 0..3 {
                let (g, cfg) = sparse_instance(n, delta, seed);
                let out = run_ee_broadcast(&g, 0, &cfg, seed);
                assert!(
                    out.max_msgs_per_node() <= 1,
                    "n={n} seed={seed}: node transmitted twice"
                );
            }
        }
    }

    #[test]
    fn at_most_one_transmission_in_dense_regime_without_phase2() {
        // Theorem 2.1's dense case needs dp = np² ≫ log n for the Phase-3
        // concentration (Case 2 of Lemma 2.6): n = 1024, p = 0.15 gives
        // dp = 23 > log n = 10. (At the p ≈ n^{−2/5} boundary, where
        // dp ≈ log n, completion is genuinely marginal — measured in E1.)
        let n = 1024;
        let p = 0.15; // > n^{-2/5} = 0.0625 → no Phase 2, q3 = 1/(dp)
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        assert!(!cfg.params.use_phase2);
        for seed in 0..3 {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"alg1-dense", 0));
            let out = run_ee_broadcast(&g, 0, &cfg, seed);
            assert!(out.max_msgs_per_node() <= 1);
            assert!(out.all_informed, "seed {seed}: {}/{}", out.informed, out.n);
        }
    }

    #[test]
    fn invariant_holds_even_at_the_marginal_density_boundary() {
        // n = 512, p = 0.12 sits right at the n^{−2/5} threshold with
        // dp ≈ 7 ≈ log n: completion is not guaranteed there, but the
        // ≤ 1 transmission invariant must hold no matter what.
        let n = 512;
        let p = 0.12;
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        let g = gnp_directed(n, p, &mut derive_rng(77, b"alg1-margin", 0));
        let out = run_ee_broadcast(&g, 0, &cfg, 77);
        assert!(out.max_msgs_per_node() <= 1);
        assert!(out.informed > n / 2, "even marginal runs inform most nodes");
    }

    #[test]
    fn broadcast_time_is_logarithmic_not_linear() {
        let (g, cfg) = sparse_instance(4096, 12.0, 9);
        let out = run_ee_broadcast(&g, 0, &cfg, 9);
        assert!(out.all_informed);
        let t = out.broadcast_time.expect("completed") as f64;
        let log_n = (4096f64).log2();
        assert!(
            t < 12.0 * log_n,
            "broadcast time {t} is not O(log n) = O({log_n})"
        );
    }

    #[test]
    fn total_transmissions_scale_like_log_n_over_p() {
        let (g, cfg) = sparse_instance(2048, 10.0, 3);
        let out = run_ee_broadcast(&g, 0, &cfg, 3);
        let bound = (2048f64).ln() / cfg.params.p;
        assert!(
            (out.metrics.total_transmissions() as f64) < 4.0 * bound,
            "total {} ≫ log n / p = {bound}",
            out.metrics.total_transmissions()
        );
        // And it must be far below n (the trivial everyone-once budget)
        // in the sparse regime where 1/p ≪ n... here log n/p ≈ n/δ·…;
        // the meaningful check is against flooding-every-round: n·rounds.
        let flood_cost = 2048.0 * out.rounds_executed as f64;
        assert!((out.metrics.total_transmissions() as f64) < flood_cost / 4.0);
    }

    #[test]
    fn early_stop_reports_same_broadcast_time_but_fewer_rounds() {
        let (g, mut cfg) = sparse_instance(1024, 8.0, 5);
        let full = run_ee_broadcast(&g, 0, &cfg, 5);
        cfg.early_stop = true;
        let timed = run_ee_broadcast(&g, 0, &cfg, 5);
        assert_eq!(full.broadcast_time, timed.broadcast_time);
        assert_eq!(timed.rounds_executed, timed.broadcast_time.expect("done"));
        assert!(full.rounds_executed >= timed.rounds_executed);
        assert!(
            full.metrics.total_transmissions() >= timed.metrics.total_transmissions(),
            "full schedule can only add energy"
        );
    }

    #[test]
    fn phase2_readings_both_complete() {
        let (g, mut cfg) = sparse_instance(1024, 8.0, 6);
        assert!(cfg.params.use_phase2);
        let literal = run_ee_broadcast(&g, 0, &cfg, 6);
        cfg.phase2_all_passive = false;
        let lenient = run_ee_broadcast(&g, 0, &cfg, 6);
        assert!(literal.all_informed);
        assert!(lenient.all_informed);
        assert!(literal.max_msgs_per_node() <= 1);
        assert!(lenient.max_msgs_per_node() <= 1);
    }

    #[test]
    fn run_terminates_by_quiescence_within_schedule() {
        let (g, cfg) = sparse_instance(512, 8.0, 7);
        let out = run_ee_broadcast(&g, 0, &cfg, 7);
        assert!(out.rounds_executed <= cfg.schedule_end() + 1);
    }

    #[test]
    fn trace_shows_phase1_growth() {
        // d = 32 on n = 4096 gives T = ⌊12/5⌋ = 2, so Phase 1 has a
        // genuine growth step to check.
        let n = 4096;
        let p = 32.0 / n as f64;
        let g = gnp_directed(n, p, &mut derive_rng(8, b"alg1-g", 0));
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        assert_eq!(cfg.params.t, 2);
        let out = run_ee_broadcast_traced(&g, 0, &cfg, 8);
        let trace = out.trace.expect("traced run");
        // During Phase 1 the active-set sizes (|U_{t+1}| after round t)
        // should grow multiplicatively — Lemma 2.3 promises ≥ d/16.
        let t = cfg.params.t as usize;
        let d = cfg.params.d;
        let active = trace.active_series();
        for r in 0..t.min(active.len()).saturating_sub(1) {
            let growth = active[r + 1] as f64 / active[r].max(1) as f64;
            assert!(
                growth > d / 16.0,
                "round {}: growth {growth} < d/16 = {}",
                r + 1,
                d / 16.0
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, cfg) = sparse_instance(512, 8.0, 1);
        let a = run_ee_broadcast(&g, 0, &cfg, 11);
        let b = run_ee_broadcast(&g, 0, &cfg, 11);
        assert_eq!(a.broadcast_time, b.broadcast_time);
        assert_eq!(a.metrics.per_node(), b.metrics.per_node());
    }

    #[test]
    fn fused_v2_informs_everyone_and_keeps_the_invariant() {
        // The v2 contract must preserve Algorithm 1's structure: w.h.p.
        // completion on sparse Gnp and the ≤ 1-transmission invariant
        // (which is structural, so it holds on *every* run).
        for seed in 0..5 {
            let (g, cfg) = sparse_instance(1024, 8.0, seed);
            let out = run_ee_broadcast_fused(&g, 0, &cfg, seed);
            assert!(
                out.all_informed,
                "seed {seed}: {}/{} informed",
                out.informed, out.n
            );
            assert!(out.max_msgs_per_node() <= 1);
        }
    }

    #[test]
    fn fused_v2_is_bit_identical_across_thread_counts() {
        use radio_sim::{engine::run_protocol_fused, EngineConfig, Protocol};
        let (g, cfg) = sparse_instance(512, 8.0, 21);
        let run_at = |threads: usize| {
            let mut protocol = EeRandomBroadcast::new(512, 0, cfg);
            let engine_cfg = EngineConfig {
                par_min_edges: 0,
                par_min_awake: 0, // force the parallel decide path
                ..EngineConfig::with_max_rounds(cfg.schedule_end() + 2)
            };
            let run = run_protocol_fused(&g, &mut protocol, engine_cfg.with_threads(threads), 9);
            (run.rounds, run.metrics, protocol.informed_count())
        };
        let serial = run_at(1);
        for threads in [2, 8] {
            assert_eq!(serial, run_at(threads), "{threads} threads diverged");
        }
    }

    #[test]
    #[should_panic]
    fn config_graph_size_mismatch_panics() {
        let (g, _) = sparse_instance(256, 6.0, 0);
        let cfg = EeBroadcastConfig::for_gnp(512, 0.05);
        let _ = EeRandomBroadcast::new(g.n(), 0, cfg);
    }
}
