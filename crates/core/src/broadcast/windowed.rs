//! The shared "active window + per-round send probability" machinery.
//!
//! Most broadcast protocols in this paper family share one skeleton: a
//! node is *active* from the round after it first receives the message
//! until its activity window closes, and in each active round it transmits
//! with a probability `q_r` drawn from some source. The differences are
//! entirely in the [`ProbSource`] and the window length:
//!
//! | Algorithm | source | window |
//! |-----------|--------|--------|
//! | Algorithm 3 (paper) | shared `α` sequence | `β log² n` |
//! | Czumaj–Rytter + stop transform | shared `α'` sequence | `β log² n · λ` |
//! | BGI Decay | deterministic cycle `1, ½, ¼, …` | unbounded (or a budget) |
//! | Probabilistic flooding | fixed `q` | unbounded |
//! | Lower-bound oblivious algorithms (§4.2 model) | private time-invariant distribution | unbounded |

use super::{BroadcastOutcome, InformedSet};
use crate::seq::{KDistribution, SharedSequence};
use radio_graph::{NodeId, Topology};
use radio_sim::{Action, EngineConfig, Protocol};
use rand::{Bernoulli, RngExt};
use rand_chacha::ChaCha8Rng;

/// Where a node's per-round send probability comes from.
//
// `Shared` is much larger than the other variants, but exactly one
// `ProbSource` exists per simulation and `q()` is called every round —
// boxing would trade a one-off size win for a per-round indirection.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum ProbSource {
    /// Common randomness: all nodes see the same `q_r` in round `r`
    /// (Algorithm 3's sequence `I`).
    Shared(SharedSequence),
    /// Deterministic round-robin over a probability cycle (Decay uses
    /// `1, 1/2, …, 2^{−⌈log n⌉}`).
    Cycle(Vec<f64>),
    /// Each node privately draws `k ~ dist` every round (the paper's
    /// §4.2 lower-bound model, and the "what if the sequence is not
    /// shared?" ablation of Algorithm 3).
    Private(KDistribution),
    /// A fixed probability every round.
    Fixed(f64),
}

impl ProbSource {
    /// Serial per-round preamble: materialise any lazily-expanded shared
    /// state (Algorithm 3's sequence, which draws from its *own* stream)
    /// so [`q_pure`](Self::q_pure) can run read-only — on the fused
    /// engine's worker threads, or ahead of the v1 poll sweep.
    fn prepare(&mut self, round: u64) {
        if let ProbSource::Shared(seq) = self {
            seq.ensure(round);
        }
    }

    /// The send probability for `round`, read-only; call
    /// [`prepare`](Self::prepare) for the round first. `Private` draws
    /// from `rng` — the shared serial stream under v1, the node's own
    /// counter-based stream under the fused v2 contract (which makes the
    /// paper's §4.2 model literal: each node privately samples its `k`
    /// every round).
    fn q_pure(&self, round: u64, rng: &mut ChaCha8Rng) -> f64 {
        match self {
            ProbSource::Shared(seq) => seq.q_cached(round),
            ProbSource::Cycle(c) => c[((round - 1) % c.len() as u64) as usize],
            ProbSource::Private(dist) => match dist.sample(rng) {
                Some(k) => 2f64.powi(-(k as i32)),
                None => 0.0,
            },
            ProbSource::Fixed(q) => *q,
        }
    }

    /// The round's probability when it is the same for every node
    /// (everything but `Private`, whose q is a per-node draw).
    fn q_round(&self, round: u64) -> Option<f64> {
        match self {
            ProbSource::Shared(seq) => Some(seq.q_cached(round)),
            ProbSource::Cycle(c) => Some(c[((round - 1) % c.len() as u64) as usize]),
            ProbSource::Private(_) => None,
            ProbSource::Fixed(q) => Some(*q),
        }
    }
}

/// The round's transmit coin, resolved once per round in `begin_round`
/// instead of once per node: the `q ≥ 1` / `q ≤ 0` edge tests and the
/// [`Bernoulli`] threshold precomputation are all per-node constants for
/// every source except `Private`. Draw-for-draw compatible with the
/// inline `q_pure` + `random_bool` path it replaces: `Always`/`Never`
/// consume nothing (the old short-circuits), `Coin` consumes exactly
/// one `next_u64` and returns the identical boolean ([`Bernoulli`]'s
/// documented bit-compatibility).
#[derive(Debug, Clone, Copy)]
enum RoundCoin {
    /// `Private` source: q is a per-node draw; use the generic path.
    PerNode,
    /// `q ≥ 1` this round — transmit without drawing.
    Always,
    /// `q ≤ 0` this round — stay silent without drawing.
    Never,
    /// `0 < q < 1` — one precomputed-threshold draw per node.
    Coin(Bernoulli),
}

impl RoundCoin {
    fn for_round(source: &ProbSource, round: u64) -> Self {
        match source.q_round(round) {
            None => RoundCoin::PerNode,
            Some(q) if q >= 1.0 => RoundCoin::Always,
            Some(q) if q <= 0.0 => RoundCoin::Never,
            Some(q) => RoundCoin::Coin(Bernoulli::new(q)),
        }
    }
}

/// Full specification of a windowed broadcast protocol.
#[derive(Debug, Clone)]
pub struct WindowedSpec {
    /// Per-round probability source.
    pub source: ProbSource,
    /// Active window in rounds counted from the informing round `t_u`
    /// (a node is active in rounds `t_u + 1 ..= t_u + window`).
    /// `None` = active forever.
    pub window: Option<u64>,
    /// Stop the simulation the moment everyone is informed (time
    /// measurement) instead of running the full energy schedule.
    pub early_stop: bool,
}

/// The protocol state machine.
#[derive(Debug)]
pub struct WindowedBroadcast {
    spec: WindowedSpec,
    informed: InformedSet,
    source: NodeId,
    /// Informed nodes that have not yet retired (window still open).
    active: usize,
    /// This round's transmit coin (set by `begin_round`; `PerNode`
    /// until then, which is the always-correct generic path).
    coin: RoundCoin,
}

impl WindowedBroadcast {
    /// Build for a broadcast from `source` on an `n`-node network.
    pub fn new(n: usize, source: NodeId, spec: WindowedSpec) -> Self {
        WindowedBroadcast {
            spec,
            informed: InformedSet::new(n, source),
            source,
            active: 1,
            coin: RoundCoin::PerNode,
        }
    }

    /// First round all nodes were informed, if reached.
    pub fn broadcast_time(&self) -> Option<u64> {
        self.informed.complete_round()
    }

    /// Round in which `v` was informed (`u64::MAX` if never; 0 = source).
    pub fn informed_round(&self, v: NodeId) -> u64 {
        self.informed.informed_round(v)
    }
}

impl Protocol for WindowedBroadcast {
    type Msg = ();

    fn initially_awake(&self) -> Vec<NodeId> {
        vec![self.source]
    }

    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        // One copy of the decision logic: the v1 entry point is the
        // pure half plus the commit half over the shared serial stream.
        // The draw pattern matches the pre-split code exactly (the
        // shared sequence expands from its own stream; `Private`
        // samples from `rng`), so v1 trajectories stay bit-compatible.
        // `begin_round` is idempotent — re-running it per poll just
        // recomputes the same round coin.
        radio_sim::FusedDecide::begin_round(self, round);
        radio_sim::FusedDecide::decide_and_commit(self, node, round, rng)
    }

    fn payload(&self, _node: NodeId, _round: u64) -> Self::Msg {}

    fn on_receive(
        &mut self,
        node: NodeId,
        _from: NodeId,
        round: u64,
        _msg: &Self::Msg,
        _rng: &mut ChaCha8Rng,
    ) {
        if self.informed.inform(node, round) {
            self.active += 1;
        } else if let Some(w) = self.spec.window {
            // A retired node can be re-woken by a duplicate reception; it
            // will re-retire on its next poll. Count it active again so the
            // bookkeeping matches the engine's awake set.
            if round > self.informed.informed_round(node) + w {
                self.active += 1;
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.spec.early_stop && self.informed.all()
    }

    fn informed_count(&self) -> usize {
        self.informed.count()
    }

    fn active_count(&self) -> usize {
        self.active
    }

    fn radio_off(&self, node: NodeId, round: u64) -> bool {
        // A retired node (window expired) powers its radio down: it holds
        // the message, will never transmit again, and gains nothing from
        // listening. Nodes without a window — and all uninformed nodes,
        // which must listen to ever be informed — keep the receiver on.
        match self.spec.window {
            Some(w) => {
                let t_u = self.informed.informed_round(node);
                t_u != u64::MAX && round > t_u + w
            }
            None => false,
        }
    }
}

impl radio_sim::FusedDecide for WindowedBroadcast {
    fn begin_round(&mut self, round: u64) {
        self.spec.source.prepare(round);
        self.coin = RoundCoin::for_round(&self.spec.source, round);
    }

    fn decide_pure(&self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        assert!(
            self.informed.is_informed(node),
            "uninformed node was polled"
        );
        let t_u = self.informed.informed_round(node);
        if let Some(w) = self.spec.window {
            if round > t_u + w {
                return Action::Sleep;
            }
        }
        match self.coin {
            RoundCoin::Always => Action::Transmit,
            RoundCoin::Never => Action::Silent,
            RoundCoin::Coin(b) => {
                if b.sample(rng) {
                    Action::Transmit
                } else {
                    Action::Silent
                }
            }
            RoundCoin::PerNode => {
                let q = self.spec.source.q_pure(round, rng);
                if q >= 1.0 || (q > 0.0 && rng.random_bool(q)) {
                    Action::Transmit
                } else {
                    Action::Silent
                }
            }
        }
    }

    fn commit_decide(&mut self, _node: NodeId, _round: u64, action: Action) {
        // The only state `decide` changes is the active count on window
        // retirement; transmitting and staying silent leave a windowed
        // node's state untouched.
        if action == Action::Sleep {
            self.active -= 1;
        }
    }
}

/// Run a windowed broadcast and package the outcome.
pub fn run_windowed<T: Topology>(
    graph: &T,
    source: NodeId,
    spec: WindowedSpec,
    engine_cfg: EngineConfig,
    seed: u64,
) -> BroadcastOutcome {
    let mut protocol = WindowedBroadcast::new(graph.n(), source, spec);
    let mut rng = radio_util::derive_rng(seed, b"engine", 0);
    let run = radio_sim::engine::run_protocol(graph, &mut protocol, engine_cfg, &mut rng);
    BroadcastOutcome::from_run(
        graph.n(),
        protocol.informed_count(),
        protocol.broadcast_time(),
        run,
    )
}

/// [`run_windowed`] under an energy overlay: duties are charged to
/// `session` (model costs, optional batteries) and the outcome carries
/// the [`EnergyMetrics`](radio_sim::EnergyMetrics) report. With no
/// battery attached the run itself is bit-identical to [`run_windowed`]
/// on the same seed — the overlay never touches protocol randomness.
pub fn run_windowed_energy<T: Topology>(
    graph: &T,
    source: NodeId,
    spec: WindowedSpec,
    engine_cfg: EngineConfig,
    seed: u64,
    session: &mut radio_sim::EnergySession,
) -> BroadcastOutcome {
    let mut protocol = WindowedBroadcast::new(graph.n(), source, spec);
    let mut rng = radio_util::derive_rng(seed, b"engine", 0);
    let run =
        radio_sim::engine::run_protocol_energy(graph, &mut protocol, engine_cfg, &mut rng, session);
    BroadcastOutcome::from_energy_run(
        graph.n(),
        protocol.informed_count(),
        protocol.broadcast_time(),
        run,
    )
}

/// [`run_windowed`] under the **v2 determinism contract**
/// ([`radio_sim::Engine::run_fused`]): every node's coin flips come from
/// its own counter-based stream derived from `(run_seed, node)`, so the
/// run is bit-identical for every engine thread count — including
/// `engine_cfg.threads > 1`, where the decide phase itself fans out.
/// Statistically equivalent to (but not bit-compatible with) the v1
/// [`run_windowed`] on the same seed; `tests/v2_equivalence.rs`
/// cross-validates the two.
pub fn run_windowed_fused<T: Topology>(
    graph: &T,
    source: NodeId,
    spec: WindowedSpec,
    engine_cfg: EngineConfig,
    run_seed: u64,
) -> BroadcastOutcome {
    run_windowed_fused_traced(
        graph,
        source,
        spec,
        engine_cfg,
        run_seed,
        &mut radio_sim::trace::NullSink,
    )
}

/// [`run_windowed_fused`] with a [`radio_sim::trace::TraceSink`]
/// attached: the identical run (the sink only observes — the engine's
/// zero-interference property holds it to that), with every round's
/// structured events emitted to `sink` for recording or replay
/// verification.
pub fn run_windowed_fused_traced<T: Topology, S: radio_sim::trace::TraceSink>(
    graph: &T,
    source: NodeId,
    spec: WindowedSpec,
    engine_cfg: EngineConfig,
    run_seed: u64,
    sink: &mut S,
) -> BroadcastOutcome {
    let mut protocol = WindowedBroadcast::new(graph.n(), source, spec);
    let run = radio_sim::engine::run_protocol_fused_traced(
        graph,
        &mut protocol,
        engine_cfg,
        run_seed,
        sink,
    );
    BroadcastOutcome::from_run(
        graph.n(),
        protocol.informed_count(),
        protocol.broadcast_time(),
        run,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generate::path;

    fn fixed_spec(q: f64, window: Option<u64>) -> WindowedSpec {
        WindowedSpec {
            source: ProbSource::Fixed(q),
            window,
            early_stop: true,
        }
    }

    #[test]
    fn fixed_prob_one_crosses_path() {
        let g = path(12);
        let out = run_windowed(
            &g,
            0,
            fixed_spec(1.0, None),
            EngineConfig::with_max_rounds(100),
            1,
        );
        assert!(out.all_informed);
        assert_eq!(out.broadcast_time, Some(11));
    }

    #[test]
    fn window_caps_activity_and_energy() {
        // Window 1: each node transmits at most 1 round; with q = 1 the
        // message still crosses (each frontier node gets one shot).
        let g = path(8);
        let spec = WindowedSpec {
            source: ProbSource::Fixed(1.0),
            window: Some(1),
            early_stop: false,
        };
        let out = run_windowed(&g, 0, spec, EngineConfig::with_max_rounds(100), 2);
        assert!(out.all_informed);
        assert!(out.max_msgs_per_node() <= 1);
    }

    #[test]
    fn zero_prob_never_informs() {
        let g = path(4);
        let spec = WindowedSpec {
            source: ProbSource::Fixed(0.0),
            window: Some(5),
            early_stop: true,
        };
        let out = run_windowed(&g, 0, spec, EngineConfig::with_max_rounds(50), 3);
        assert!(!out.all_informed);
        assert_eq!(out.informed, 1);
        assert_eq!(out.metrics.total_transmissions(), 0);
        // Source retires after its window → quiescence, not round cap.
        assert!(out.rounds_executed <= 7);
    }

    #[test]
    fn cycle_source_round_robins() {
        let mut src = ProbSource::Cycle(vec![1.0, 0.5, 0.25]);
        let mut rng = radio_util::derive_rng(0, b"t", 0);
        for (round, expect) in [(1, 1.0), (2, 0.5), (3, 0.25), (4, 1.0)] {
            src.prepare(round);
            assert_eq!(src.q_pure(round, &mut rng), expect);
        }
    }

    #[test]
    fn fused_v2_crosses_path_and_respects_windows() {
        // q = 1 with window 1: the fused run must reproduce the windowed
        // semantics exactly (one shot per node, message still crosses).
        let g = path(8);
        let spec = WindowedSpec {
            source: ProbSource::Fixed(1.0),
            window: Some(1),
            early_stop: false,
        };
        let out = run_windowed_fused(&g, 0, spec, EngineConfig::with_max_rounds(100), 5);
        assert!(out.all_informed);
        assert!(out.max_msgs_per_node() <= 1);
    }

    #[test]
    fn fused_v2_all_prob_sources_run_and_are_seed_deterministic() {
        use crate::seq::{KDistribution, SharedSequence};
        let g = path(16);
        let dist = KDistribution::paper_alpha(16, 3.0);
        let sources: Vec<ProbSource> = vec![
            ProbSource::Fixed(0.6),
            ProbSource::Cycle(vec![1.0, 0.5, 0.25]),
            ProbSource::Shared(SharedSequence::new(dist.clone(), 77)),
            ProbSource::Private(dist),
        ];
        for source in sources {
            let spec = WindowedSpec {
                source,
                window: None,
                early_stop: true,
            };
            let run = |seed: u64| {
                let out = run_windowed_fused(
                    &g,
                    0,
                    spec.clone(),
                    EngineConfig::with_max_rounds(5000),
                    seed,
                );
                (out.broadcast_time, out.metrics.total_transmissions())
            };
            assert_eq!(run(3), run(3));
        }
    }

    #[test]
    fn deterministic_outcome_per_seed() {
        let g = path(20);
        let run = |seed| {
            let out = run_windowed(
                &g,
                0,
                fixed_spec(0.6, None),
                EngineConfig::with_max_rounds(2000),
                seed,
            );
            (out.broadcast_time, out.metrics.total_transmissions())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
