//! The Czumaj–Rytter known-diameter broadcasting baseline \[11\], as this
//! paper describes and compares against it (§4).
//!
//! Structurally identical to Algorithm 3 — shared random sequence, each
//! active node transmits with probability `2^{−I_r}` — but the sequence is
//! drawn from `α'` (no `1/(2 log n)` floor; see [`crate::seq`]) and, to
//! hit the same w.h.p. completeness, a node must stay active for
//! `Θ(log² n · log(n/D))` rounds instead of `Θ(log² n)` (the paper's §4
//! discussion: CR's per-round neighbour-inform probability can be a
//! `log(n/D)` factor smaller). With the paper's stop-after-the-window
//! transformation this yields `Θ(log² n)` expected transmissions per node
//! — a factor `log(n/D)` above Algorithm 3, which is exactly the gap the
//! E13 comparison table measures.

use super::windowed::{run_windowed, ProbSource, WindowedSpec};
use super::BroadcastOutcome;
use crate::params::lambda as lambda_of;
use crate::seq::{AlphaKind, KDistribution, SharedSequence};
use radio_graph::{DiGraph, NodeId};
use radio_sim::EngineConfig;
use radio_util::ilog2_ceil;

/// Configuration for the CR baseline.
#[derive(Debug, Clone, Copy)]
pub struct CrBroadcastConfig {
    /// Number of nodes.
    pub n: usize,
    /// Known diameter `D`.
    pub diameter: u32,
    /// Window multiplier: active window = `⌈β log₂² n · λ⌉` rounds (the
    /// energy transformation the paper applies to \[11\]). Matches
    /// Algorithm 3's β so the comparison is apples-to-apples.
    pub beta: f64,
    /// Disable the stop transformation (original CR: active forever).
    pub no_stop: bool,
    /// Stop at completion vs. full schedule.
    pub early_stop: bool,
}

impl CrBroadcastConfig {
    /// Defaults mirroring [`super::ee_general::GeneralBroadcastConfig::new`].
    pub fn new(n: usize, diameter: u32) -> Self {
        CrBroadcastConfig {
            n,
            diameter,
            beta: 3.0,
            no_stop: false,
            early_stop: false,
        }
    }

    /// Same, stopping at completion.
    pub fn new_timed(n: usize, diameter: u32) -> Self {
        CrBroadcastConfig {
            early_stop: true,
            ..Self::new(n, diameter)
        }
    }

    /// `λ = max(1, log₂(n/D))`.
    pub fn lambda(&self) -> f64 {
        lambda_of(self.n, self.diameter).min(ilog2_ceil(self.n as u64) as f64)
    }

    /// Active window: `⌈β·log₂²n·λ⌉`, or `None` under [`Self::no_stop`].
    pub fn window(&self) -> Option<u64> {
        if self.no_stop {
            None
        } else {
            let l = (self.n as f64).log2();
            Some((self.beta * l * l * self.lambda()).ceil() as u64)
        }
    }

    /// Round budget (same shape as Algorithm 3's, scaled by the longer
    /// window).
    pub fn max_rounds(&self) -> u64 {
        let l = (self.n as f64).log2();
        let scale = self.diameter as f64 * self.lambda() + l * l;
        (8.0 * scale).ceil() as u64
            + self.window().unwrap_or(0)
            + (4.0 * l * l * self.lambda()) as u64
    }
}

/// Run the CR baseline on `graph` from `source`.
pub fn run_cr_broadcast(
    graph: &DiGraph,
    source: NodeId,
    cfg: &CrBroadcastConfig,
    seed: u64,
) -> BroadcastOutcome {
    assert_eq!(graph.n(), cfg.n, "config n must match the graph");
    let dist = KDistribution::of_kind(
        AlphaKind::CzumajRytter,
        ilog2_ceil(cfg.n as u64).max(1),
        cfg.lambda(),
    );
    let spec = WindowedSpec {
        source: ProbSource::Shared(SharedSequence::new(
            dist,
            radio_util::split_seed(seed, b"seq", 0),
        )),
        window: cfg.window(),
        early_stop: cfg.early_stop,
    };
    run_windowed(
        graph,
        source,
        spec,
        EngineConfig::with_max_rounds(cfg.max_rounds()),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::analysis::diameter_from;
    use radio_graph::generate::{caterpillar, path};

    #[test]
    fn completes_on_path_and_caterpillar() {
        let g = path(64);
        let out = run_cr_broadcast(&g, 0, &CrBroadcastConfig::new_timed(64, 63), 0);
        assert!(out.all_informed);

        let cat = caterpillar(30, 7);
        let d = diameter_from(&cat, 0).expect("connected");
        let out = run_cr_broadcast(&cat, 0, &CrBroadcastConfig::new_timed(cat.n(), d), 1);
        assert!(out.all_informed);
    }

    #[test]
    fn window_is_lambda_times_longer_than_alg3() {
        let cr = CrBroadcastConfig::new(4096, 16);
        let alg3 = super::super::ee_general::GeneralBroadcastConfig::new(4096, 16);
        let ratio = cr.window().expect("stopped") as f64 / alg3.window() as f64;
        assert!(
            (ratio - cr.lambda()).abs() / cr.lambda() < 0.05,
            "window ratio {ratio} should be ≈ λ = {}",
            cr.lambda()
        );
    }

    #[test]
    fn no_stop_variant_keeps_nodes_active() {
        let cfg = CrBroadcastConfig {
            no_stop: true,
            ..CrBroadcastConfig::new(64, 63)
        };
        assert_eq!(cfg.window(), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = path(40);
        let cfg = CrBroadcastConfig::new_timed(40, 39);
        let a = run_cr_broadcast(&g, 0, &cfg, 5);
        let b = run_cr_broadcast(&g, 0, &cfg, 5);
        assert_eq!(a.broadcast_time, b.broadcast_time);
    }
}
