//! Flooding baselines — the motivation for everything else.
//!
//! * **Naive flooding** (`q = 1`): every informed node transmits every
//!   round. In a wired network this is optimal; in the radio model it
//!   livelocks the moment two informed nodes share an uninformed
//!   neighbour — the `collision_storm` example demonstrates it on
//!   `G(n,p)`.
//! * **Probabilistic flooding** (`q < 1`, never retiring): the simplest
//!   randomised repair. It eventually completes on most graphs but pays
//!   unbounded energy; the paper's algorithms are the disciplined version
//!   of this idea.

use super::windowed::{run_windowed, ProbSource, WindowedSpec};
use super::BroadcastOutcome;
use radio_graph::{DiGraph, NodeId};
use radio_sim::EngineConfig;

/// Configuration for the flooding baselines.
#[derive(Debug, Clone, Copy)]
pub struct FloodConfig {
    /// Per-round transmit probability for informed nodes.
    pub prob: f64,
    /// Round cap (flooding has no schedule; the cap is the only stop).
    pub max_rounds: u64,
    /// Optional retirement: a node stops transmitting — and powers its
    /// radio down, under energy accounting — `window` rounds after being
    /// informed. `None` (the classic baseline) floods forever, paying
    /// idle-listening for the whole run; a finite window is the minimal
    /// energy-disciplined variant the paper's algorithms refine.
    pub window: Option<u64>,
    /// Stop the simulation at completion (the default, for time
    /// measurements) instead of running the full `max_rounds` horizon.
    /// Energy experiments set `false` to charge a fixed mission length.
    pub early_stop: bool,
}

impl FloodConfig {
    /// Deterministic flooding (`q = 1`).
    pub fn naive(max_rounds: u64) -> Self {
        Self::with_prob(1.0, max_rounds)
    }

    /// Probabilistic flooding with per-round probability `q`.
    pub fn with_prob(q: f64, max_rounds: u64) -> Self {
        assert!((0.0..=1.0).contains(&q));
        FloodConfig {
            prob: q,
            max_rounds,
            window: None,
            early_stop: true,
        }
    }

    /// Probabilistic flooding that retires (and sleeps) `window` rounds
    /// after a node is informed.
    pub fn retiring(q: f64, window: u64, max_rounds: u64) -> Self {
        FloodConfig {
            window: Some(window),
            ..Self::with_prob(q, max_rounds)
        }
    }

    /// The equivalent windowed-protocol spec.
    pub fn spec(&self) -> WindowedSpec {
        WindowedSpec {
            source: ProbSource::Fixed(self.prob),
            window: self.window,
            early_stop: self.early_stop,
        }
    }
}

/// Run flooding on `graph` from `source` (always early-stopping — the
/// only interesting measurements are completion and time).
pub fn run_flood_broadcast(
    graph: &DiGraph,
    source: NodeId,
    cfg: &FloodConfig,
    seed: u64,
) -> BroadcastOutcome {
    run_windowed(
        graph,
        source,
        cfg.spec(),
        EngineConfig::with_max_rounds(cfg.max_rounds),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generate::{gnp_undirected, path};
    use radio_util::derive_rng;

    #[test]
    fn naive_flooding_livelocks_on_dense_random_graphs() {
        // With d ≫ 1, after one round many informed nodes share every
        // uninformed neighbour: permanent collisions.
        let g = gnp_undirected(256, 0.1, &mut derive_rng(1, b"flood", 0));
        let out = run_flood_broadcast(&g, 0, &FloodConfig::naive(2000), 1);
        assert!(
            !out.all_informed,
            "naive flooding should stall on a dense G(n,p)"
        );
    }

    #[test]
    fn naive_flooding_works_on_a_path() {
        let g = path(30);
        let out = run_flood_broadcast(&g, 0, &FloodConfig::naive(100), 2);
        assert!(out.all_informed);
        assert_eq!(out.broadcast_time, Some(29));
    }

    #[test]
    fn probabilistic_flooding_recovers_where_naive_stalls() {
        let g = gnp_undirected(256, 0.1, &mut derive_rng(1, b"flood", 0));
        let out = run_flood_broadcast(&g, 0, &FloodConfig::with_prob(0.05, 20_000), 3);
        assert!(out.all_informed, "q = 0.05 should break the collisions");
    }

    #[test]
    fn probabilistic_flooding_pays_unbounded_energy_on_deep_networks() {
        // On a path, early-informed nodes keep transmitting for the whole
        // Θ(n/q) run — energy per node grows with network depth, the cost
        // the paper's windowed algorithms eliminate.
        let g = path(64);
        let out = run_flood_broadcast(&g, 0, &FloodConfig::with_prob(0.3, 20_000), 4);
        assert!(out.all_informed);
        assert!(
            out.max_msgs_per_node() > 10,
            "head-of-path node should have paid ≈ q·T ≫ 10 messages, got {}",
            out.max_msgs_per_node()
        );
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_probability() {
        let _ = FloodConfig::with_prob(1.5, 10);
    }
}
