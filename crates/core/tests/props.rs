//! Crate-level property tests for `radio-core`: distribution laws and
//! algorithm invariants on adversarial (non-random) topologies.

use proptest::prelude::*;
use radio_core::broadcast::ee_random::{run_ee_broadcast, EeBroadcastConfig};
use radio_core::seq::{KDistribution, SharedSequence, TransmitDistribution};
use radio_graph::generate::{lower_bound_net, star_chain};
use radio_util::derive_rng;

proptest! {
    /// Every sampled k lies in the support; sampled send probabilities are
    /// exact powers of two (or zero); the empirical silent rate tracks the
    /// declared silent mass.
    #[test]
    fn kdistribution_sampling_laws(
        log2_n in 2u32..20,
        lam_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let l = log2_n as f64;
        let lambda = (1.0 + lam_frac * (l - 1.0)).clamp(1.0, l);
        let d = KDistribution::paper_alpha(log2_n, lambda);
        let mut rng = derive_rng(seed, b"prop-kd", 0);
        let trials = 4000;
        let mut silents = 0u32;
        for _ in 0..trials {
            match d.sample(&mut rng) {
                None => silents += 1,
                Some(k) => prop_assert!(k >= 1 && k <= log2_n),
            }
        }
        let emp = silents as f64 / trials as f64;
        prop_assert!(
            (emp - d.silent_mass()).abs() < 0.05,
            "silent mass: empirical {emp} vs declared {}",
            d.silent_mass()
        );
        // E[q] is consistent with the masses.
        let expect: f64 = (1..=log2_n).map(|k| d.alpha(k) * 2f64.powi(-(k as i32))).sum();
        prop_assert!((d.mean_q() - expect).abs() < 1e-12);
    }

    /// Shared sequences only emit 0 or powers of two within the support.
    #[test]
    fn shared_sequence_value_domain(log2_n in 2u32..16, seed in any::<u64>()) {
        let d = KDistribution::cr_alpha(log2_n, (log2_n as f64 / 2.0).max(1.0));
        let mut s = SharedSequence::new(d, seed);
        for r in 1..=200u64 {
            let q = s.q(r);
            if q != 0.0 {
                let k = -q.log2();
                prop_assert!((k.round() - k).abs() < 1e-12);
                prop_assert!(k >= 1.0 - 1e-9 && k <= log2_n as f64 + 1e-9);
            }
        }
    }

    /// Algorithm 1's ≤ 1-transmission invariant holds on the adversarial
    /// lower-bound networks too (not just on G(n,p)) — any graph, any seed.
    #[test]
    fn alg1_invariant_on_adversarial_networks(
        n_dest in 2usize..40,
        seed in any::<u64>(),
    ) {
        let net = star_chain(n_dest);
        let n = net.graph.n();
        // Pretend density parameters (the algorithm only needs some d > 1).
        let p = 0.2;
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        let out = run_ee_broadcast(&net.graph, net.source, &cfg, seed);
        prop_assert!(out.max_msgs_per_node() <= 1);
    }

    /// Same on the Figure-2 cascade.
    #[test]
    fn alg1_invariant_on_figure2_network(
        k in 2u32..6,
        extra_d in 1u32..30,
        seed in any::<u64>(),
    ) {
        let net = lower_bound_net(k, 2 * k + extra_d);
        let n = net.graph.n();
        // Any pretend density with d = np > 1 works; tiny nets need a
        // larger p to clear that bar.
        let p = (2.5 / n as f64).max(0.1);
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        let out = run_ee_broadcast(&net.graph, net.source, &cfg, seed);
        prop_assert!(out.max_msgs_per_node() <= 1);
        // The source always counts as informed.
        prop_assert!(out.informed >= 1);
    }
}
