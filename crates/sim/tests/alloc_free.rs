//! Counting-allocator pin for the engine's **allocation-free trial
//! steady state**: after round 1 of a run on a warmed engine, the round
//! loop performs **zero heap allocations** — every buffer it touches
//! (stamped hit records, awake bookkeeping, transmitter/touched/event
//! lists) lives in pools owned by the [`Engine`] and sized to the graph
//! up front. At `n = 2²⁰` this is what stops a sweep from paying a
//! multi-MB alloc + zero per trial.
//!
//! Scope: the test drives the *serial* paths (`threads = 1`). Parallel
//! rounds additionally pay OS-level scoped-thread spawns — per-round
//! thread stacks the engine does not pool — which is a separate,
//! bounded cost that the receiver-range scatter only takes on when a
//! round's edge volume already dwarfs it.
//!
//! This file holds exactly one `#[test]`: the counting allocator is
//! process-global, so a concurrently running test would pollute the
//! count. Integration-test binaries are per-file, which gives this test
//! its own process.

use radio_graph::generate::gnp_directed;
use radio_graph::NodeId;
use radio_sim::engine::Engine;
use radio_sim::{Action, EngineConfig, FusedDecide, Protocol};
use radio_util::derive_rng;
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counts allocations (and growth reallocations) while armed.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Arms the counter from round 2 on (round 1 may still touch cold
/// buffers; the steady-state claim starts after it).
fn arm_from_round(round: u64) {
    if round == 2 {
        COUNTING.store(true, Ordering::SeqCst);
    }
}

/// Coin-flip flood with a per-node send budget; all state preallocated
/// in `new`, nothing allocated per round.
struct Coin {
    informed: Vec<bool>,
    n_informed: usize,
    sent: Vec<u32>,
}

impl Coin {
    fn new(n: usize) -> Self {
        let mut informed = vec![false; n];
        informed[0] = true;
        Coin {
            informed,
            n_informed: 1,
            sent: vec![0; n],
        }
    }
}

impl Protocol for Coin {
    type Msg = ();
    fn initially_awake(&self) -> Vec<NodeId> {
        vec![0]
    }
    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        // v1 path: no begin_round hook, so arm here (first poll of the
        // round; idempotent).
        arm_from_round(round);
        self.decide_and_commit(node, round, rng)
    }
    fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
    fn on_receive(
        &mut self,
        node: NodeId,
        _f: NodeId,
        _r: u64,
        _m: &Self::Msg,
        _rng: &mut ChaCha8Rng,
    ) {
        if !self.informed[node as usize] {
            self.informed[node as usize] = true;
            self.n_informed += 1;
        }
    }
    fn is_complete(&self) -> bool {
        self.n_informed == self.informed.len()
    }
    fn informed_count(&self) -> usize {
        self.n_informed
    }
    fn active_count(&self) -> usize {
        self.n_informed
    }
}

impl FusedDecide for Coin {
    fn begin_round(&mut self, round: u64) {
        arm_from_round(round);
    }
    fn decide_pure(&self, node: NodeId, _round: u64, rng: &mut ChaCha8Rng) -> Action {
        use rand::RngExt;
        if self.sent[node as usize] >= 4 {
            return Action::Sleep;
        }
        if rng.random_bool(0.3) {
            Action::Transmit
        } else {
            Action::Silent
        }
    }
    fn commit_decide(&mut self, node: NodeId, _round: u64, action: Action) {
        if action == Action::Transmit {
            self.sent[node as usize] += 1;
        }
    }
}

/// Run `body`, counting allocations from its round 2 until it returns.
fn count_allocs_after_round_1<R>(body: impl FnOnce() -> R) -> (u64, R) {
    COUNTING.store(false, Ordering::SeqCst);
    let before = ALLOCS.load(Ordering::SeqCst);
    let out = body(); // arms itself at round 2 via the protocol hooks
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst) - before, out)
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    let n = 2048;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(3, b"alloc-g", 0));
    let mut eng = Engine::new(&g, EngineConfig::with_max_rounds(300));

    // Warm-up trial: cold pools may still size themselves.
    let mut warm = Coin::new(n);
    let warm_run = eng.run_fused(&mut warm, 1);
    assert!(warm_run.completed, "coin flood should finish the warm-up");

    // Fused v2 trial on the warmed engine: zero allocations after
    // round 1. (Metrics::new at run start is before round 1 and so is
    // out of scope by construction.)
    let (fused_allocs, fused_run) = count_allocs_after_round_1(|| {
        let mut proto = Coin::new(n);
        eng.run_fused(&mut proto, 2)
    });
    assert!(fused_run.completed);
    assert!(
        fused_run.rounds > 2,
        "claim is vacuous unless rounds ran armed"
    );
    assert_eq!(
        fused_allocs, 0,
        "fused steady state must not allocate after round 1"
    );

    // Same claim for the v1 serial engine on the same pools.
    let (v1_allocs, v1_run) = count_allocs_after_round_1(|| {
        let mut proto = Coin::new(n);
        let mut rng = derive_rng(7, b"alloc-run", 0);
        eng.run(&mut proto, &mut rng)
    });
    assert!(v1_run.completed);
    assert!(v1_run.rounds > 2);
    assert_eq!(
        v1_allocs, 0,
        "v1 steady state must not allocate after round 1"
    );
}
