//! Energy accounting and per-round traces.
//!
//! The paper measures energy as *"the total (expected) number of
//! transmissions, or the maximum number of transmissions per node"*
//! (§1.2). [`Metrics`] tracks both, per run. [`Trace`] captures the
//! per-round quantities that the §2 analysis reasons about — `|Qₜ|`
//! (transmitters), newly informed nodes, and the protocol-reported
//! `|Uₜ|` (active set).
//!
//! Model-based accounting — total/max/mean *energy* under a pluggable
//! [`radio_energy::EnergyModel`], per-node residual battery charge, and
//! the first-depletion round — lives in [`EnergyMetrics`] (re-exported
//! here from `radio-energy`), attached to energy-overlay runs via
//! [`EnergyRunResult`](crate::engine::EnergyRunResult). Under the
//! `TxOnly` model its totals coincide exactly with
//! [`Metrics::total_transmissions`].

pub use radio_energy::EnergyMetrics;

/// Per-run energy and duration accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    per_node: Vec<u32>,
    total: u64,
    rounds: u64,
}

impl Metrics {
    /// Zeroed metrics for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            per_node: vec![0; n],
            total: 0,
            rounds: 0,
        }
    }

    /// Count one transmission by `node`.
    #[inline]
    pub fn record_transmission(&mut self, node: radio_graph::NodeId) {
        self.per_node[node as usize] += 1;
        self.total += 1;
    }

    pub(crate) fn set_rounds(&mut self, rounds: u64) {
        self.rounds = rounds;
    }

    /// Rounds the run lasted.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total transmissions across all nodes — the paper's primary energy
    /// measure.
    pub fn total_transmissions(&self) -> u64 {
        self.total
    }

    /// Maximum transmissions by any single node — the paper's per-node
    /// energy measure (Algorithm 1 guarantees this is ≤ 1).
    pub fn max_transmissions_per_node(&self) -> u32 {
        self.per_node.iter().copied().max().unwrap_or(0)
    }

    /// Mean transmissions per node.
    pub fn mean_transmissions_per_node(&self) -> f64 {
        if self.per_node.is_empty() {
            0.0
        } else {
            self.total as f64 / self.per_node.len() as f64
        }
    }

    /// Transmissions by a specific node.
    pub fn transmissions_of(&self, node: radio_graph::NodeId) -> u32 {
        self.per_node[node as usize]
    }

    /// Per-node counts (index = node id).
    pub fn per_node(&self) -> &[u32] {
        &self.per_node
    }
}

/// One round's aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: u64,
    /// `|Qₜ|` — nodes that transmitted.
    pub transmitters: u64,
    /// Collision-free receptions delivered.
    pub deliveries: u64,
    /// Receptions that increased the protocol's informed count.
    pub newly_informed: u64,
    /// Protocol-reported active-set size `|Uₜ|` *after* the round.
    pub active: u64,
    /// Protocol-reported informed count after the round.
    pub informed: u64,
}

/// Sequence of per-round records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Record for every executed round, in order.
    pub rounds: Vec<RoundRecord>,
}

impl Trace {
    /// The informed count after each round.
    pub fn informed_series(&self) -> Vec<u64> {
        self.rounds.iter().map(|r| r.informed).collect()
    }

    /// The transmitter count of each round (`|Qₜ|`).
    pub fn transmitter_series(&self) -> Vec<u64> {
        self.rounds.iter().map(|r| r.transmitters).collect()
    }

    /// The active-set size after each round (`|Uₜ₊₁|`).
    pub fn active_series(&self) -> Vec<u64> {
        self.rounds.iter().map(|r| r.active).collect()
    }

    /// First round (1-based) whose informed count reached `target`, if any.
    pub fn round_reaching(&self, target: u64) -> Option<u64> {
        self.rounds
            .iter()
            .find(|r| r.informed >= target)
            .map(|r| r.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate() {
        let mut m = Metrics::new(4);
        m.record_transmission(1);
        m.record_transmission(1);
        m.record_transmission(3);
        assert_eq!(m.total_transmissions(), 3);
        assert_eq!(m.max_transmissions_per_node(), 2);
        assert_eq!(m.transmissions_of(1), 2);
        assert_eq!(m.transmissions_of(0), 0);
        assert!((m.mean_transmissions_per_node() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::new(0);
        assert_eq!(m.max_transmissions_per_node(), 0);
        assert_eq!(m.mean_transmissions_per_node(), 0.0);
    }

    #[test]
    fn trace_round_reaching() {
        let t = Trace {
            rounds: vec![
                RoundRecord {
                    round: 1,
                    transmitters: 1,
                    deliveries: 2,
                    newly_informed: 2,
                    active: 2,
                    informed: 3,
                },
                RoundRecord {
                    round: 2,
                    transmitters: 2,
                    deliveries: 4,
                    newly_informed: 4,
                    active: 4,
                    informed: 7,
                },
            ],
        };
        assert_eq!(t.round_reaching(3), Some(1));
        assert_eq!(t.round_reaching(7), Some(2));
        assert_eq!(t.round_reaching(8), None);
        assert_eq!(t.informed_series(), vec![3, 7]);
        assert_eq!(t.transmitter_series(), vec![1, 2]);
        assert_eq!(t.active_series(), vec![2, 4]);
    }
}
