//! The optimised simulation engine.

use crate::metrics::{Metrics, RoundRecord, Trace};
use crate::{Action, Protocol};
use radio_graph::{DiGraph, NodeId};
use rand_chacha::ChaCha8Rng;

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Hard round cap; a run that has not completed by then reports
    /// `completed = false`.
    pub max_rounds: u64,
    /// Half-duplex radios (default, the standard radio model): a node
    /// that transmits in round `t` cannot also receive in round `t`.
    pub half_duplex: bool,
    /// Record a per-round [`Trace`] (costs one `RoundRecord` per round).
    pub record_trace: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 1_000_000,
            half_duplex: true,
            record_trace: false,
        }
    }
}

impl EngineConfig {
    /// Config with a round cap and defaults otherwise.
    pub fn with_max_rounds(max_rounds: u64) -> Self {
        EngineConfig {
            max_rounds,
            ..Default::default()
        }
    }

    /// Enable per-round tracing.
    pub fn traced(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Rounds executed (equals the completion round, or `max_rounds`).
    pub rounds: u64,
    /// Whether [`Protocol::is_complete`] turned true within the cap.
    pub completed: bool,
    /// Energy accounting.
    pub metrics: Metrics,
    /// Per-round records when tracing was enabled.
    pub trace: Option<Trace>,
}

/// Reusable simulation engine for one graph.
///
/// Scratch buffers (`hit_count`, `stamp`, …) persist across runs so a
/// trial loop over seeds on a fixed graph performs no per-run allocation
/// beyond the metrics vector — the "reuse collections" idiom from the
/// perf guides.
pub struct Engine<'g> {
    graph: &'g DiGraph,
    cfg: EngineConfig,
    // --- per-round scratch, stamped by round number to avoid clearing ---
    /// Round in which `hit_count`/`hit_source` for a node were last valid.
    stamp: Vec<u64>,
    /// Number of in-range transmitters this round.
    hit_count: Vec<u32>,
    /// The unique transmitter when `hit_count == 1`.
    hit_source: Vec<NodeId>,
    /// Nodes touched by at least one transmission this round.
    touched: Vec<NodeId>,
    /// Whether a node transmitted this round (for half-duplex).
    sent_stamp: Vec<u64>,
}

impl<'g> Engine<'g> {
    /// Create an engine for `graph`.
    pub fn new(graph: &'g DiGraph, cfg: EngineConfig) -> Self {
        let n = graph.n();
        Engine {
            graph,
            cfg,
            stamp: vec![u64::MAX; n],
            hit_count: vec![0; n],
            hit_source: vec![0; n],
            touched: Vec::with_capacity(64),
            sent_stamp: vec![u64::MAX; n],
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Run `protocol` to completion (or the round cap) with `rng`.
    pub fn run<P: Protocol>(&mut self, protocol: &mut P, rng: &mut ChaCha8Rng) -> RunResult {
        let g = self.graph;
        self.run_with(|_| g, protocol, rng)
    }

    /// Core loop with a per-round topology: `pick(round)` returns the
    /// graph in force during that round. All graphs must have the same
    /// node count as the engine's sizing graph. This is the mobility
    /// entry point — see [`run_dynamic`].
    pub fn run_with<F, P>(&mut self, pick: F, protocol: &mut P, rng: &mut ChaCha8Rng) -> RunResult
    where
        F: Fn(u64) -> &'g DiGraph,
        P: Protocol,
    {
        let n = self.graph.n();
        let mut metrics = Metrics::new(n);
        // Round numbers restart at 1 every run, so stale stamps from a
        // previous run on this engine would alias; reset them.
        self.stamp.fill(u64::MAX);
        self.sent_stamp.fill(u64::MAX);
        let mut trace = self.cfg.record_trace.then(Trace::default);

        // Awake bookkeeping. `awake_list` may contain stale entries for
        // nodes that slept; `is_awake` is authoritative and the list is
        // compacted lazily during the poll sweep.
        let mut is_awake = vec![false; n];
        let mut awake_list: Vec<NodeId> = Vec::new();
        let mut awake_count = 0usize;
        for v in protocol.initially_awake() {
            if !is_awake[v as usize] {
                is_awake[v as usize] = true;
                awake_count += 1;
                awake_list.push(v);
            }
        }

        let mut transmitters: Vec<NodeId> = Vec::new();
        let mut rounds = 0u64;
        let mut completed = protocol.is_complete();

        // Stop on completion, on the round cap, or when every node is
        // asleep — with no possible transmitter left, no reception can
        // ever wake anyone, so the run has quiesced for good.
        while !completed && rounds < self.cfg.max_rounds && awake_count > 0 {
            rounds += 1;
            let round = rounds;
            let graph = pick(round);
            debug_assert_eq!(graph.n(), n, "topology changed node count mid-run");

            // --- poll phase -------------------------------------------------
            transmitters.clear();
            let mut w = 0usize;
            for r in 0..awake_list.len() {
                let v = awake_list[r];
                if !is_awake[v as usize] {
                    continue; // stale entry
                }
                match protocol.decide(v, round, rng) {
                    Action::Silent => {
                        awake_list[w] = v;
                        w += 1;
                    }
                    Action::Transmit => {
                        transmitters.push(v);
                        self.sent_stamp[v as usize] = round;
                        awake_list[w] = v;
                        w += 1;
                    }
                    Action::Sleep => {
                        is_awake[v as usize] = false;
                        awake_count -= 1;
                    }
                }
            }
            awake_list.truncate(w);

            // --- transmit phase ---------------------------------------------
            self.touched.clear();
            for &u in &transmitters {
                metrics.record_transmission(u);
                for &v in graph.out_neighbors(u) {
                    let vi = v as usize;
                    if self.stamp[vi] != round {
                        self.stamp[vi] = round;
                        self.hit_count[vi] = 1;
                        self.hit_source[vi] = u;
                        self.touched.push(v);
                    } else {
                        self.hit_count[vi] += 1;
                    }
                }
            }

            // --- delivery phase ----------------------------------------------
            // Payloads are materialised once per transmitter, not per
            // delivery. For plain broadcast Msg = () this is free.
            let mut deliveries = 0u64;
            let mut first_receptions = 0u64;
            if !transmitters.is_empty() {
                // `touched` is filled in transmitter-scan order; sort for a
                // well-defined (ascending receiver) delivery order.
                self.touched.sort_unstable();
                for i in 0..self.touched.len() {
                    let v = self.touched[i];
                    let vi = v as usize;
                    if self.hit_count[vi] != 1 {
                        continue; // collision at v
                    }
                    if self.cfg.half_duplex && self.sent_stamp[vi] == round {
                        continue; // v's own radio was busy transmitting
                    }
                    let from = self.hit_source[vi];
                    let msg = protocol.payload(from, round);
                    let informed_before = protocol.informed_count();
                    protocol.on_receive(v, from, round, &msg, rng);
                    deliveries += 1;
                    if protocol.informed_count() > informed_before {
                        first_receptions += 1;
                    }
                    if !is_awake[vi] {
                        is_awake[vi] = true;
                        awake_count += 1;
                        awake_list.push(v);
                    }
                }
            }

            completed = protocol.is_complete();

            if let Some(t) = trace.as_mut() {
                t.rounds.push(RoundRecord {
                    round,
                    transmitters: transmitters.len() as u64,
                    deliveries,
                    newly_informed: first_receptions,
                    active: protocol.active_count() as u64,
                    informed: protocol.informed_count() as u64,
                });
            }
        }

        metrics.set_rounds(rounds);
        RunResult {
            rounds,
            completed,
            metrics,
            trace,
        }
    }
}

/// One-shot convenience: build an engine, run once.
pub fn run_protocol<P: Protocol>(
    graph: &DiGraph,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
) -> RunResult {
    Engine::new(graph, cfg).run(protocol, rng)
}

/// Run on a *changing topology*: the network uses `graphs[k]` during
/// rounds `k·switch_every + 1 ..= (k+1)·switch_every` and stays on the
/// last graph afterwards. Models node mobility (the paper's §1: "due to
/// the mobility of the nodes, the network topology changes over time") —
/// pair it with
/// `radio_graph::generate::geometric`-style snapshot sequences.
///
/// # Panics
/// Panics if `graphs` is empty, `switch_every == 0`, or node counts
/// differ across snapshots.
pub fn run_dynamic<P: Protocol>(
    graphs: &[&DiGraph],
    switch_every: u64,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
) -> RunResult {
    assert!(!graphs.is_empty(), "need at least one topology snapshot");
    assert!(switch_every > 0, "switch_every must be positive");
    let n = graphs[0].n();
    assert!(
        graphs.iter().all(|g| g.n() == n),
        "all topology snapshots must have the same node count"
    );
    let mut engine = Engine::new(graphs[0], cfg);
    engine.run_with(
        |round| {
            let idx = ((round - 1) / switch_every) as usize;
            graphs[idx.min(graphs.len() - 1)]
        },
        protocol,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generate::{path, star};
    use radio_graph::DiGraph;
    use radio_util::derive_rng;

    /// Test protocol: every informed node transmits unconditionally every
    /// round (naive flooding). On a path this works; on a star the leaves
    /// collide forever after round 1.
    struct Flood {
        informed: Vec<bool>,
        n_informed: usize,
    }

    impl Flood {
        fn new(n: usize, source: NodeId) -> Self {
            let mut informed = vec![false; n];
            informed[source as usize] = true;
            Flood {
                informed,
                n_informed: 1,
            }
        }
    }

    impl Protocol for Flood {
        type Msg = ();

        fn initially_awake(&self) -> Vec<NodeId> {
            self.informed
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i as NodeId))
                .collect()
        }

        fn decide(&mut self, _node: NodeId, _round: u64, _rng: &mut ChaCha8Rng) -> Action {
            Action::Transmit
        }

        fn payload(&self, _node: NodeId, _round: u64) -> Self::Msg {}

        fn on_receive(
            &mut self,
            node: NodeId,
            _from: NodeId,
            _round: u64,
            _msg: &Self::Msg,
            _rng: &mut ChaCha8Rng,
        ) {
            if !self.informed[node as usize] {
                self.informed[node as usize] = true;
                self.n_informed += 1;
            }
        }

        fn is_complete(&self) -> bool {
            self.n_informed == self.informed.len()
        }

        fn informed_count(&self) -> usize {
            self.n_informed
        }

        fn active_count(&self) -> usize {
            self.n_informed
        }
    }

    /// Like `Flood` but each node transmits exactly once, then sleeps.
    struct FloodOnce {
        inner: Flood,
        sent: Vec<bool>,
    }

    impl FloodOnce {
        fn new(n: usize, source: NodeId) -> Self {
            FloodOnce {
                inner: Flood::new(n, source),
                sent: vec![false; n],
            }
        }
    }

    impl Protocol for FloodOnce {
        type Msg = ();

        fn initially_awake(&self) -> Vec<NodeId> {
            self.inner.initially_awake()
        }

        fn decide(&mut self, node: NodeId, _round: u64, _rng: &mut ChaCha8Rng) -> Action {
            if self.sent[node as usize] {
                Action::Sleep
            } else {
                self.sent[node as usize] = true;
                Action::Transmit
            }
        }

        fn payload(&self, _node: NodeId, _round: u64) -> Self::Msg {}

        fn on_receive(
            &mut self,
            node: NodeId,
            from: NodeId,
            round: u64,
            msg: &Self::Msg,
            rng: &mut ChaCha8Rng,
        ) {
            self.inner.on_receive(node, from, round, msg, rng);
        }

        fn is_complete(&self) -> bool {
            self.inner.is_complete()
        }

        fn informed_count(&self) -> usize {
            self.inner.informed_count()
        }

        fn active_count(&self) -> usize {
            self.inner.active_count()
        }
    }

    #[test]
    fn flooding_crosses_a_path_in_diameter_rounds() {
        let g = path(10);
        let mut p = Flood::new(10, 0);
        let mut rng = derive_rng(1, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default(), &mut rng);
        assert!(res.completed);
        // One hop per round along the path; node 1's transmissions toward 0
        // never collide because in-degrees on the path are ≤ 2 and only the
        // frontier moves forward.
        assert_eq!(res.rounds, 9);
    }

    #[test]
    fn collision_blocks_star_leaves_from_informing_each_other_s_center() {
        // Star: centre 0 informs all leaves in round 1. From round 2 every
        // leaf transmits simultaneously; all their messages collide at the
        // centre (which is already informed anyway) — and, with more than
        // one leaf, no further node exists, so the run completes.
        let g = star(5);
        let mut p = Flood::new(5, 0);
        let mut rng = derive_rng(2, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default(), &mut rng);
        assert!(res.completed);
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn two_simultaneous_transmitters_collide() {
        // 0 → 2 and 1 → 2; both 0 and 1 start informed and always transmit:
        // node 2 can never receive.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let mut p = Flood::new(3, 0);
        p.informed[1] = true;
        p.n_informed = 2;
        let mut rng = derive_rng(3, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(50), &mut rng);
        assert!(!res.completed, "collision must prevent delivery forever");
        assert_eq!(res.rounds, 50);
        assert_eq!(p.n_informed, 2);
    }

    #[test]
    fn exactly_one_transmitter_delivers() {
        // Only node 0 is informed, so node 2 hears a single transmitter
        // and must receive in round 1 (node 1 has no in-edges and can
        // never be informed, so the run as a whole cannot complete).
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let mut p = Flood::new(3, 0);
        let mut rng = derive_rng(4, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(5), &mut rng);
        assert!(!res.completed);
        assert!(p.informed[2], "single transmitter must deliver");
        assert_eq!(p.n_informed, 2);
    }

    #[test]
    fn half_duplex_blocks_reception_while_transmitting() {
        // 0 ↔ 1. Both informed, both always transmit: under half-duplex
        // neither ever *receives*, but both being informed the run is
        // already complete; instead make node 1 uninformed and transmitting
        // impossible — simpler: check via metrics on a 2-cycle where both
        // transmit: deliveries must be zero in half-duplex and two per
        // round in full-duplex.
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);

        struct AlwaysSend;
        impl Protocol for AlwaysSend {
            type Msg = ();
            fn initially_awake(&self) -> Vec<NodeId> {
                vec![0, 1]
            }
            fn decide(&mut self, _n: NodeId, _r: u64, _rng: &mut ChaCha8Rng) -> Action {
                Action::Transmit
            }
            fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
            fn on_receive(
                &mut self,
                _n: NodeId,
                _f: NodeId,
                _r: u64,
                _m: &Self::Msg,
                _rng: &mut ChaCha8Rng,
            ) {
                panic!("half-duplex must suppress this delivery");
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn informed_count(&self) -> usize {
                2
            }
            fn active_count(&self) -> usize {
                2
            }
        }

        let mut p = AlwaysSend;
        let mut rng = derive_rng(5, b"eng", 0);
        let cfg = EngineConfig {
            max_rounds: 10,
            half_duplex: true,
            record_trace: false,
        };
        let res = run_protocol(&g, &mut p, cfg, &mut rng);
        assert_eq!(res.metrics.total_transmissions(), 20);
    }

    #[test]
    fn full_duplex_allows_reception_while_transmitting() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);

        struct CountRx {
            rx: u32,
        }
        impl Protocol for CountRx {
            type Msg = ();
            fn initially_awake(&self) -> Vec<NodeId> {
                vec![0, 1]
            }
            fn decide(&mut self, _n: NodeId, _r: u64, _rng: &mut ChaCha8Rng) -> Action {
                Action::Transmit
            }
            fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
            fn on_receive(
                &mut self,
                _n: NodeId,
                _f: NodeId,
                _r: u64,
                _m: &Self::Msg,
                _rng: &mut ChaCha8Rng,
            ) {
                self.rx += 1;
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn informed_count(&self) -> usize {
                2
            }
            fn active_count(&self) -> usize {
                2
            }
        }

        let mut p = CountRx { rx: 0 };
        let mut rng = derive_rng(6, b"eng", 0);
        let cfg = EngineConfig {
            max_rounds: 10,
            half_duplex: false,
            record_trace: false,
        };
        let _ = run_protocol(&g, &mut p, cfg, &mut rng);
        assert_eq!(
            p.rx, 20,
            "each node receives the other's message each round"
        );
    }

    #[test]
    fn sleep_removes_from_polling_and_caps_energy() {
        let g = path(6);
        let mut p = FloodOnce::new(6, 0);
        let mut rng = derive_rng(7, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default(), &mut rng);
        assert!(res.completed);
        assert_eq!(res.metrics.max_transmissions_per_node(), 1);
        assert_eq!(res.metrics.total_transmissions() as usize, 5); // node 5 never needs to send
    }

    #[test]
    fn trace_records_round_progression() {
        let g = path(5);
        let mut p = Flood::new(5, 0);
        let mut rng = derive_rng(8, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default().traced(), &mut rng);
        let t = res.trace.expect("trace requested");
        assert_eq!(t.rounds.len(), res.rounds as usize);
        // Informed counts are non-decreasing and end at n.
        let informed: Vec<u64> = t.rounds.iter().map(|r| r.informed).collect();
        assert!(informed.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*informed.last().expect("non-empty"), 5);
        // Exactly one new node per round on a path.
        assert!(t.rounds.iter().all(|r| r.newly_informed == 1));
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let g = radio_graph::generate::gnp_directed(300, 0.05, &mut derive_rng(9, b"g", 0));

        struct Coin {
            informed: Vec<bool>,
            n_informed: usize,
        }
        impl Protocol for Coin {
            type Msg = ();
            fn initially_awake(&self) -> Vec<NodeId> {
                vec![0]
            }
            fn decide(&mut self, _n: NodeId, _r: u64, rng: &mut ChaCha8Rng) -> Action {
                use rand::RngExt;
                if rng.random_bool(0.3) {
                    Action::Transmit
                } else {
                    Action::Silent
                }
            }
            fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
            fn on_receive(
                &mut self,
                n: NodeId,
                _f: NodeId,
                _r: u64,
                _m: &Self::Msg,
                _rng: &mut ChaCha8Rng,
            ) {
                if !self.informed[n as usize] {
                    self.informed[n as usize] = true;
                    self.n_informed += 1;
                }
            }
            fn is_complete(&self) -> bool {
                self.n_informed == self.informed.len()
            }
            fn informed_count(&self) -> usize {
                self.n_informed
            }
            fn active_count(&self) -> usize {
                self.n_informed
            }
        }

        let run = |seed: u64| {
            let mut p = Coin {
                informed: {
                    let mut v = vec![false; 300];
                    v[0] = true;
                    v
                },
                n_informed: 1,
            };
            let mut rng = derive_rng(seed, b"det", 0);
            let r = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(500), &mut rng);
            (r.rounds, r.completed, r.metrics.total_transmissions())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn engine_reuse_across_runs_is_clean() {
        let g = path(8);
        let mut eng = Engine::new(&g, EngineConfig::default());
        for seed in 0..5 {
            let mut p = Flood::new(8, 0);
            let mut rng = derive_rng(seed, b"reuse", 0);
            let res = eng.run(&mut p, &mut rng);
            assert!(res.completed);
            assert_eq!(
                res.rounds, 7,
                "seed {seed}: scratch state leaked across runs"
            );
        }
    }

    #[test]
    fn run_quiesces_when_every_node_sleeps() {
        // 0 → 2 and 1 → 2, both sources informed, each transmits exactly
        // once: their round-1 transmissions collide at node 2, round 2 puts
        // both to sleep, and the engine must stop right there instead of
        // spinning to the round cap.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let mut p = FloodOnce::new(3, 0);
        p.inner.informed[1] = true;
        p.inner.n_informed = 2;
        let mut rng = derive_rng(11, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(1000), &mut rng);
        assert!(!res.completed);
        assert_eq!(res.rounds, 2);
        assert_eq!(res.metrics.total_transmissions(), 2);
    }

    #[test]
    fn dynamic_topology_switches_mid_run() {
        // Two snapshots over 3 nodes: first 0 → 1 only, then 1 → 2 only.
        // Flooding needs the switch to reach node 2: in snapshot A node 1
        // gets informed; only after the topology changes can 1 reach 2.
        let a = DiGraph::from_edges(3, &[(0, 1)]);
        let b = DiGraph::from_edges(3, &[(1, 2)]);
        let mut p = Flood::new(3, 0);
        let mut rng = derive_rng(12, b"eng", 0);
        let res = super::run_dynamic(
            &[&a, &b],
            3,
            &mut p,
            EngineConfig::with_max_rounds(20),
            &mut rng,
        );
        assert!(res.completed);
        assert!(res.rounds > 3, "node 2 is reachable only after the switch");
        assert!(p.informed[2]);
    }

    #[test]
    fn dynamic_with_single_graph_matches_static_run() {
        let g = path(10);
        let run_static = {
            let mut p = Flood::new(10, 0);
            let mut rng = derive_rng(13, b"eng", 0);
            run_protocol(&g, &mut p, EngineConfig::default(), &mut rng).rounds
        };
        let run_dyn = {
            let mut p = Flood::new(10, 0);
            let mut rng = derive_rng(13, b"eng", 0);
            super::run_dynamic(&[&g], 5, &mut p, EngineConfig::default(), &mut rng).rounds
        };
        assert_eq!(run_static, run_dyn);
    }

    #[test]
    fn already_complete_protocol_runs_zero_rounds() {
        let g = path(1);
        let mut p = Flood::new(1, 0);
        let mut rng = derive_rng(10, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default(), &mut rng);
        assert!(res.completed);
        assert_eq!(res.rounds, 0);
        assert_eq!(res.metrics.total_transmissions(), 0);
    }
}
