//! The optimised simulation engine.

use crate::metrics::{EnergyMetrics, Metrics, RoundRecord, Trace};
use crate::streams::DecideStreams;
use crate::{Action, FusedDecide, Protocol};
use radio_energy::{Duty, EnergySession};
use radio_graph::{DiGraph, NodeId, RangeQueryCost, Topology};
use radio_trace::{NullSink, TraceEvent, TraceSink};
use rand_chacha::ChaCha8Rng;

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Hard round cap; a run that has not completed by then reports
    /// `completed = false` and `hit_round_cap = true`.
    pub max_rounds: u64,
    /// Half-duplex radios (default, the standard radio model): a node
    /// that transmits in round `t` cannot also receive in round `t`.
    pub half_duplex: bool,
    /// Record a per-round [`Trace`] (costs one `RoundRecord` per round).
    pub record_trace: bool,
    /// Log to stderr when a run stops at `max_rounds` without completing.
    /// Defaults to `true` under [`EngineConfig::default`] (whose huge cap
    /// would otherwise silently mask non-terminating protocols) and
    /// `false` under [`EngineConfig::with_max_rounds`] (a deliberately
    /// chosen budget, e.g. a fixed-length schedule that always runs to
    /// its cap).
    pub warn_on_round_cap: bool,
    /// Worker threads for the *intra-run* scatter/collision phase
    /// (`1` = fully serial, the default). The partition is by receiver
    /// id range, so any thread count produces bit-identical runs — see
    /// [`Engine::run_par`] for the determinism contract.
    pub threads: usize,
    /// Minimum per-round edge volume (Σ out-degree over the round's
    /// transmitters) before the **receiver-range** scatter fans out;
    /// below it the round stays serial because scoped-thread spawn
    /// overhead would beat any cache-miss savings. Purely a performance
    /// threshold — both paths compute identical state, so it never
    /// affects results. Tests force the parallel path with `0`.
    pub par_min_edges: u64,
    /// Minimum per-round edge volume before the **transmitter-sharded**
    /// scatter fans out (the strategy picked for
    /// [`RangeQueryCost::FullRowReplay`] backends). Lower than
    /// [`par_min_edges`]: on implicit backends `degree_hint` is an
    /// upper-bound estimate and each edge carries row-*regeneration*
    /// work, so the fan-out pays for its spawns sooner. Purely a
    /// performance threshold, like [`par_min_edges`]; tests force the
    /// parallel path with `0`.
    ///
    /// [`par_min_edges`]: EngineConfig::par_min_edges
    pub par_min_edges_implicit: u64,
    /// Which parallel scatter partition to use when a round fans out;
    /// `Auto` (the default) picks per backend via
    /// [`Topology::range_query_cost`]. Every strategy produces
    /// bit-identical results — the overrides exist for tests and
    /// benchmarks that pin one path.
    pub scatter_strategy: ScatterStrategy,
    /// Minimum awake-list length before the **fused** engine's decide
    /// phase ([`Engine::run_fused`]) fans out; below it the round's
    /// decisions are evaluated serially. Like [`par_min_edges`] this is
    /// purely a performance threshold — the per-node v2 streams make the
    /// decisions order-independent, so it can never affect results.
    /// Tests force the parallel path with `0`.
    ///
    /// [`par_min_edges`]: EngineConfig::par_min_edges
    pub par_min_awake: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 1_000_000,
            half_duplex: true,
            record_trace: false,
            warn_on_round_cap: true,
            threads: 1,
            par_min_edges: PAR_SCATTER_MIN_EDGES,
            par_min_edges_implicit: PAR_SCATTER_MIN_EDGES_IMPLICIT,
            scatter_strategy: ScatterStrategy::Auto,
            par_min_awake: PAR_DECIDE_MIN_AWAKE,
        }
    }
}

impl EngineConfig {
    /// Config with a deliberately chosen round cap and defaults
    /// otherwise; cap-hit warnings are off (hitting a chosen budget is an
    /// expected outcome, not a masked hang).
    pub fn with_max_rounds(max_rounds: u64) -> Self {
        EngineConfig {
            max_rounds,
            warn_on_round_cap: false,
            ..Default::default()
        }
    }

    /// Enable per-round tracing.
    pub fn traced(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Override the cap-hit warning.
    pub fn warn_on_cap(mut self, warn: bool) -> Self {
        self.warn_on_round_cap = warn;
        self
    }

    /// Set the intra-run scatter thread count (chainable). Every run
    /// entry point honors it — [`Engine::run`], the `*_energy` variants,
    /// and the windowed/dynamic wrappers that take an `EngineConfig` —
    /// and the result is bit-identical for every value, so sweeps can
    /// trade trial-level for run-level parallelism freely.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be at least 1");
        self.threads = threads;
        self
    }

    /// Pin the parallel scatter partition strategy (chainable). Results
    /// are bit-identical under every strategy; this exists for tests
    /// and benches that must exercise one specific path.
    pub fn with_scatter_strategy(mut self, strategy: ScatterStrategy) -> Self {
        self.scatter_strategy = strategy;
        self
    }
}

/// Which partition the parallel scatter phase uses when a round's edge
/// volume justifies fanning out. All strategies compute identical
/// `hits`/`touched` state — see [`Engine::run_par`]'s determinism
/// contract — so this knob can trade speed but never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterStrategy {
    /// Pick per backend from [`Topology::range_query_cost`]:
    /// receiver-range where range queries narrow cheaply (CSR),
    /// transmitter-sharded where they replay the full row (implicit
    /// backends). The default.
    Auto,
    /// Always partition by receiver id range: each worker owns a
    /// `hits` range and asks the topology for in-range neighbors of
    /// every transmitter. Optimal for CSR (two binary searches per
    /// row); O(t·edges) row regeneration on implicit backends.
    ReceiverRange,
    /// Always partition by transmitter shard: each worker generates its
    /// own transmitters' rows exactly once — O(edges) total — and emits
    /// `(receiver, transmitter)` hit records that a deterministic
    /// receiver-keyed merge resolves to the serial outcome.
    TransmitterShard,
}

/// Result of one simulation run.
///
/// `PartialEq` compares every field (rounds, completion flags, full
/// per-node metrics, trace) — the equality the CSR-vs-implicit topology
/// equivalence tests assert bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Rounds executed (equals the completion round, or `max_rounds`).
    pub rounds: u64,
    /// Whether [`Protocol::is_complete`] turned true within the cap.
    pub completed: bool,
    /// The run was cut off by `max_rounds` while still incomplete — the
    /// protocol may not terminate at all. Sweeps count these per cell.
    pub hit_round_cap: bool,
    /// Energy accounting.
    pub metrics: Metrics,
    /// Per-round records when tracing was enabled.
    pub trace: Option<Trace>,
}

/// Result of one simulation run under an energy overlay
/// ([`Engine::run_energy`] and friends): the plain [`RunResult`] plus the
/// model-based energy report.
#[derive(Debug, Clone)]
pub struct EnergyRunResult {
    /// The underlying run. With no battery attached it is bit-identical
    /// to the same run without the overlay (energy models never touch
    /// the protocol RNG or delivery semantics).
    pub run: RunResult,
    /// Model-based energy accounting (total/max/mean energy, residual
    /// charge, depletion rounds).
    pub energy: EnergyMetrics,
    /// The run was stopped by the session's
    /// [`with_halt_on_depletion`](EnergySession::with_halt_on_depletion)
    /// request at the end of the first-depletion round.
    pub stopped_on_depletion: bool,
}

/// Per-round energy integration point of the core loop. Monomorphized:
/// the [`NoEnergy`] instantiation compiles to exactly the pre-energy
/// engine (every call site is gated on the `ACTIVE` const).
trait EnergyHook {
    /// Whether this hook does anything at all.
    const ACTIVE: bool;
    /// Is `node` fail-stop dead (battery depleted before `round`)?
    fn is_dead(&self, node: NodeId, round: u64) -> bool;
    /// Charge `node` for `duty` in `round`.
    fn charge(&mut self, node: NodeId, duty: Duty, round: u64);
    /// End-of-round accounting (idle/sleep sweep); `true` requests an
    /// engine stop (network-lifetime halt).
    fn end_round<P: Protocol>(&mut self, round: u64, protocol: &P) -> bool;
    /// Keep ticking (charging idle/sleep rounds) past protocol
    /// quiescence, up to the round cap.
    fn charge_to_cap(&self) -> bool;
}

/// The zero-cost hook used by the plain entry points.
struct NoEnergy;

impl EnergyHook for NoEnergy {
    const ACTIVE: bool = false;
    #[inline(always)]
    fn is_dead(&self, _node: NodeId, _round: u64) -> bool {
        false
    }
    #[inline(always)]
    fn charge(&mut self, _node: NodeId, _duty: Duty, _round: u64) {}
    #[inline(always)]
    fn end_round<P: Protocol>(&mut self, _round: u64, _protocol: &P) -> bool {
        false
    }
    #[inline(always)]
    fn charge_to_cap(&self) -> bool {
        false
    }
}

impl EnergyHook for EnergySession {
    const ACTIVE: bool = true;
    #[inline]
    fn is_dead(&self, node: NodeId, round: u64) -> bool {
        EnergySession::is_dead(self, node, round)
    }
    #[inline]
    fn charge(&mut self, node: NodeId, duty: Duty, round: u64) {
        EnergySession::charge(self, node, duty, round);
    }
    fn end_round<P: Protocol>(&mut self, round: u64, protocol: &P) -> bool {
        self.sweep_round(round, |v| protocol.radio_off(v, round));
        self.should_halt()
    }
    #[inline]
    fn charge_to_cap(&self) -> bool {
        EnergySession::charge_to_cap(self)
    }
}

/// Per-node round-stamped scratch, packed into one 8-byte record (eight
/// per cache line) so the scatter loop's random access to a target costs
/// a single line instead of three — separate `stamp`/`hit_count`/
/// `hit_source` arrays put the same node's state in three different
/// lines, and every edge of every transmitter touches its target's
/// state, making this the dominant cost of the collision count at scale.
///
/// The collision rule only needs "exactly one transmitter in range", so
/// the paper-faithful count collapses to one *collided* bit folded into
/// the stamp word. Stamps are `u32` round numbers (`0` = never; rounds
/// are 1-based); [`Engine::run_with`] asserts the round cap fits 31
/// bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
struct HitRecord {
    /// `round << 1 | collided` for the round in which `source` was last
    /// written (0 = never).
    stamp: u32,
    /// The transmitter heard this round; meaningful iff not collided.
    source: NodeId,
}

const HIT_NEVER: HitRecord = HitRecord {
    stamp: 0,
    source: 0,
};

/// Default for [`EngineConfig::par_min_edges`].
const PAR_SCATTER_MIN_EDGES: u64 = 8_192;

/// Default for [`EngineConfig::par_min_edges_implicit`]. Implicit rows
/// cost generation work per edge (a ChaCha draw or a bucket scan, not a
/// cache-line read), so the scoped-thread spawns amortize at roughly a
/// quarter of the CSR threshold.
const PAR_SCATTER_MIN_EDGES_IMPLICIT: u64 = 2_048;

/// Default for [`EngineConfig::par_min_awake`]: a per-node ChaCha
/// positioning + block costs ~50–100 ns, so a few thousand awake nodes
/// amortize the per-round scoped-thread spawns comfortably.
const PAR_DECIDE_MIN_AWAKE: usize = 2_048;

/// The resolved decision for one scatter round: which path runs, with
/// how many workers. Produced by [`scatter_plan`]; public so the path
/// selection is unit-testable without driving a full run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterPlan {
    /// Below the strategy's edge threshold (or nothing to fan out):
    /// one transmitter-order pass on the calling thread.
    Serial,
    /// Receiver-range partition over `threads` workers.
    ReceiverRange {
        /// Worker count, capped at the node count.
        threads: usize,
    },
    /// Transmitter-sharded emit + receiver-keyed merge over `threads`
    /// workers.
    TransmitterShard {
        /// Worker count, capped at the node and transmitter counts.
        threads: usize,
    },
}

/// Pick the scatter path for one round — a pure function of the config,
/// the backend's [`RangeQueryCost`] hint, and the round's shape, so the
/// heuristic is testable in isolation. Strategy first ([`Auto`] resolves
/// via the cost hint), then that strategy's own edge threshold: implicit
/// backends gate on [`par_min_edges_implicit`] because their
/// `degree_hint` is an upper-bound estimate and every edge carries
/// generation work, CSR on [`par_min_edges`]. Never affects results —
/// every plan computes identical `hits`/`touched` state.
///
/// [`Auto`]: ScatterStrategy::Auto
/// [`par_min_edges`]: EngineConfig::par_min_edges
/// [`par_min_edges_implicit`]: EngineConfig::par_min_edges_implicit
pub fn scatter_plan(
    cfg: &EngineConfig,
    cost: RangeQueryCost,
    threads: usize,
    n: usize,
    transmitters: usize,
    edges: u64,
) -> ScatterPlan {
    if threads <= 1 || transmitters <= 1 || n == 0 {
        return ScatterPlan::Serial;
    }
    let shard = match cfg.scatter_strategy {
        ScatterStrategy::Auto => cost == RangeQueryCost::FullRowReplay,
        ScatterStrategy::ReceiverRange => false,
        ScatterStrategy::TransmitterShard => true,
    };
    let min_edges = if shard {
        cfg.par_min_edges_implicit
    } else {
        cfg.par_min_edges
    };
    if edges < min_edges {
        return ScatterPlan::Serial;
    }
    if shard {
        // More workers than transmitters would leave some idle with
        // empty shards; more than n would leave merge ranges empty.
        // (≥ 2 transmitters implies n ≥ 2, so this stays ≥ 2.)
        ScatterPlan::TransmitterShard {
            threads: threads.min(n).min(transmitters),
        }
    } else {
        ScatterPlan::ReceiverRange {
            threads: threads.min(n),
        }
    }
}

/// A non-silent outcome of the fused decide phase, tagged onto the node
/// it belongs to. Workers emit `(node, event)` pairs in awake-list order;
/// silent nodes emit nothing, which is what keeps the serial commit sweep
/// sparse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecideEvent {
    /// The node transmits this round (commit + metrics + duty charge).
    Transmit,
    /// The node goes to sleep (commit + awake-bookkeeping).
    Sleep,
    /// The node's battery ran out in an earlier round: fail-stop, off the
    /// poll list for good, no protocol commit.
    Dead,
}

/// Evaluate the fused decide phase over one span of the awake list,
/// generating the nodes' decide blocks in **wide ChaCha batches**
/// ([`rand_chacha::chacha8_blocks`]) instead of one scalar block per draw.
///
/// Bit-compatibility is by construction: each lane of a wide refill is
/// exactly the block the node's positioned stream would have generated
/// lazily, the streams are built from the run's cached per-node keys
/// (`node_keys[v] == DecideStreams::node_key(v)` for every live entry),
/// and events are pushed in span order — including `Dead` events, which
/// flush the queued lanes first so ordering matches a strictly
/// sequential evaluation. The only observable difference from the
/// scalar path is speed: a node whose `decide_pure` draws nothing gets
/// a block generated that the scalar path would have skipped, but an
/// unread block influences nothing.
///
/// Shared verbatim by the serial path and every parallel worker (a
/// chunk boundary can at worst split a batch, never change a draw), so
/// thread-count independence is inherited, not re-proven.
fn decide_span<P, E>(
    span: &[NodeId],
    is_awake: &[bool],
    node_keys: &[[u32; 8]],
    round: u64,
    protocol: &P,
    hook: &E,
    out: &mut Vec<(NodeId, DecideEvent)>,
) where
    P: FusedDecide,
    E: EnergyHook,
{
    const MAX: usize = rand_chacha::MAX_WIDE_LANES;
    fn flush<P: FusedDecide>(
        nodes: &[NodeId],
        keys: &[[u32; 8]],
        counters: &[u64],
        blocks: &mut [[u32; 16]],
        round: u64,
        protocol: &P,
        out: &mut Vec<(NodeId, DecideEvent)>,
    ) {
        let k = nodes.len();
        // All lanes of a span share one block index (the counter array
        // is a span-wide constant).
        let block = counters[0];
        rand_chacha::chacha8_blocks(&keys[..k], &counters[..k], &mut blocks[..k]);
        for (l, &v) in nodes.iter().enumerate() {
            // The lane's positioned stream, from the batch-computed
            // block: no scalar ChaCha work, and draws past the block
            // boundary continue the keystream exactly like a lazily
            // refilled stream would.
            let mut rng = ChaCha8Rng::from_generated_block(keys[l], block, blocks[l]);
            match protocol.decide_pure(v, round, &mut rng) {
                Action::Silent => {}
                Action::Transmit => out.push((v, DecideEvent::Transmit)),
                Action::Sleep => out.push((v, DecideEvent::Sleep)),
            }
        }
    }

    let lanes = rand_chacha::wide_lanes().min(MAX);
    let block = DecideStreams::decide_block(round);
    let mut nodes = [0 as NodeId; MAX];
    let mut keys = [[0u32; 8]; MAX];
    // Every lane of a round reads the same block index of its own
    // keystream, so the counter array is a span-wide constant.
    let counters = [block; MAX];
    let mut blocks = [[0u32; 16]; MAX];
    let mut k = 0usize;
    for &v in span {
        if !is_awake[v as usize] {
            continue; // stale entry
        }
        if E::ACTIVE && hook.is_dead(v, round) {
            if k > 0 {
                #[rustfmt::skip]
                flush(&nodes[..k], &keys, &counters, &mut blocks, round, protocol, out);
                k = 0;
            }
            out.push((v, DecideEvent::Dead));
            continue;
        }
        nodes[k] = v;
        keys[k] = node_keys[v as usize];
        k += 1;
        if k == lanes {
            #[rustfmt::skip]
            flush(&nodes[..k], &keys, &counters, &mut blocks, round, protocol, out);
            k = 0;
        }
    }
    if k > 0 {
        #[rustfmt::skip]
        flush(&nodes[..k], &keys, &counters, &mut blocks, round, protocol, out);
    }
}

/// Reusable simulation engine for one graph.
///
/// Generic over the [`Topology`] backend, with the CSR [`DiGraph`] as
/// the default type parameter so existing `Engine` mentions and
/// `Engine::new(&graph, …)` call sites compile unchanged. The engine
/// only ever asks the topology "who hears `u`?" ([`Topology::for_each_out`]
/// and its receiver-range variant), so monomorphization over `DiGraph`
/// produces exactly the pre-generic flat-CSR scatter, while the
/// implicit backends (`ImplicitGrid`, `ImplicitGnp`) answer the same
/// queries without ever materialising O(m) edge storage.
///
/// **Allocation-free steady state:** every piece of per-run scratch —
/// the stamped `hits` records, the awake bookkeeping (`is_awake`,
/// `in_list`, `awake_list`), the per-round `transmitters`/`touched`/
/// decide-event buffers, and the per-worker lists of the parallel
/// phases — lives in pools owned by the engine and sized to the graph
/// once, so a trial loop over seeds on a fixed graph performs **zero
/// heap allocations after round 1 of a run** beyond the returned
/// metrics vector (pinned by the counting-allocator test in
/// `crates/sim/tests/alloc_free.rs`; parallel rounds additionally pay
/// the OS-level scoped-thread spawns, which is why that test runs the
/// serial path). At `n = 2²⁰` this saves a multi-MB alloc + zero per
/// trial that the pre-pool engine paid on every run.
pub struct Engine<'g, T: Topology = DiGraph> {
    graph: &'g T,
    cfg: EngineConfig,
    /// Per-node scratch, stamped by round number to avoid clearing.
    hits: Vec<HitRecord>,
    /// Round in which each node last transmitted (`0` = never), for the
    /// half-duplex check; only touched per transmitter/receiver, so it
    /// stays out of the per-edge record.
    sent: Vec<u32>,
    /// Nodes touched by at least one transmission this round.
    touched: Vec<NodeId>,
    /// Per-worker touched lists for the parallel scatter (worker `w`
    /// collects only receivers from its own id range, kept sorted), so
    /// rounds allocate nothing after the first parallel round.
    par_touched: Vec<Vec<NodeId>>,
    /// `(receiver, transmitter)` hit buckets of the transmitter-sharded
    /// scatter, indexed `[emit worker][receiver range]` and pooled like
    /// every other scratch: the emit phase fills `shard_hits[w][r]` with
    /// worker `w`'s hits landing in receiver range `r`, the merge phase
    /// drains column `r` in worker order (= serial transmitter order).
    shard_hits: Vec<Vec<Vec<(NodeId, NodeId)>>>,
    /// Authoritative awake flags (pooled across runs).
    is_awake: Vec<bool>,
    /// Membership flags for `awake_list` — `in_list[v] && !is_awake[v]`
    /// marks a *stale* entry the fused engine carries until the eager
    /// compaction threshold trips (see `run_fused_core`).
    in_list: Vec<bool>,
    /// The poll list; capacity `n` reserved up front so delivery-phase
    /// wakes never reallocate mid-run.
    awake_list: Vec<NodeId>,
    /// This round's transmitters, in poll order.
    transmitters: Vec<NodeId>,
    /// Serial-path decide events of the fused engine.
    events: Vec<(NodeId, DecideEvent)>,
    /// Per-worker decide events of the fused engine's parallel phase.
    par_events: Vec<Vec<(NodeId, DecideEvent)>>,
    /// Per-node ChaCha key words for the fused engine's v2 streams,
    /// filled lazily at node-wake time each run (32 B/node; sized on
    /// the first fused run so v1-only engines never pay for it). Read
    /// concurrently by the decide workers; written only in the serial
    /// init/delivery phases.
    node_keys: Vec<[u32; 8]>,
}

impl<'g, T: Topology> Engine<'g, T> {
    /// Create an engine for `graph` (any [`Topology`] backend).
    pub fn new(graph: &'g T, cfg: EngineConfig) -> Self {
        let n = graph.n();
        Engine {
            graph,
            cfg,
            hits: vec![HIT_NEVER; n],
            sent: vec![0; n],
            touched: Vec::with_capacity(n),
            par_touched: Vec::new(),
            shard_hits: Vec::new(),
            is_awake: vec![false; n],
            in_list: vec![false; n],
            awake_list: Vec::with_capacity(n),
            transmitters: Vec::with_capacity(n),
            events: Vec::with_capacity(n),
            par_events: Vec::new(),
            node_keys: Vec::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Run `protocol` to completion (or the round cap) with `rng`,
    /// using [`EngineConfig::threads`] scatter workers (1 by default).
    pub fn run<P: Protocol>(&mut self, protocol: &mut P, rng: &mut ChaCha8Rng) -> RunResult {
        let g = self.graph;
        self.run_with(|_| g, protocol, rng)
    }

    /// [`Engine::run`] with an explicit intra-run thread count. The
    /// argument **overrides** [`EngineConfig::threads`] for this run
    /// only — prefer one mechanism per call site: `with_threads` on the
    /// config when the count is part of the experiment setup (it flows
    /// through every wrapper that takes an `EngineConfig`), this entry
    /// point when a caller varies the count per run (the determinism
    /// tests, the bench's `2t`/`8t` entries).
    ///
    /// # Determinism contract
    ///
    /// The round loop stays serial where randomness lives (the per-node
    /// `decide` draws and the ascending-receiver delivery sweep); only
    /// the scatter/collision-count phase fans out, in one of two
    /// partitions picked per backend by [`scatter_plan`]:
    ///
    /// * **Receiver id range** (CSR): each worker streams the full
    ///   transmitter list over the rows but writes [`HitRecord`]s only
    ///   for its disjoint node range — no merge step, no atomics.
    /// * **Transmitter shard** (implicit backends, whose range queries
    ///   replay whole rows): each worker generates its own shard's rows
    ///   exactly once, and a deterministic receiver-keyed merge drains
    ///   the buckets in shard order — which *is* the serial transmitter
    ///   order — so every receiver resolves to the serial outcome.
    ///
    /// Either way the delivery order (ascending receiver id) is
    /// unchanged, so serial and N-thread runs are bit-identical *by
    /// construction* — the same guarantee the sweep layer gives for
    /// trial-level fan-out.
    pub fn run_par<P: Protocol>(
        &mut self,
        protocol: &mut P,
        rng: &mut ChaCha8Rng,
        threads: usize,
    ) -> RunResult {
        assert!(threads >= 1, "threads must be at least 1");
        let g = self.graph;
        self.run_core(|_| g, protocol, rng, &mut NoEnergy, &mut NullSink, threads)
            .0
    }

    /// [`Engine::run`] with a structured [`TraceSink`] receiving the
    /// round-by-round event stream — see the `radio-trace` crate for the
    /// event model, the recording sinks, and replay verification.
    ///
    /// The sink is a monomorphized hook exactly like the energy overlay:
    /// with [`NullSink`] every emission site compiles out, so the
    /// untraced entry points keep their existing codegen, and a
    /// recording sink costs one buffered push per event on the serial
    /// side of the round. Sinks observe the run without influencing it —
    /// they never touch the protocol RNG — so a traced run is
    /// bit-identical to its untraced twin (property-tested in
    /// `tests/trace_zero_interference.rs`).
    pub fn run_traced<P: Protocol, S: TraceSink>(
        &mut self,
        protocol: &mut P,
        rng: &mut ChaCha8Rng,
        sink: &mut S,
    ) -> RunResult {
        let threads = self.cfg.threads.max(1);
        let g = self.graph;
        self.run_core(|_| g, protocol, rng, &mut NoEnergy, sink, threads)
            .0
    }

    /// [`Engine::run_energy`] with a structured [`TraceSink`] — the
    /// energy overlay and the trace hook compose; see
    /// [`Engine::run_traced`].
    pub fn run_energy_traced<P: Protocol, S: TraceSink>(
        &mut self,
        protocol: &mut P,
        rng: &mut ChaCha8Rng,
        session: &mut EnergySession,
        sink: &mut S,
    ) -> EnergyRunResult {
        let threads = self.cfg.threads.max(1);
        let g = self.graph;
        self.run_energy_core(|_| g, protocol, rng, session, sink, threads)
    }

    /// [`Engine::run_par`] with an energy overlay — the parallel scatter
    /// never touches the session (duty charges happen on the serial
    /// side), so overlay runs keep the same bit-identity guarantee.
    pub fn run_par_energy<P: Protocol>(
        &mut self,
        protocol: &mut P,
        rng: &mut ChaCha8Rng,
        session: &mut EnergySession,
        threads: usize,
    ) -> EnergyRunResult {
        assert!(threads >= 1, "threads must be at least 1");
        let g = self.graph;
        self.run_energy_core(|_| g, protocol, rng, session, &mut NullSink, threads)
    }

    /// [`Engine::run`] with an energy overlay: duties are charged to
    /// `session` per round, battery-depleted nodes turn fail-stop dead,
    /// and the result carries an [`EnergyMetrics`] report. The session is
    /// reset at run start, so one session serves many runs.
    pub fn run_energy<P: Protocol>(
        &mut self,
        protocol: &mut P,
        rng: &mut ChaCha8Rng,
        session: &mut EnergySession,
    ) -> EnergyRunResult {
        let g = self.graph;
        self.run_with_energy(|_| g, protocol, rng, session)
    }

    /// Core loop with a per-round topology: `pick(round)` returns the
    /// graph in force during that round. All graphs must have the same
    /// node count as the engine's sizing graph. This is the mobility
    /// entry point — see [`run_dynamic`].
    pub fn run_with<F, P>(&mut self, pick: F, protocol: &mut P, rng: &mut ChaCha8Rng) -> RunResult
    where
        F: Fn(u64) -> &'g T,
        P: Protocol,
    {
        let threads = self.cfg.threads.max(1);
        self.run_core(pick, protocol, rng, &mut NoEnergy, &mut NullSink, threads)
            .0
    }

    /// [`Engine::run_with`] with an energy overlay — see
    /// [`Engine::run_energy`].
    pub fn run_with_energy<F, P>(
        &mut self,
        pick: F,
        protocol: &mut P,
        rng: &mut ChaCha8Rng,
        session: &mut EnergySession,
    ) -> EnergyRunResult
    where
        F: Fn(u64) -> &'g T,
        P: Protocol,
    {
        let threads = self.cfg.threads.max(1);
        self.run_energy_core(pick, protocol, rng, session, &mut NullSink, threads)
    }

    /// Shared energy-overlay wrapper: session lifecycle around the core
    /// loop at an explicit thread count.
    fn run_energy_core<F, P, S>(
        &mut self,
        pick: F,
        protocol: &mut P,
        rng: &mut ChaCha8Rng,
        session: &mut EnergySession,
        sink: &mut S,
        threads: usize,
    ) -> EnergyRunResult
    where
        F: Fn(u64) -> &'g T,
        P: Protocol,
        S: TraceSink,
    {
        assert_eq!(
            session.n(),
            self.graph.n(),
            "energy session node count must match the graph"
        );
        session.begin();
        let (run, stopped_on_depletion) =
            self.run_core(pick, protocol, rng, session, sink, threads);
        let energy = session.finalize(run.metrics.per_node());
        EnergyRunResult {
            run,
            energy,
            stopped_on_depletion,
        }
    }

    /// The round loop, generic over the energy hook and the trace sink.
    /// Returns the run and whether the hook requested an early stop.
    /// `threads` is the scatter worker count; every value yields
    /// bit-identical results (see [`Engine::run_par`]).
    ///
    /// Every `sink.emit` site is gated on `S::ACTIVE`, so the
    /// [`NullSink`] instantiation compiles to exactly the pre-trace
    /// loop. Emissions happen only on the serial side — the round
    /// preamble, the poll sweep, and the ascending-receiver delivery
    /// sweep — so the event order is deterministic and identical for
    /// every thread count.
    fn run_core<F, P, E, S>(
        &mut self,
        pick: F,
        protocol: &mut P,
        rng: &mut ChaCha8Rng,
        hook: &mut E,
        sink: &mut S,
        threads: usize,
    ) -> (RunResult, bool)
    where
        F: Fn(u64) -> &'g T,
        P: Protocol,
        E: EnergyHook,
        S: TraceSink,
    {
        let n = self.graph.n();
        assert!(
            self.cfg.max_rounds < u64::from(u32::MAX >> 1),
            "max_rounds must fit the 31-bit round stamps (< {})",
            u32::MAX >> 1
        );
        let mut metrics = Metrics::new(n);
        // Round numbers restart at 1 every run, so stale stamps from a
        // previous run on this engine would alias; reset them.
        self.hits.fill(HIT_NEVER);
        self.sent.fill(0);
        let mut trace = self.cfg.record_trace.then(Trace::default);

        // Awake bookkeeping, taken from the engine's pools (restored at
        // the end of the run) so repeated runs allocate nothing here.
        // The v1 poll sweep compacts sleepers inline, so `awake_list`
        // never carries stale entries; `is_awake` stays authoritative.
        //
        // Reset by clear + resize, not `fill`: a run that panicked out
        // (protocol assert, poisoned hook) leaves the pools taken —
        // zero-length — and the next run on this engine must re-size
        // them instead of indexing out of bounds. On the normal warm
        // path this writes exactly what `fill(false)` would, with no
        // allocation.
        let mut is_awake = std::mem::take(&mut self.is_awake);
        let mut awake_list = std::mem::take(&mut self.awake_list);
        let mut transmitters = std::mem::take(&mut self.transmitters);
        is_awake.clear();
        is_awake.resize(n, false);
        awake_list.clear();
        transmitters.clear();
        let mut awake_count = 0usize;
        for v in protocol.initially_awake() {
            if !is_awake[v as usize] {
                is_awake[v as usize] = true;
                awake_count += 1;
                awake_list.push(v);
            }
        }

        let mut rounds = 0u64;
        let mut completed = protocol.is_complete();
        let mut halted = false;

        // Stop on completion, on the round cap, or when every node is
        // asleep — with no possible transmitter left, no reception can
        // ever wake anyone, so the run has quiesced for good. A
        // charge-to-cap energy session keeps the clock (and idle/sleep
        // charging) running to the cap anyway: protocol state is frozen,
        // but receivers that never powered down keep paying.
        while !completed
            && !halted
            && rounds < self.cfg.max_rounds
            && (awake_count > 0 || (E::ACTIVE && hook.charge_to_cap()))
        {
            rounds += 1;
            let round = rounds;
            let rstamp = round as u32; // fits: max_rounds < 2³¹
                                       // `stamp` values for this round: clean reception vs collision.
            let hit_once = rstamp << 1;
            let hit_many = hit_once | 1;
            let graph = pick(round);
            debug_assert_eq!(graph.n(), n, "topology changed node count mid-run");
            if S::ACTIVE {
                sink.emit(TraceEvent::RoundStart { round });
            }

            // --- poll phase -------------------------------------------------
            transmitters.clear();
            let mut w = 0usize;
            for r in 0..awake_list.len() {
                let v = awake_list[r];
                if !is_awake[v as usize] {
                    continue; // stale entry
                }
                if E::ACTIVE && hook.is_dead(v, round) {
                    // Battery ran out in an earlier round: fail-stop, off
                    // the poll list for good (a dead node can't be woken).
                    is_awake[v as usize] = false;
                    awake_count -= 1;
                    if S::ACTIVE {
                        sink.emit(TraceEvent::Depleted { node: v });
                    }
                    continue;
                }
                match protocol.decide(v, round, rng) {
                    Action::Silent => {
                        awake_list[w] = v;
                        w += 1;
                    }
                    Action::Transmit => {
                        transmitters.push(v);
                        self.sent[v as usize] = rstamp;
                        awake_list[w] = v;
                        w += 1;
                        if S::ACTIVE {
                            sink.emit(TraceEvent::Transmit { node: v });
                        }
                    }
                    Action::Sleep => {
                        is_awake[v as usize] = false;
                        awake_count -= 1;
                        if S::ACTIVE {
                            sink.emit(TraceEvent::Sleep { node: v });
                        }
                    }
                }
            }
            awake_list.truncate(w);

            // --- transmit phase ---------------------------------------------
            // Metrics and duty charges are serial side effects; keep them
            // out of the (possibly parallel) scatter so both paths see
            // the identical per-transmitter order.
            for &u in &transmitters {
                metrics.record_transmission(u);
                if E::ACTIVE {
                    hook.charge(u, Duty::Transmit, round);
                }
            }
            let touched_sorted =
                self.scatter_round(graph, &transmitters, hit_once, hit_many, threads);

            // --- delivery phase ----------------------------------------------
            // Payloads are materialised once per transmitter, not per
            // delivery. For plain broadcast Msg = () this is free.
            //
            // Delivery order must be ascending receiver id (the contract
            // shared with `reference`/`baseline`). Two equivalent ways to
            // get it: sort the touched list, or scan every node's stamp in
            // id order. The scan reads `16n` bytes sequentially, which
            // beats sorting once a decent fraction of the graph was
            // touched (dense rounds are exactly when the sort is at its
            // most expensive), so pick per round.
            let mut deliveries = 0u64;
            let mut first_receptions = 0u64;
            if !transmitters.is_empty() {
                let dense = self.touched.len() >= n / 8;
                let mut deliver_to = |v: NodeId,
                                      protocol: &mut P,
                                      rng: &mut ChaCha8Rng,
                                      hook: &mut E,
                                      sink: &mut S| {
                    let vi = v as usize;
                    if S::ACTIVE && self.hits[vi].stamp == hit_many {
                        sink.emit(TraceEvent::Collision { node: v });
                    }
                    let delivered = deliver_one(
                        &self.hits,
                        &self.sent,
                        self.cfg.half_duplex,
                        hit_once,
                        rstamp,
                        v,
                        round,
                        protocol,
                        hook,
                        rng,
                        &mut deliveries,
                        &mut first_receptions,
                    );
                    let woke = delivered && !is_awake[vi];
                    if S::ACTIVE && delivered {
                        sink.emit(TraceEvent::Deliver {
                            node: v,
                            from: self.hits[vi].source,
                            woke,
                        });
                    }
                    if woke {
                        is_awake[vi] = true;
                        awake_count += 1;
                        awake_list.push(v);
                    }
                };
                if dense {
                    for v in 0..n as NodeId {
                        if self.hits[v as usize].stamp | 1 == hit_many {
                            deliver_to(v, protocol, rng, hook, sink);
                        }
                    }
                } else {
                    // The serial scatter fills `touched` in
                    // transmitter-scan order; sort for the ascending
                    // receiver order (the parallel merge is pre-sorted).
                    if !touched_sorted {
                        self.touched.sort_unstable();
                    }
                    for i in 0..self.touched.len() {
                        deliver_to(self.touched[i], protocol, rng, hook, sink);
                    }
                }
            }

            // End-of-round energy: nodes not charged above pay idle
            // (receiver on) or sleep (protocol declared the radio off) —
            // and a network-lifetime session may request a stop here.
            if E::ACTIVE && hook.end_round(round, protocol) {
                halted = true;
            }

            completed = protocol.is_complete();

            if S::ACTIVE {
                sink.emit(TraceEvent::RoundEnd {
                    transmitters: transmitters.len() as u64,
                    deliveries,
                    awake: awake_count as u64,
                });
            }

            if let Some(t) = trace.as_mut() {
                t.rounds.push(RoundRecord {
                    round,
                    transmitters: transmitters.len() as u64,
                    deliveries,
                    newly_informed: first_receptions,
                    active: protocol.active_count() as u64,
                    informed: protocol.informed_count() as u64,
                });
            }
        }

        // Return the pooled scratch for the next run.
        self.is_awake = is_awake;
        self.awake_list = awake_list;
        self.transmitters = transmitters;

        metrics.set_rounds(rounds);
        let hit_round_cap = !completed && rounds >= self.cfg.max_rounds;
        if hit_round_cap && self.cfg.warn_on_round_cap {
            eprintln!(
                "radio-sim: run stopped at the max_rounds cap ({}) without completing \
                 ({} of {} nodes informed) — the protocol may never terminate; \
                 pick an explicit budget with EngineConfig::with_max_rounds or \
                 silence this with warn_on_cap(false)",
                self.cfg.max_rounds,
                protocol.informed_count(),
                n
            );
        }
        (
            RunResult {
                rounds,
                completed,
                hit_round_cap,
                metrics,
                trace,
            },
            halted,
        )
    }

    /// The transmit-phase scatter shared by the v1 and fused cores:
    /// clears and refills `touched` (and this round's stamped `hits`
    /// records) from `transmitters`, fanning out when the round's edge
    /// volume pays for the scoped-thread spawns — partitioned by
    /// receiver range or by transmitter shard per [`scatter_plan`].
    /// Returns whether `touched` ended up in ascending receiver order
    /// (both parallel paths produce that for free; the serial path
    /// leaves transmitter-scan order).
    ///
    /// Scatter through [`Topology`] queries: for the CSR backend
    /// `for_each_out` monomorphizes to streaming one contiguous
    /// neighbors array (the pre-generic code), and each target update
    /// touches exactly one `HitRecord` line. Duplicate-freedom of the
    /// backend's rows is load-bearing here: a neighbor reported twice
    /// would flip a clean first hit into a phantom collision. All paths
    /// compute the same `hits`/`touched` state, so the plan heuristic
    /// cannot influence results (and therefore neither can the thread
    /// count).
    fn scatter_round(
        &mut self,
        graph: &T,
        transmitters: &[NodeId],
        hit_once: u32,
        hit_many: u32,
        threads: usize,
    ) -> bool {
        let n = self.hits.len();
        self.touched.clear();
        let plan = if threads > 1 && transmitters.len() > 1 {
            // Edge-volume heuristic on `degree_hint` — exact for CSR,
            // an upper-bound estimate for implicit backends. Purely a
            // perf threshold: it picks a path, never changes what the
            // path computes.
            let edges: u64 = transmitters.iter().map(|&u| graph.degree_hint(u)).sum();
            scatter_plan(
                &self.cfg,
                graph.range_query_cost(),
                threads,
                n,
                transmitters.len(),
                edges,
            )
        } else {
            ScatterPlan::Serial
        };
        let t = match plan {
            ScatterPlan::Serial => {
                let hits = &mut self.hits;
                let touched = &mut self.touched;
                for &u in transmitters {
                    graph.for_each_out(u, |v| {
                        let h = &mut hits[v as usize];
                        if h.stamp | 1 != hit_many {
                            // First hit this round: remember the transmitter.
                            *h = HitRecord {
                                stamp: hit_once,
                                source: u,
                            };
                            touched.push(v);
                        } else {
                            // Second or later hit: mark collided.
                            h.stamp = hit_many;
                        }
                    });
                }
                return false;
            }
            ScatterPlan::TransmitterShard { threads } => {
                self.scatter_transmitter_shard(graph, transmitters, hit_once, hit_many, threads);
                return true;
            }
            ScatterPlan::ReceiverRange { threads } => threads,
        };
        // Receiver-range partition reformulated as a neighbor-*query*
        // partition: worker `w` owns node ids `[w·n/t, (w+1)·n/t)` and
        // is the only writer of that `hits` range. Every worker walks
        // the full transmitter list in the same (serial) order, asking
        // the topology only for neighbors inside its range — CSR
        // narrows the sorted row with two binary searches; implicit
        // backends regenerate the row and filter (O(t·deg) total, the
        // price of not storing rows — [`scatter_plan`] steers those to
        // the transmitter shard instead). For any fixed receiver the
        // sequence of first-hit/collision updates is exactly the serial
        // one, because rows are duplicate-free and per-row order is
        // fixed per backend.
        if self.par_touched.len() < t {
            self.par_touched.resize_with(t, Vec::new);
        }
        let par_touched = &mut self.par_touched[..t];
        let tx: &[NodeId] = transmitters;
        let mut rest: &mut [HitRecord] = &mut self.hits;
        let mut lo = 0usize;
        // One range's worth of work; runs on t − 1 spawned threads plus
        // the calling thread (which takes the last range instead of
        // idling at the join — one fewer spawn per round).
        let scatter_range =
            |lo: usize, hi: usize, chunk: &mut [HitRecord], touched_w: &mut Vec<NodeId>| {
                for &u in tx {
                    graph.for_each_out_range(u, lo as NodeId, hi as NodeId, |v| {
                        let h = &mut chunk[v as usize - lo];
                        if h.stamp | 1 != hit_many {
                            *h = HitRecord {
                                stamp: hit_once,
                                source: u,
                            };
                            touched_w.push(v);
                        } else {
                            h.stamp = hit_many;
                        }
                    });
                }
                // Pushes interleave across transmitters; sort within the
                // range (each worker sorts its own slice, in parallel).
                touched_w.sort_unstable();
            };
        std::thread::scope(|scope| {
            for (w, touched_w) in par_touched.iter_mut().enumerate() {
                let hi = (w + 1) * n / t;
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(hi - lo);
                rest = tail;
                touched_w.clear();
                // Reserve the range's worst case once, so steady-state
                // rounds never grow this list (no-op when already sized).
                touched_w.reserve(hi - lo);
                if w + 1 == t {
                    scatter_range(lo, hi, chunk, touched_w);
                } else {
                    let scatter_range = &scatter_range;
                    scope.spawn(move || scatter_range(lo, hi, chunk, touched_w));
                }
                lo = hi;
            }
        });
        // Ranges ascend with the worker index and each list is sorted,
        // so plain concatenation is the globally ascending receiver
        // order.
        for w in &self.par_touched[..t] {
            self.touched.extend_from_slice(w);
        }
        true
    }

    /// The transmitter-sharded scatter: generate each row **exactly
    /// once**, then merge hits deterministically.
    ///
    /// **Emit** — the transmitter list is cut into `t` contiguous
    /// shards; worker `w` walks each owned row once via `for_each_out`
    /// (O(total edges) across all workers — no per-range row replay,
    /// which is what makes implicit backends scale) and pushes
    /// `(receiver, transmitter)` records into its own bucket for the
    /// receiver's merge range, `r = ⌊v·t/n⌋`.
    ///
    /// **Merge** — worker `r` exclusively owns the `hits` slice
    /// `[⌈r·n/t⌉, ⌈(r+1)·n/t⌉)` — exactly the receivers whose bucket
    /// index is `r` — and drains buckets `shard_hits[0][r], …,
    /// shard_hits[t−1][r]` in that order. Shards tile the serial
    /// transmitter order and a duplicate-free row visits a receiver at
    /// most once, so for any fixed receiver the merged record sequence
    /// *is* the serial hit sequence: the first record is the serial
    /// first hit (the earliest transmitter in poll order), any later
    /// record marks the same collision the serial loop would. Results
    /// are bit-identical to serial by construction, independent of
    /// thread count and of where shard boundaries fall — even mid-
    /// collision, with two hitters of one receiver in different shards.
    ///
    /// Each merge worker sorts its own touched range; ranges ascend
    /// with `r`, so concatenation yields the globally ascending
    /// receiver order (same `touched_sorted` contract as the
    /// receiver-range path). Costs one extra thread-scope barrier per
    /// round relative to receiver-range — the price of not replaying
    /// rows per range.
    fn scatter_transmitter_shard(
        &mut self,
        graph: &T,
        transmitters: &[NodeId],
        hit_once: u32,
        hit_many: u32,
        t: usize,
    ) {
        let n = self.hits.len();
        debug_assert!(t >= 2 && t <= n && t <= transmitters.len());
        if self.shard_hits.len() < t {
            self.shard_hits.resize_with(t, Vec::new);
        }
        for row in &mut self.shard_hits[..t] {
            if row.len() < t {
                row.resize_with(t, Vec::new);
            }
            for bucket in &mut row[..t] {
                bucket.clear();
            }
        }
        if self.par_touched.len() < t {
            self.par_touched.resize_with(t, Vec::new);
        }
        let (nn, tt) = (n as u64, t as u64);
        // Emit phase: t − 1 spawned workers plus the calling thread on
        // the last shard; each worker mutates only its own bucket row.
        std::thread::scope(|scope| {
            let mut lo = 0usize;
            for (w, buckets) in self.shard_hits[..t].iter_mut().enumerate() {
                let hi = (w + 1) * transmitters.len() / t;
                let shard = &transmitters[lo..hi];
                let emit = move |buckets: &mut [Vec<(NodeId, NodeId)>]| {
                    for &u in shard {
                        graph.for_each_out(u, |v| {
                            let r = (u64::from(v) * tt / nn) as usize;
                            buckets[r].push((v, u));
                        });
                    }
                };
                if w + 1 == t {
                    emit(buckets);
                } else {
                    scope.spawn(move || emit(&mut buckets[..]));
                }
                lo = hi;
            }
        });
        // Merge phase: buckets are read-only now; the hits ranges and
        // touched lists are disjoint per worker.
        let shard_hits = &self.shard_hits;
        let mut rest: &mut [HitRecord] = &mut self.hits;
        let mut lo = 0usize;
        std::thread::scope(|scope| {
            for (r, touched_w) in self.par_touched[..t].iter_mut().enumerate() {
                let hi = (((r as u64 + 1) * nn + tt - 1) / tt) as usize;
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(hi - lo);
                rest = tail;
                touched_w.clear();
                touched_w.reserve(hi - lo);
                let merge = move |chunk: &mut [HitRecord], touched_w: &mut Vec<NodeId>| {
                    for row in &shard_hits[..t] {
                        for &(v, u) in &row[r] {
                            let h = &mut chunk[v as usize - lo];
                            if h.stamp | 1 != hit_many {
                                // Serial-order first hit for v.
                                *h = HitRecord {
                                    stamp: hit_once,
                                    source: u,
                                };
                                touched_w.push(v);
                            } else {
                                h.stamp = hit_many;
                            }
                        }
                    }
                    touched_w.sort_unstable();
                };
                if r + 1 == t {
                    merge(chunk, touched_w);
                } else {
                    scope.spawn(move || merge(chunk, touched_w));
                }
                lo = hi;
            }
        });
        debug_assert_eq!(lo, n, "merge ranges must tile the hits array");
        for w in &self.par_touched[..t] {
            self.touched.extend_from_slice(w);
        }
    }

    /// Run `protocol` to completion (or the round cap) under the **v2
    /// determinism contract** — counter-based per-node decide streams
    /// derived from `run_seed` ([`DecideStreams`]) instead of one shared
    /// serial RNG — with the decide, scatter, and delivery phases fused
    /// into the engine's worker partitioning.
    /// Uses [`EngineConfig::threads`] workers (1 by default); see
    /// [`Engine::run_fused_par`] for the determinism contract.
    pub fn run_fused<P: FusedDecide>(&mut self, protocol: &mut P, run_seed: u64) -> RunResult {
        let threads = self.cfg.threads.max(1);
        self.run_fused_par(protocol, run_seed, threads)
    }

    /// [`Engine::run_fused`] with an explicit worker count (overrides
    /// [`EngineConfig::threads`] for this run only).
    ///
    /// # Determinism contract (v2)
    ///
    /// Every coin flip of the run comes from a stream that is a pure
    /// function of `(run_seed, node, round)` — see [`DecideStreams`] for
    /// the exact layout — so the decide phase can be evaluated by any
    /// worker in any order: the engine chunks the awake list across
    /// `threads` workers, each evaluating [`FusedDecide::decide_pure`]
    /// against shared protocol state with the node's own positioned
    /// stream, then replays the non-silent decisions serially in poll
    /// order ([`FusedDecide::commit_decide`]). The scatter keeps PR 4's
    /// receiver-range partition, and the delivery sweep stays serial in
    /// ascending receiver order. Results are therefore **bit-identical
    /// for every thread count, by construction** — same guarantee as
    /// [`Engine::run_par`], now covering the decide phase that v1 had to
    /// keep serial.
    ///
    /// Note that a fused run and a v1 run of the same `(protocol, seed)`
    /// produce *different* (statistically equivalent) trajectories: the
    /// stream layouts differ. `tests/v2_equivalence.rs` cross-validates
    /// the two contracts against the frozen v1 reference engine.
    pub fn run_fused_par<P: FusedDecide>(
        &mut self,
        protocol: &mut P,
        run_seed: u64,
        threads: usize,
    ) -> RunResult {
        assert!(threads >= 1, "threads must be at least 1");
        let g = self.graph;
        self.run_fused_core(
            |_| g,
            protocol,
            DecideStreams::new(run_seed),
            &mut NoEnergy,
            &mut NullSink,
            threads,
        )
        .0
    }

    /// [`Engine::run_fused`] with a structured [`TraceSink`] — see
    /// [`Engine::run_traced`]. The fused engine's decide phase may fan
    /// out over workers, but every emission happens on the serial side
    /// (the commit sweep and the delivery sweep), so the event stream is
    /// bit-identical for every thread count — which is exactly what
    /// makes `record once, replay at any thread count` a meaningful
    /// verification step.
    pub fn run_fused_traced<P: FusedDecide, S: TraceSink>(
        &mut self,
        protocol: &mut P,
        run_seed: u64,
        sink: &mut S,
    ) -> RunResult {
        let threads = self.cfg.threads.max(1);
        let g = self.graph;
        self.run_fused_core(
            |_| g,
            protocol,
            DecideStreams::new(run_seed),
            &mut NoEnergy,
            sink,
            threads,
        )
        .0
    }

    /// [`Engine::run_fused_energy`] with a structured [`TraceSink`] —
    /// see [`Engine::run_fused_traced`].
    pub fn run_fused_energy_traced<P: FusedDecide, S: TraceSink>(
        &mut self,
        protocol: &mut P,
        run_seed: u64,
        session: &mut EnergySession,
        sink: &mut S,
    ) -> EnergyRunResult {
        let threads = self.cfg.threads.max(1);
        assert_eq!(
            session.n(),
            self.graph.n(),
            "energy session node count must match the graph"
        );
        session.begin();
        let g = self.graph;
        let (run, stopped_on_depletion) = self.run_fused_core(
            |_| g,
            protocol,
            DecideStreams::new(run_seed),
            session,
            sink,
            threads,
        );
        let energy = session.finalize(run.metrics.per_node());
        EnergyRunResult {
            run,
            energy,
            stopped_on_depletion,
        }
    }

    /// [`Engine::run_fused`] with an energy overlay. Duty charges happen
    /// on the serial side of the round (commit + delivery), and the
    /// session's own model stream is independent of the per-node decide
    /// streams, so overlay runs keep the same bit-identity guarantee —
    /// and, with no battery attached, are bit-identical to the same
    /// fused run without the overlay.
    pub fn run_fused_energy<P: FusedDecide>(
        &mut self,
        protocol: &mut P,
        run_seed: u64,
        session: &mut EnergySession,
    ) -> EnergyRunResult {
        let threads = self.cfg.threads.max(1);
        self.run_fused_par_energy(protocol, run_seed, session, threads)
    }

    /// [`Engine::run_fused_energy`] with an explicit worker count.
    pub fn run_fused_par_energy<P: FusedDecide>(
        &mut self,
        protocol: &mut P,
        run_seed: u64,
        session: &mut EnergySession,
        threads: usize,
    ) -> EnergyRunResult {
        assert!(threads >= 1, "threads must be at least 1");
        assert_eq!(
            session.n(),
            self.graph.n(),
            "energy session node count must match the graph"
        );
        session.begin();
        let g = self.graph;
        let (run, stopped_on_depletion) = self.run_fused_core(
            |_| g,
            protocol,
            DecideStreams::new(run_seed),
            session,
            &mut NullSink,
            threads,
        );
        let energy = session.finalize(run.metrics.per_node());
        EnergyRunResult {
            run,
            energy,
            stopped_on_depletion,
        }
    }

    /// The fused v2 round loop (see [`Engine::run_fused_par`] for the
    /// contract). Differences from `run_core`:
    ///
    /// * **decide** — evaluated by `threads` workers over contiguous
    ///   awake-list chunks via [`FusedDecide::decide_pure`] and the
    ///   node's own positioned stream; workers emit only non-silent
    ///   `(node, event)` pairs, which concatenate (worker order = list
    ///   order) into the serial commit sweep. The serial half of the
    ///   phase is `O(transmitters + sleepers)`, not `O(awake)`.
    /// * **awake list** — sleepers are *not* compacted inline (the
    ///   commit sweep never walks the full list); they stay as stale
    ///   entries skipped by the workers, and one eager `retain` pass
    ///   compacts the list when more than half of it has gone stale
    ///   (mass passivation — Algorithm 1's Phase 2, retirement windows).
    /// * **delivery** — serial, ascending receiver order, with
    ///   `on_receive` drawing from the receiver's v2 receive lane.
    fn run_fused_core<F, P, E, S>(
        &mut self,
        pick: F,
        protocol: &mut P,
        streams: DecideStreams,
        hook: &mut E,
        sink: &mut S,
        threads: usize,
    ) -> (RunResult, bool)
    where
        F: Fn(u64) -> &'g T,
        P: FusedDecide,
        E: EnergyHook + Sync,
        S: TraceSink,
    {
        let n = self.graph.n();
        assert!(
            self.cfg.max_rounds < u64::from(u32::MAX >> 1),
            "max_rounds must fit the 31-bit round stamps (< {})",
            u32::MAX >> 1
        );
        let mut metrics = Metrics::new(n);
        self.hits.fill(HIT_NEVER);
        self.sent.fill(0);
        let mut trace = self.cfg.record_trace.then(Trace::default);

        // Pooled awake bookkeeping (restored at the end of the run).
        // Unlike the v1 core, `awake_list` here may carry *stale*
        // entries — `in_list[v] && !is_awake[v]` — between the sparse
        // commit that put a node to sleep and the compaction (or
        // re-wake) that resolves it; `stale` counts them so the
        // compaction threshold and the `len == awake + stale` invariant
        // are O(1) to track.
        // Clear + resize rather than `fill`, for the same
        // panic-resilience reason as `run_core`: a panicked run leaves
        // the pools taken, and the next run must re-size them.
        let mut is_awake = std::mem::take(&mut self.is_awake);
        let mut in_list = std::mem::take(&mut self.in_list);
        let mut awake_list = std::mem::take(&mut self.awake_list);
        let mut transmitters = std::mem::take(&mut self.transmitters);
        let mut events = std::mem::take(&mut self.events);
        let mut node_keys = std::mem::take(&mut self.node_keys);
        is_awake.clear();
        is_awake.resize(n, false);
        in_list.clear();
        in_list.resize(n, false);
        awake_list.clear();
        transmitters.clear();
        events.clear();
        // The key cache needs sizing, not clearing: every entry is
        // (re)derived for this run's seed at the node's wake — before
        // any decide reads it — so stale words from a previous run are
        // never observable.
        if node_keys.len() != n {
            node_keys.clear();
            node_keys.resize(n, [0u32; 8]);
        }
        let mut awake_count = 0usize;
        let mut stale = 0usize;
        for v in protocol.initially_awake() {
            if !is_awake[v as usize] {
                is_awake[v as usize] = true;
                in_list[v as usize] = true;
                awake_count += 1;
                node_keys[v as usize] = streams.node_key(v);
                awake_list.push(v);
            }
        }

        let mut rounds = 0u64;
        let mut completed = protocol.is_complete();
        let mut halted = false;

        while !completed
            && !halted
            && rounds < self.cfg.max_rounds
            && (awake_count > 0 || (E::ACTIVE && hook.charge_to_cap()))
        {
            rounds += 1;
            let round = rounds;
            let rstamp = round as u32; // fits: max_rounds < 2³¹
            let hit_once = rstamp << 1;
            let hit_many = hit_once | 1;
            let graph = pick(round);
            debug_assert_eq!(graph.n(), n, "topology changed node count mid-run");
            if S::ACTIVE {
                sink.emit(TraceEvent::RoundStart { round });
            }

            // --- decide phase -----------------------------------------------
            protocol.begin_round(round);
            events.clear();
            let len = awake_list.len();
            let t_decide = if threads > 1 && len >= self.cfg.par_min_awake.max(2) {
                threads.min(len)
            } else {
                1
            };
            if t_decide > 1 {
                // Index-chunk partition: worker `w` evaluates the
                // decisions of one contiguous slice of the awake list.
                // Chunk boundaries cannot influence anything — each
                // decision depends only on (run_seed, node, round) and
                // the round-start protocol state — and concatenating the
                // per-worker event lists in worker order reproduces list
                // order exactly.
                let t = t_decide;
                if self.par_events.len() < t {
                    self.par_events.resize_with(t, Vec::new);
                }
                let par_events = &mut self.par_events[..t];
                let awake: &[bool] = &is_awake;
                let keys: &[[u32; 8]] = &node_keys;
                let hook_now: &E = hook;
                let proto: &P = protocol;
                let mut rest: &[NodeId] = &awake_list;
                let mut lo = 0usize;
                std::thread::scope(|scope| {
                    for (w, ev_w) in par_events.iter_mut().enumerate() {
                        let hi = (w + 1) * len / t;
                        let (chunk, tail) = rest.split_at(hi - lo);
                        rest = tail;
                        ev_w.clear();
                        // Worst case: every node in the chunk decides
                        // non-silently (no-op once warmed up).
                        ev_w.reserve(chunk.len());
                        let work = move |ev_w: &mut Vec<(NodeId, DecideEvent)>| {
                            decide_span(chunk, awake, keys, round, proto, hook_now, ev_w);
                        };
                        if w + 1 == t {
                            work(ev_w);
                        } else {
                            scope.spawn(move || work(ev_w));
                        }
                        lo = hi;
                    }
                });
                for w in &self.par_events[..t] {
                    events.extend_from_slice(w);
                }
            } else {
                decide_span(
                    &awake_list,
                    &is_awake,
                    &node_keys,
                    round,
                    protocol,
                    hook,
                    &mut events,
                );
            }

            // --- serial commit (poll order) ---------------------------------
            transmitters.clear();
            for &(v, ev) in &events {
                let vi = v as usize;
                match ev {
                    DecideEvent::Transmit => {
                        protocol.commit_decide(v, round, Action::Transmit);
                        transmitters.push(v);
                        self.sent[vi] = rstamp;
                        metrics.record_transmission(v);
                        if E::ACTIVE {
                            hook.charge(v, Duty::Transmit, round);
                        }
                        if S::ACTIVE {
                            sink.emit(TraceEvent::Transmit { node: v });
                        }
                    }
                    DecideEvent::Sleep => {
                        protocol.commit_decide(v, round, Action::Sleep);
                        is_awake[vi] = false;
                        awake_count -= 1;
                        stale += 1;
                        if S::ACTIVE {
                            sink.emit(TraceEvent::Sleep { node: v });
                        }
                    }
                    DecideEvent::Dead => {
                        // Battery ran out in an earlier round: fail-stop,
                        // no protocol commit (a dead node can't be woken).
                        is_awake[vi] = false;
                        awake_count -= 1;
                        stale += 1;
                        if S::ACTIVE {
                            sink.emit(TraceEvent::Depleted { node: v });
                        }
                    }
                }
            }

            // Eager stale compaction: the sparse commit above never
            // walks the full list, so sleepers would otherwise be
            // carried (and skipped by the decide workers) until a
            // re-wake. Once more than half the list disagrees with
            // `is_awake` — mass passivation, e.g. Algorithm 1's
            // all-passive Phase 2 or a retirement window expiring — one
            // O(len) retain pass beats every future round's stale skips.
            if stale * 2 > awake_list.len() {
                awake_list.retain(|&v| {
                    let keep = is_awake[v as usize];
                    if !keep {
                        in_list[v as usize] = false;
                    }
                    keep
                });
                stale = 0;
                debug_assert_eq!(
                    is_awake.iter().filter(|&&b| b).count(),
                    awake_count,
                    "is_awake flags diverged from awake_count"
                );
            }
            debug_assert_eq!(
                awake_list.len(),
                awake_count + stale,
                "awake-count invariant: list = awake + stale"
            );

            // --- transmit phase ---------------------------------------------
            let touched_sorted =
                self.scatter_round(graph, &transmitters, hit_once, hit_many, threads);

            // --- delivery phase ---------------------------------------------
            // Serial, ascending receiver order (the contract shared with
            // v1/reference/baseline); `on_receive` draws from the
            // receiver's v2 receive lane — constructing the positioned
            // stream is lazy state setup, costing nothing unless the
            // protocol actually draws.
            let mut deliveries = 0u64;
            let mut first_receptions = 0u64;
            if !transmitters.is_empty() {
                let dense = self.touched.len() >= n / 8;
                let mut deliver_to = |v: NodeId, protocol: &mut P, hook: &mut E, sink: &mut S| {
                    // Same semantics as the v1 core, via the shared
                    // `deliver_one`; only the rng source (the
                    // receiver's v2 receive lane) and the stale-aware
                    // wake bookkeeping differ.
                    let vi = v as usize;
                    if S::ACTIVE && self.hits[vi].stamp == hit_many {
                        sink.emit(TraceEvent::Collision { node: v });
                    }
                    let delivered = deliver_one(
                        &self.hits,
                        &self.sent,
                        self.cfg.half_duplex,
                        hit_once,
                        rstamp,
                        v,
                        round,
                        protocol,
                        hook,
                        &mut streams.receive_rng(v, round),
                        &mut deliveries,
                        &mut first_receptions,
                    );
                    let woke = delivered && !is_awake[vi];
                    if S::ACTIVE && delivered {
                        sink.emit(TraceEvent::Deliver {
                            node: v,
                            from: self.hits[vi].source,
                            woke,
                        });
                    }
                    if woke {
                        is_awake[vi] = true;
                        awake_count += 1;
                        if in_list[vi] {
                            // Re-woken stale entry: already listed (and
                            // its key is already cached for this run).
                            stale -= 1;
                        } else {
                            in_list[vi] = true;
                            node_keys[vi] = streams.node_key(v);
                            awake_list.push(v);
                        }
                    }
                };
                if dense {
                    for v in 0..n as NodeId {
                        if self.hits[v as usize].stamp | 1 == hit_many {
                            deliver_to(v, protocol, hook, sink);
                        }
                    }
                } else {
                    if !touched_sorted {
                        self.touched.sort_unstable();
                    }
                    for i in 0..self.touched.len() {
                        deliver_to(self.touched[i], protocol, hook, sink);
                    }
                }
            }

            if E::ACTIVE && hook.end_round(round, protocol) {
                halted = true;
            }

            completed = protocol.is_complete();

            if S::ACTIVE {
                sink.emit(TraceEvent::RoundEnd {
                    transmitters: transmitters.len() as u64,
                    deliveries,
                    awake: awake_count as u64,
                });
            }

            if let Some(t) = trace.as_mut() {
                t.rounds.push(RoundRecord {
                    round,
                    transmitters: transmitters.len() as u64,
                    deliveries,
                    newly_informed: first_receptions,
                    active: protocol.active_count() as u64,
                    informed: protocol.informed_count() as u64,
                });
            }
        }

        // Return the pooled scratch for the next run.
        self.is_awake = is_awake;
        self.in_list = in_list;
        self.awake_list = awake_list;
        self.transmitters = transmitters;
        self.events = events;
        self.node_keys = node_keys;

        metrics.set_rounds(rounds);
        let hit_round_cap = !completed && rounds >= self.cfg.max_rounds;
        if hit_round_cap && self.cfg.warn_on_round_cap {
            eprintln!(
                "radio-sim: fused run stopped at the max_rounds cap ({}) without completing \
                 ({} of {} nodes informed) — the protocol may never terminate; \
                 pick an explicit budget with EngineConfig::with_max_rounds or \
                 silence this with warn_on_cap(false)",
                self.cfg.max_rounds,
                protocol.informed_count(),
                n
            );
        }
        (
            RunResult {
                rounds,
                completed,
                hit_round_cap,
                metrics,
                trace,
            },
            halted,
        )
    }
}

/// The delivery step shared by the v1 and fused cores: deliver to `v`
/// iff it heard **exactly one** transmitter this round (`hits[v]`
/// carries a clean `hit_once` stamp), its own radio was not busy
/// transmitting under half-duplex, and its battery has not run out.
/// Updates the delivery/first-reception counters and returns whether a
/// delivery happened — the caller owns the wake bookkeeping, which is
/// the one part that differs between the two awake-list disciplines.
#[allow(clippy::too_many_arguments)]
fn deliver_one<P: Protocol, E: EnergyHook>(
    hits: &[HitRecord],
    sent: &[u32],
    half_duplex: bool,
    hit_once: u32,
    rstamp: u32,
    v: NodeId,
    round: u64,
    protocol: &mut P,
    hook: &mut E,
    rng: &mut ChaCha8Rng,
    deliveries: &mut u64,
    first_receptions: &mut u64,
) -> bool {
    let vi = v as usize;
    let h = hits[vi];
    if h.stamp != hit_once {
        return false; // collision at v (or stale record)
    }
    if half_duplex && sent[vi] == rstamp {
        return false; // v's own radio was busy transmitting
    }
    if E::ACTIVE && hook.is_dead(v, round) {
        return false; // a depleted radio hears nothing
    }
    let from = h.source;
    let msg = protocol.payload(from, round);
    let informed_before = protocol.informed_count();
    if E::ACTIVE {
        hook.charge(v, Duty::Receive, round);
    }
    protocol.on_receive(v, from, round, &msg, rng);
    *deliveries += 1;
    if protocol.informed_count() > informed_before {
        *first_receptions += 1;
    }
    true
}

/// One-shot convenience: build an engine, run once.
pub fn run_protocol<T: Topology, P: Protocol>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
) -> RunResult {
    Engine::new(graph, cfg).run(protocol, rng)
}

/// One-shot convenience for a parallel run: build an engine, run once
/// with `threads` scatter workers — see [`Engine::run_par`] for the
/// bit-identity contract.
pub fn run_protocol_par<T: Topology, P: Protocol>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
    threads: usize,
) -> RunResult {
    Engine::new(graph, cfg).run_par(protocol, rng, threads)
}

/// One-shot convenience for a parallel run under an energy overlay —
/// see [`Engine::run_par_energy`].
pub fn run_protocol_par_energy<T: Topology, P: Protocol>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
    session: &mut EnergySession,
    threads: usize,
) -> EnergyRunResult {
    Engine::new(graph, cfg).run_par_energy(protocol, rng, session, threads)
}

/// One-shot convenience for a **fused v2** run: build an engine, run
/// once under the counter-based per-node stream contract with
/// [`EngineConfig::threads`] workers — see [`Engine::run_fused_par`].
pub fn run_protocol_fused<T: Topology, P: FusedDecide>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    run_seed: u64,
) -> RunResult {
    Engine::new(graph, cfg).run_fused(protocol, run_seed)
}

/// One-shot convenience for a fused v2 run under an energy overlay —
/// see [`Engine::run_fused_energy`].
pub fn run_protocol_fused_energy<T: Topology, P: FusedDecide>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    run_seed: u64,
    session: &mut EnergySession,
) -> EnergyRunResult {
    Engine::new(graph, cfg).run_fused_energy(protocol, run_seed, session)
}

/// One-shot convenience with an energy overlay: build an engine, run
/// once against `session` — see [`Engine::run_energy`].
pub fn run_protocol_energy<T: Topology, P: Protocol>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
    session: &mut EnergySession,
) -> EnergyRunResult {
    Engine::new(graph, cfg).run_energy(protocol, rng, session)
}

/// One-shot convenience for a traced v1 run — see
/// [`Engine::run_traced`] for the sink contract.
pub fn run_protocol_traced<T: Topology, P: Protocol, S: TraceSink>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
    sink: &mut S,
) -> RunResult {
    Engine::new(graph, cfg).run_traced(protocol, rng, sink)
}

/// One-shot convenience for a traced v1 run under an energy overlay —
/// see [`Engine::run_energy_traced`].
pub fn run_protocol_energy_traced<T: Topology, P: Protocol, S: TraceSink>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
    session: &mut EnergySession,
    sink: &mut S,
) -> EnergyRunResult {
    Engine::new(graph, cfg).run_energy_traced(protocol, rng, session, sink)
}

/// One-shot convenience for a traced fused v2 run — see
/// [`Engine::run_fused_traced`].
pub fn run_protocol_fused_traced<T: Topology, P: FusedDecide, S: TraceSink>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    run_seed: u64,
    sink: &mut S,
) -> RunResult {
    Engine::new(graph, cfg).run_fused_traced(protocol, run_seed, sink)
}

/// One-shot convenience for a traced fused v2 run under an energy
/// overlay — see [`Engine::run_fused_energy_traced`].
pub fn run_protocol_fused_energy_traced<T: Topology, P: FusedDecide, S: TraceSink>(
    graph: &T,
    protocol: &mut P,
    cfg: EngineConfig,
    run_seed: u64,
    session: &mut EnergySession,
    sink: &mut S,
) -> EnergyRunResult {
    Engine::new(graph, cfg).run_fused_energy_traced(protocol, run_seed, session, sink)
}

/// Run on a *changing topology*: the network uses `graphs[k]` during
/// rounds `k·switch_every + 1 ..= (k+1)·switch_every` and stays on the
/// last graph afterwards. Models node mobility (the paper's §1: "due to
/// the mobility of the nodes, the network topology changes over time") —
/// pair it with
/// `radio_graph::generate::geometric`-style snapshot sequences.
///
/// # Panics
/// Panics if `graphs` is empty, `switch_every == 0`, or node counts
/// differ across snapshots.
pub fn run_dynamic<T: Topology, P: Protocol>(
    graphs: &[&T],
    switch_every: u64,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
) -> RunResult {
    let pick = dynamic_schedule(graphs, switch_every);
    Engine::new(graphs[0], cfg).run_with(pick, protocol, rng)
}

/// [`run_dynamic`] with an energy overlay — mobility plus batteries/duty
/// costs in one run. Same panics as [`run_dynamic`].
pub fn run_dynamic_energy<T: Topology, P: Protocol>(
    graphs: &[&T],
    switch_every: u64,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
    session: &mut EnergySession,
) -> EnergyRunResult {
    let pick = dynamic_schedule(graphs, switch_every);
    Engine::new(graphs[0], cfg).run_with_energy(pick, protocol, rng, session)
}

/// Validate a snapshot sequence and build the round → topology map
/// shared by [`run_dynamic`] and [`run_dynamic_energy`].
fn dynamic_schedule<'a, T: Topology>(
    graphs: &'a [&'a T],
    switch_every: u64,
) -> impl Fn(u64) -> &'a T {
    assert!(!graphs.is_empty(), "need at least one topology snapshot");
    assert!(switch_every > 0, "switch_every must be positive");
    let n = graphs[0].n();
    assert!(
        graphs.iter().all(|g| g.n() == n),
        "all topology snapshots must have the same node count"
    );
    move |round| {
        let idx = ((round - 1) / switch_every) as usize;
        graphs[idx.min(graphs.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generate::{path, star};
    use radio_graph::DiGraph;
    use radio_util::derive_rng;

    /// Test protocol: every informed node transmits unconditionally every
    /// round (naive flooding). On a path this works; on a star the leaves
    /// collide forever after round 1.
    struct Flood {
        informed: Vec<bool>,
        n_informed: usize,
    }

    impl Flood {
        fn new(n: usize, source: NodeId) -> Self {
            let mut informed = vec![false; n];
            informed[source as usize] = true;
            Flood {
                informed,
                n_informed: 1,
            }
        }
    }

    impl Protocol for Flood {
        type Msg = ();

        fn initially_awake(&self) -> Vec<NodeId> {
            self.informed
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i as NodeId))
                .collect()
        }

        fn decide(&mut self, _node: NodeId, _round: u64, _rng: &mut ChaCha8Rng) -> Action {
            Action::Transmit
        }

        fn payload(&self, _node: NodeId, _round: u64) -> Self::Msg {}

        fn on_receive(
            &mut self,
            node: NodeId,
            _from: NodeId,
            _round: u64,
            _msg: &Self::Msg,
            _rng: &mut ChaCha8Rng,
        ) {
            if !self.informed[node as usize] {
                self.informed[node as usize] = true;
                self.n_informed += 1;
            }
        }

        fn is_complete(&self) -> bool {
            self.n_informed == self.informed.len()
        }

        fn informed_count(&self) -> usize {
            self.n_informed
        }

        fn active_count(&self) -> usize {
            self.n_informed
        }
    }

    /// Like `Flood` but each node transmits exactly once, then sleeps.
    struct FloodOnce {
        inner: Flood,
        sent: Vec<bool>,
    }

    impl FloodOnce {
        fn new(n: usize, source: NodeId) -> Self {
            FloodOnce {
                inner: Flood::new(n, source),
                sent: vec![false; n],
            }
        }
    }

    impl Protocol for FloodOnce {
        type Msg = ();

        fn initially_awake(&self) -> Vec<NodeId> {
            self.inner.initially_awake()
        }

        fn decide(&mut self, node: NodeId, _round: u64, _rng: &mut ChaCha8Rng) -> Action {
            if self.sent[node as usize] {
                Action::Sleep
            } else {
                self.sent[node as usize] = true;
                Action::Transmit
            }
        }

        fn payload(&self, _node: NodeId, _round: u64) -> Self::Msg {}

        fn on_receive(
            &mut self,
            node: NodeId,
            from: NodeId,
            round: u64,
            msg: &Self::Msg,
            rng: &mut ChaCha8Rng,
        ) {
            self.inner.on_receive(node, from, round, msg, rng);
        }

        fn is_complete(&self) -> bool {
            self.inner.is_complete()
        }

        fn informed_count(&self) -> usize {
            self.inner.informed_count()
        }

        fn active_count(&self) -> usize {
            self.inner.active_count()
        }
    }

    #[test]
    fn flooding_crosses_a_path_in_diameter_rounds() {
        let g = path(10);
        let mut p = Flood::new(10, 0);
        let mut rng = derive_rng(1, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default(), &mut rng);
        assert!(res.completed);
        // One hop per round along the path; node 1's transmissions toward 0
        // never collide because in-degrees on the path are ≤ 2 and only the
        // frontier moves forward.
        assert_eq!(res.rounds, 9);
    }

    #[test]
    fn collision_blocks_star_leaves_from_informing_each_other_s_center() {
        // Star: centre 0 informs all leaves in round 1. From round 2 every
        // leaf transmits simultaneously; all their messages collide at the
        // centre (which is already informed anyway) — and, with more than
        // one leaf, no further node exists, so the run completes.
        let g = star(5);
        let mut p = Flood::new(5, 0);
        let mut rng = derive_rng(2, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default(), &mut rng);
        assert!(res.completed);
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn two_simultaneous_transmitters_collide() {
        // 0 → 2 and 1 → 2; both 0 and 1 start informed and always transmit:
        // node 2 can never receive.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let mut p = Flood::new(3, 0);
        p.informed[1] = true;
        p.n_informed = 2;
        let mut rng = derive_rng(3, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(50), &mut rng);
        assert!(!res.completed, "collision must prevent delivery forever");
        assert_eq!(res.rounds, 50);
        assert_eq!(p.n_informed, 2);
    }

    #[test]
    fn exactly_one_transmitter_delivers() {
        // Only node 0 is informed, so node 2 hears a single transmitter
        // and must receive in round 1 (node 1 has no in-edges and can
        // never be informed, so the run as a whole cannot complete).
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let mut p = Flood::new(3, 0);
        let mut rng = derive_rng(4, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(5), &mut rng);
        assert!(!res.completed);
        assert!(p.informed[2], "single transmitter must deliver");
        assert_eq!(p.n_informed, 2);
    }

    #[test]
    fn half_duplex_blocks_reception_while_transmitting() {
        // 0 ↔ 1. Both informed, both always transmit: under half-duplex
        // neither ever *receives*, but both being informed the run is
        // already complete; instead make node 1 uninformed and transmitting
        // impossible — simpler: check via metrics on a 2-cycle where both
        // transmit: deliveries must be zero in half-duplex and two per
        // round in full-duplex.
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);

        struct AlwaysSend;
        impl Protocol for AlwaysSend {
            type Msg = ();
            fn initially_awake(&self) -> Vec<NodeId> {
                vec![0, 1]
            }
            fn decide(&mut self, _n: NodeId, _r: u64, _rng: &mut ChaCha8Rng) -> Action {
                Action::Transmit
            }
            fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
            fn on_receive(
                &mut self,
                _n: NodeId,
                _f: NodeId,
                _r: u64,
                _m: &Self::Msg,
                _rng: &mut ChaCha8Rng,
            ) {
                panic!("half-duplex must suppress this delivery");
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn informed_count(&self) -> usize {
                2
            }
            fn active_count(&self) -> usize {
                2
            }
        }

        let mut p = AlwaysSend;
        let mut rng = derive_rng(5, b"eng", 0);
        let cfg = EngineConfig {
            max_rounds: 10,
            half_duplex: true,
            warn_on_round_cap: false,
            ..Default::default()
        };
        let res = run_protocol(&g, &mut p, cfg, &mut rng);
        assert_eq!(res.metrics.total_transmissions(), 20);
    }

    #[test]
    fn full_duplex_allows_reception_while_transmitting() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);

        struct CountRx {
            rx: u32,
        }
        impl Protocol for CountRx {
            type Msg = ();
            fn initially_awake(&self) -> Vec<NodeId> {
                vec![0, 1]
            }
            fn decide(&mut self, _n: NodeId, _r: u64, _rng: &mut ChaCha8Rng) -> Action {
                Action::Transmit
            }
            fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
            fn on_receive(
                &mut self,
                _n: NodeId,
                _f: NodeId,
                _r: u64,
                _m: &Self::Msg,
                _rng: &mut ChaCha8Rng,
            ) {
                self.rx += 1;
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn informed_count(&self) -> usize {
                2
            }
            fn active_count(&self) -> usize {
                2
            }
        }

        let mut p = CountRx { rx: 0 };
        let mut rng = derive_rng(6, b"eng", 0);
        let cfg = EngineConfig {
            max_rounds: 10,
            half_duplex: false,
            warn_on_round_cap: false,
            ..Default::default()
        };
        let _ = run_protocol(&g, &mut p, cfg, &mut rng);
        assert_eq!(
            p.rx, 20,
            "each node receives the other's message each round"
        );
    }

    #[test]
    fn sleep_removes_from_polling_and_caps_energy() {
        let g = path(6);
        let mut p = FloodOnce::new(6, 0);
        let mut rng = derive_rng(7, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default(), &mut rng);
        assert!(res.completed);
        assert_eq!(res.metrics.max_transmissions_per_node(), 1);
        assert_eq!(res.metrics.total_transmissions() as usize, 5); // node 5 never needs to send
    }

    #[test]
    fn trace_records_round_progression() {
        let g = path(5);
        let mut p = Flood::new(5, 0);
        let mut rng = derive_rng(8, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default().traced(), &mut rng);
        let t = res.trace.expect("trace requested");
        assert_eq!(t.rounds.len(), res.rounds as usize);
        // Informed counts are non-decreasing and end at n.
        let informed: Vec<u64> = t.rounds.iter().map(|r| r.informed).collect();
        assert!(informed.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*informed.last().expect("non-empty"), 5);
        // Exactly one new node per round on a path.
        assert!(t.rounds.iter().all(|r| r.newly_informed == 1));
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let g = radio_graph::generate::gnp_directed(300, 0.05, &mut derive_rng(9, b"g", 0));

        struct Coin {
            informed: Vec<bool>,
            n_informed: usize,
        }
        impl Protocol for Coin {
            type Msg = ();
            fn initially_awake(&self) -> Vec<NodeId> {
                vec![0]
            }
            fn decide(&mut self, _n: NodeId, _r: u64, rng: &mut ChaCha8Rng) -> Action {
                use rand::RngExt;
                if rng.random_bool(0.3) {
                    Action::Transmit
                } else {
                    Action::Silent
                }
            }
            fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
            fn on_receive(
                &mut self,
                n: NodeId,
                _f: NodeId,
                _r: u64,
                _m: &Self::Msg,
                _rng: &mut ChaCha8Rng,
            ) {
                if !self.informed[n as usize] {
                    self.informed[n as usize] = true;
                    self.n_informed += 1;
                }
            }
            fn is_complete(&self) -> bool {
                self.n_informed == self.informed.len()
            }
            fn informed_count(&self) -> usize {
                self.n_informed
            }
            fn active_count(&self) -> usize {
                self.n_informed
            }
        }

        let run = |seed: u64| {
            let mut p = Coin {
                informed: {
                    let mut v = vec![false; 300];
                    v[0] = true;
                    v
                },
                n_informed: 1,
            };
            let mut rng = derive_rng(seed, b"det", 0);
            let r = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(500), &mut rng);
            (r.rounds, r.completed, r.metrics.total_transmissions())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn engine_reuse_across_runs_is_clean() {
        let g = path(8);
        let mut eng = Engine::new(&g, EngineConfig::default());
        for seed in 0..5 {
            let mut p = Flood::new(8, 0);
            let mut rng = derive_rng(seed, b"reuse", 0);
            let res = eng.run(&mut p, &mut rng);
            assert!(res.completed);
            assert_eq!(
                res.rounds, 7,
                "seed {seed}: scratch state leaked across runs"
            );
        }
    }

    #[test]
    fn run_quiesces_when_every_node_sleeps() {
        // 0 → 2 and 1 → 2, both sources informed, each transmits exactly
        // once: their round-1 transmissions collide at node 2, round 2 puts
        // both to sleep, and the engine must stop right there instead of
        // spinning to the round cap.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let mut p = FloodOnce::new(3, 0);
        p.inner.informed[1] = true;
        p.inner.n_informed = 2;
        let mut rng = derive_rng(11, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(1000), &mut rng);
        assert!(!res.completed);
        assert_eq!(res.rounds, 2);
        assert_eq!(res.metrics.total_transmissions(), 2);
    }

    #[test]
    fn dynamic_topology_switches_mid_run() {
        // Two snapshots over 3 nodes: first 0 → 1 only, then 1 → 2 only.
        // Flooding needs the switch to reach node 2: in snapshot A node 1
        // gets informed; only after the topology changes can 1 reach 2.
        let a = DiGraph::from_edges(3, &[(0, 1)]);
        let b = DiGraph::from_edges(3, &[(1, 2)]);
        let mut p = Flood::new(3, 0);
        let mut rng = derive_rng(12, b"eng", 0);
        let res = super::run_dynamic(
            &[&a, &b],
            3,
            &mut p,
            EngineConfig::with_max_rounds(20),
            &mut rng,
        );
        assert!(res.completed);
        assert!(res.rounds > 3, "node 2 is reachable only after the switch");
        assert!(p.informed[2]);
    }

    #[test]
    fn dynamic_with_single_graph_matches_static_run() {
        let g = path(10);
        let run_static = {
            let mut p = Flood::new(10, 0);
            let mut rng = derive_rng(13, b"eng", 0);
            run_protocol(&g, &mut p, EngineConfig::default(), &mut rng).rounds
        };
        let run_dyn = {
            let mut p = Flood::new(10, 0);
            let mut rng = derive_rng(13, b"eng", 0);
            super::run_dynamic(&[&g], 5, &mut p, EngineConfig::default(), &mut rng).rounds
        };
        assert_eq!(run_static, run_dyn);
    }

    #[test]
    fn txonly_overlay_is_a_passthrough() {
        // Same seed with and without the overlay: identical run, and the
        // reported energy is exactly the transmission counts.
        let g = path(10);
        let plain = {
            let mut p = Flood::new(10, 0);
            let mut rng = derive_rng(20, b"eng", 0);
            run_protocol(&g, &mut p, EngineConfig::default(), &mut rng)
        };
        let mut p = Flood::new(10, 0);
        let mut rng = derive_rng(20, b"eng", 0);
        let mut session = radio_energy::EnergySession::new(10, radio_energy::TxOnly, 1);
        let res = run_protocol_energy(&g, &mut p, EngineConfig::default(), &mut rng, &mut session);
        assert_eq!(res.run.rounds, plain.rounds);
        assert_eq!(res.run.metrics, plain.metrics);
        assert!(!res.stopped_on_depletion);
        assert_eq!(
            res.energy.total_energy(),
            plain.metrics.total_transmissions() as f64
        );
        let per_node: Vec<f64> = plain.metrics.per_node().iter().map(|&c| c as f64).collect();
        assert_eq!(res.energy.spent, per_node);
    }

    #[test]
    fn linear_overlay_charges_listening_nodes_every_round() {
        // FloodOnce on a path: each node transmits once then engine-sleeps,
        // but its receiver stays on (radio_off defaults to false), so under
        // listen-ratio 1 every live node pays 1 unit every round: total
        // energy = n · rounds regardless of duty mix.
        let g = path(6);
        let mut p = FloodOnce::new(6, 0);
        let mut rng = derive_rng(21, b"eng", 0);
        let mut session = radio_energy::EnergySession::new(
            6,
            radio_energy::LinearRadio::with_listen_ratio(1.0),
            2,
        );
        let res = run_protocol_energy(&g, &mut p, EngineConfig::default(), &mut rng, &mut session);
        assert!(res.run.completed);
        let expected = 6.0 * res.run.rounds as f64;
        assert!(
            (res.energy.total_energy() - expected).abs() < 1e-9,
            "total {} != n·rounds {expected}",
            res.energy.total_energy()
        );
    }

    #[test]
    fn radio_off_hint_switches_idle_to_sleep_cost() {
        /// FloodOnce whose nodes declare the radio off once they have sent.
        struct DutyCycled {
            inner: FloodOnce,
        }
        impl Protocol for DutyCycled {
            type Msg = ();
            fn initially_awake(&self) -> Vec<NodeId> {
                self.inner.initially_awake()
            }
            fn decide(&mut self, n: NodeId, r: u64, rng: &mut ChaCha8Rng) -> Action {
                self.inner.decide(n, r, rng)
            }
            fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
            fn on_receive(
                &mut self,
                n: NodeId,
                f: NodeId,
                r: u64,
                m: &Self::Msg,
                rng: &mut ChaCha8Rng,
            ) {
                self.inner.on_receive(n, f, r, m, rng);
            }
            fn is_complete(&self) -> bool {
                self.inner.is_complete()
            }
            fn informed_count(&self) -> usize {
                self.inner.informed_count()
            }
            fn active_count(&self) -> usize {
                self.inner.active_count()
            }
            fn radio_off(&self, node: NodeId, _round: u64) -> bool {
                self.inner.sent[node as usize]
            }
        }

        let g = path(6);
        let model = radio_energy::LinearRadio::new(1.0, 1.0, 1.0, 0.0);
        let run_total = |duty_cycled: bool| {
            let mut rng = derive_rng(22, b"eng", 0);
            let mut session = radio_energy::EnergySession::new(6, model, 3);
            if duty_cycled {
                let mut p = DutyCycled {
                    inner: FloodOnce::new(6, 0),
                };
                run_protocol_energy(&g, &mut p, EngineConfig::default(), &mut rng, &mut session)
                    .energy
                    .total_energy()
            } else {
                let mut p = FloodOnce::new(6, 0);
                run_protocol_energy(&g, &mut p, EngineConfig::default(), &mut rng, &mut session)
                    .energy
                    .total_energy()
            }
        };
        let always_on = run_total(false);
        let cycled = run_total(true);
        assert!(
            cycled < always_on,
            "sleep cost 0 must beat idle listening: {cycled} vs {always_on}"
        );
    }

    #[test]
    fn battery_depletion_is_fail_stop_mid_path() {
        // Unit drain, node 2's battery lasts exactly 1 round: it dies at
        // the end of round 1, before the frontier (round 2: node 1 sends)
        // reaches it — the message can never pass node 2.
        let g = path(5);
        let mut caps = vec![f64::INFINITY; 5];
        caps[2] = 1.0;
        let mut p = Flood::new(5, 0);
        let mut rng = derive_rng(23, b"eng", 0);
        let mut session =
            radio_energy::EnergySession::new(5, radio_energy::LinearRadio::uniform_drain(1.0), 4)
                .with_battery(radio_energy::Battery::per_node(caps));
        let res = run_protocol_energy(
            &g,
            &mut p,
            EngineConfig::with_max_rounds(50),
            &mut rng,
            &mut session,
        );
        assert!(!res.run.completed);
        assert!(p.informed[1]);
        assert!(!p.informed[2], "depleted node must not learn");
        assert!(!p.informed[3], "message cannot pass the dead relay");
        assert_eq!(res.energy.first_depletion_round, Some(1));
        assert_eq!(res.energy.depleted_nodes(), vec![2]);
        assert_eq!(res.energy.residual_charge(2), Some(0.0));
    }

    #[test]
    fn halt_on_depletion_stops_at_first_death() {
        let g = path(8);
        let mut p = Flood::new(8, 0);
        let mut rng = derive_rng(24, b"eng", 0);
        // Uniform capacity 3 under unit drain: every battery dies at the
        // end of round 3; the lifetime run must stop right there.
        let mut session =
            radio_energy::EnergySession::new(8, radio_energy::LinearRadio::uniform_drain(1.0), 5)
                .with_battery(radio_energy::Battery::uniform(8, 3.0))
                .with_halt_on_depletion(true);
        let res = run_protocol_energy(
            &g,
            &mut p,
            EngineConfig::with_max_rounds(100),
            &mut rng,
            &mut session,
        );
        assert!(res.stopped_on_depletion);
        assert_eq!(res.run.rounds, 3);
        assert_eq!(res.energy.first_depletion_round, Some(3));
        assert!(!res.run.hit_round_cap);
    }

    #[test]
    fn charge_to_cap_keeps_charging_after_quiescence() {
        // 0 → 2 and 1 → 2, both sources send exactly once (colliding at
        // node 2) and then engine-sleep: the run quiesces at round 2 with
        // node 2 forever uninformed — but every radio is still powered
        // (radio_off defaults to false). Default sessions stop charging
        // there; charge-to-cap sessions pay idle up to the round cap.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let cap = 10u64;
        let run_total = |charge_to_cap: bool| {
            let mut p = FloodOnce::new(3, 0);
            p.inner.informed[1] = true;
            p.inner.n_informed = 2;
            let mut rng = derive_rng(27, b"eng", 0);
            let mut session = radio_energy::EnergySession::new(
                3,
                radio_energy::LinearRadio::uniform_drain(1.0),
                8,
            )
            .with_charge_to_cap(charge_to_cap);
            let res = run_protocol_energy(
                &g,
                &mut p,
                EngineConfig::with_max_rounds(cap),
                &mut rng,
                &mut session,
            );
            (res.run.rounds, res.energy.total_energy())
        };
        let (rounds_default, energy_default) = run_total(false);
        assert_eq!(rounds_default, 2, "run quiesces before the cap");
        assert_eq!(energy_default, 3.0 * 2.0);
        let (rounds_cap, energy_cap) = run_total(true);
        assert_eq!(rounds_cap, cap, "charge-to-cap runs the full horizon");
        assert_eq!(energy_cap, 3.0 * cap as f64);
    }

    #[test]
    fn network_death_quiesces_the_run() {
        // Everyone's battery dies at the end of round 2; with no live
        // node left the engine must stop on its own, well before the cap.
        let g = path(4);
        let mut p = Flood::new(4, 0);
        let mut rng = derive_rng(25, b"eng", 0);
        let mut session =
            radio_energy::EnergySession::new(4, radio_energy::LinearRadio::uniform_drain(1.0), 6)
                .with_battery(radio_energy::Battery::uniform(4, 2.0));
        let res = run_protocol_energy(
            &g,
            &mut p,
            EngineConfig::with_max_rounds(1000),
            &mut rng,
            &mut session,
        );
        assert!(!res.run.completed);
        assert!(res.run.rounds <= 4, "dead network must quiesce");
        assert_eq!(res.energy.depleted_count(), 4);
    }

    #[test]
    fn energy_session_reuse_across_runs_is_deterministic() {
        let g = path(8);
        let mut eng = Engine::new(&g, EngineConfig::default());
        let mut session = radio_energy::EnergySession::new(
            8,
            radio_energy::FadingRadio::new(radio_energy::LinearRadio::with_listen_ratio(0.5)),
            7,
        );
        let mut totals = Vec::new();
        for _ in 0..3 {
            let mut p = Flood::new(8, 0);
            let mut rng = derive_rng(26, b"eng", 0);
            let res = eng.run_energy(&mut p, &mut rng, &mut session);
            assert!(res.run.completed);
            totals.push(res.energy.total_energy());
        }
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[1], totals[2]);
    }

    #[test]
    fn run_par_matches_serial_bit_for_bit() {
        // Coin-flip transmitters on a dense-ish Gnp: the RNG stream is
        // consumed in decide/delivery order, so any divergence in the
        // parallel scatter (ordering, collision marking, touched merge)
        // would cascade into different rounds/metrics/traces.
        let g = radio_graph::generate::gnp_directed(500, 0.08, &mut derive_rng(30, b"parg", 0));

        struct Coin {
            informed: Vec<bool>,
            n_informed: usize,
        }
        impl Protocol for Coin {
            type Msg = ();
            fn initially_awake(&self) -> Vec<NodeId> {
                vec![0]
            }
            fn decide(&mut self, n: NodeId, _r: u64, rng: &mut ChaCha8Rng) -> Action {
                use rand::RngExt;
                if self.informed[n as usize] && rng.random_bool(0.4) {
                    Action::Transmit
                } else {
                    Action::Silent
                }
            }
            fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
            fn on_receive(
                &mut self,
                n: NodeId,
                _f: NodeId,
                _r: u64,
                _m: &Self::Msg,
                _rng: &mut ChaCha8Rng,
            ) {
                if !self.informed[n as usize] {
                    self.informed[n as usize] = true;
                    self.n_informed += 1;
                }
            }
            fn is_complete(&self) -> bool {
                self.n_informed == self.informed.len()
            }
            fn informed_count(&self) -> usize {
                self.n_informed
            }
            fn active_count(&self) -> usize {
                self.n_informed
            }
        }

        let run_at = |threads: usize| {
            let mut p = Coin {
                informed: {
                    let mut v = vec![false; 500];
                    v[0] = true;
                    v
                },
                n_informed: 1,
            };
            let mut rng = derive_rng(31, b"par", 0);
            // Force the parallel path even on this small graph.
            let cfg = EngineConfig {
                par_min_edges: 0,
                ..EngineConfig::with_max_rounds(200).traced()
            };
            let res = run_protocol_par(&g, &mut p, cfg, &mut rng, threads);
            (
                res.rounds,
                res.completed,
                res.metrics,
                res.trace,
                p.informed,
            )
        };
        let serial = run_at(1);
        for threads in [2, 3, 8] {
            assert_eq!(serial, run_at(threads), "{threads} threads diverged");
        }
    }

    #[test]
    fn scatter_plan_picks_strategy_per_backend_and_threshold() {
        use RangeQueryCost::{FullRowReplay, Narrowed};
        let cfg = EngineConfig::default();
        // Auto + cheap range queries: receiver-range above par_min_edges.
        assert_eq!(
            scatter_plan(&cfg, Narrowed, 8, 10_000, 100, PAR_SCATTER_MIN_EDGES),
            ScatterPlan::ReceiverRange { threads: 8 }
        );
        assert_eq!(
            scatter_plan(&cfg, Narrowed, 8, 10_000, 100, PAR_SCATTER_MIN_EDGES - 1),
            ScatterPlan::Serial
        );
        // Auto + full-row-replay range queries: transmitter shard, gated
        // on the lower implicit threshold.
        assert_eq!(
            scatter_plan(&cfg, FullRowReplay, 8, 10_000, 100, PAR_SCATTER_MIN_EDGES_IMPLICIT),
            ScatterPlan::TransmitterShard { threads: 8 }
        );
        assert_eq!(
            scatter_plan(
                &cfg,
                FullRowReplay,
                8,
                10_000,
                100,
                PAR_SCATTER_MIN_EDGES_IMPLICIT - 1
            ),
            ScatterPlan::Serial
        );
        // The calibration point of the satellite fix: an edge volume
        // between the two thresholds fans out on implicit backends
        // (every edge carries generation work) but not on CSR.
        assert!(PAR_SCATTER_MIN_EDGES_IMPLICIT < PAR_SCATTER_MIN_EDGES);
        let mid = (PAR_SCATTER_MIN_EDGES_IMPLICIT + PAR_SCATTER_MIN_EDGES) / 2;
        assert_eq!(
            scatter_plan(&cfg, FullRowReplay, 8, 10_000, 100, mid),
            ScatterPlan::TransmitterShard { threads: 8 }
        );
        assert_eq!(scatter_plan(&cfg, Narrowed, 8, 10_000, 100, mid), ScatterPlan::Serial);
    }

    #[test]
    fn scatter_plan_honors_overrides_and_caps() {
        use RangeQueryCost::{FullRowReplay, Narrowed};
        let shard = EngineConfig::default().with_scatter_strategy(ScatterStrategy::TransmitterShard);
        let range = EngineConfig::default().with_scatter_strategy(ScatterStrategy::ReceiverRange);
        // Overrides beat the backend hint (both directions).
        assert_eq!(
            scatter_plan(&shard, Narrowed, 4, 1_000, 500, 1 << 20),
            ScatterPlan::TransmitterShard { threads: 4 }
        );
        assert_eq!(
            scatter_plan(&range, FullRowReplay, 4, 1_000, 500, 1 << 20),
            ScatterPlan::ReceiverRange { threads: 4 }
        );
        // Worker caps: shards never outnumber transmitters, ranges never
        // outnumber nodes.
        assert_eq!(
            scatter_plan(&shard, FullRowReplay, 16, 1_000, 3, 1 << 20),
            ScatterPlan::TransmitterShard { threads: 3 }
        );
        assert_eq!(
            scatter_plan(&range, Narrowed, 16, 5, 4, 1 << 20),
            ScatterPlan::ReceiverRange { threads: 5 }
        );
        // Degenerate rounds stay serial under every strategy.
        for cfg in [shard, range] {
            assert_eq!(
                scatter_plan(&cfg, FullRowReplay, 1, 1_000, 500, 1 << 20),
                ScatterPlan::Serial
            );
            assert_eq!(
                scatter_plan(&cfg, FullRowReplay, 8, 1_000, 1, 1 << 20),
                ScatterPlan::Serial
            );
        }
    }

    /// Coin-flip transmitters with a send budget, as a [`FusedDecide`]
    /// protocol: the pure half only reads, the commit half applies the
    /// budget decrement / sleep bookkeeping. `Protocol::decide` is
    /// derived from the two halves, so the same instance also runs on
    /// the v1 engine.
    struct FusedCoin {
        informed: Vec<bool>,
        n_informed: usize,
        sent: Vec<u32>,
        budget: u32,
        q: f64,
    }

    impl FusedCoin {
        fn new(n: usize, budget: u32, q: f64) -> Self {
            let mut informed = vec![false; n];
            informed[0] = true;
            FusedCoin {
                informed,
                n_informed: 1,
                sent: vec![0; n],
                budget,
                q,
            }
        }
    }

    impl Protocol for FusedCoin {
        type Msg = ();
        fn initially_awake(&self) -> Vec<NodeId> {
            vec![0]
        }
        fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
            self.decide_and_commit(node, round, rng)
        }
        fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
        fn on_receive(
            &mut self,
            node: NodeId,
            _f: NodeId,
            _r: u64,
            _m: &Self::Msg,
            _rng: &mut ChaCha8Rng,
        ) {
            if !self.informed[node as usize] {
                self.informed[node as usize] = true;
                self.n_informed += 1;
            }
        }
        fn is_complete(&self) -> bool {
            self.n_informed == self.informed.len()
        }
        fn informed_count(&self) -> usize {
            self.n_informed
        }
        fn active_count(&self) -> usize {
            self.n_informed
        }
    }

    impl FusedDecide for FusedCoin {
        fn decide_pure(&self, node: NodeId, _round: u64, rng: &mut ChaCha8Rng) -> Action {
            use rand::RngExt;
            if self.sent[node as usize] >= self.budget {
                return Action::Sleep;
            }
            if rng.random_bool(self.q) {
                Action::Transmit
            } else {
                Action::Silent
            }
        }
        fn commit_decide(&mut self, node: NodeId, _round: u64, action: Action) {
            if action == Action::Transmit {
                self.sent[node as usize] += 1;
            }
        }
    }

    #[test]
    fn run_fused_is_bit_identical_across_thread_counts() {
        let g = radio_graph::generate::gnp_directed(400, 0.07, &mut derive_rng(50, b"fuse-g", 0));
        let run_at = |threads: usize| {
            let cfg = EngineConfig {
                par_min_edges: 0,
                par_min_awake: 0, // force the parallel decide path
                ..EngineConfig::with_max_rounds(200).traced()
            };
            let mut p = FusedCoin::new(400, 3, 0.35);
            let res = run_protocol_fused(&g, &mut p, cfg.with_threads(threads), 0xF00D);
            (
                res.rounds,
                res.completed,
                res.metrics,
                res.trace,
                p.informed,
            )
        };
        let serial = run_at(1);
        assert!(serial.1, "fused coin flood should complete on this Gnp");
        for threads in [2, 3, 8] {
            assert_eq!(serial, run_at(threads), "{threads} threads diverged");
        }
    }

    #[test]
    fn fused_decisions_come_from_per_node_streams() {
        // Same run, two different run seeds: different trajectories —
        // and the run is reproducible per seed.
        let g = radio_graph::generate::gnp_directed(200, 0.1, &mut derive_rng(51, b"fuse-g", 1));
        let run_with_seed = |seed: u64| {
            let mut p = FusedCoin::new(200, 2, 0.4);
            let res = run_protocol_fused(&g, &mut p, EngineConfig::with_max_rounds(300), seed);
            (res.rounds, res.metrics)
        };
        assert_eq!(run_with_seed(7), run_with_seed(7));
        assert_ne!(run_with_seed(7), run_with_seed(8));
    }

    #[test]
    fn fused_mass_sleep_compacts_and_quiesces() {
        // Budget 1 with q = 1: every informed node transmits exactly once
        // and then sleeps — mass passivation that trips the eager
        // compaction threshold (more than half the list stale at once).
        // The awake-count invariant debug_asserts in the round loop do
        // the real checking; the run must also quiesce on its own.
        let g = path(12);
        for threads in [1usize, 4] {
            let cfg = EngineConfig {
                par_min_edges: 0,
                par_min_awake: 0,
                ..EngineConfig::with_max_rounds(1000)
            };
            let mut p = FusedCoin::new(12, 1, 1.0);
            let res = run_protocol_fused(&g, &mut p, cfg.with_threads(threads), 3);
            assert!(res.completed, "{threads} threads");
            assert_eq!(res.metrics.max_transmissions_per_node(), 1);
            assert!(
                res.rounds <= 13,
                "one-shot flood crosses the path a hop per round"
            );
        }
    }

    #[test]
    fn fused_engine_reuse_across_runs_is_clean() {
        let g = radio_graph::generate::gnp_directed(150, 0.1, &mut derive_rng(52, b"fuse-g", 2));
        let mut eng = Engine::new(&g, EngineConfig::with_max_rounds(300));
        let fingerprint = |eng: &mut Engine| {
            let mut p = FusedCoin::new(150, 2, 0.4);
            let res = eng.run_fused(&mut p, 0xAB);
            (res.rounds, res.completed, res.metrics)
        };
        let first = fingerprint(&mut eng);
        for _ in 0..3 {
            assert_eq!(first, fingerprint(&mut eng), "scratch state leaked");
        }
        // And a v1 run in between must not poison the fused pools.
        let mut p = Flood::new(150, 0);
        let _ = eng.run(&mut p, &mut derive_rng(1, b"mix", 0));
        assert_eq!(first, fingerprint(&mut eng), "v1 run poisoned the pools");
    }

    #[test]
    fn engine_stays_usable_after_a_panicked_run() {
        // A protocol panic unwinds out of the run with the pooled
        // scratch still taken; the next run must re-size it instead of
        // indexing empty vectors (regression test for the pool hoist).
        struct PanicAt2;
        impl Protocol for PanicAt2 {
            type Msg = ();
            fn initially_awake(&self) -> Vec<NodeId> {
                vec![0]
            }
            fn decide(&mut self, _n: NodeId, round: u64, _rng: &mut ChaCha8Rng) -> Action {
                assert!(round < 2, "scripted mid-run failure");
                Action::Transmit
            }
            fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
            fn on_receive(
                &mut self,
                _n: NodeId,
                _f: NodeId,
                _r: u64,
                _m: &Self::Msg,
                _rng: &mut ChaCha8Rng,
            ) {
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn informed_count(&self) -> usize {
                1
            }
            fn active_count(&self) -> usize {
                1
            }
        }

        let g = path(8);
        let mut eng = Engine::new(&g, EngineConfig::with_max_rounds(100));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut p = PanicAt2;
            let mut rng = derive_rng(1, b"boom", 0);
            eng.run(&mut p, &mut rng)
        }));
        assert!(panicked.is_err(), "the scripted panic must fire");

        // Both cores must recover on the same engine.
        let mut p = Flood::new(8, 0);
        let res = eng.run(&mut p, &mut derive_rng(2, b"boom", 0));
        assert!(res.completed);
        assert_eq!(res.rounds, 7);
        let mut p2 = FusedCoin::new(8, 1, 1.0);
        let res2 = eng.run_fused(&mut p2, 3);
        assert!(res2.completed);
    }

    #[test]
    fn fused_energy_overlay_is_bit_identical_and_batteries_bite() {
        let g = radio_graph::generate::gnp_directed(120, 0.12, &mut derive_rng(53, b"fuse-g", 3));
        // No battery: overlay run is bit-identical to the plain fused run.
        let plain = {
            let mut p = FusedCoin::new(120, 2, 0.4);
            let res = run_protocol_fused(&g, &mut p, EngineConfig::with_max_rounds(200), 11);
            (res.rounds, res.metrics.clone())
        };
        let mut p = FusedCoin::new(120, 2, 0.4);
        let mut session = radio_energy::EnergySession::new(
            120,
            radio_energy::LinearRadio::with_listen_ratio(0.5),
            4,
        );
        let res = run_protocol_fused_energy(
            &g,
            &mut p,
            EngineConfig::with_max_rounds(200),
            11,
            &mut session,
        );
        assert_eq!((res.run.rounds, res.run.metrics.clone()), plain);
        // With a tiny battery every node dies and the run quiesces early.
        let mut p2 = FusedCoin::new(120, 2, 0.4);
        let mut dying =
            radio_energy::EnergySession::new(120, radio_energy::LinearRadio::uniform_drain(1.0), 5)
                .with_battery(radio_energy::Battery::uniform(120, 2.0));
        let res2 = run_protocol_fused_energy(
            &g,
            &mut p2,
            EngineConfig::with_max_rounds(200),
            11,
            &mut dying,
        );
        assert!(!res2.run.completed);
        assert_eq!(res2.energy.depleted_count(), 120);
        assert!(res2.run.rounds <= 5, "dead network must quiesce");
    }

    #[test]
    fn already_complete_protocol_runs_zero_rounds() {
        let g = path(1);
        let mut p = Flood::new(1, 0);
        let mut rng = derive_rng(10, b"eng", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::default(), &mut rng);
        assert!(res.completed);
        assert_eq!(res.rounds, 0);
        assert_eq!(res.metrics.total_transmissions(), 0);
    }
}
