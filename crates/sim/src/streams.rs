//! **v2 determinism contract**: counter-based per-node decide streams.
//!
//! The v1 contract threads one shared [`ChaCha8Rng`] through the run and
//! consumes it serially, in poll order — correct, but it chains every
//! node's coin flip onto every other node's, so the decide phase can
//! never leave the single thread that owns the stream. The algorithms
//! this workspace simulates don't need that coupling: the paper's model
//! (and the "without network knowledge" line of work it sits in, e.g.
//! Czumaj–Davies 2018) has every node flip *its own* coins. v2 makes the
//! implementation match the model:
//!
//! | quantity | derivation |
//! |----------|------------|
//! | node key `k_v` | `split_seed(run_seed, b"v2-node", v)` → ChaCha8 key |
//! | decide draw, round `r` | key `k_v`, block counter `2r` (words `32r..32r+16`) |
//! | receive draw, round `r` | key `k_v`, block counter `2r + 1` |
//!
//! Any worker can therefore evaluate any node's decision for any round
//! independently — position a stream at `(node, round)` and draw — which
//! is what lets the fused engine
//! ([`Engine::run_fused`](crate::Engine::run_fused)) fan the decide
//! phase out across threads with **bit-identical results for every
//! thread count, by construction**: the draws are a pure function of
//! `(run_seed, node, round)`, not of evaluation order.
//!
//! Each `(node, round, lane)` owns one 64-byte ChaCha block = 16 words
//! (a `random_bool` costs 2). A protocol drawing more than 16 words in a
//! single `decide` simply runs into the following block; determinism and
//! thread-independence are unaffected (the position still depends only
//! on `(node, round)`), only the statistical independence between that
//! decide and the node's *next* lane is weakened. No protocol in this
//! workspace draws more than 4 words per decide.
//!
//! The run-level overlay streams are untouched: graph generation, the
//! shared Algorithm-3 sequence, and `FadingRadio`'s channel randomness
//! keep their own labelled streams (`b"shared-seq"`, `b"fading"`, …), so
//! v2 runs compose with the energy subsystem exactly as v1 runs do.

use radio_graph::NodeId;
use radio_util::split_seed;
use rand_chacha::ChaCha8Rng;

/// Blocks per round per node: one decide lane + one receive lane.
const LANES: u64 = 2;

/// The per-node stream family of one run — see the module docs for the
/// exact layout. `Copy` and 8 bytes, so workers share it freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecideStreams {
    run_seed: u64,
}

impl DecideStreams {
    /// The stream family for `run_seed` (a sweep trial seed, an
    /// experiment seed — any u64; the per-node keys are derived through
    /// the workspace's labelled [`split_seed`] fan-out, so the same seed
    /// can also feed other labelled consumers without correlation).
    pub fn new(run_seed: u64) -> Self {
        DecideStreams { run_seed }
    }

    /// The wrapped run seed.
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// `node`'s ChaCha key words — the cacheable identity of its stream
    /// family. Equal to the key `seed_from_u64(split_seed(run_seed,
    /// b"v2-node", node))` installs, exposed so the fused engine can pay
    /// the SplitMix64 fan-out + expansion **once per node per run**
    /// instead of once per draw, rebuilding positioned streams from the
    /// cached words (see [`Self::rng_from_key`]).
    #[inline]
    pub fn node_key(&self, node: NodeId) -> [u32; 8] {
        rand_chacha::key_words_from_u64(split_seed(self.run_seed, b"v2-node", u64::from(node)))
    }

    /// Block index of the decide lane for `round` (block `2r`).
    #[inline]
    pub fn decide_block(round: u64) -> u64 {
        round.wrapping_mul(LANES)
    }

    /// Block index of the receive lane for `round` (block `2r + 1`).
    #[inline]
    pub fn receive_block(round: u64) -> u64 {
        round.wrapping_mul(LANES).wrapping_add(1)
    }

    /// A stream for a cached [`node_key`](Self::node_key), positioned at
    /// `block` — bit-identical to deriving the node's stream from
    /// scratch and seeking there, minus the key derivation. Lazy like
    /// every other construction: no block is computed until a draw (or a
    /// batched [`rand_chacha::refill_wide`]) forces it.
    #[inline]
    pub fn rng_from_key(key: [u32; 8], block: u64) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::from_key_words(key);
        rng.set_block_pos(block);
        rng
    }

    #[inline]
    fn lane(&self, node: NodeId, round: u64, lane: u64) -> ChaCha8Rng {
        // Keyed per node; the round indexes the keystream. Seeding and
        // seeking are both lazy state setup — the ChaCha block is only
        // computed if the consumer actually draws.
        Self::rng_from_key(
            self.node_key(node),
            round.wrapping_mul(LANES).wrapping_add(lane),
        )
    }

    /// `node`'s decide stream for `round`, positioned at its own block.
    #[inline]
    pub fn decide_rng(&self, node: NodeId, round: u64) -> ChaCha8Rng {
        self.lane(node, round, 0)
    }

    /// `node`'s on-receive stream for `round` (disjoint lane, so a
    /// protocol drawing in both `decide` and `on_receive` never overlaps
    /// itself).
    #[inline]
    pub fn receive_rng(&self, node: NodeId, round: u64) -> ChaCha8Rng {
        self.lane(node, round, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn streams_are_pure_functions_of_seed_node_round() {
        let s = DecideStreams::new(42);
        let draw = |node, round| s.decide_rng(node, round).random::<u64>();
        assert_eq!(draw(3, 7), draw(3, 7));
        assert_ne!(draw(3, 7), draw(4, 7));
        assert_ne!(draw(3, 7), draw(3, 8));
        assert_ne!(
            DecideStreams::new(1).decide_rng(0, 1).random::<u64>(),
            DecideStreams::new(2).decide_rng(0, 1).random::<u64>()
        );
    }

    #[test]
    fn lanes_are_disjoint() {
        let s = DecideStreams::new(9);
        // The decide and receive lanes of (node, round) are distinct
        // blocks of the node's keystream: positions interleave
        // 2r / 2r + 1 and never collide across rounds either.
        assert_eq!(s.decide_rng(5, 3).block_pos(), 6);
        assert_eq!(s.receive_rng(5, 3).block_pos(), 7);
        assert_eq!(s.decide_rng(5, 4).block_pos(), 8);
        // A full 16-word decide draw stops exactly where the receive
        // lane begins (the documented overrun behavior).
        let mut d = s.decide_rng(5, 3);
        for _ in 0..16 {
            rand::RngCore::next_u32(&mut d);
        }
        let mut r = s.receive_rng(5, 3);
        assert_eq!(
            rand::RngCore::next_u32(&mut d),
            rand::RngCore::next_u32(&mut r)
        );
    }

    #[test]
    fn cached_keys_rebuild_the_same_streams() {
        // The batched path (cache node_key once, rebuild positioned
        // streams from it) must be indistinguishable from the from-
        // scratch derivation — for both lanes, at any round.
        let s = DecideStreams::new(0xCAFE);
        for node in [0u32, 3, 1000] {
            let key = s.node_key(node);
            for round in [1u64, 2, 77, 1 << 40] {
                let mut a = s.decide_rng(node, round);
                let mut b = DecideStreams::rng_from_key(key, DecideStreams::decide_block(round));
                assert_eq!(a.random::<u64>(), b.random::<u64>());
                let mut a = s.receive_rng(node, round);
                let mut b = DecideStreams::rng_from_key(key, DecideStreams::receive_block(round));
                assert_eq!(a.random::<u64>(), b.random::<u64>());
            }
        }
    }

    #[test]
    fn block_indices_match_the_documented_layout() {
        assert_eq!(DecideStreams::decide_block(3), 6);
        assert_eq!(DecideStreams::receive_block(3), 7);
        let s = DecideStreams::new(9);
        assert_eq!(
            s.decide_rng(5, 3).block_pos(),
            DecideStreams::decide_block(3)
        );
        assert_eq!(
            s.receive_rng(5, 3).block_pos(),
            DecideStreams::receive_block(3)
        );
    }

    #[test]
    fn evaluation_order_cannot_matter() {
        // The property the fused engine's thread-independence rests on:
        // draws for a set of (node, round) pairs are identical whatever
        // order they are evaluated in.
        let s = DecideStreams::new(0xBEEF);
        let pairs = [(0u32, 1u64), (7, 1), (2, 5), (0, 2), (9, 9)];
        let forward: Vec<u64> = pairs
            .iter()
            .map(|&(v, r)| s.decide_rng(v, r).random())
            .collect();
        let backward: Vec<u64> = pairs
            .iter()
            .rev()
            .map(|&(v, r)| s.decide_rng(v, r).random())
            .collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }
}
