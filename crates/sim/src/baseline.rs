//! The pre-CSR engine: identical semantics over `Vec<Vec<NodeId>>`.
//!
//! [`run_adjlist`] replicates [`crate::engine::Engine::run`] *exactly* —
//! same polling order, same RNG consumption, same delivery order — but
//! walks an [`AdjListGraph`], the pointer-chasing per-node `Vec` layout
//! that the flat CSR backend replaced. It exists for two reasons:
//!
//! * the `engine_csr` criterion bench quantifies the CSR speedup against
//!   it (the acceptance gate for the storage refactor), and
//! * differential tests get a third independent implementation of the
//!   collision semantics beyond [`crate::reference`].
//!
//! Keep it semantically frozen; performance work goes into the real
//! engine.

use crate::metrics::Metrics;
use crate::{Action, EngineConfig, Protocol, RunResult};
use radio_graph::{DiGraph, NodeId};
use rand_chacha::ChaCha8Rng;

/// Adjacency lists as separately heap-allocated per-node `Vec`s — the
/// layout a straightforward simulator grows edge by edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjListGraph {
    out: Vec<Vec<NodeId>>,
}

impl AdjListGraph {
    /// Convert a CSR digraph, rebuilding the lists edge by edge the way
    /// incremental construction would (each row reallocates as it grows,
    /// so rows end up scattered across the heap like in real adjacency-
    /// list code, not laid out back to back).
    pub fn from_digraph(g: &DiGraph) -> Self {
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); g.n()];
        for (u, v) in g.edges() {
            out[u as usize].push(v);
        }
        AdjListGraph { out }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn m(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Nodes whose radios can hear `u` (sorted).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out[u as usize]
    }
}

/// Run `protocol` on the adjacency-list layout with the engine's exact
/// stamped-scratch algorithm and RNG order.
pub fn run_adjlist<P: Protocol>(
    graph: &AdjListGraph,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
) -> RunResult {
    let n = graph.n();
    let mut metrics = Metrics::new(n);

    let mut stamp = vec![u64::MAX; n];
    let mut hit_count = vec![0u32; n];
    let mut hit_source = vec![0 as NodeId; n];
    let mut touched: Vec<NodeId> = Vec::with_capacity(64);
    let mut sent_stamp = vec![u64::MAX; n];

    let mut is_awake = vec![false; n];
    let mut awake_list: Vec<NodeId> = Vec::new();
    let mut awake_count = 0usize;
    for v in protocol.initially_awake() {
        if !is_awake[v as usize] {
            is_awake[v as usize] = true;
            awake_count += 1;
            awake_list.push(v);
        }
    }

    let mut transmitters: Vec<NodeId> = Vec::new();
    let mut rounds = 0u64;
    let mut completed = protocol.is_complete();

    while !completed && rounds < cfg.max_rounds && awake_count > 0 {
        rounds += 1;
        let round = rounds;

        // --- poll phase (identical to the engine) ------------------------
        transmitters.clear();
        let mut w = 0usize;
        for r in 0..awake_list.len() {
            let v = awake_list[r];
            if !is_awake[v as usize] {
                continue;
            }
            match protocol.decide(v, round, rng) {
                Action::Silent => {
                    awake_list[w] = v;
                    w += 1;
                }
                Action::Transmit => {
                    transmitters.push(v);
                    sent_stamp[v as usize] = round;
                    awake_list[w] = v;
                    w += 1;
                }
                Action::Sleep => {
                    is_awake[v as usize] = false;
                    awake_count -= 1;
                }
            }
        }
        awake_list.truncate(w);

        // --- transmit phase: per-node Vec walk ---------------------------
        touched.clear();
        for &u in &transmitters {
            metrics.record_transmission(u);
            for &v in graph.out_neighbors(u) {
                let vi = v as usize;
                if stamp[vi] != round {
                    stamp[vi] = round;
                    hit_count[vi] = 1;
                    hit_source[vi] = u;
                    touched.push(v);
                } else {
                    hit_count[vi] += 1;
                }
            }
        }

        // --- delivery phase ----------------------------------------------
        if !transmitters.is_empty() {
            touched.sort_unstable();
            for &v in &touched {
                let vi = v as usize;
                if hit_count[vi] != 1 {
                    continue;
                }
                if cfg.half_duplex && sent_stamp[vi] == round {
                    continue;
                }
                let from = hit_source[vi];
                let msg = protocol.payload(from, round);
                protocol.on_receive(v, from, round, &msg, rng);
                if !is_awake[vi] {
                    is_awake[vi] = true;
                    awake_count += 1;
                    awake_list.push(v);
                }
            }
        }

        completed = protocol.is_complete();
    }

    metrics.set_rounds(rounds);
    RunResult {
        rounds,
        completed,
        hit_round_cap: !completed && rounds >= cfg.max_rounds,
        metrics,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_protocol;
    use radio_graph::generate::gnp_directed;
    use radio_util::derive_rng;
    use rand::RngExt;

    struct CoinFlood {
        informed: Vec<bool>,
        n_informed: usize,
        prob: f64,
    }

    impl CoinFlood {
        fn new(n: usize, prob: f64) -> Self {
            let mut informed = vec![false; n];
            informed[0] = true;
            CoinFlood {
                informed,
                n_informed: 1,
                prob,
            }
        }
    }

    impl Protocol for CoinFlood {
        type Msg = ();
        fn initially_awake(&self) -> Vec<NodeId> {
            vec![0]
        }
        fn decide(&mut self, _n: NodeId, _r: u64, rng: &mut ChaCha8Rng) -> Action {
            if rng.random_bool(self.prob) {
                Action::Transmit
            } else {
                Action::Silent
            }
        }
        fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
        fn on_receive(
            &mut self,
            node: NodeId,
            _f: NodeId,
            _r: u64,
            _m: &Self::Msg,
            _rng: &mut ChaCha8Rng,
        ) {
            if !self.informed[node as usize] {
                self.informed[node as usize] = true;
                self.n_informed += 1;
            }
        }
        fn is_complete(&self) -> bool {
            self.n_informed == self.informed.len()
        }
        fn informed_count(&self) -> usize {
            self.n_informed
        }
        fn active_count(&self) -> usize {
            self.n_informed
        }
    }

    #[test]
    fn adjlist_graph_mirrors_digraph() {
        let g = gnp_directed(150, 0.05, &mut derive_rng(1, b"adj", 0));
        let a = AdjListGraph::from_digraph(&g);
        assert_eq!(a.n(), g.n());
        assert_eq!(a.m(), g.m());
        for u in 0..g.n() as NodeId {
            assert_eq!(a.out_neighbors(u), g.out_neighbors(u));
        }
    }

    #[test]
    fn adjlist_engine_matches_csr_engine_exactly() {
        for seed in 0..8u64 {
            let g = gnp_directed(140, 0.06, &mut derive_rng(seed, b"adj-g", 0));
            let a = AdjListGraph::from_digraph(&g);
            let cfg = EngineConfig::with_max_rounds(300);

            let mut p1 = CoinFlood::new(140, 0.3);
            let mut rng1 = derive_rng(seed, b"adj-run", 0);
            let fast = run_protocol(&g, &mut p1, cfg, &mut rng1);

            let mut p2 = CoinFlood::new(140, 0.3);
            let mut rng2 = derive_rng(seed, b"adj-run", 0);
            let slow = run_adjlist(&a, &mut p2, cfg, &mut rng2);

            assert_eq!(fast.rounds, slow.rounds, "seed {seed}");
            assert_eq!(fast.completed, slow.completed, "seed {seed}");
            assert_eq!(fast.hit_round_cap, slow.hit_round_cap, "seed {seed}");
            assert_eq!(
                fast.metrics.per_node(),
                slow.metrics.per_node(),
                "seed {seed}"
            );
            assert_eq!(p1.informed, p2.informed, "seed {seed}");
        }
    }
}
