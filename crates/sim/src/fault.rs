//! Fail-stop fault injection.
//!
//! [`Faulty`] wraps any [`Protocol`] and crashes a chosen set of nodes at
//! chosen rounds: from its crash round on, a node never transmits again
//! and ignores everything it hears. This is the standard fail-stop model;
//! it composes with every algorithm in the workspace, so robustness
//! experiments (how many stragglers does Algorithm 1 leave if 10 % of the
//! Phase-2 actives die?) need no per-algorithm support.

use crate::{Action, Protocol};
use radio_graph::NodeId;
use rand::{Rng, RngExt};
use rand_chacha::ChaCha8Rng;

/// A fail-stop crash plan: node → crash round (inclusive).
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    crash_at: Vec<Option<u64>>,
}

impl CrashPlan {
    /// No crashes, for `n` nodes.
    pub fn none(n: usize) -> Self {
        CrashPlan {
            crash_at: vec![None; n],
        }
    }

    /// Crash `node` at `round` (it still acts in rounds `< round`).
    pub fn crash(mut self, node: NodeId, round: u64) -> Self {
        self.crash_at[node as usize] = Some(round);
        self
    }

    /// Crash a uniformly random fraction `f` of nodes, all at `round`.
    ///
    /// # Panics
    /// Panics if `f ∉ [0, 1]`.
    pub fn random_fraction<R: Rng + ?Sized>(n: usize, f: f64, round: u64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction {f} out of [0,1]");
        let mut plan = Self::none(n);
        for v in 0..n {
            if rng.random_bool(f) {
                plan.crash_at[v] = Some(round);
            }
        }
        plan
    }

    /// Remove any scheduled crash for `node` (e.g. to keep the broadcast
    /// source alive so runs measure dissemination, not source loss).
    pub fn spare(mut self, node: NodeId) -> Self {
        self.crash_at[node as usize] = None;
        self
    }

    /// Is `node` crashed in `round`?
    #[inline]
    pub fn is_crashed(&self, node: NodeId, round: u64) -> bool {
        matches!(self.crash_at[node as usize], Some(r) if round >= r)
    }

    /// Nodes that never crash.
    pub fn survivors(&self) -> Vec<NodeId> {
        self.crash_at
            .iter()
            .enumerate()
            .filter_map(|(v, c)| c.is_none().then_some(v as NodeId))
            .collect()
    }

    /// Number of nodes scheduled to crash.
    pub fn crash_count(&self) -> usize {
        self.crash_at.iter().filter(|c| c.is_some()).count()
    }

    /// Number of *distinct* nodes failed by the end of `round`, merging
    /// this plan's scheduled crashes with battery depletions:
    /// `depleted_at` is the per-node depletion-round array of an
    /// [`EnergyMetrics`](crate::EnergyMetrics) (`u64::MAX` = alive; pass
    /// `&[]` for runs without batteries). A node that both crashes and
    /// depletes — in the same round or otherwise — is counted exactly
    /// once, which is what sweep summaries must report when the two fault
    /// paths overlap.
    pub fn failed_by(&self, round: u64, depleted_at: &[u64]) -> usize {
        (0..self.crash_at.len())
            .filter(|&v| {
                matches!(self.crash_at[v], Some(r) if r <= round)
                    || depleted_at.get(v).is_some_and(|&r| r <= round)
            })
            .count()
    }
}

/// Protocol adapter injecting fail-stop crashes.
#[derive(Debug)]
pub struct Faulty<P> {
    inner: P,
    plan: CrashPlan,
}

impl<P> Faulty<P> {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: P, plan: CrashPlan) -> Self {
        Faulty { inner, plan }
    }

    /// The wrapped protocol (for post-run inspection).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The crash plan.
    pub fn plan(&self) -> &CrashPlan {
        &self.plan
    }
}

impl<P: Protocol> Protocol for Faulty<P> {
    type Msg = P::Msg;

    fn initially_awake(&self) -> Vec<NodeId> {
        self.inner.initially_awake()
    }

    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        if self.plan.is_crashed(node, round) {
            return Action::Sleep;
        }
        self.inner.decide(node, round, rng)
    }

    fn payload(&self, node: NodeId, round: u64) -> Self::Msg {
        self.inner.payload(node, round)
    }

    fn on_receive(
        &mut self,
        node: NodeId,
        from: NodeId,
        round: u64,
        msg: &Self::Msg,
        rng: &mut ChaCha8Rng,
    ) {
        if self.plan.is_crashed(node, round) {
            return; // a dead radio hears nothing
        }
        self.inner.on_receive(node, from, round, msg, rng);
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn informed_count(&self) -> usize {
        self.inner.informed_count()
    }

    fn active_count(&self) -> usize {
        self.inner.active_count()
    }

    fn radio_off(&self, node: NodeId, round: u64) -> bool {
        // A crashed radio is powered down for good; otherwise defer to
        // the wrapped protocol's duty-cycling.
        self.plan.is_crashed(node, round) || self.inner.radio_off(node, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_protocol;
    use crate::EngineConfig;
    use radio_graph::generate::path;
    use radio_util::derive_rng;

    /// Minimal flooding protocol for the adapter tests.
    struct Flood {
        informed: Vec<bool>,
        count: usize,
    }
    impl Flood {
        fn new(n: usize) -> Self {
            let mut informed = vec![false; n];
            informed[0] = true;
            Flood { informed, count: 1 }
        }
    }
    impl Protocol for Flood {
        type Msg = ();
        fn initially_awake(&self) -> Vec<NodeId> {
            vec![0]
        }
        fn decide(&mut self, _n: NodeId, _r: u64, _rng: &mut ChaCha8Rng) -> Action {
            Action::Transmit
        }
        fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
        fn on_receive(
            &mut self,
            n: NodeId,
            _f: NodeId,
            _r: u64,
            _m: &Self::Msg,
            _rng: &mut ChaCha8Rng,
        ) {
            if !self.informed[n as usize] {
                self.informed[n as usize] = true;
                self.count += 1;
            }
        }
        fn is_complete(&self) -> bool {
            self.count == self.informed.len()
        }
        fn informed_count(&self) -> usize {
            self.count
        }
        fn active_count(&self) -> usize {
            self.count
        }
    }

    #[test]
    fn crash_plan_bookkeeping() {
        let plan = CrashPlan::none(5).crash(2, 10).crash(4, 3);
        assert!(!plan.is_crashed(2, 9));
        assert!(plan.is_crashed(2, 10));
        assert!(plan.is_crashed(4, 100));
        assert_eq!(plan.survivors(), vec![0, 1, 3]);
        assert_eq!(plan.crash_count(), 2);
    }

    #[test]
    fn crash_and_depletion_in_the_same_round_count_once() {
        // Regression: sweep summaries report *distinct* failed nodes.
        // Node 2 crashes at round 3 AND its battery depletes in round 3;
        // node 4 only crashes; node 1 only depletes. `u64::MAX` = alive.
        let plan = CrashPlan::none(5).crash(2, 3).crash(4, 3);
        let depleted_at = [u64::MAX, 3, 3, u64::MAX, u64::MAX];
        assert_eq!(
            plan.failed_by(3, &depleted_at),
            3,
            "nodes 1, 2, 4 — the doubly-failed node 2 must not count twice"
        );
        // Before anything fails, the union is empty.
        assert_eq!(plan.failed_by(2, &depleted_at), 0);
        // Depletion-only accounting (no crash plan overlap).
        assert_eq!(CrashPlan::none(5).failed_by(10, &depleted_at), 2);
        // No batteries: an empty depletion array is legal.
        assert_eq!(plan.failed_by(10, &[]), 2);
    }

    #[test]
    fn random_fraction_is_seeded_and_bounded() {
        let mut rng = derive_rng(1, b"fault", 0);
        let plan = CrashPlan::random_fraction(1000, 0.3, 5, &mut rng);
        let c = plan.crash_count();
        assert!(c > 200 && c < 400, "crash count {c} far from 300");
    }

    #[test]
    fn crashed_node_blocks_a_path() {
        // Path 0-1-2-3-4; node 2 dies at round 2, exactly when it would
        // first transmit (it receives in round 2... actually hears node 1
        // in round 2, but being dead it ignores the message).
        let g = path(5);
        let plan = CrashPlan::none(5).crash(2, 2);
        let mut p = Faulty::new(Flood::new(5), plan);
        let mut rng = derive_rng(2, b"fault", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(50), &mut rng);
        assert!(!res.completed);
        assert!(p.inner().informed[1]);
        assert!(!p.inner().informed[2], "dead node must not learn");
        assert!(!p.inner().informed[3], "message cannot pass the corpse");
    }

    #[test]
    fn crash_after_relaying_is_harmless() {
        let g = path(5);
        let plan = CrashPlan::none(5).crash(1, 4); // node 1 relays in round 2
        let mut p = Faulty::new(Flood::new(5), plan);
        let mut rng = derive_rng(3, b"fault", 0);
        let res = run_protocol(&g, &mut p, EngineConfig::with_max_rounds(50), &mut rng);
        assert!(res.completed, "late crash must not stop the broadcast");
    }

    #[test]
    fn no_crashes_is_transparent() {
        let g = path(6);
        let mut faulty = Faulty::new(Flood::new(6), CrashPlan::none(6));
        let mut plain = Flood::new(6);
        let mut rng1 = derive_rng(4, b"fault", 0);
        let mut rng2 = derive_rng(4, b"fault", 0);
        let r1 = run_protocol(&g, &mut faulty, EngineConfig::default(), &mut rng1);
        let r2 = run_protocol(&g, &mut plain, EngineConfig::default(), &mut rng2);
        assert_eq!(r1.rounds, r2.rounds);
        assert_eq!(r1.metrics.per_node(), r2.metrics.per_node());
    }
}
