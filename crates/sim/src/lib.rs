//! Round-synchronous radio-network simulation.
//!
//! Implements exactly the communication model of the paper's §1.2:
//!
//! * Time proceeds in synchronous rounds.
//! * In each round every node independently decides to transmit or stay
//!   silent (no carrier sensing, no acknowledgements — the paper
//!   explicitly rules out acknowledgement-based protocols).
//! * A node `v` **receives** a message iff **exactly one** of its
//!   in-neighbours transmits in that round; two or more simultaneous
//!   transmissions in `v`'s range *collide* and `v` hears nothing (and
//!   cannot even detect that a collision happened).
//! * Energy = number of transmissions, tallied in [`Metrics`].
//!
//! Algorithms are [`Protocol`] implementations — per-node state machines
//! polled once per round. The engine keeps an *awake set* so that rounds
//! cost `O(awake + Σ out-degree(transmitters))`, not `O(n)`: a node that
//! returns [`Action::Sleep`] (the paper's *passive* state) leaves the poll
//! list and re-enters it only if a later reception wakes it.
//!
//! Determinism: a run is a pure function of `(graph, protocol, config,
//! seed)`. The engine consumes one [`rand_chacha::ChaCha8Rng`]; protocols
//! draw from it only inside `decide`/`on_receive`, in a fixed polling
//! order, so every run is exactly reproducible. [`reference`] contains a
//! deliberately naive O(n·deg) second implementation of the collision
//! semantics against which the optimised engine is property-tested, and
//! [`baseline`] a third one over `Vec<Vec<NodeId>>` adjacency lists that
//! doubles as the perf baseline for the CSR engine bench.
//!
//! [`sweep`] turns the "many seeded trials over a parameter grid"
//! pattern into a declarative object: cells of
//! `n × algorithm × graph-family × p`, rayon fan-out with per-trial
//! ChaCha8 streams, and deterministic JSON reports under `results/`.
//! [`trials::parallel_trials`] remains as the low-level free-form
//! fan-out underneath it.

pub mod baseline;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod reference;
pub mod sweep;
pub mod trials;

pub use baseline::{run_adjlist, AdjListGraph};
pub use engine::{run_dynamic, Engine, EngineConfig, RunResult};
pub use fault::{CrashPlan, Faulty};
pub use metrics::{Metrics, RoundRecord, Trace};
pub use sweep::{CellResults, CellSummary, Sweep, SweepCell, SweepReport, TrialResult};
pub use trials::parallel_trials;

use rand_chacha::ChaCha8Rng;

use radio_graph::NodeId;

/// A node's decision for the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Stay silent this round; remain on the poll list.
    Silent,
    /// Transmit this round (the payload is fetched via
    /// [`Protocol::payload`]); remain on the poll list.
    Transmit,
    /// Become *passive*: never poll this node again unless a future
    /// reception wakes it. The paper's broadcast algorithms use this to
    /// enforce their energy budgets.
    Sleep,
}

/// A per-node distributed algorithm in the radio model.
///
/// The engine polls `decide` once per round for every awake node (in
/// ascending node order), gathers the transmitters, applies the collision
/// rule, then calls `on_receive` for each collision-free reception (in
/// ascending receiver order). All randomness must come from the provided
/// RNG so runs stay reproducible.
pub trait Protocol {
    /// Transmission payload. `()` for pure broadcast (the rumor is
    /// implicit); a rumor [`radio_util::BitSet`] for gossip.
    type Msg: Clone + Send;

    /// Nodes that are awake before round 1 (e.g. the broadcast source).
    fn initially_awake(&self) -> Vec<NodeId>;

    /// Per-round decision for an awake node.
    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action;

    /// Payload for a node that chose [`Action::Transmit`] this round.
    fn payload(&self, node: NodeId, round: u64) -> Self::Msg;

    /// Collision-free delivery of `msg` (sent by `from`) to `node`.
    /// After this call the engine puts `node` back on the poll list.
    fn on_receive(
        &mut self,
        node: NodeId,
        from: NodeId,
        round: u64,
        msg: &Self::Msg,
        rng: &mut ChaCha8Rng,
    );

    /// Global goal test, checked at the end of every round.
    fn is_complete(&self) -> bool;

    /// Number of nodes that hold the broadcast message / all-rumors-goal
    /// progress indicator. Used for traces and experiment tables.
    fn informed_count(&self) -> usize;

    /// Number of *active* nodes (informed and still willing to transmit) —
    /// the paper's `|Uₜ|`. Used for the Lemma 2.3/2.4 growth traces.
    fn active_count(&self) -> usize;
}
