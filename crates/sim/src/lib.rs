//! Round-synchronous radio-network simulation.
//!
//! Implements exactly the communication model of the paper's §1.2:
//!
//! * Time proceeds in synchronous rounds.
//! * In each round every node independently decides to transmit or stay
//!   silent (no carrier sensing, no acknowledgements — the paper
//!   explicitly rules out acknowledgement-based protocols).
//! * A node `v` **receives** a message iff **exactly one** of its
//!   in-neighbours transmits in that round; two or more simultaneous
//!   transmissions in `v`'s range *collide* and `v` hears nothing (and
//!   cannot even detect that a collision happened).
//! * Energy = number of transmissions, tallied in [`Metrics`].
//!
//! Algorithms are [`Protocol`] implementations — per-node state machines
//! polled once per round. The engine keeps an *awake set* so that rounds
//! cost `O(awake + Σ out-degree(transmitters))`, not `O(n)`: a node that
//! returns [`Action::Sleep`] (the paper's *passive* state) leaves the poll
//! list and re-enters it only if a later reception wakes it.
//!
//! Determinism: a run is a pure function of `(graph, protocol, config,
//! seed)`. The engine consumes one [`rand_chacha::ChaCha8Rng`]; protocols
//! draw from it only inside `decide`/`on_receive`, in a fixed polling
//! order, so every run is exactly reproducible. [`reference`] contains a
//! deliberately naive O(n·deg) second implementation of the collision
//! semantics against which the optimised engine is property-tested, and
//! [`baseline`] a third one over `Vec<Vec<NodeId>>` adjacency lists that
//! doubles as the perf baseline for the CSR engine bench.
//!
//! [`sweep`] turns the "many seeded trials over a parameter grid"
//! pattern into a declarative object: cells of
//! `n × algorithm × graph-family × p`, rayon fan-out with per-trial
//! ChaCha8 streams, and deterministic JSON reports under `results/`.
//! [`trials::parallel_trials`] remains as the low-level free-form
//! fan-out underneath it.
//!
//! Parallelism also reaches *inside* a single run: the engine's
//! scatter/collision phase — the dominant cost at scale — can fan out
//! over [`EngineConfig::threads`] workers partitioned by receiver id
//! range ([`Engine::run_par`], [`engine::run_protocol_par`]), with runs
//! bit-identical for every thread count. Sweeps over huge cells trade
//! trial-level for run-level parallelism via
//! [`Sweep::with_threads_per_run`].
//!
//! The **v2 determinism contract** ([`streams`]) goes further: protocols
//! that split their decision into a pure half and a commit half
//! ([`FusedDecide`]) run on the *fused* engine ([`Engine::run_fused`],
//! [`engine::run_protocol_fused`]), where every coin flip comes from a
//! counter-based per-node stream keyed by `(run_seed, node)` with the
//! round as block counter — so the decide phase itself fans out across
//! the workers, removing the serial-RNG Amdahl cap, still bit-identical
//! for every thread count by construction. v1 and v2 runs of the same
//! seed differ (statistically equivalently); `tests/v2_equivalence.rs`
//! cross-validates the contracts against the frozen [`reference`]
//! oracle.
//!
//! The paper's transmissions-only energy measure generalises through the
//! [`energy`] overlay (`radio-energy`): the `*_energy` entry points
//! ([`Engine::run_energy`], [`run_protocol_energy`],
//! [`run_dynamic_energy`]) charge a pluggable [`EnergyModel`] per round
//! (transmit / receive / idle-listen / sleep, with the sleep state driven
//! by [`Protocol::radio_off`]), optionally drain finite [`Battery`]
//! capacities whose depletion turns nodes fail-stop dead (composing with
//! [`fault::CrashPlan`] semantics), and report [`EnergyMetrics`]
//! alongside the usual [`Metrics`]. With the default `TxOnly` model the
//! overlay is a passthrough: per-round charging is skipped and reported
//! energy equals the transmission counts bit-for-bit.

pub mod baseline;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod reference;
pub mod streams;
pub mod sweep;
pub mod trials;

/// The pluggable energy subsystem (`radio-energy`), re-exported: duty
/// states, energy models, batteries, and the per-run accounting session
/// the engine's `*_energy` entry points drive.
pub use radio_energy as energy;

/// The structured trace subsystem (`radio-trace`), re-exported: the
/// [`TraceSink`](radio_trace::TraceSink) hook the engine's `*_traced`
/// entry points drive, the `.rtrc` recording sinks/reader, replay
/// verification, and first-divergence diffing.
pub use radio_trace as trace;

pub use baseline::{run_adjlist, AdjListGraph};
pub use engine::{
    run_dynamic, run_dynamic_energy, run_protocol_energy, run_protocol_energy_traced,
    run_protocol_fused, run_protocol_fused_energy, run_protocol_fused_energy_traced,
    run_protocol_fused_traced, run_protocol_par, run_protocol_par_energy, run_protocol_traced,
    scatter_plan, EnergyRunResult, Engine, EngineConfig, RunResult, ScatterPlan, ScatterStrategy,
};
pub use fault::{CrashPlan, Faulty};
pub use metrics::{EnergyMetrics, Metrics, RoundRecord, Trace};
pub use radio_energy::{
    Battery, Duty, EnergyModel, EnergySession, FadingRadio, LinearRadio, TxOnly,
};
pub use streams::DecideStreams;
pub use sweep::{
    CellResults, CellSummary, Sweep, SweepCell, SweepReport, TracePlan, TrialEnergy, TrialResult,
};
pub use trials::parallel_trials;

use rand_chacha::ChaCha8Rng;

use radio_graph::NodeId;

/// A node's decision for the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Stay silent this round; remain on the poll list.
    Silent,
    /// Transmit this round (the payload is fetched via
    /// [`Protocol::payload`]); remain on the poll list.
    Transmit,
    /// Become *passive*: never poll this node again unless a future
    /// reception wakes it. The paper's broadcast algorithms use this to
    /// enforce their energy budgets.
    Sleep,
}

/// A per-node distributed algorithm in the radio model.
///
/// The engine polls `decide` once per round for every awake node (in
/// ascending node order), gathers the transmitters, applies the collision
/// rule, then calls `on_receive` for each collision-free reception (in
/// ascending receiver order). All randomness must come from the provided
/// RNG so runs stay reproducible.
pub trait Protocol {
    /// Transmission payload. `()` for pure broadcast (the rumor is
    /// implicit); a rumor [`radio_util::BitSet`] for gossip.
    type Msg: Clone + Send;

    /// Nodes that are awake before round 1 (e.g. the broadcast source).
    fn initially_awake(&self) -> Vec<NodeId>;

    /// Per-round decision for an awake node.
    fn decide(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action;

    /// Payload for a node that chose [`Action::Transmit`] this round.
    fn payload(&self, node: NodeId, round: u64) -> Self::Msg;

    /// Collision-free delivery of `msg` (sent by `from`) to `node`.
    /// After this call the engine puts `node` back on the poll list.
    fn on_receive(
        &mut self,
        node: NodeId,
        from: NodeId,
        round: u64,
        msg: &Self::Msg,
        rng: &mut ChaCha8Rng,
    );

    /// Global goal test, checked at the end of every round.
    fn is_complete(&self) -> bool;

    /// Number of nodes that hold the broadcast message / all-rumors-goal
    /// progress indicator. Used for traces and experiment tables.
    fn informed_count(&self) -> usize;

    /// Number of *active* nodes (informed and still willing to transmit) —
    /// the paper's `|Uₜ|`. Used for the Lemma 2.3/2.4 growth traces.
    fn active_count(&self) -> usize;

    /// Energy-accounting hint: is `node`'s radio powered **off** in
    /// `round`?
    ///
    /// The engine's awake list is a polling optimisation, not a radio
    /// state — a node off the poll list still has its receiver on (a
    /// later reception wakes it) and therefore pays idle-listening cost
    /// under a non-tx-only [`radio_energy::EnergyModel`]. Protocols whose
    /// nodes genuinely power down — a retired windowed node, a passive
    /// Algorithm-1 node that already transmitted, a crashed node — can
    /// override this so the energy overlay charges sleep cost instead.
    ///
    /// The hint affects **energy accounting only**: delivery semantics
    /// are unchanged either way (think of it as a low-power wake-radio
    /// paging channel), so runs stay bit-identical with and without the
    /// overlay, and the frozen reference/baseline oracles remain valid.
    /// The default — radio always on — is the physically conservative
    /// choice and the correct one for any protocol that may still need
    /// to receive.
    fn radio_off(&self, _node: NodeId, _round: u64) -> bool {
        false
    }
}

/// Opt-in for the **fused v2 engine** ([`Engine::run_fused`]): the
/// per-round decision split into a *pure* evaluation half — callable
/// from any worker thread against shared `&self` — and a *serial*
/// commit half that applies the state transition.
///
/// This is the protocol-side of the v2 determinism contract
/// ([`streams::DecideStreams`]): because every node's coin flips come
/// from its own counter-based stream, `decide_pure(v, round, …)` depends
/// only on the protocol state at the start of the round and on `v`'s own
/// draws — never on the order other nodes are evaluated in — so the
/// engine may evaluate nodes concurrently and the result is the same for
/// every thread count.
///
/// # Contract
///
/// * `decide_pure` must be a pure function of `(self, node, round)` and
///   the draws it takes from `rng` (the node's positioned v2 decide
///   stream). It must not mutate anything — the receiver is shared
///   across workers.
/// * A [`Action::Silent`] decision must imply **no state change**; the
///   engine does not call `commit_decide` for silent nodes (this is what
///   keeps the serial half of the round `O(transmitters + sleepers)`
///   instead of `O(awake)`).
/// * `commit_decide` is called serially, in poll (awake-list) order, for
///   every `Transmit`/`Sleep` decision, and must apply exactly the state
///   transition the v1 `decide` would have applied alongside returning
///   that action.
/// * `begin_round` runs serially before any `decide_pure` of the round —
///   the hook for per-round shared state (e.g. expanding Algorithm 3's
///   shared sequence) so `decide_pure` can stay read-only.
///
/// `Sync` is required because workers evaluate `decide_pure` against
/// `&self` concurrently.
pub trait FusedDecide: Protocol + Sync {
    /// Serial per-round preamble; default no-op.
    fn begin_round(&mut self, _round: u64) {}

    /// Pure decision for an awake node (see the trait docs for the
    /// purity contract). `rng` is the node's v2 decide stream, already
    /// positioned at `(node, round)`.
    fn decide_pure(&self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action;

    /// Serially apply the state transition of a non-`Silent` decision.
    fn commit_decide(&mut self, node: NodeId, round: u64, action: Action);

    /// The two halves glued back together — evaluate the pure half on
    /// `rng` and commit any non-silent decision. Provided once so that
    /// `Protocol::decide` impls can derive the v1 entry point from the
    /// split without re-stating the Silent-implies-no-commit contract
    /// (call [`begin_round`](Self::begin_round)-equivalent preparation
    /// first if the protocol needs it; with matching draw patterns the
    /// result is bit-compatible with a hand-written `decide`).
    fn decide_and_commit(&mut self, node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
        let action = self.decide_pure(node, round, rng);
        if action != Action::Silent {
            self.commit_decide(node, round, action);
        }
        action
    }
}
