//! Parallel execution of independent trials.
//!
//! Every w.h.p. claim is checked over many independent seeded runs; those
//! runs share nothing, so this is textbook rayon fan-out: `trial index →
//! summary`. The closure receives the trial index and a
//! [`SeedSequence`](radio_util::SeedSequence)-derived seed, and the caller does graph generation +
//! protocol construction + engine run inside it.

use radio_util::split_seed;
use rayon::prelude::*;

/// Run `trials` independent experiments in parallel.
///
/// `f(trial_index, trial_seed)` must be a pure function of its arguments
/// (all randomness derived from `trial_seed`) — results then do not depend
/// on thread scheduling, and the whole batch is reproducible from
/// `base_seed`.
///
/// ```
/// use radio_sim::parallel_trials;
/// let sums = parallel_trials(8, 42, |i, seed| i as u64 + seed % 2);
/// assert_eq!(sums.len(), 8);
/// // Deterministic across invocations:
/// assert_eq!(sums, parallel_trials(8, 42, |i, seed| i as u64 + seed % 2));
/// ```
pub fn parallel_trials<T, F>(trials: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    (0..trials)
        .into_par_iter()
        .map(|i| f(i, split_seed(base_seed, b"trial", i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_trial_order() {
        let out = parallel_trials(64, 7, |i, _| i);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_distinct_and_reproducible() {
        let seeds = parallel_trials(32, 7, |_, s| s);
        let again = parallel_trials(32, 7, |_, s| s);
        assert_eq!(seeds, again);
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 32, "trial seeds must be distinct");
    }

    #[test]
    fn different_base_seed_changes_trial_seeds() {
        let a = parallel_trials(8, 1, |_, s| s);
        let b = parallel_trials(8, 2, |_, s| s);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = parallel_trials(0, 1, |_, s| s);
        assert!(out.is_empty());
    }
}
