//! Declarative parameter sweeps over `n × algorithm × graph-family × p`.
//!
//! The paper's results are statements *at scale* — Figure 1 and the
//! Theorem 2.1/4.4 tables each aggregate hundreds of independent runs
//! across a grid of `(n, p)` cells. This module turns that pattern into
//! one declarative object instead of a hand-rolled loop per experiment:
//!
//! 1. describe the grid as [`SweepCell`]s (explicit cells, a cartesian
//!    [`Sweep::grid`], or both),
//! 2. supply one runner closure `(cell, graph, seed) → TrialResult`,
//! 3. get back per-trial raw data ([`Sweep::collect`]) and an aggregated
//!    [`SweepReport`] that serializes to deterministic JSON under
//!    `results/`.
//!
//! Execution fans out over rayon with one flattened task per
//! `(cell, trial)`. Every trial owns an independent seed derived from
//! `(base_seed, cell index, trial index)` via
//! [`split_seed`](radio_util::split_seed), so results are a pure function
//! of the sweep description — bit-identical on 1 thread or N (the
//! determinism tests in `tests/determinism.rs` assert exactly this on the
//! JSON bytes).
//!
//! The trial seed serves both determinism contracts: a v1 runner feeds
//! it to `derive_rng(seed, label, 0)` for the shared serial stream, a
//! v2 runner passes it straight to the fused engine
//! ([`run_protocol_fused`](crate::engine::run_protocol_fused)) as the
//! `run_seed` its per-node counter-based streams derive from. Either
//! way the report bytes depend only on the sweep description (and on
//! which contract the runner picked — switching contracts changes the
//! trajectories, so regenerate the committed JSON when porting an
//! experiment to v2).

use radio_graph::{DiGraph, GraphFamily};
use radio_stats::SummaryStats;
use radio_util::{derive_rng, split_seed, Json};
use rayon::prelude::*;
use std::io;
use std::path::{Path, PathBuf};

/// One grid cell: a topology family at `(n, p)` driven by a named
/// algorithm. The algorithm is a label the runner closure dispatches on;
/// the sweep machinery itself never interprets it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Algorithm label, e.g. `"ee_broadcast"`.
    pub algorithm: String,
    /// Topology family; `p`'s meaning is family-specific.
    pub family: GraphFamily,
    /// Number of nodes.
    pub n: usize,
    /// Family parameter (edge probability, radius, …).
    pub p: f64,
}

impl SweepCell {
    /// Build a cell.
    pub fn new(algorithm: impl Into<String>, family: GraphFamily, n: usize, p: f64) -> Self {
        SweepCell {
            algorithm: algorithm.into(),
            family,
            n,
            p,
        }
    }
}

/// What one trial measured. The fixed fields mirror the engine's
/// [`RunResult`](crate::RunResult) plus the protocol-level goal; `extras`
/// carries experiment-specific scalars (growth factors, diameters, …)
/// that aggregate into per-key stats.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The protocol's `is_complete` turned true.
    pub completed: bool,
    /// Experiment-level success (e.g. every node informed).
    pub success: bool,
    /// Rounds executed.
    pub rounds: u64,
    /// The run was cut off by the engine's round cap while incomplete.
    pub hit_round_cap: bool,
    /// Total transmissions (the paper's energy measure).
    pub total_transmissions: u64,
    /// Maximum transmissions by any single node.
    pub max_transmissions_per_node: u32,
    /// Nodes informed when the run ended.
    pub informed: usize,
    /// Model-based energy accounting, when the trial ran with an energy
    /// overlay ([`crate::EnergyRunResult`]).
    pub energy: Option<TrialEnergy>,
    /// Named experiment-specific scalars.
    pub extras: Vec<(String, f64)>,
}

/// The per-trial energy scalars aggregated by [`CellSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrialEnergy {
    /// Total model-based energy across all nodes.
    pub total: f64,
    /// Maximum energy spent by any single node.
    pub max_per_node: f64,
    /// First battery-depletion round (the network lifetime), if any
    /// battery depleted.
    pub first_depletion_round: Option<u64>,
    /// Number of battery-depleted nodes when the run ended.
    pub depleted: usize,
}

impl From<&crate::EnergyMetrics> for TrialEnergy {
    fn from(m: &crate::EnergyMetrics) -> Self {
        TrialEnergy {
            total: m.total_energy(),
            max_per_node: m.max_energy_per_node(),
            first_depletion_round: m.first_depletion_round,
            depleted: m.depleted_count(),
        }
    }
}

impl TrialResult {
    /// Lift an engine [`RunResult`](crate::RunResult) into a trial row.
    pub fn from_run(run: &crate::RunResult, success: bool, informed: usize) -> Self {
        TrialResult {
            completed: run.completed,
            success,
            rounds: run.rounds,
            hit_round_cap: run.hit_round_cap,
            total_transmissions: run.metrics.total_transmissions(),
            max_transmissions_per_node: run.metrics.max_transmissions_per_node(),
            informed,
            energy: None,
            extras: Vec::new(),
        }
    }

    /// Lift an energy-overlay run ([`crate::EnergyRunResult`]) into a
    /// trial row, energy scalars included.
    pub fn from_energy_run(run: &crate::EnergyRunResult, success: bool, informed: usize) -> Self {
        Self::from_run(&run.run, success, informed).with_energy(&run.energy)
    }

    /// Attach energy scalars (chainable).
    pub fn with_energy(mut self, energy: &crate::EnergyMetrics) -> Self {
        self.energy = Some(TrialEnergy::from(energy));
        self
    }

    /// Attach a named scalar (chainable).
    pub fn extra(mut self, key: impl Into<String>, value: f64) -> Self {
        self.extras.push((key.into(), value));
        self
    }
}

/// All trials of one cell, in trial order.
#[derive(Debug, Clone)]
pub struct CellResults {
    /// The cell description.
    pub cell: SweepCell,
    /// One entry per trial.
    pub trials: Vec<TrialResult>,
}

/// Aggregates of one cell.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// The cell description.
    pub cell: SweepCell,
    /// Trials executed.
    pub trials: usize,
    /// Trials with `success == true`.
    pub successes: usize,
    /// Trials with `completed == true`.
    pub completed: usize,
    /// Trials cut off by the round cap while incomplete — a non-zero
    /// count flags protocols the cap would otherwise silently mask.
    pub hit_round_cap: usize,
    /// Mean informed-node count.
    pub mean_informed: f64,
    /// Round counts over all trials.
    pub rounds: Option<SummaryStats>,
    /// Round counts over successful trials only (the paper's broadcast
    /// time conditions on success).
    pub rounds_success: Option<SummaryStats>,
    /// Total transmissions over all trials.
    pub total_transmissions: Option<SummaryStats>,
    /// Max per-node transmissions over all trials.
    pub max_transmissions_per_node: u32,
    /// Model-based total energy over the trials that ran with an energy
    /// overlay (`None` when none did).
    pub energy_total: Option<SummaryStats>,
    /// Model-based max per-node energy over energy-overlay trials.
    pub energy_max_per_node: Option<SummaryStats>,
    /// Network lifetime (first battery-depletion round) over the trials
    /// in which some battery depleted. Its `n` being smaller than the
    /// energy-trial count means the remaining runs ended with every
    /// battery still alive.
    pub lifetime: Option<SummaryStats>,
    /// Battery-depleted node counts over energy-overlay trials.
    pub depleted_nodes: Option<SummaryStats>,
    /// Per-key stats over the trials that reported each extra, in
    /// first-seen order.
    pub extras: Vec<(String, SummaryStats)>,
}

impl CellSummary {
    fn from_results(results: &CellResults) -> Self {
        let ts = &results.trials;
        let stats = |xs: Vec<f64>| (!xs.is_empty()).then(|| SummaryStats::from_slice(&xs));
        let energy: Vec<&TrialEnergy> = ts.iter().filter_map(|t| t.energy.as_ref()).collect();
        let mut extra_keys: Vec<String> = Vec::new();
        for t in ts {
            for (k, _) in &t.extras {
                if !extra_keys.iter().any(|e| e == k) {
                    extra_keys.push(k.clone());
                }
            }
        }
        let extras = extra_keys
            .into_iter()
            .filter_map(|key| {
                let xs: Vec<f64> = ts
                    .iter()
                    .flat_map(|t| t.extras.iter())
                    .filter(|(k, _)| *k == key)
                    .map(|(_, v)| *v)
                    .collect();
                stats(xs).map(|s| (key, s))
            })
            .collect();
        CellSummary {
            cell: results.cell.clone(),
            trials: ts.len(),
            successes: ts.iter().filter(|t| t.success).count(),
            completed: ts.iter().filter(|t| t.completed).count(),
            hit_round_cap: ts.iter().filter(|t| t.hit_round_cap).count(),
            mean_informed: if ts.is_empty() {
                0.0
            } else {
                ts.iter().map(|t| t.informed as f64).sum::<f64>() / ts.len() as f64
            },
            rounds: stats(ts.iter().map(|t| t.rounds as f64).collect()),
            rounds_success: stats(
                ts.iter()
                    .filter(|t| t.success)
                    .map(|t| t.rounds as f64)
                    .collect(),
            ),
            total_transmissions: stats(ts.iter().map(|t| t.total_transmissions as f64).collect()),
            max_transmissions_per_node: ts
                .iter()
                .map(|t| t.max_transmissions_per_node)
                .max()
                .unwrap_or(0),
            energy_total: stats(energy.iter().map(|e| e.total).collect()),
            energy_max_per_node: stats(energy.iter().map(|e| e.max_per_node).collect()),
            lifetime: stats(
                energy
                    .iter()
                    .filter_map(|e| e.first_depletion_round.map(|r| r as f64))
                    .collect(),
            ),
            depleted_nodes: stats(energy.iter().map(|e| e.depleted as f64).collect()),
            extras,
        }
    }
}

/// A declarative sweep: named, seeded, with a cell list and a trial
/// count shared by every cell.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Report name; the JSON lands at `results/sweep_<name>.json`.
    pub name: String,
    /// Master seed every trial stream derives from.
    pub base_seed: u64,
    /// Trials per cell.
    pub trials: usize,
    cells: Vec<SweepCell>,
    /// Intra-run scatter threads the runner should hand the engine
    /// (`1` = classic trial-level fan-out only).
    threads_per_run: usize,
}

impl Sweep {
    /// An empty sweep.
    pub fn new(name: impl Into<String>, base_seed: u64, trials: usize) -> Self {
        Sweep {
            name: name.into(),
            base_seed,
            trials,
            cells: Vec::new(),
            threads_per_run: 1,
        }
    }

    /// Trade trial-level for run-level parallelism: with
    /// `threads_per_run > 1` the trial fan-out runs serially and each
    /// trial is expected to drive the engine with that many intra-run
    /// scatter workers (`EngineConfig::with_threads(sweep.run_threads())`
    /// in the runner closure — the sweep machinery never builds engines
    /// itself). The right trade for *huge* cells, where a single run
    /// saturates memory bandwidth and per-trial rayon tasks would thrash
    /// each other's caches. Either setting produces bit-identical
    /// reports: run results are thread-count independent by the engine's
    /// receiver-range-partition contract, and trial seeds depend only on
    /// `(base_seed, cell, trial)`.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads_per_run(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads_per_run must be at least 1");
        self.threads_per_run = threads;
        self
    }

    /// The intra-run thread count runner closures should pass to
    /// [`EngineConfig::with_threads`](crate::EngineConfig::with_threads).
    pub fn run_threads(&self) -> usize {
        self.threads_per_run
    }

    /// Append one explicit cell.
    pub fn push(&mut self, cell: SweepCell) -> &mut Self {
        self.cells.push(cell);
        self
    }

    /// Append the full cartesian product `algorithms × families × ns × ps`
    /// (in that nesting order, innermost `ps`).
    pub fn grid(
        &mut self,
        algorithms: &[&str],
        families: &[GraphFamily],
        ns: &[usize],
        ps: &[f64],
    ) -> &mut Self {
        for &alg in algorithms {
            for family in families {
                for &n in ns {
                    for &p in ps {
                        self.cells.push(SweepCell::new(alg, family.clone(), n, p));
                    }
                }
            }
        }
        self
    }

    /// The cells, in execution order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// The independent seed of `(cell, trial)`: two keyed
    /// [`split_seed`](radio_util::split_seed) hops, so neither reordering
    /// cells nor changing the trial count correlates streams.
    pub fn trial_seed(&self, cell_index: usize, trial: usize) -> u64 {
        let cell_seed = split_seed(self.base_seed, b"sweep-cell", cell_index as u64);
        split_seed(cell_seed, b"sweep-trial", trial as u64)
    }

    /// Run every `(cell, trial)` with rayon fan-out and return the raw
    /// per-trial results, in cell-then-trial order.
    ///
    /// The runner receives the cell, the freshly generated graph for this
    /// trial, and the trial seed (all protocol randomness must derive
    /// from it). It must be a pure function of its arguments; execution
    /// order then cannot influence results.
    pub fn collect<F>(&self, runner: F) -> Vec<CellResults>
    where
        F: Fn(&SweepCell, &DiGraph, u64) -> TrialResult + Sync,
    {
        if self.threads_per_run > 1 {
            // Run-level parallelism owns the cores: execute trials
            // serially and let each run's scatter phase fan out inside
            // the engine. Identical results either way (see
            // `with_threads_per_run`).
            return self.collect_serial(runner);
        }
        let total = self.cells.len() * self.trials;
        let flat: Vec<TrialResult> = (0..total)
            .into_par_iter()
            .map(|i| self.one_trial(i, &runner))
            .collect();
        self.group(flat)
    }

    /// [`Sweep::collect`] without the thread fan-out — the 1-thread
    /// reference the determinism tests compare against.
    pub fn collect_serial<F>(&self, runner: F) -> Vec<CellResults>
    where
        F: Fn(&SweepCell, &DiGraph, u64) -> TrialResult + Sync,
    {
        let total = self.cells.len() * self.trials;
        let flat: Vec<TrialResult> = (0..total).map(|i| self.one_trial(i, &runner)).collect();
        self.group(flat)
    }

    /// Execute and aggregate in one step.
    pub fn run<F>(&self, runner: F) -> SweepReport
    where
        F: Fn(&SweepCell, &DiGraph, u64) -> TrialResult + Sync,
    {
        self.report(&self.collect(runner))
    }

    /// Serial [`Sweep::run`].
    pub fn run_serial<F>(&self, runner: F) -> SweepReport
    where
        F: Fn(&SweepCell, &DiGraph, u64) -> TrialResult + Sync,
    {
        self.report(&self.collect_serial(runner))
    }

    /// Execute every trial of one cell (serially, in trial order) and
    /// return its results. Lets callers interleave their own per-cell
    /// bookkeeping — wall-clock timing, progress logging — while keeping
    /// the exact seeds and aggregation of [`Sweep::collect`]: running
    /// every index through this and feeding the list to
    /// [`Sweep::report`] reproduces `run`'s output bit for bit.
    ///
    /// # Panics
    /// Panics if `cell_index` is out of range.
    pub fn run_cell<F>(&self, cell_index: usize, runner: &F) -> CellResults
    where
        F: Fn(&SweepCell, &DiGraph, u64) -> TrialResult + Sync,
    {
        assert!(cell_index < self.cells.len(), "cell index out of range");
        CellResults {
            cell: self.cells[cell_index].clone(),
            trials: (0..self.trials)
                .map(|t| self.one_trial(cell_index * self.trials + t, runner))
                .collect(),
        }
    }

    /// [`Sweep::run_cell`] with rayon fan-out over the cell's trials —
    /// the cell-granular execution hook the campaign runner drives: it
    /// checkpoints between cells, so parallelism has to live *inside*
    /// the cell. Seeds and aggregation are identical to `run_cell`
    /// (trial seeds depend only on `(base_seed, cell, trial)`), so the
    /// two produce bit-identical results.
    ///
    /// # Panics
    /// Panics if `cell_index` is out of range.
    pub fn run_cell_par<F>(&self, cell_index: usize, runner: &F) -> CellResults
    where
        F: Fn(&SweepCell, &DiGraph, u64) -> TrialResult + Sync,
    {
        assert!(cell_index < self.cells.len(), "cell index out of range");
        if self.threads_per_run > 1 {
            // Run-level parallelism owns the cores (see
            // `with_threads_per_run`): keep the trial loop serial.
            return self.run_cell(cell_index, runner);
        }
        CellResults {
            cell: self.cells[cell_index].clone(),
            trials: (0..self.trials)
                .into_par_iter()
                .map(|t| self.one_trial(cell_index * self.trials + t, runner))
                .collect(),
        }
    }

    /// [`Sweep::run_cell`] without the machinery-side graph generation:
    /// the runner receives only `(cell, trial_seed)` and owns topology
    /// construction. This is the hook for backends the sweep cannot
    /// build — a campaign cell on an implicit topology generates an
    /// [`ImplicitGrid`](radio_graph::ImplicitGrid) from
    /// `derive_rng(seed, b"sweep-graph", 0)` (the exact stream
    /// `run_cell` would have fed the CSR generator, so the two backends
    /// see identical position draws) instead of materializing a CSR
    /// graph it can't afford.
    ///
    /// # Panics
    /// Panics if `cell_index` is out of range.
    pub fn run_cell_raw<F>(&self, cell_index: usize, runner: &F) -> CellResults
    where
        F: Fn(&SweepCell, u64) -> TrialResult + Sync,
    {
        assert!(cell_index < self.cells.len(), "cell index out of range");
        let cell = &self.cells[cell_index];
        CellResults {
            cell: cell.clone(),
            trials: (0..self.trials)
                .map(|t| runner(cell, self.trial_seed(cell_index, t)))
                .collect(),
        }
    }

    /// [`Sweep::run_cell_raw`] with rayon fan-out over trials —
    /// bit-identical results (trial seeds depend only on
    /// `(base_seed, cell, trial)`).
    ///
    /// # Panics
    /// Panics if `cell_index` is out of range.
    pub fn run_cell_raw_par<F>(&self, cell_index: usize, runner: &F) -> CellResults
    where
        F: Fn(&SweepCell, u64) -> TrialResult + Sync,
    {
        assert!(cell_index < self.cells.len(), "cell index out of range");
        if self.threads_per_run > 1 {
            return self.run_cell_raw(cell_index, runner);
        }
        let cell = &self.cells[cell_index];
        CellResults {
            cell: cell.clone(),
            trials: (0..self.trials)
                .into_par_iter()
                .map(|t| runner(cell, self.trial_seed(cell_index, t)))
                .collect(),
        }
    }

    /// Aggregate raw results (e.g. from [`Sweep::collect`]) into a report.
    pub fn report(&self, results: &[CellResults]) -> SweepReport {
        SweepReport {
            name: self.name.clone(),
            base_seed: self.base_seed,
            trials_per_cell: self.trials,
            cells: results.iter().map(CellSummary::from_results).collect(),
        }
    }

    fn one_trial<F>(&self, flat_index: usize, runner: &F) -> TrialResult
    where
        F: Fn(&SweepCell, &DiGraph, u64) -> TrialResult + Sync,
    {
        let cell_index = flat_index / self.trials;
        let trial = flat_index % self.trials;
        let cell = &self.cells[cell_index];
        let seed = self.trial_seed(cell_index, trial);
        let graph = cell
            .family
            .generate(cell.n, cell.p, &mut derive_rng(seed, b"sweep-graph", 0));
        runner(cell, &graph, seed)
    }

    fn group(&self, flat: Vec<TrialResult>) -> Vec<CellResults> {
        let mut out: Vec<CellResults> = self
            .cells
            .iter()
            .map(|cell| CellResults {
                cell: cell.clone(),
                trials: Vec::with_capacity(self.trials),
            })
            .collect();
        for (i, trial) in flat.into_iter().enumerate() {
            out[i / self.trials].trials.push(trial);
        }
        out
    }
}

/// Aggregated sweep output; serializes to deterministic JSON.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Sweep name.
    pub name: String,
    /// Master seed (stringified in JSON so 64-bit values stay exact).
    pub base_seed: u64,
    /// Trials per cell.
    pub trials_per_cell: usize,
    /// One summary per cell, in sweep order.
    pub cells: Vec<CellSummary>,
}

fn stats_json(s: &SummaryStats) -> Json {
    Json::obj(vec![
        ("n", Json::Num(s.n as f64)),
        ("mean", Json::Num(s.mean)),
        ("std", Json::Num(s.std)),
        ("min", Json::Num(s.min)),
        ("max", Json::Num(s.max)),
        ("median", Json::Num(s.median)),
    ])
}

fn opt_stats_json(s: &Option<SummaryStats>) -> Json {
    s.as_ref().map_or(Json::Null, stats_json)
}

impl SweepReport {
    /// The report as a JSON tree.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("algorithm", Json::str(&c.cell.algorithm)),
                    ("family", Json::str(c.cell.family.label())),
                    ("n", Json::Num(c.cell.n as f64)),
                    ("p", Json::Num(c.cell.p)),
                    ("trials", Json::Num(c.trials as f64)),
                    ("successes", Json::Num(c.successes as f64)),
                    ("completed", Json::Num(c.completed as f64)),
                    ("hit_round_cap", Json::Num(c.hit_round_cap as f64)),
                    ("mean_informed", Json::Num(c.mean_informed)),
                    ("rounds", opt_stats_json(&c.rounds)),
                    ("rounds_success", opt_stats_json(&c.rounds_success)),
                    (
                        "total_transmissions",
                        opt_stats_json(&c.total_transmissions),
                    ),
                    (
                        "max_transmissions_per_node",
                        Json::Num(c.max_transmissions_per_node as f64),
                    ),
                    ("energy_total", opt_stats_json(&c.energy_total)),
                    (
                        "energy_max_per_node",
                        opt_stats_json(&c.energy_max_per_node),
                    ),
                    ("lifetime", opt_stats_json(&c.lifetime)),
                    ("depleted_nodes", opt_stats_json(&c.depleted_nodes)),
                    (
                        "extras",
                        Json::Obj(
                            c.extras
                                .iter()
                                .map(|(k, s)| (k.clone(), stats_json(s)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("base_seed", Json::str(self.base_seed.to_string())),
            ("trials_per_cell", Json::Num(self.trials_per_cell as f64)),
            ("cells", Json::Arr(cells)),
        ])
    }

    /// The canonical serialized form (byte-deterministic).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Write `sweep_<name>.json` under `dir` (created if missing) and
    /// return the path. The write is atomic (temp file + rename via
    /// [`radio_util::write_atomic`]), so an interrupted campaign never
    /// leaves a torn report — readers see the old complete file or the
    /// new one.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let path = dir.as_ref().join(format!("sweep_{}.json", self.name));
        radio_util::write_atomic(&path, self.to_json_string())?;
        Ok(path)
    }

    /// The summary for a specific cell, if present.
    pub fn cell(&self, cell: &SweepCell) -> Option<&CellSummary> {
        self.cells.iter().find(|c| &c.cell == cell)
    }
}

/// Opt-in per-trial `.rtrc` capture for sweep runners, with **capped
/// retention**: at most `per_cell_cap` recordings per cell, so a
/// thousand-trial sweep keeps a debuggable sample instead of a disk
/// full of traces.
///
/// The plan is deliberately *not* wired into the runner signature —
/// `(cell, graph, seed) → TrialResult` stays untouched, sweeps that
/// don't trace pay nothing. A runner that wants capture holds a plan
/// and asks it per trial:
///
/// ```ignore
/// let plan = TracePlan::new("results/traces", 2);
/// sweep.run(|cell, graph, seed| {
///     let mut sink = plan.open(cell, seed, "v2");
///     let run = match sink.as_mut() {
///         Some(sink) => run_protocol_fused_traced(graph, &mut proto, cfg, seed, sink),
///         None => run_protocol_fused(graph, &mut proto, cfg, seed),
///     };
///     if let Some(sink) = sink {
///         let _ = sink.finish(run.completed); // runner owns the footer
///     }
///     TrialResult::from_run(&run, run.completed, informed)
/// });
/// ```
///
/// `open` is thread-safe (sweeps fan trials out over rayon); the cap
/// check and the slot claim are one atomic step, so concurrent trials
/// of the same cell never over-record. I/O failures degrade, never
/// fail: `open` warns once per plan on stderr, counts the failure in
/// [`degraded`](TracePlan::degraded), releases the claimed slot (a
/// later trial may succeed and use the budget), and yields `None` — a
/// broken trace directory turns a sweep untraced, it never aborts it.
#[derive(Debug)]
pub struct TracePlan {
    dir: PathBuf,
    per_cell_cap: usize,
    counts: std::sync::Mutex<std::collections::HashMap<String, usize>>,
    code_version: Option<String>,
    degraded: std::sync::atomic::AtomicUsize,
}

impl TracePlan {
    /// Record into `dir` (created on first open), keeping at most
    /// `per_cell_cap` recordings per cell.
    pub fn new(dir: impl Into<PathBuf>, per_cell_cap: usize) -> Self {
        TracePlan {
            dir: dir.into(),
            per_cell_cap,
            counts: std::sync::Mutex::new(std::collections::HashMap::new()),
            code_version: None,
            degraded: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Stamp `code_version` into every recording's
    /// [`RunHeader`](radio_trace::RunHeader) instead of the crate
    /// version — the campaign runner passes the scenario spec hash
    /// here, chaining every `.rtrc` back to the exact spec that
    /// produced it.
    pub fn with_code_version(mut self, version: impl Into<String>) -> Self {
        self.code_version = Some(version.into());
        self
    }

    /// The trace directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total recordings opened so far.
    pub fn recorded(&self) -> usize {
        self.counts.lock().expect("trace-plan lock").values().sum()
    }

    /// Recordings that failed to open on I/O errors (capture degraded
    /// to untraced for those trials). Non-zero means the warning was
    /// printed and some traces are missing.
    pub fn degraded(&self) -> usize {
        self.degraded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Claim a recording slot for `(cell, seed)` and open the sink, or
    /// `None` when the cell's cap is reached (or the file cannot be
    /// created). `engine` is the determinism contract the runner drives
    /// (`"v1"` / `"v2"`), stamped into the header so replay tooling
    /// knows how to re-drive the run. The caller must call
    /// [`finish`](radio_trace::RecordingSink::finish) after the run.
    pub fn open(
        &self,
        cell: &SweepCell,
        seed: u64,
        engine: &str,
    ) -> Option<radio_trace::RecordingSink<io::BufWriter<std::fs::File>>> {
        let key = format!(
            "{}/{}/n{}/p{}",
            cell.algorithm,
            cell.family.label(),
            cell.n,
            cell.p
        );
        {
            let mut counts = self.counts.lock().expect("trace-plan lock");
            let slot = counts.entry(key.clone()).or_insert(0);
            if *slot >= self.per_cell_cap {
                return None;
            }
            *slot += 1;
        }
        let topology = format!("{}/n={}/p={}", cell.family.label(), cell.n, cell.p);
        let mut header = radio_trace::RunHeader::new(seed, engine, topology);
        if let Some(v) = &self.code_version {
            header.code_version = v.clone();
        }
        let file = format!(
            "{}-{}-n{}-p{}-s{}.rtrc",
            cell.algorithm,
            cell.family.label(),
            cell.n,
            cell.p,
            seed
        );
        match radio_trace::RecordingSink::create(self.dir.join(file), &header) {
            Ok(sink) => Some(sink),
            Err(e) => {
                // Give the slot back: the failure consumed no recording,
                // and the directory may become writable again.
                if let Ok(mut counts) = self.counts.lock() {
                    if let Some(slot) = counts.get_mut(&key) {
                        *slot = slot.saturating_sub(1);
                    }
                }
                let prior = self
                    .degraded
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if prior == 0 {
                    eprintln!(
                        "radio-sim: warning: trace capture degraded — cannot create \
                         recording under {}: {e} (further failures suppressed; \
                         affected trials run untraced)",
                        self.dir.display()
                    );
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_protocol;
    use crate::{Action, EngineConfig, Protocol};
    use radio_graph::NodeId;
    use rand::RngExt;
    use rand_chacha::ChaCha8Rng;

    /// p-flood: every informed node transmits with probability 0.3.
    struct P3Flood {
        informed: Vec<bool>,
        n_informed: usize,
    }

    impl P3Flood {
        fn new(n: usize) -> Self {
            let mut informed = vec![false; n];
            informed[0] = true;
            P3Flood {
                informed,
                n_informed: 1,
            }
        }
    }

    impl Protocol for P3Flood {
        type Msg = ();
        fn initially_awake(&self) -> Vec<NodeId> {
            vec![0]
        }
        fn decide(&mut self, _n: NodeId, _r: u64, rng: &mut ChaCha8Rng) -> Action {
            if rng.random_bool(0.3) {
                Action::Transmit
            } else {
                Action::Silent
            }
        }
        fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
        fn on_receive(
            &mut self,
            node: NodeId,
            _f: NodeId,
            _r: u64,
            _m: &Self::Msg,
            _rng: &mut ChaCha8Rng,
        ) {
            if !self.informed[node as usize] {
                self.informed[node as usize] = true;
                self.n_informed += 1;
            }
        }
        fn is_complete(&self) -> bool {
            self.n_informed == self.informed.len()
        }
        fn informed_count(&self) -> usize {
            self.n_informed
        }
        fn active_count(&self) -> usize {
            self.n_informed
        }
    }

    fn flood_runner(cell: &SweepCell, graph: &DiGraph, seed: u64) -> TrialResult {
        let mut p = P3Flood::new(cell.n);
        let mut rng = derive_rng(seed, b"sweep-proto", 0);
        let run = run_protocol(graph, &mut p, EngineConfig::with_max_rounds(400), &mut rng);
        let informed = p.n_informed;
        TrialResult::from_run(&run, informed == cell.n, informed)
            .extra("informed_frac", informed as f64 / cell.n as f64)
    }

    fn small_sweep() -> Sweep {
        let mut sw = Sweep::new("unit", 99, 6);
        sw.grid(
            &["p3_flood"],
            &[GraphFamily::GnpDirected],
            &[48, 96],
            &[0.12],
        );
        sw.push(SweepCell::new("p3_flood", GraphFamily::Path, 20, 0.0));
        sw
    }

    #[test]
    fn grid_enumerates_cartesian_product_plus_pushed_cells() {
        let sw = small_sweep();
        assert_eq!(sw.cells().len(), 3);
        assert_eq!(sw.cells()[0].n, 48);
        assert_eq!(sw.cells()[1].n, 96);
        assert_eq!(sw.cells()[2].family, GraphFamily::Path);
    }

    #[test]
    fn trial_seeds_are_distinct_across_cells_and_trials() {
        let sw = small_sweep();
        let mut seeds = Vec::new();
        for c in 0..sw.cells().len() {
            for t in 0..sw.trials {
                seeds.push(sw.trial_seed(c, t));
            }
        }
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
    }

    #[test]
    fn parallel_and_serial_reports_are_bit_identical() {
        let sw = small_sweep();
        let par = sw.run(flood_runner).to_json_string();
        let ser = sw.run_serial(flood_runner).to_json_string();
        assert_eq!(par, ser);
        // And stable across repeated execution.
        assert_eq!(par, sw.run(flood_runner).to_json_string());
    }

    #[test]
    fn summaries_aggregate_sensibly() {
        let sw = small_sweep();
        let report = sw.run(flood_runner);
        assert_eq!(report.cells.len(), 3);
        for cell in &report.cells {
            assert_eq!(cell.trials, 6);
            assert!(cell.successes <= cell.trials);
            assert_eq!(
                cell.completed, cell.successes,
                "flood completes iff all informed"
            );
            assert!(cell.mean_informed >= 1.0);
            let (key, frac) = &cell.extras[0];
            assert_eq!(key, "informed_frac");
            assert!(frac.mean > 0.0 && frac.mean <= 1.0);
            // hit_round_cap + completed can undercount trials only if the
            // run quiesced (everyone asleep), which p-flood never does.
            assert_eq!(cell.hit_round_cap + cell.completed, cell.trials);
        }
        // The path cell is tiny and connected: flood always succeeds.
        let path_cell = &report.cells[2];
        assert_eq!(path_cell.successes, path_cell.trials);
        assert!(path_cell.rounds_success.is_some());
    }

    #[test]
    fn json_shape_is_parseable_and_complete() {
        let sw = small_sweep();
        let report = sw.run(flood_runner);
        let parsed = Json::parse(&report.to_json_string()).expect("valid JSON");
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("unit"));
        assert_eq!(parsed.get("base_seed").and_then(Json::as_str), Some("99"));
        let cells = parsed.get("cells").and_then(Json::as_arr).expect("cells");
        assert_eq!(cells.len(), 3);
        assert_eq!(
            cells[0].get("family").and_then(Json::as_str),
            Some("gnp_directed")
        );
        assert!(cells[0].get("rounds").is_some());
        assert!(cells[0]
            .get("extras")
            .and_then(|e| e.get("informed_frac"))
            .is_some());
    }

    #[test]
    fn write_json_lands_named_file() {
        let dir = std::env::temp_dir().join(format!("sweep-test-{}", std::process::id()));
        let sw = Sweep::new("empty", 1, 2);
        let path = sw.run(flood_runner).write_json(&dir).expect("write");
        assert!(path.ends_with("sweep_empty.json"));
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(Json::parse(&text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_cell_matches_collect_and_par_matches_serial() {
        let sw = small_sweep();
        let by_collect = sw.collect(flood_runner);
        for (idx, collected) in by_collect.iter().enumerate() {
            let serial = sw.run_cell(idx, &flood_runner);
            let par = sw.run_cell_par(idx, &flood_runner);
            assert_eq!(serial.trials, collected.trials, "cell {idx}");
            assert_eq!(par.trials, serial.trials, "cell {idx} par");
        }
        // Feeding run_cell_par outputs to report() reproduces run().
        let cells: Vec<CellResults> = (0..sw.cells().len())
            .map(|i| sw.run_cell_par(i, &flood_runner))
            .collect();
        assert_eq!(
            sw.report(&cells).to_json_string(),
            sw.run(flood_runner).to_json_string()
        );
        // A raw runner that replays the machinery's graph stream is
        // indistinguishable from the graph-generating path.
        let raw_runner = |cell: &SweepCell, seed: u64| {
            let graph =
                cell.family
                    .generate(cell.n, cell.p, &mut derive_rng(seed, b"sweep-graph", 0));
            flood_runner(cell, &graph, seed)
        };
        assert_eq!(sw.run_cell_raw(0, &raw_runner).trials, by_collect[0].trials);
        assert_eq!(
            sw.run_cell_raw_par(2, &raw_runner).trials,
            by_collect[2].trials
        );
    }

    #[test]
    fn write_json_replaces_atomically_without_temp_litter() {
        let dir = std::env::temp_dir().join(format!("sweep-atomic-{}", std::process::id()));
        let sw = Sweep::new("atomic", 7, 2);
        let report = sw.run(flood_runner);
        report.write_json(&dir).expect("first write");
        let path = report.write_json(&dir).expect("overwrite");
        assert!(Json::parse(&std::fs::read_to_string(&path).unwrap()).is_ok());
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec!["sweep_atomic.json"],
            "no temp litter: {names:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_plan_stamps_code_version_into_headers() {
        let dir = std::env::temp_dir().join(format!("sweep-traces-cv-{}", std::process::id()));
        let plan = TracePlan::new(&dir, 1).with_code_version("spec:deadbeef");
        let cell = SweepCell::new("flood", GraphFamily::GnpDirected, 16, 0.2);
        plan.open(&cell, 5, "v2")
            .expect("slot")
            .finish(false)
            .expect("footer");
        let rec =
            radio_trace::Recording::read_from(dir.join("flood-gnp_directed-n16-p0.2-s5.rtrc"))
                .expect("readable");
        assert_eq!(rec.header.code_version, "spec:deadbeef");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_plan_degrades_and_releases_slot_on_io_failure() {
        let base = std::env::temp_dir().join(format!("sweep-degraded-{}", std::process::id()));
        std::fs::create_dir_all(&base).expect("scratch dir");
        // A regular file where the trace directory should be makes every
        // create fail.
        let blocked = base.join("not-a-dir");
        std::fs::write(&blocked, "blocker").expect("blocker file");
        let plan = TracePlan::new(blocked.join("traces"), 1);
        let cell = SweepCell::new("flood", GraphFamily::GnpDirected, 16, 0.2);
        assert!(plan.open(&cell, 1, "v1").is_none());
        assert!(plan.open(&cell, 2, "v1").is_none());
        assert_eq!(plan.degraded(), 2, "both failures counted");
        assert_eq!(plan.recorded(), 0, "failed opens must not consume slots");
        // Same cap budget on a working plan still records up to the cap —
        // the failures above didn't burn it (fresh plan, same semantics).
        let plan_ok = TracePlan::new(base.join("traces"), 1);
        assert!(plan_ok.open(&cell, 3, "v1").is_some());
        assert!(plan_ok.open(&cell, 4, "v1").is_none(), "cap still enforced");
        assert_eq!(plan_ok.degraded(), 0);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn trace_plan_caps_recordings_per_cell() {
        let dir = std::env::temp_dir().join(format!("sweep-traces-{}", std::process::id()));
        let plan = TracePlan::new(&dir, 2);
        let cell_a = SweepCell::new("flood", GraphFamily::GnpDirected, 32, 0.2);
        let cell_b = SweepCell::new("flood", GraphFamily::GnpDirected, 64, 0.2);
        for seed in [1u64, 2, 3] {
            let sink = plan.open(&cell_a, seed, "v1");
            if seed <= 2 {
                let sink = sink.expect("under the cap");
                sink.finish(false).expect("footer");
            } else {
                assert!(sink.is_none(), "third recording must be capped");
            }
        }
        // A different cell has its own budget.
        assert!(plan.open(&cell_b, 9, "v2").is_some());
        assert_eq!(plan.recorded(), 3);
        // The capped files are real, readable recordings.
        let rec =
            radio_trace::Recording::read_from(dir.join("flood-gnp_directed-n32-p0.2-s1.rtrc"))
                .expect("readable recording");
        assert_eq!(rec.header.seed, 1);
        assert_eq!(rec.header.engine, "v1");
        assert_eq!(rec.header.topology, "gnp_directed/n=32/p=0.2");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_plan_runs_inside_a_parallel_sweep() {
        let dir = std::env::temp_dir().join(format!("sweep-traces-par-{}", std::process::id()));
        let plan = TracePlan::new(&dir, 1);
        let sw = small_sweep();
        let results = sw.collect(|cell, graph, seed| {
            let mut proto = P3Flood::new(graph.n());
            let mut rng = derive_rng(seed, b"plan", 0);
            let cfg = EngineConfig::with_max_rounds(60);
            let run = match plan.open(cell, seed, "v1") {
                Some(mut sink) => {
                    let run = crate::engine::run_protocol_traced(
                        graph, &mut proto, cfg, &mut rng, &mut sink,
                    );
                    sink.finish(run.completed).expect("footer");
                    run
                }
                None => run_protocol(graph, &mut proto, cfg, &mut rng),
            };
            TrialResult::from_run(&run, run.completed, proto.n_informed)
        });
        // One recording per cell, and traced trials report identically
        // to untraced ones (the sweep report can't tell them apart).
        assert_eq!(plan.recorded(), sw.cells().len());
        let untraced = sw.collect(|_cell, graph, seed| {
            let mut proto = P3Flood::new(graph.n());
            let mut rng = derive_rng(seed, b"plan", 0);
            let run = run_protocol(
                graph,
                &mut proto,
                EngineConfig::with_max_rounds(60),
                &mut rng,
            );
            TrialResult::from_run(&run, run.completed, proto.n_informed)
        });
        assert_eq!(
            sw.report(&results).to_json_string(),
            sw.report(&untraced).to_json_string()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
