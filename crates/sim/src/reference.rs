//! A deliberately naive second implementation of the radio semantics.
//!
//! [`run_reference`] executes the *same* `(protocol, rng)` pair as
//! [`crate::engine::Engine::run`] but computes receptions the slow,
//! obviously-correct way: for every node, count transmitting in-neighbours
//! via the in-adjacency lists and deliver iff the count is exactly one.
//!
//! For the two implementations to be comparable they must consume the RNG
//! identically, so the reference replicates the engine's polling and
//! delivery *order* exactly (awake list semantics, ascending delivery
//! order) and differs only in how collisions are detected. Property tests
//! in the crate root drive both with random graphs/protocols and assert
//! identical outcomes — the standard "differential testing against a
//! trivial oracle" pattern for simulators.

use crate::metrics::Metrics;
use crate::{Action, EngineConfig, Protocol, RunResult};
use radio_graph::{DiGraph, NodeId};
use rand_chacha::ChaCha8Rng;

/// Run `protocol` on `graph` with the naive O(Σ in-degree) semantics.
pub fn run_reference<P: Protocol>(
    graph: &DiGraph,
    protocol: &mut P,
    cfg: EngineConfig,
    rng: &mut ChaCha8Rng,
) -> RunResult {
    let n = graph.n();
    let mut metrics = Metrics::new(n);

    let mut is_awake = vec![false; n];
    let mut awake_list: Vec<NodeId> = Vec::new();
    let mut awake_count = 0usize;
    for v in protocol.initially_awake() {
        if !is_awake[v as usize] {
            is_awake[v as usize] = true;
            awake_count += 1;
            awake_list.push(v);
        }
    }

    let mut sent_this_round = vec![false; n];
    let mut rounds = 0u64;
    let mut completed = protocol.is_complete();

    while !completed && rounds < cfg.max_rounds && awake_count > 0 {
        rounds += 1;
        let round = rounds;

        // Poll in exactly the engine's order (compacting sweep).
        let mut transmitters: Vec<NodeId> = Vec::new();
        let mut w = 0usize;
        for r in 0..awake_list.len() {
            let v = awake_list[r];
            if !is_awake[v as usize] {
                continue;
            }
            match protocol.decide(v, round, rng) {
                Action::Silent => {
                    awake_list[w] = v;
                    w += 1;
                }
                Action::Transmit => {
                    transmitters.push(v);
                    awake_list[w] = v;
                    w += 1;
                }
                Action::Sleep => {
                    is_awake[v as usize] = false;
                    awake_count -= 1;
                }
            }
        }
        awake_list.truncate(w);

        for &u in &transmitters {
            metrics.record_transmission(u);
            sent_this_round[u as usize] = true;
        }

        // Naive reception: scan every node's full in-neighbour list.
        for v in 0..n as NodeId {
            let vi = v as usize;
            if cfg.half_duplex && sent_this_round[vi] {
                continue;
            }
            let mut heard: Option<NodeId> = None;
            let mut count = 0u32;
            for &u in graph.in_neighbors(v) {
                if sent_this_round[u as usize] {
                    count += 1;
                    heard = Some(u);
                }
            }
            if count == 1 {
                let from = heard.expect("count == 1 implies a source");
                let msg = protocol.payload(from, round);
                protocol.on_receive(v, from, round, &msg, rng);
                if !is_awake[vi] {
                    is_awake[vi] = true;
                    awake_count += 1;
                    awake_list.push(v);
                }
            }
        }

        for &u in &transmitters {
            sent_this_round[u as usize] = false;
        }

        completed = protocol.is_complete();
    }

    metrics.set_rounds(rounds);
    RunResult {
        rounds,
        completed,
        hit_round_cap: !completed && rounds >= cfg.max_rounds,
        metrics,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_protocol;
    use radio_graph::generate::gnp_directed;
    use radio_util::derive_rng;
    use rand::RngExt;

    /// A protocol with both randomness and sleep transitions, to exercise
    /// every ordering subtlety shared by engine and reference.
    struct RandomQuiet {
        informed: Vec<bool>,
        n_informed: usize,
        budget: Vec<u8>,
    }

    impl RandomQuiet {
        fn new(n: usize, budget: u8) -> Self {
            let mut informed = vec![false; n];
            informed[0] = true;
            RandomQuiet {
                informed,
                n_informed: 1,
                budget: vec![budget; n],
            }
        }
    }

    impl Protocol for RandomQuiet {
        type Msg = ();
        fn initially_awake(&self) -> Vec<NodeId> {
            vec![0]
        }
        fn decide(&mut self, node: NodeId, _round: u64, rng: &mut ChaCha8Rng) -> Action {
            let b = &mut self.budget[node as usize];
            if *b == 0 {
                return Action::Sleep;
            }
            if rng.random_bool(0.4) {
                *b -= 1;
                Action::Transmit
            } else {
                Action::Silent
            }
        }
        fn payload(&self, _n: NodeId, _r: u64) -> Self::Msg {}
        fn on_receive(
            &mut self,
            node: NodeId,
            _f: NodeId,
            _r: u64,
            _m: &Self::Msg,
            _rng: &mut ChaCha8Rng,
        ) {
            if !self.informed[node as usize] {
                self.informed[node as usize] = true;
                self.n_informed += 1;
            }
        }
        fn is_complete(&self) -> bool {
            self.n_informed == self.informed.len()
        }
        fn informed_count(&self) -> usize {
            self.n_informed
        }
        fn active_count(&self) -> usize {
            self.n_informed
        }
    }

    #[test]
    fn engine_matches_reference_on_random_graphs() {
        for seed in 0..10u64 {
            let g = gnp_directed(120, 0.06, &mut derive_rng(seed, b"refg", 0));
            let cfg = EngineConfig::with_max_rounds(400);

            let mut p1 = RandomQuiet::new(120, 3);
            let mut rng1 = derive_rng(seed, b"refrun", 0);
            let fast = run_protocol(&g, &mut p1, cfg, &mut rng1);

            let mut p2 = RandomQuiet::new(120, 3);
            let mut rng2 = derive_rng(seed, b"refrun", 0);
            let slow = run_reference(&g, &mut p2, cfg, &mut rng2);

            assert_eq!(fast.rounds, slow.rounds, "seed {seed}");
            assert_eq!(fast.completed, slow.completed, "seed {seed}");
            assert_eq!(
                fast.metrics.per_node(),
                slow.metrics.per_node(),
                "seed {seed}"
            );
            assert_eq!(p1.informed, p2.informed, "seed {seed}");
        }
    }

    /// Gossip-style protocol with set-valued payloads: exercises the
    /// payload materialisation path of both engines.
    struct TinyGossip {
        known: Vec<radio_util::BitSet>,
        rounds_budget: u64,
    }

    impl TinyGossip {
        fn new(n: usize, rounds_budget: u64) -> Self {
            TinyGossip {
                known: (0..n)
                    .map(|v| {
                        let mut s = radio_util::BitSet::new(n);
                        s.insert(v);
                        s
                    })
                    .collect(),
                rounds_budget,
            }
        }
    }

    impl Protocol for TinyGossip {
        type Msg = radio_util::BitSet;
        fn initially_awake(&self) -> Vec<NodeId> {
            (0..self.known.len() as NodeId).collect()
        }
        fn decide(&mut self, _node: NodeId, round: u64, rng: &mut ChaCha8Rng) -> Action {
            if round > self.rounds_budget {
                return Action::Sleep;
            }
            if rng.random_bool(0.2) {
                Action::Transmit
            } else {
                Action::Silent
            }
        }
        fn payload(&self, node: NodeId, _round: u64) -> Self::Msg {
            self.known[node as usize].clone()
        }
        fn on_receive(
            &mut self,
            node: NodeId,
            _from: NodeId,
            _round: u64,
            msg: &Self::Msg,
            _rng: &mut ChaCha8Rng,
        ) {
            self.known[node as usize].union_with(msg);
        }
        fn is_complete(&self) -> bool {
            false
        }
        fn informed_count(&self) -> usize {
            self.known.iter().filter(|s| s.is_full()).count()
        }
        fn active_count(&self) -> usize {
            self.known.len()
        }
    }

    #[test]
    fn engine_matches_reference_with_gossip_payloads() {
        for seed in 30..36u64 {
            let g = gnp_directed(60, 0.12, &mut derive_rng(seed, b"refg", 2));
            let cfg = EngineConfig::with_max_rounds(80);
            let mut p1 = TinyGossip::new(60, 60);
            let mut rng1 = derive_rng(seed, b"refrun", 2);
            let fast = run_protocol(&g, &mut p1, cfg, &mut rng1);
            let mut p2 = TinyGossip::new(60, 60);
            let mut rng2 = derive_rng(seed, b"refrun", 2);
            let slow = run_reference(&g, &mut p2, cfg, &mut rng2);
            assert_eq!(fast.rounds, slow.rounds, "seed {seed}");
            assert_eq!(fast.metrics.per_node(), slow.metrics.per_node());
            for v in 0..60 {
                assert_eq!(
                    p1.known[v].len(),
                    p2.known[v].len(),
                    "seed {seed}: node {v} rumor sets diverge"
                );
            }
        }
    }

    #[test]
    fn engine_matches_reference_full_duplex() {
        for seed in 20..25u64 {
            let g = gnp_directed(80, 0.1, &mut derive_rng(seed, b"refg", 1));
            let cfg = EngineConfig {
                max_rounds: 300,
                half_duplex: false,
                warn_on_round_cap: false,
                ..Default::default()
            };
            let mut p1 = RandomQuiet::new(80, 2);
            let mut rng1 = derive_rng(seed, b"refrun", 1);
            let fast = run_protocol(&g, &mut p1, cfg, &mut rng1);
            let mut p2 = RandomQuiet::new(80, 2);
            let mut rng2 = derive_rng(seed, b"refrun", 1);
            let slow = run_reference(&g, &mut p2, cfg, &mut rng2);
            assert_eq!(fast.rounds, slow.rounds);
            assert_eq!(fast.metrics.per_node(), slow.metrics.per_node());
            assert_eq!(p1.informed, p2.informed);
        }
    }
}
