//! Incremental edge-list construction of [`DiGraph`]s.

use crate::{DiGraph, NodeId};

/// Accumulates directed edges, then builds a CSR [`DiGraph`].
///
/// Validation happens at [`GraphBuilder::add_edge`] time so errors point at
/// the offending generator line, not at `build()`.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes with no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocate for `m` expected edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add the directed edge `u → v` (`v` hears `u`).
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        assert!(u != v, "self-loop ({u}, {u}) rejected");
        self.edges.push((u, v));
        self
    }

    /// Add both `u → v` and `v → u` (mutual communication range).
    #[inline]
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_edge(u, v);
        self.add_edge(v, u)
    }

    /// Finish: sort, dedup, build CSR.
    pub fn build(mut self) -> DiGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        DiGraph::from_sorted_unique_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(0, 2);
        let g = b.build();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn dedup_on_build() {
        let mut b = GraphBuilder::with_capacity(4, 8);
        for _ in 0..5 {
            b.add_edge(1, 3);
        }
        assert_eq!(b.pending_edges(), 5);
        assert_eq!(b.build().m(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_self_loop_eagerly() {
        GraphBuilder::new(4).add_edge(2, 2);
    }
}
