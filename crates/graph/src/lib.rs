//! Directed radio-network graphs.
//!
//! The paper (§1.2) models an ad-hoc network as a directed graph
//! `G = (V, E)`. We adopt the operational convention used throughout its
//! analysis: an edge `u → v` means **`v` can hear `u`'s transmissions**
//! (`u`'s fixed communication range covers `v`). The radio collision rule
//! then reads: `v` receives a message in a round iff *exactly one*
//! in-neighbour of `v` transmits in that round.
//!
//! * [`DiGraph`] — compressed-sparse-row digraph with both out- and
//!   in-adjacency (the engine needs out-edges to scatter transmissions and
//!   in-edges only for analysis/validation).
//! * [`builder::GraphBuilder`] — edge-list accumulation with dedup.
//! * [`generate`] — every topology the paper uses or suggests:
//!   `G(n,p)` (directed/undirected), classic shapes, the Observation 4.3
//!   star-chain, the Theorem 4.4 / Figure 2 lower-bound network, and
//!   random geometric graphs (§5 future work).
//! * [`analysis`] — BFS layers, eccentricity/diameter, strong
//!   connectivity, degree statistics.
//! * [`topology`] — the graph as a neighbor *query* instead of a data
//!   structure: the [`Topology`] trait over the CSR oracle and the
//!   O(n)/O(1)-memory implicit backends ([`ImplicitGrid`],
//!   [`ImplicitGnp`]) that lift the O(m) materialisation ceiling.

pub mod analysis;
pub mod builder;
pub mod components;
pub mod csr;
pub mod generate;
pub mod topology;

pub use builder::GraphBuilder;
pub use components::{induced_subgraph, largest_scc, strongly_connected_components, Subgraph};
pub use csr::Csr;
pub use generate::GraphFamily;
pub use topology::{GridIndex, ImplicitGnp, ImplicitGrid, RangeQueryCost, Topology};

/// Node identifier. `u32` keeps adjacency arrays compact (the perf guides'
/// "smaller integers" advice); 4 × 10⁹ nodes is far beyond any simulation
/// here.
pub type NodeId = u32;

/// A directed graph in CSR form with both orientations materialised.
///
/// Immutable after construction; cloning is cheap relative to simulation
/// cost but rarely needed (the engine borrows it).
#[derive(Clone, PartialEq, Eq)]
pub struct DiGraph {
    /// Out-adjacency: `out.row(u)` = nodes that hear `u`.
    out: Csr,
    /// In-adjacency: `inn.row(v)` = nodes that `v` hears.
    inn: Csr,
}

impl std::fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiGraph")
            .field("n", &self.n())
            .field("m", &self.m())
            .finish()
    }
}

impl DiGraph {
    /// Build from an edge list. Duplicate edges are collapsed; self-loops
    /// are rejected (a radio cannot usefully transmit to itself).
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n` or any edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Internal: assemble from pre-validated, sorted, deduped edge list.
    /// The in-view is the transpose of the out-view; the counting sort in
    /// [`Csr::transpose`] keeps sources sorted within each bucket because
    /// the edge list is sorted by `(u, v)`.
    pub(crate) fn from_sorted_unique_edges(n: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        let out = Csr::from_sorted_pairs(n, edges.into_iter());
        let inn = out.transpose();
        DiGraph { out, inn }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.out.n()
    }

    /// Number of directed edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.out.nnz()
    }

    /// The out-adjacency CSR view (`row(u)` = nodes that hear `u`). Hot
    /// loops borrow this once and index its raw arrays directly.
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// The in-adjacency CSR view (`row(v)` = nodes that `v` hears).
    #[inline]
    pub fn in_csr(&self) -> &Csr {
        &self.inn
    }

    /// Nodes whose radios can hear `u` (sorted).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.out.row(u)
    }

    /// Nodes that `v` can hear (sorted).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.inn.row(v)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out.degree(u)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inn.degree(v)
    }

    /// Edge membership test (binary search on the sorted out-list).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// The transpose graph (every edge reversed).
    pub fn reverse(&self) -> DiGraph {
        DiGraph {
            out: self.inn.clone(),
            inn: self.out.clone(),
        }
    }

    /// Iterate all edges in `(source-sorted, target-sorted)` order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// True if for every edge `u → v` the reverse edge `v → u` exists
    /// (i.e. all communication ranges are mutual).
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 → {1,2} → 3
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_adjacency_is_consistent() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn has_edge_and_symmetry() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.is_symmetric());
        let sym = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);
        assert!(sym.is_symmetric());
    }

    #[test]
    fn reverse_transposes_all_edges() {
        let g = diamond();
        let r = g.reverse();
        for (u, v) in g.edges() {
            assert!(r.has_edge(v, u));
        }
        assert_eq!(r.m(), g.m());
        assert_eq!(
            r.reverse().edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let _ = DiGraph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_endpoint_rejected() {
        let _ = DiGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(5, &[]);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn csr_views_match_neighbor_accessors() {
        let g = diamond();
        for u in 0..g.n() as NodeId {
            assert_eq!(g.out_csr().row(u), g.out_neighbors(u));
            assert_eq!(g.in_csr().row(u), g.in_neighbors(u));
        }
        assert_eq!(g.out_csr().nnz(), g.m());
        assert_eq!(g.in_csr().nnz(), g.m());
        assert_eq!(g.out_csr().offsets().len(), g.n() + 1);
    }

    #[test]
    fn edges_iterator_sorted() {
        let g = DiGraph::from_edges(4, &[(2, 1), (0, 3), (0, 1), (2, 0)]);
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 3), (2, 0), (2, 1)]);
    }
}
