//! Topology backends: the graph as a *neighbor query*, not a data
//! structure.
//!
//! Every run so far materialized a full CSR ([`DiGraph`]) before the
//! first round — an O(m) memory term that caps experiments near
//! n ≈ 2²⁰ under the generator prealloc budget. But the engine never
//! needs the graph as data: its scatter phase only ever asks *"who
//! hears `u`?"*. [`Topology`] captures exactly that question, so the
//! engine can run over three interchangeable backends:
//!
//! * [`DiGraph`] — the existing CSR oracle. `for_each_out` walks the
//!   stored row; monomorphization compiles the generic engine down to
//!   the same code as before.
//! * [`ImplicitGrid`] — torus points + grid buckets. Neighbors of `u`
//!   are recomputed on the fly from positions in O(expected degree)
//!   using the dedup-correct wrapped cell scan shared with the
//!   materializing geometric generators. O(n) memory.
//! * [`ImplicitGnp`] — `G(n,p)` whose row `u` is re-sampled lazily as a
//!   pure function of `(graph_seed, u)` via a per-row counter-based
//!   ChaCha8 stream (the same trick as `radio_sim`'s `DecideStreams`).
//!   O(1) memory.
//!
//! # Contract
//!
//! For a fixed backend value, `for_each_out(u, …)` must visit a fixed
//! duplicate-free set of neighbors (no self-loops) in a deterministic
//! order, and `for_each_out_range(u, lo, hi, …)` must visit exactly the
//! members of that set with `lo ≤ v < hi`, in the same relative order.
//! Duplicate-freedom is load-bearing for collision semantics: the
//! engine counts *distinct transmitters* heard by a receiver, so a
//! backend that reported the same neighbor twice would turn a single
//! clean delivery into a phantom collision. (This is why the wrapped
//! grid scan had to be dedup-fixed before `ImplicitGrid` could reuse
//! it — see [`grid`].)
//!
//! Implicit backends answer range queries by regenerating the full row
//! and filtering, so a `t`-way *receiver-range* partitioned scatter
//! costs O(t·deg) regeneration work instead of CSR's
//! O(deg + t·log deg) — the price of not storing the row. Backends
//! advertise this through [`Topology::range_query_cost`]: the engine
//! keeps the receiver-range partition where narrowing is cheap
//! ([`RangeQueryCost::Narrowed`], CSR) and switches to a
//! transmitter-sharded partition — each row generated exactly once,
//! hits merged deterministically — where a range query replays the
//! whole row ([`RangeQueryCost::FullRowReplay`], both implicit
//! backends). Rows are pure functions of the backend value, so either
//! partition stays bit-identical for every thread count.

pub mod gnp;
pub mod grid;

pub use gnp::{GnpRowSampler, ImplicitGnp};
pub use grid::{GridIndex, ImplicitGrid};

use crate::{DiGraph, NodeId};

/// What a [`Topology::for_each_out_range`] query costs relative to the
/// full row — the capability hint the engine's scatter phase uses to
/// pick its partition strategy (see the module docs).
///
/// This is a *performance* hint only: it must never affect which
/// neighbors a query visits, so a wrong value costs speed, not
/// correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeQueryCost {
    /// The backend narrows to `[lo, hi)` without touching the rest of
    /// the row (CSR: two binary searches). Receiver-range partitioning
    /// is cheap.
    Narrowed,
    /// The backend answers a range query by regenerating the whole row
    /// and filtering, so `t` range workers pay `t×` the generation
    /// work. Prefer transmitter-sharded partitioning.
    FullRowReplay,
}

/// A directed radio topology, addressed purely through out-neighbor
/// queries (`u → v` means "`v` hears `u`").
///
/// `Sync` is required because the engine's partitioned scatter phase
/// issues queries from worker threads against `&self`.
pub trait Topology: Sync {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// Cheap upper-bound estimate of `u`'s out-degree, used only for
    /// work-size heuristics (e.g. "is this round worth parallelising?").
    /// Must never affect results; exactness is not required.
    fn degree_hint(&self, u: NodeId) -> u64;

    /// Visit every out-neighbor of `u` exactly once, in a deterministic
    /// order (see the module docs for the full contract).
    fn for_each_out<F: FnMut(NodeId)>(&self, u: NodeId, f: F);

    /// Visit exactly the out-neighbors `v` of `u` with `lo ≤ v < hi`,
    /// in the same relative order as [`for_each_out`](Self::for_each_out).
    fn for_each_out_range<F: FnMut(NodeId)>(&self, u: NodeId, lo: NodeId, hi: NodeId, f: F);

    /// How much a range query costs relative to the full row; must not
    /// affect results. Defaults to [`RangeQueryCost::Narrowed`] —
    /// backends whose range queries replay the whole row should
    /// override.
    fn range_query_cost(&self) -> RangeQueryCost {
        RangeQueryCost::Narrowed
    }
}

impl Topology for DiGraph {
    #[inline]
    fn n(&self) -> usize {
        DiGraph::n(self)
    }

    #[inline]
    fn degree_hint(&self, u: NodeId) -> u64 {
        self.out_degree(u) as u64
    }

    #[inline]
    fn for_each_out<F: FnMut(NodeId)>(&self, u: NodeId, mut f: F) {
        for &v in self.out_neighbors(u) {
            f(v);
        }
    }

    /// CSR rows are sorted, so the range is narrowed with two binary
    /// searches — exactly the partitioned-scatter fast path the engine
    /// used before it went generic.
    #[inline]
    fn for_each_out_range<F: FnMut(NodeId)>(&self, u: NodeId, lo: NodeId, hi: NodeId, mut f: F) {
        let row = self.out_neighbors(u);
        let s = row.partition_point(|&v| v < lo);
        let e = s + row[s..].partition_point(|&v| v < hi);
        for &v in &row[s..e] {
            f(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::gnp_directed;
    use radio_util::derive_rng;

    /// Collect a backend's row through the trait.
    fn row<T: Topology>(t: &T, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        t.for_each_out(u, |v| out.push(v));
        out
    }

    #[test]
    fn digraph_backend_matches_csr_rows() {
        let g = gnp_directed(200, 0.05, &mut derive_rng(31, b"topo", 0));
        assert_eq!(Topology::n(&g), 200);
        for u in 0..200 as NodeId {
            assert_eq!(row(&g, u), g.out_neighbors(u));
            assert_eq!(g.degree_hint(u), g.out_degree(u) as u64);
        }
    }

    #[test]
    fn digraph_range_query_partitions_the_row() {
        let g = gnp_directed(300, 0.04, &mut derive_rng(32, b"topo", 0));
        for u in (0..300).step_by(17) {
            let full = row(&g, u as NodeId);
            // Any 3-way split reassembles the full row in order.
            for (lo, hi) in [(0, 100), (100, 200), (200, 300)]
                .iter()
                .map(|&(a, b)| (a as NodeId, b as NodeId))
            {
                let mut part = Vec::new();
                g.for_each_out_range(u as NodeId, lo, hi, |v| part.push(v));
                let want: Vec<NodeId> = full
                    .iter()
                    .copied()
                    .filter(|&v| v >= lo && v < hi)
                    .collect();
                assert_eq!(part, want);
            }
        }
    }

    #[test]
    fn range_query_cost_hints_per_backend() {
        let g = gnp_directed(50, 0.1, &mut derive_rng(34, b"topo", 0));
        assert_eq!(g.range_query_cost(), RangeQueryCost::Narrowed);
        let gnp = ImplicitGnp::new(50, 0.1, 9);
        assert_eq!(gnp.range_query_cost(), RangeQueryCost::FullRowReplay);
        let grid = ImplicitGrid::generate(50, 0.3, &mut derive_rng(34, b"topo", 1));
        assert_eq!(grid.range_query_cost(), RangeQueryCost::FullRowReplay);
    }

    #[test]
    fn digraph_empty_and_degenerate_ranges() {
        let g = gnp_directed(50, 0.2, &mut derive_rng(33, b"topo", 0));
        let mut seen = false;
        g.for_each_out_range(0, 10, 10, |_| seen = true);
        assert!(!seen, "empty range [10, 10) must visit nothing");
    }
}
