//! Grid-bucketed torus geometry: the shared neighborhood scan and the
//! implicit geometric backend.
//!
//! [`GridIndex`] is the one implementation of "which buckets can hold a
//! point within distance `r`?" used by *both* the materializing
//! geometric generators (`generate::geometric`) and the query-on-demand
//! [`ImplicitGrid`] backend. Sharing it is not just DRY — it is how the
//! wrapped-scan dedup fix is guaranteed to hold everywhere at once.
//!
//! # The double-visit bug this module fixes
//!
//! The grid has `cells = max(⌊1/r⌋, 1)` columns/rows, so the 3×3
//! neighborhood of a cell covers all candidates. The old scan visited
//! offsets `d ∈ {−1, 0, +1}` per axis as `(c + d) mod cells` — correct
//! only when `cells ≥ 3`. With `cells == 2` (every radius in
//! (1/3, 0.5], including the tested torus bound r = 0.5) offsets −1 and
//! +1 alias to the *same* wrapped cell, and with `cells == 1` all three
//! do: buckets were visited up to 4× and 9× respectively, emitting
//! duplicate edges that only `GraphBuilder::build`'s sort+dedup hid.
//! An implicit backend replaying that scan per query would have
//! double-counted transmitters and turned clean single deliveries into
//! phantom collisions. [`wrapped_axis`] enumerates the *distinct*
//! wrapped coordinates instead, so each bucket is visited exactly once
//! for every `cells`.

use crate::generate::edge_capacity;
use crate::generate::geometric::torus_dist2;
use crate::topology::{RangeQueryCost, Topology};
use crate::{DiGraph, GraphBuilder, NodeId};
use rand::{Rng, RngExt};

/// Distinct wrapped coordinates of `{c−1, c, c+1}` on a ring of `cells`
/// cells, returned as `(coords, count)` with the valid prefix
/// `coords[..count]`.
///
/// For `cells ≥ 3` the three offsets are distinct and returned in
/// `c−1, c, c+1` (wrapped) order; for `cells == 2` the ring has only
/// the two cells `{c, c ^ 1}`; for `cells == 1` only cell 0 exists.
#[inline]
pub(crate) fn wrapped_axis(c: usize, cells: usize) -> ([usize; 3], usize) {
    debug_assert!(c < cells);
    match cells {
        1 => ([0, 0, 0], 1),
        2 => ([c, c ^ 1, 0], 2),
        _ => (
            [
                if c == 0 { cells - 1 } else { c - 1 },
                c,
                if c + 1 == cells { 0 } else { c + 1 },
            ],
            3,
        ),
    }
}

/// A CSR-shaped spatial hash of torus points: `cells × cells` square
/// buckets, each holding the ids of the points inside it in ascending
/// order. Cell width is ≥ the query radius it was built for, so every
/// point within that radius of `p` lives in the (deduplicated) 3×3
/// neighborhood of `p`'s cell.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cells: usize,
    /// Bucket boundaries: bucket `i` is `nodes[starts[i]..starts[i+1]]`.
    starts: Vec<u32>,
    /// Point ids grouped by bucket, ascending within each bucket.
    nodes: Vec<NodeId>,
}

impl GridIndex {
    /// Bucket `pos` with cell width ≥ `min_cell_width` (the query
    /// radius). The cell count is additionally capped so the bucket
    /// array stays O(n) even for tiny radii — a coarser grid only
    /// enlarges candidate sets, never changes query answers.
    ///
    /// # Panics
    /// Panics unless `min_cell_width > 0` and ids fit `NodeId`.
    pub fn new(pos: &[(f64, f64)], min_cell_width: f64) -> Self {
        assert!(
            min_cell_width > 0.0 && min_cell_width.is_finite(),
            "cell width must be positive and finite"
        );
        assert!(
            pos.len() <= NodeId::MAX as usize,
            "too many points for NodeId"
        );
        let cap = ((4 * pos.len().max(16)) as f64).sqrt() as usize;
        let cells = ((1.0 / min_cell_width).floor() as usize).min(cap).max(1);
        let nc = cells * cells;
        let cell_index = |p: (f64, f64)| -> usize {
            let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
            let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
            cy * cells + cx
        };
        // Counting sort; filling in id order keeps buckets id-sorted.
        let mut starts = vec![0u32; nc + 1];
        for &p in pos {
            starts[cell_index(p) + 1] += 1;
        }
        for i in 0..nc {
            starts[i + 1] += starts[i];
        }
        let mut cursor: Vec<u32> = starts[..nc].to_vec();
        let mut nodes = vec![0 as NodeId; pos.len()];
        for (i, &p) in pos.iter().enumerate() {
            let c = cell_index(p);
            nodes[cursor[c] as usize] = i as NodeId;
            cursor[c] += 1;
        }
        GridIndex {
            cells,
            starts,
            nodes,
        }
    }

    /// Grid side length in cells.
    #[inline]
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// The bucket at grid coordinates `(cx, cy)`.
    #[inline]
    pub fn bucket(&self, cx: usize, cy: usize) -> &[NodeId] {
        let i = cy * self.cells + cx;
        &self.nodes[self.starts[i] as usize..self.starts[i + 1] as usize]
    }

    /// Visit each *distinct* bucket of the wrapped 3×3 neighborhood of
    /// `p`'s cell exactly once (the dedup-correct scan).
    #[inline]
    pub fn for_each_candidate_bucket<F: FnMut(&[NodeId])>(&self, p: (f64, f64), mut f: F) {
        let cx = ((p.0 * self.cells as f64) as usize).min(self.cells - 1);
        let cy = ((p.1 * self.cells as f64) as usize).min(self.cells - 1);
        let (xs, nx) = wrapped_axis(cx, self.cells);
        let (ys, ny) = wrapped_axis(cy, self.cells);
        for &by in &ys[..ny] {
            for &bx in &xs[..nx] {
                f(self.bucket(bx, by));
            }
        }
    }

    /// Total number of candidate ids in the neighborhood of `p`
    /// (including `p`'s own id) — a cheap out-degree upper bound.
    pub fn candidate_count(&self, p: (f64, f64)) -> u64 {
        let mut total = 0u64;
        self.for_each_candidate_bucket(p, |b| total += b.len() as u64);
        total
    }
}

/// Implicit random geometric (unit-disk) topology on the unit torus:
/// `n` points, one shared radius `r`, edge `u → v` iff
/// `torus_dist(u, v) ≤ r`. Stores only positions and the O(n) grid
/// index — neighbor queries recompute rows on demand in O(expected
/// degree), so memory is 24 bytes/node regardless of edge count
/// (a CSR stores 8 bytes/*edge*; at n = 2²⁴ with degree 8·ln n that is
/// ~18 GiB vs ~400 MiB here).
///
/// Symmetric by construction (shared radius), matching
/// [`crate::generate::random_geometric`]: generating both from the same
/// RNG state yields identical positions and therefore identical
/// neighbor sets.
#[derive(Debug, Clone)]
pub struct ImplicitGrid {
    pos: Vec<(f64, f64)>,
    r: f64,
    r2: f64,
    grid: GridIndex,
}

impl ImplicitGrid {
    /// Wrap existing torus positions with query radius `r`.
    ///
    /// # Panics
    /// Panics unless `0 < r ≤ 0.5` (torus metric bound) and all
    /// coordinates lie in `[0, 1)`.
    pub fn from_positions(pos: Vec<(f64, f64)>, r: f64) -> Self {
        assert!(r > 0.0 && r <= 0.5, "radius must satisfy 0 < r ≤ 0.5");
        assert!(
            pos.iter()
                .all(|p| (0.0..1.0).contains(&p.0) && (0.0..1.0).contains(&p.1)),
            "positions must lie in the unit square [0,1)²"
        );
        let grid = GridIndex::new(&pos, r);
        ImplicitGrid {
            pos,
            r,
            r2: r * r,
            grid,
        }
    }

    /// Draw `n` uniform torus points from `rng` — the *same* draws, in
    /// the same order, as [`crate::generate::random_geometric`], so the
    /// two are neighbor-set-identical for equal RNG states.
    pub fn generate<R: Rng + ?Sized>(n: usize, r: f64, rng: &mut R) -> Self {
        let pos: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        Self::from_positions(pos, r)
    }

    /// Generate with the radius giving expected degree `d`
    /// (`π r² n = d`), saturated at the torus bound like
    /// [`crate::generate::GeoParams::with_expected_degree`].
    pub fn with_expected_degree<R: Rng + ?Sized>(n: usize, d: f64, rng: &mut R) -> Self {
        let params = crate::generate::GeoParams::with_expected_degree(n, d);
        Self::generate(n, params.r_min, rng)
    }

    /// The shared transmission radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.r
    }

    /// Node positions on the unit torus.
    #[inline]
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.pos
    }

    /// Materialize the full CSR graph — the test oracle. O(m) memory,
    /// so small-n only; equals `random_geometric` for matching draws.
    pub fn materialize(&self) -> DiGraph {
        let n = self.pos.len();
        let expected = n as f64 * std::f64::consts::PI * self.r2 * n as f64;
        let mut b = GraphBuilder::with_capacity(n, edge_capacity(n, expected));
        for u in 0..n as NodeId {
            Topology::for_each_out(self, u, |v| {
                b.add_edge(u, v);
            });
        }
        b.build()
    }
}

impl Topology for ImplicitGrid {
    #[inline]
    fn n(&self) -> usize {
        self.pos.len()
    }

    #[inline]
    fn degree_hint(&self, u: NodeId) -> u64 {
        // Candidate count minus self: an upper bound that is cheap
        // (≤ 9 bucket length lookups) and tight within a small factor.
        self.grid
            .candidate_count(self.pos[u as usize])
            .saturating_sub(1)
    }

    #[inline]
    fn for_each_out<F: FnMut(NodeId)>(&self, u: NodeId, mut f: F) {
        let pu = self.pos[u as usize];
        self.grid.for_each_candidate_bucket(pu, |bucket| {
            for &v in bucket {
                if v != u && torus_dist2(pu, self.pos[v as usize]) <= self.r2 {
                    f(v);
                }
            }
        });
    }

    #[inline]
    fn for_each_out_range<F: FnMut(NodeId)>(&self, u: NodeId, lo: NodeId, hi: NodeId, mut f: F) {
        // No stored row to narrow: regenerate and filter. Candidates
        // arrive in bucket-scan order, so the relative order of
        // survivors matches `for_each_out`, as the contract requires.
        let pu = self.pos[u as usize];
        self.grid.for_each_candidate_bucket(pu, |bucket| {
            for &v in bucket {
                if v != u && v >= lo && v < hi && torus_dist2(pu, self.pos[v as usize]) <= self.r2 {
                    f(v);
                }
            }
        });
    }

    /// Range queries rescan every candidate bucket (above): tell the
    /// engine to shard by transmitter, not by receiver range.
    #[inline]
    fn range_query_cost(&self) -> RangeQueryCost {
        RangeQueryCost::FullRowReplay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_geometric;
    use radio_util::derive_rng;

    fn row<T: Topology>(t: &T, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        t.for_each_out(u, |v| out.push(v));
        out
    }

    #[test]
    fn wrapped_axis_enumerates_distinct_cells() {
        for cells in 1..=7usize {
            for c in 0..cells {
                let (coords, count) = wrapped_axis(c, cells);
                let got = &coords[..count];
                // Reference: dedup of the naive wrapped offsets.
                let mut want: Vec<usize> = (-1i64..=1)
                    .map(|d| (c as i64 + d).rem_euclid(cells as i64) as usize)
                    .collect();
                want.sort_unstable();
                want.dedup();
                let mut got_sorted = got.to_vec();
                got_sorted.sort_unstable();
                assert_eq!(got_sorted, want, "cells = {cells}, c = {c}");
                assert_eq!(count, cells.min(3));
            }
        }
    }

    #[test]
    fn candidate_scan_visits_each_node_exactly_once() {
        // The heart of the dedup fix: at cells ∈ {1, 2} every node is a
        // candidate of every query, and must appear exactly once.
        for r in [0.5, 0.4, 0.26] {
            let mut rng = derive_rng(40, b"grid", 0);
            let pos: Vec<(f64, f64)> = (0..64)
                .map(|_| {
                    use rand::RngExt;
                    (rng.random::<f64>(), rng.random::<f64>())
                })
                .collect();
            let grid = GridIndex::new(&pos, r);
            for &p in &pos {
                let mut seen = vec![0u32; pos.len()];
                grid.for_each_candidate_bucket(p, |b| {
                    for &v in b {
                        seen[v as usize] += 1;
                    }
                });
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "r = {r}: some node visited ≠ 1 times: {seen:?}"
                );
            }
        }
    }

    #[test]
    fn grid_index_buckets_partition_the_ids() {
        let mut rng = derive_rng(41, b"grid", 0);
        use rand::RngExt;
        let pos: Vec<(f64, f64)> = (0..500)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let grid = GridIndex::new(&pos, 0.07);
        let mut all: Vec<NodeId> = Vec::new();
        for cy in 0..grid.cells() {
            for cx in 0..grid.cells() {
                let b = grid.bucket(cx, cy);
                assert!(b.windows(2).all(|w| w[0] < w[1]), "bucket not sorted");
                all.extend_from_slice(b);
            }
        }
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<NodeId>>());
    }

    #[test]
    fn implicit_grid_matches_materializing_generator() {
        // Same RNG state ⇒ identical positions ⇒ identical neighbor
        // sets, including at the torus radius bound where the old scan
        // double-visited.
        for r in [0.08, 0.35, 0.5] {
            let (g, pos) = random_geometric(256, r, &mut derive_rng(42, b"grid", 0));
            let t = ImplicitGrid::generate(256, r, &mut derive_rng(42, b"grid", 0));
            assert_eq!(t.positions(), &pos[..]);
            for u in 0..256 as NodeId {
                let mut mine = row(&t, u);
                mine.sort_unstable();
                assert_eq!(mine, g.out_neighbors(u), "r = {r}, u = {u}");
            }
            assert_eq!(t.materialize(), g, "r = {r}");
        }
    }

    #[test]
    fn range_queries_tile_the_row() {
        let t = ImplicitGrid::generate(300, 0.45, &mut derive_rng(43, b"grid", 0));
        for u in (0..300).step_by(23) {
            let full = row(&t, u as NodeId);
            let mut tiled = Vec::new();
            for (lo, hi) in [(0u32, 77), (77, 150), (150, 300)] {
                t.for_each_out_range(u as NodeId, lo, hi, |v| tiled.push(v));
            }
            let mut full_s = full.clone();
            let mut tiled_s = tiled.clone();
            full_s.sort_unstable();
            tiled_s.sort_unstable();
            assert_eq!(full_s, tiled_s, "u = {u}");
        }
    }

    #[test]
    fn rows_have_no_self_or_duplicates() {
        let t = ImplicitGrid::generate(128, 0.5, &mut derive_rng(44, b"grid", 0));
        for u in 0..128 as NodeId {
            let r = row(&t, u);
            assert!(!r.contains(&u), "self-loop at {u}");
            let mut s = r.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), r.len(), "duplicate neighbor at {u}");
        }
    }

    #[test]
    fn degree_hint_upper_bounds_true_degree() {
        let t = ImplicitGrid::generate(400, 0.1, &mut derive_rng(45, b"grid", 0));
        for u in 0..400 as NodeId {
            assert!(t.degree_hint(u) >= row(&t, u).len() as u64);
        }
    }

    #[test]
    fn tiny_radius_grid_stays_small() {
        // The cell-count cap: r = 1e−4 with 100 points must not build a
        // 10⁸-bucket grid.
        let t = ImplicitGrid::generate(100, 1e-4, &mut derive_rng(46, b"grid", 0));
        assert!(t.grid.cells().pow(2) <= 4 * 128);
        assert_eq!(t.materialize().n(), 100);
    }
}
