//! Implicit `G(n, p)`: rows re-sampled lazily from per-row seeded
//! streams.
//!
//! The trick is the one `radio_sim::DecideStreams` introduced for the
//! v2 determinism contract, applied to the *graph* instead of the coin
//! flips: row `u` of the adjacency matrix is a pure function of
//! `(graph_seed, u)`. Asking for `u`'s out-neighbors keys a fresh
//! ChaCha8 stream with `split_seed(graph_seed, b"gnp-row", u)` — the
//! label half cached at construction, so the per-query cost is two
//! SplitMix64 rounds and a key expansion — and replays the
//! Batagelj–Brandes geometric-skip walk over the `n − 1`
//! possible targets — O(expected degree) time, zero bytes stored. Two
//! queries for the same row, from any thread, in any order, always see
//! the same edge set, which is exactly what the engine's
//! bit-identical-across-thread-counts contract needs.
//!
//! Note the *distribution* matches `generate::gnp_directed` (each
//! ordered pair carries an edge independently with probability `p`) but
//! the *sample* differs for a given seed: the materializing generator
//! consumes one serial RNG across all rows, while every row here has
//! its own stream. The CSR oracle for equivalence tests is therefore
//! [`ImplicitGnp::materialize`], not `gnp_directed`.

use crate::generate::edge_capacity;
use crate::generate::gnp::geometric_skip;
use crate::topology::{RangeQueryCost, Topology};
use crate::{DiGraph, NodeId};
use radio_util::{split_seed_indexed, split_seed_prefix};
use rand_chacha::{key_words_from_u64, ChaCha8Rng};

/// Implicit directed `G(n, p)` topology: O(1) memory, rows sampled on
/// demand as pure functions of `(graph_seed, row)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImplicitGnp {
    n: usize,
    p: f64,
    graph_seed: u64,
    /// Cached `ln(1 − p)` for the geometric skip (−∞ when `p == 1`,
    /// but that case short-circuits to the complete row).
    log1mp: f64,
    /// Cached `split_seed_prefix(graph_seed, b"gnp-row")`: a pure
    /// function of `graph_seed`, hoisted so a row query hashes only the
    /// row index, not the label bytes. (Safe under the derived
    /// `PartialEq`: equal seeds always carry equal prefixes.)
    row_key_prefix: u64,
}

impl ImplicitGnp {
    /// An implicit `G(n, p)` with edge probability `p` keyed by
    /// `graph_seed`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1` and `n` fits `NodeId`.
    pub fn new(n: usize, p: f64, graph_seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0,1]");
        assert!(n as u64 <= u64::from(NodeId::MAX), "n too large for NodeId");
        ImplicitGnp {
            n,
            p,
            graph_seed,
            log1mp: (1.0 - p).ln(),
            row_key_prefix: split_seed_prefix(graph_seed, b"gnp-row"),
        }
    }

    /// The paper's parameterisation `d = np`: edge probability `d / n`,
    /// capped at 1.
    pub fn with_expected_degree(n: usize, d: f64, graph_seed: u64) -> Self {
        let p = if n == 0 {
            0.0
        } else {
            (d / n as f64).clamp(0.0, 1.0)
        };
        Self::new(n, p, graph_seed)
    }

    /// Edge probability.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The seed keying every row stream.
    #[inline]
    pub fn graph_seed(&self) -> u64 {
        self.graph_seed
    }

    /// The per-row stream: deterministic in `(graph_seed, u)` only.
    ///
    /// Fast path: the `b"gnp-row"` label hash is cached at construction
    /// (`row_key_prefix`), so keying a row costs two SplitMix64 rounds
    /// plus the `key_words_from_u64` expansion — the exact composition
    /// `seed_from_u64(split_seed(graph_seed, b"gnp-row", u))` performs,
    /// minus the per-query label walk. Stream-equality is pinned by
    /// `fast_row_keying_matches_seed_from_u64_of_split_seed` below.
    #[inline]
    fn row_rng(&self, u: NodeId) -> ChaCha8Rng {
        let seed = split_seed_indexed(self.row_key_prefix, u64::from(u));
        ChaCha8Rng::from_key_words(key_words_from_u64(seed))
    }

    /// A reusable per-row sampling cursor for callers that walk many
    /// rows back to back (one per scatter worker); see
    /// [`GnpRowSampler`].
    #[inline]
    pub fn row_sampler(&self) -> GnpRowSampler<'_> {
        GnpRowSampler { gnp: self }
    }

    /// Shared row walk: visit row `u` by driving `rng` (already keyed
    /// for `u`) through the geometric-skip slots. Degenerate cases
    /// (`p ∈ {0, 1}`, `n < 2`) are the caller's job — both callers
    /// short-circuit them before keying a stream.
    fn walk_row<F: FnMut(NodeId)>(&self, rng: &mut ChaCha8Rng, u: NodeId, mut f: F) {
        // Skip-walk the n − 1 non-self slots of row u. Slot s maps to
        // target s if s < u else s + 1, so targets ascend and never
        // equal u — the same linear indexing as `gnp_directed`.
        let slots = (self.n - 1) as u64;
        let mut s = geometric_skip(rng, self.log1mp);
        while s < slots {
            let v = if s < u64::from(u) {
                s as NodeId
            } else {
                s as NodeId + 1
            };
            f(v);
            s = s.saturating_add(1 + geometric_skip(rng, self.log1mp));
        }
    }

    /// Handle the row shapes that need no stream: returns `true` when
    /// the row was fully emitted (or is empty) without sampling.
    #[inline]
    fn emit_degenerate<F: FnMut(NodeId)>(&self, u: NodeId, f: &mut F) -> bool {
        if self.n < 2 || self.p <= 0.0 {
            return true;
        }
        if self.p >= 1.0 {
            for v in 0..self.n as NodeId {
                if v != u {
                    f(v);
                }
            }
            return true;
        }
        false
    }

    /// Materialize the full CSR graph — the O(m) test oracle. Rows are
    /// emitted ascending and duplicate-free by construction.
    pub fn materialize(&self) -> DiGraph {
        let expected = self.p * (self.n as f64) * (self.n.saturating_sub(1) as f64);
        let mut edges: Vec<(NodeId, NodeId)> =
            Vec::with_capacity(edge_capacity(self.n, expected * 1.05));
        for u in 0..self.n as NodeId {
            Topology::for_each_out(self, u, |v| edges.push((u, v)));
        }
        DiGraph::from_sorted_unique_edges(self.n, edges)
    }
}

impl Topology for ImplicitGnp {
    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn degree_hint(&self, _u: NodeId) -> u64 {
        (self.p * self.n.saturating_sub(1) as f64).ceil() as u64
    }

    fn for_each_out<F: FnMut(NodeId)>(&self, u: NodeId, mut f: F) {
        if self.emit_degenerate(u, &mut f) {
            return;
        }
        let mut rng = self.row_rng(u);
        self.walk_row(&mut rng, u, f);
    }

    #[inline]
    fn for_each_out_range<F: FnMut(NodeId)>(&self, u: NodeId, lo: NodeId, hi: NodeId, mut f: F) {
        // No stored row: replay the walk and filter. Rows ascend, so we
        // could early-exit at hi, but the walk past hi costs the same
        // O(deg) it saves and keeping one code path is simpler to audit.
        self.for_each_out(u, |v| {
            if v >= lo && v < hi {
                f(v);
            }
        });
    }

    /// Range queries replay the whole row (above): tell the engine to
    /// shard by transmitter, not by receiver range.
    #[inline]
    fn range_query_cost(&self) -> RangeQueryCost {
        RangeQueryCost::FullRowReplay
    }
}

/// A reusable per-row sampling cursor over an [`ImplicitGnp`].
///
/// `sample(u, f)` visits exactly what `Topology::for_each_out(u, f)`
/// visits. The cursor is the seam for workers that walk thousands of
/// rows back to back (the engine's transmitter-sharded scatter): every
/// row is keyed from the cached label prefix straight into a
/// stack-allocated ChaCha8 generator, so the whole walk performs no
/// heap allocation and no per-query label hashing. (`&mut self` keeps
/// room for cached cursor state without an API break.)
#[derive(Debug, Clone)]
pub struct GnpRowSampler<'g> {
    gnp: &'g ImplicitGnp,
}

impl GnpRowSampler<'_> {
    /// Visit row `u`, identically to `Topology::for_each_out`.
    #[inline]
    pub fn sample<F: FnMut(NodeId)>(&mut self, u: NodeId, mut f: F) {
        if self.gnp.emit_degenerate(u, &mut f) {
            return;
        }
        let mut rng = self.gnp.row_rng(u);
        self.gnp.walk_row(&mut rng, u, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_util::derive_rng;
    use rand::RngExt;

    fn row(t: &ImplicitGnp, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        t.for_each_out(u, |v| out.push(v));
        out
    }

    #[test]
    fn rows_are_pure_functions_of_seed_and_node() {
        let a = ImplicitGnp::new(500, 0.03, 99);
        let b = ImplicitGnp::new(500, 0.03, 99);
        for u in (0..500).step_by(13) {
            assert_eq!(row(&a, u as NodeId), row(&b, u as NodeId));
        }
        let c = ImplicitGnp::new(500, 0.03, 100);
        let differs = (0..500).any(|u| row(&a, u) != row(&c, u));
        assert!(differs, "different graph_seed must give a different graph");
    }

    #[test]
    fn rows_ascend_without_self_or_duplicates() {
        let t = ImplicitGnp::new(300, 0.1, 7);
        for u in 0..300 as NodeId {
            let r = row(&t, u);
            assert!(!r.contains(&u), "self-loop at {u}");
            assert!(
                r.windows(2).all(|w| w[0] < w[1]),
                "row {u} not strictly ascending: {r:?}"
            );
            assert!(r.iter().all(|&v| (v as usize) < 300));
        }
    }

    #[test]
    fn extremes_p_zero_and_one() {
        let empty = ImplicitGnp::new(64, 0.0, 1);
        assert!((0..64).all(|u| row(&empty, u).is_empty()));
        assert_eq!(empty.materialize().m(), 0);
        let full = ImplicitGnp::new(64, 1.0, 1);
        assert!((0..64).all(|u| row(&full, u).len() == 63));
        assert_eq!(full.materialize().m(), 64 * 63);
    }

    #[test]
    fn materialize_matches_queries() {
        let t = ImplicitGnp::new(400, 0.05, 5);
        let g = t.materialize();
        assert_eq!(Topology::n(&t), g.n());
        for u in 0..400 as NodeId {
            assert_eq!(row(&t, u), g.out_neighbors(u));
        }
    }

    #[test]
    fn edge_count_concentrates_around_the_mean() {
        // m ~ Binomial(n(n−1), p): mean 99 900·0.05 = 4995, sd ≈ 68.9.
        let t = ImplicitGnp::new(1000, 0.005, 11);
        let m = t.materialize().m() as f64;
        let mean: f64 = 1000.0 * 999.0 * 0.005;
        let sd = (mean * 0.995).sqrt();
        assert!((m - mean).abs() < 6.0 * sd, "m = {m}, expected ≈ {mean}");
    }

    #[test]
    fn range_queries_tile_the_row() {
        let t = ImplicitGnp::new(600, 0.04, 3);
        for u in (0..600).step_by(41) {
            let full = row(&t, u as NodeId);
            let mut tiled = Vec::new();
            for (lo, hi) in [(0u32, 200), (200, 450), (450, 600)] {
                t.for_each_out_range(u as NodeId, lo, hi, |v| tiled.push(v));
            }
            assert_eq!(tiled, full, "u = {u}");
        }
    }

    #[test]
    fn with_expected_degree_matches_paper_parameterisation() {
        let t = ImplicitGnp::with_expected_degree(1 << 12, 24.0, 9);
        assert!((t.p() - 24.0 / 4096.0).abs() < 1e-12);
        let mean_deg = t.materialize().m() as f64 / 4096.0;
        assert!((mean_deg - 24.0).abs() < 2.0, "mean degree {mean_deg}");
        // Degenerate corners: d > n caps at p = 1; n = 0 stays empty.
        assert_eq!(ImplicitGnp::with_expected_degree(4, 100.0, 0).p(), 1.0);
        assert_eq!(
            ImplicitGnp::with_expected_degree(0, 8.0, 0)
                .materialize()
                .n(),
            0
        );
    }

    #[test]
    fn degree_hint_is_the_binomial_mean_rounded_up() {
        let t = ImplicitGnp::new(1000, 0.01, 2);
        assert_eq!(t.degree_hint(0), (0.01f64 * 999.0).ceil() as u64);
        // Hints are heuristic, but should be the right order: compare
        // the total against the realised edge count.
        let total: u64 = (0..1000).map(|u| t.degree_hint(u)).sum();
        let m = t.materialize().m() as u64;
        assert!(total >= m / 2 && total <= m * 2, "hint {total} vs m {m}");
    }

    /// The cached-prefix keying must reproduce the original derivation
    /// (`ChaCha8Rng::seed_from_u64(split_seed(graph_seed, b"gnp-row", u))`)
    /// word for word — equal seeds must keep giving the same graph
    /// across this optimisation.
    #[test]
    fn fast_row_keying_matches_seed_from_u64_of_split_seed() {
        use rand_chacha::rand_core::{RngCore, SeedableRng};
        for graph_seed in [0u64, 7, 0xDEAD_BEEF_CAFE_F00D] {
            let t = ImplicitGnp::new(1 << 10, 0.01, graph_seed);
            for u in [0u32, 1, 511, 1023] {
                let mut fast = t.row_rng(u);
                let mut slow = ChaCha8Rng::seed_from_u64(radio_util::split_seed(
                    graph_seed,
                    b"gnp-row",
                    u64::from(u),
                ));
                for _ in 0..32 {
                    assert_eq!(fast.next_u32(), slow.next_u32(), "seed {graph_seed} row {u}");
                }
            }
        }
    }

    #[test]
    fn row_sampler_matches_for_each_out() {
        for (n, p) in [(400usize, 0.03), (64, 0.0), (64, 1.0), (1, 0.5)] {
            let t = ImplicitGnp::new(n, p, 21);
            let mut sampler = t.row_sampler();
            for u in 0..n as NodeId {
                let mut via_sampler = Vec::new();
                sampler.sample(u, |v| via_sampler.push(v));
                assert_eq!(via_sampler, row(&t, u), "n {n} p {p} u {u}");
            }
        }
    }

    #[test]
    fn independent_of_shared_rng_state() {
        // Unlike gnp_directed, queries consume no caller RNG: a derived
        // rng elsewhere can't perturb the graph.
        let mut noise = derive_rng(1, b"noise", 0);
        let t = ImplicitGnp::new(100, 0.1, 4);
        let before = row(&t, 50);
        let _ = noise.random::<u64>();
        assert_eq!(row(&t, 50), before);
    }
}
