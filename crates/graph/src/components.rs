//! Strongly connected components and subgraph extraction.
//!
//! Low-density geometric networks (E15) and below-threshold `G(n,p)`
//! samples are not always strongly connected; experiments then want to
//! run on the giant component. [`strongly_connected_components`] is an
//! iterative Tarjan (no recursion — the paths in these graphs can be
//! `Θ(n)` deep), and [`Subgraph`] remembers the id mapping so results can
//! be reported in original-node terms.

use crate::{DiGraph, GraphBuilder, NodeId};

/// Strongly connected components, each a sorted list of node ids.
/// Components are returned in reverse topological order of the
/// condensation (Tarjan's natural output order).
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = g.n();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();
    for root in 0..n as NodeId {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let out = g.out_neighbors(v);
            if *child < out.len() {
                let w = out[*child];
                *child += 1;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// A node-induced subgraph with the mapping back to original ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced graph over relabelled ids `0..nodes.len()`.
    pub graph: DiGraph,
    /// `nodes[new_id] = original_id` (sorted ascending).
    pub nodes: Vec<NodeId>,
}

impl Subgraph {
    /// Original id of a subgraph node.
    pub fn original(&self, new_id: NodeId) -> NodeId {
        self.nodes[new_id as usize]
    }

    /// Subgraph id of an original node, if present.
    pub fn local(&self, original: NodeId) -> Option<NodeId> {
        self.nodes
            .binary_search(&original)
            .ok()
            .map(|i| i as NodeId)
    }
}

/// Extract the subgraph induced by `nodes` (need not be sorted; duplicates
/// collapse).
pub fn induced_subgraph(g: &DiGraph, nodes: &[NodeId]) -> Subgraph {
    let mut sorted: Vec<NodeId> = nodes.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut local = vec![NodeId::MAX; g.n()];
    for (i, &v) in sorted.iter().enumerate() {
        local[v as usize] = i as NodeId;
    }
    let mut b = GraphBuilder::new(sorted.len());
    for &u in &sorted {
        let lu = local[u as usize];
        for &v in g.out_neighbors(u) {
            let lv = local[v as usize];
            if lv != NodeId::MAX {
                b.add_edge(lu, lv);
            }
        }
    }
    Subgraph {
        graph: b.build(),
        nodes: sorted,
    }
}

/// The largest strongly connected component as a [`Subgraph`].
pub fn largest_scc(g: &DiGraph) -> Subgraph {
    let comps = strongly_connected_components(g);
    let best = comps
        .into_iter()
        .max_by_key(|c| c.len())
        .unwrap_or_default();
    induced_subgraph(g, &best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_strongly_connected;
    use crate::generate::{cycle, gnp_directed, path};
    use radio_util::derive_rng;

    #[test]
    fn scc_of_directed_path_is_singletons() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scc_of_cycle_is_one_component() {
        let g = cycle(9);
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 9);
    }

    #[test]
    fn scc_two_cycles_with_bridge() {
        // cycle {0,1,2} → bridge → cycle {3,4}.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]);
        let mut comps = strongly_connected_components(&g);
        comps.sort_by_key(|c| c.len());
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![3, 4]);
        assert_eq!(comps[1], vec![0, 1, 2]);
    }

    #[test]
    fn scc_matches_double_bfs_on_random_graphs() {
        for seed in 0..8 {
            let g = gnp_directed(150, 0.03, &mut derive_rng(seed, b"scc", 0));
            let comps = strongly_connected_components(&g);
            let one = comps.len() == 1;
            assert_eq!(
                one,
                is_strongly_connected(&g),
                "seed {seed}: SCC count {} disagrees with double-BFS",
                comps.len()
            );
            // Components partition the vertex set.
            let total: usize = comps.iter().map(|c| c.len()).sum();
            assert_eq!(total, 150);
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = path(6);
        let sub = induced_subgraph(&g, &[1, 2, 3]);
        assert_eq!(sub.graph.n(), 3);
        assert_eq!(sub.graph.m(), 4); // 1↔2, 2↔3 relabelled
        assert_eq!(sub.original(0), 1);
        assert_eq!(sub.local(3), Some(2));
        assert_eq!(sub.local(5), None);
        assert!(is_strongly_connected(&sub.graph));
    }

    #[test]
    fn largest_scc_extracts_giant_component() {
        // Strongly connected triangle + a dangling tail.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let sub = largest_scc(&g);
        assert_eq!(sub.nodes, vec![0, 1, 2]);
        assert!(is_strongly_connected(&sub.graph));
    }

    #[test]
    fn deep_graph_does_not_overflow_stack() {
        // 200k-node directed cycle: recursion would blow the stack.
        let n = 200_000;
        let mut edges: Vec<(NodeId, NodeId)> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as NodeId - 1, 0));
        let g = DiGraph::from_edges(n, &edges);
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n);
    }
}
