//! Random geometric (unit-disk) radio networks.
//!
//! The paper's §5 names random geometric graphs as the natural next model
//! ("the Erdös–Rényi model … appears to be somewhat unrealistic for
//! practical AdHoc networks"), and its §1 motivates *heterogeneous* ranges
//! ("one device may be able to listen to messages sent out by a node in
//! its communication range, but not vice-versa"). Both variants live here:
//!
//! * [`random_geometric`] — all nodes share one radius → symmetric edges.
//! * [`random_geometric_directed`] — per-node radii drawn from an interval
//!   → genuinely directed links, exactly the asymmetry the paper's model
//!   permits.
//!
//! Points are uniform on the **unit torus** (wrap-around distance), which
//! removes boundary effects and keeps the expected degree `n·π·r²`
//! uniform across nodes — the property the `G(n,p)` analysis leans on.
//! Neighbour search uses a spatial grid with cell width ≥ max radius, so
//! generation is `O(n · E[deg])`.

use crate::generate::edge_capacity;
use crate::topology::GridIndex;
use crate::{DiGraph, GraphBuilder, NodeId};
use rand::{Rng, RngExt};

/// Parameters for geometric generation.
#[derive(Debug, Clone, Copy)]
pub struct GeoParams {
    /// Number of nodes.
    pub n: usize,
    /// Minimum transmission radius (torus metric).
    pub r_min: f64,
    /// Maximum transmission radius. Equal to `r_min` for the symmetric model.
    pub r_max: f64,
}

impl GeoParams {
    /// Homogeneous radius `r` for all nodes.
    pub fn uniform(n: usize, r: f64) -> Self {
        GeoParams {
            n,
            r_min: r,
            r_max: r,
        }
    }

    /// Radius giving expected degree `d` on the unit torus: `π r² n = d`.
    ///
    /// The solution exceeds the torus metric bound `r = 0.5` once
    /// `d > π n / 4` (small `n`, large `d`) — a radius the generators
    /// reject with an assert deep inside `generate`, far from the call
    /// site that picked `d`. Instead of handing that footgun on, the
    /// radius **saturates at 0.5** (the densest geometry the torus
    /// supports, expected degree ≈ π(n−1)/4) with a stderr warning, so
    /// sweeps that scale `d` past what a small `n` can realise degrade
    /// gracefully rather than panic.
    pub fn with_expected_degree(n: usize, d: f64) -> Self {
        let r = (d / (std::f64::consts::PI * n as f64)).sqrt();
        if r > 0.5 {
            eprintln!(
                "warning: GeoParams::with_expected_degree(n = {n}, d = {d}) wants \
                 radius {r:.4} > 0.5 (torus bound); saturating at r = 0.5, actual \
                 expected degree ≈ {:.1}",
                std::f64::consts::PI * 0.25 * (n.saturating_sub(1)) as f64
            );
            return Self::uniform(n, 0.5);
        }
        Self::uniform(n, r)
    }
}

/// Squared torus distance between two points of the unit square.
/// Shared with the implicit grid backend (`topology::grid`).
#[inline]
pub(crate) fn torus_dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let mut dx = (a.0 - b.0).abs();
    let mut dy = (a.1 - b.1).abs();
    if dx > 0.5 {
        dx = 1.0 - dx;
    }
    if dy > 0.5 {
        dy = 1.0 - dy;
    }
    dx * dx + dy * dy
}

/// Core generator: positions, radii, grid bucketing, edge emission.
/// Edge rule: `u → v` iff `dist(u, v) ≤ radius[u]` (u's range covers v).
fn generate<R: Rng + ?Sized>(params: GeoParams, rng: &mut R) -> (DiGraph, Vec<(f64, f64)>) {
    let GeoParams { n, r_min, r_max } = params;
    assert!(
        r_min > 0.0 && r_max >= r_min && r_max <= 0.5,
        "radii must satisfy 0 < r_min ≤ r_max ≤ 0.5 (torus)"
    );
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let radius: Vec<f64> = if (r_max - r_min).abs() < f64::EPSILON {
        vec![r_min; n]
    } else {
        (0..n).map(|_| rng.random_range(r_min..=r_max)).collect()
    };

    // Grid with cell width ≥ r_max so all candidates live in the 3×3
    // neighbourhood of a node's cell. GridIndex's scan visits each
    // bucket exactly once even when the grid wraps at cells < 3 (any
    // r_max > 1/3) — the old open-coded scan double-visited there and
    // leaned on the builder's dedup to hide it.
    let grid = GridIndex::new(&pos, r_max);

    // Expected out-degree of node u is π·r_u²·n on the torus, so the
    // expected edge total is n·π·E[r²]·n with E[r²] the mean square of a
    // Uniform(r_min, r_max) radius — using r_max² here over-estimated the
    // heterogeneous case by up to 3×, and the unclamped value was handed
    // straight to the allocator (tens of TB at n = 2²⁰ and large r).
    let mean_r2 = (r_min * r_min + r_min * r_max + r_max * r_max) / 3.0;
    let expected = n as f64 * std::f64::consts::PI * mean_r2 * n as f64;
    let mut b = GraphBuilder::with_capacity(n, edge_capacity(n, expected));
    for u in 0..n {
        let pu = pos[u];
        let ru2 = radius[u] * radius[u];
        grid.for_each_candidate_bucket(pu, |bucket| {
            for &v in bucket {
                if v as usize != u && torus_dist2(pu, pos[v as usize]) <= ru2 {
                    b.add_edge(u as NodeId, v);
                }
            }
        });
    }
    (b.build(), pos)
}

/// Symmetric random geometric graph: `n` uniform torus points, mutual edge
/// iff distance ≤ `r`. Returns the graph and node positions.
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    r: f64,
    rng: &mut R,
) -> (DiGraph, Vec<(f64, f64)>) {
    generate(GeoParams::uniform(n, r), rng)
}

/// Heterogeneous-range geometric graph: each node draws its own radius
/// uniformly from `[params.r_min, params.r_max]`; edge `u → v` iff
/// `dist ≤ radius(u)`. Asymmetric whenever radii differ.
pub fn random_geometric_directed<R: Rng + ?Sized>(
    params: GeoParams,
    rng: &mut R,
) -> (DiGraph, Vec<(f64, f64)>) {
    generate(params, rng)
}

/// Core generator for fixed positions (mobility snapshots).
fn graph_for_positions(pos: &[(f64, f64)], r: f64) -> DiGraph {
    let n = pos.len();
    let grid = GridIndex::new(pos, r);
    let expected = n as f64 * std::f64::consts::PI * r * r * n as f64;
    let mut b = GraphBuilder::with_capacity(n, edge_capacity(n, expected));
    let r2 = r * r;
    for u in 0..n {
        let pu = pos[u];
        grid.for_each_candidate_bucket(pu, |bucket| {
            for &v in bucket {
                if v as usize != u && torus_dist2(pu, pos[v as usize]) <= r2 {
                    b.add_edge(u as NodeId, v);
                }
            }
        });
    }
    b.build()
}

/// A sequence of geometric-graph snapshots under node mobility: `n`
/// points start uniform on the torus and take independent Gaussian steps
/// of standard deviation `sigma` per snapshot (a Brownian / random-walk
/// mobility model). All snapshots share the radius `r`.
///
/// Pair with `radio_sim::engine::run_dynamic`-style round-segmented
/// execution to study the paper's motivating scenario, protocols on a
/// topology that changes underneath them.
///
/// # Panics
/// Panics unless `snapshots ≥ 1`, `0 < r ≤ 0.5` and `sigma ≥ 0`.
pub fn mobile_geometric_sequence<R: Rng + ?Sized>(
    n: usize,
    r: f64,
    sigma: f64,
    snapshots: usize,
    rng: &mut R,
) -> Vec<DiGraph> {
    assert!(snapshots >= 1);
    assert!(r > 0.0 && r <= 0.5);
    assert!(sigma >= 0.0);
    let mut pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let mut out = Vec::with_capacity(snapshots);
    for step in 0..snapshots {
        if step > 0 && sigma > 0.0 {
            for p in pos.iter_mut() {
                // Box–Muller Gaussian step, wrapped onto the torus.
                let u1: f64 = (1.0 - rng.random::<f64>()).max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random::<f64>();
                let mag = sigma * (-2.0 * u1.ln()).sqrt();
                let dx = mag * (2.0 * std::f64::consts::PI * u2).cos();
                let dy = mag * (2.0 * std::f64::consts::PI * u2).sin();
                p.0 = (p.0 + dx).rem_euclid(1.0);
                p.1 = (p.1 + dy).rem_euclid(1.0);
            }
        }
        out.push(graph_for_positions(&pos, r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_util::derive_rng;

    #[test]
    fn symmetric_model_is_symmetric() {
        let mut rng = derive_rng(11, b"geo", 0);
        let (g, pos) = random_geometric(400, 0.08, &mut rng);
        assert_eq!(pos.len(), 400);
        assert!(g.is_symmetric());
    }

    #[test]
    fn edges_respect_radius_exactly() {
        let mut rng = derive_rng(12, b"geo", 0);
        let r = 0.1;
        let (g, pos) = random_geometric(200, r, &mut rng);
        for u in 0..200usize {
            for v in 0..200usize {
                if u == v {
                    continue;
                }
                let within = torus_dist2(pos[u], pos[v]) <= r * r;
                assert_eq!(
                    g.has_edge(u as NodeId, v as NodeId),
                    within,
                    "edge ({u},{v}) mismatch"
                );
            }
        }
    }

    #[test]
    fn expected_degree_calibration() {
        let mut rng = derive_rng(13, b"geo", 0);
        let n = 3000;
        let d = 25.0;
        let params = GeoParams::with_expected_degree(n, d);
        let (g, _) = random_geometric(n, params.r_min, &mut rng);
        let mean_deg = g.m() as f64 / n as f64;
        assert!(
            (mean_deg - d).abs() < 0.15 * d,
            "mean degree {mean_deg}, wanted ≈ {d}"
        );
    }

    #[test]
    fn heterogeneous_ranges_are_directed() {
        let mut rng = derive_rng(14, b"geo", 0);
        let params = GeoParams {
            n: 500,
            r_min: 0.03,
            r_max: 0.12,
        };
        let (g, _) = random_geometric_directed(params, &mut rng);
        // With a 4× radius spread some links must be one-way.
        let asym = g.edges().filter(|&(u, v)| !g.has_edge(v, u)).count();
        assert!(asym > 0, "expected asymmetric links");
        assert!(!g.is_symmetric());
    }

    #[test]
    fn torus_distance_wraps() {
        assert!(torus_dist2((0.05, 0.5), (0.95, 0.5)) < 0.011);
        assert!((torus_dist2((0.0, 0.0), (0.5, 0.5)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (g1, _) = random_geometric(300, 0.07, &mut derive_rng(15, b"geo", 0));
        let (g2, _) = random_geometric(300, 0.07, &mut derive_rng(15, b"geo", 0));
        assert_eq!(g1, g2);
    }

    #[test]
    fn mobility_sequence_drifts_gradually() {
        let mut rng = derive_rng(16, b"geo", 0);
        let seq = mobile_geometric_sequence(300, 0.1, 0.02, 5, &mut rng);
        assert_eq!(seq.len(), 5);
        // Consecutive snapshots share most edges; distant ones share fewer.
        let overlap = |a: &crate::DiGraph, b: &crate::DiGraph| -> f64 {
            let shared = a.edges().filter(|&(u, v)| b.has_edge(u, v)).count();
            shared as f64 / a.m().max(1) as f64
        };
        let near = overlap(&seq[0], &seq[1]);
        let far = overlap(&seq[0], &seq[4]);
        assert!(near > 0.5, "σ = 0.02 steps should keep most edges ({near})");
        assert!(far < near, "drift should accumulate ({far} !< {near})");
    }

    #[test]
    fn large_radius_generation_completes_without_over_allocating() {
        // Regression for the capacity bug: the old pre-sizing handed the
        // raw n·π·r_max²·n estimate to the allocator, which (a) used
        // r_max for every node, over-estimating heterogeneous-range
        // graphs ~3×, and (b) at large n aborted with a terabyte-scale
        // reservation before generating a single edge. At the torus
        // radius bound the clamp must keep the request at most the
        // prealloc budget and generation must simply complete.
        let mut rng = derive_rng(19, b"geo", 0);
        let params = GeoParams {
            n: 1200,
            r_min: 0.01,
            r_max: 0.5,
        };
        let (g, _) = random_geometric_directed(params, &mut rng);
        assert_eq!(g.n(), 1200);
        assert!(g.m() > 0);
        // The capacity the generator now requests for the pathological
        // million-node case stays within the budget instead of ~6.9 TB.
        let est = (1u64 << 20) as f64 * std::f64::consts::PI * 0.25 * (1u64 << 20) as f64;
        assert!(crate::generate::edge_capacity(1 << 20, est) <= 1 << 26);
    }

    #[test]
    fn wrapped_scan_emits_no_duplicate_edges() {
        // Regression for the double-visit bug: with cells = ⌊1/r⌋ < 3
        // (any r > 1/3) the old 3×3 scan aliased wrapped offsets and
        // visited buckets up to 9×, emitting duplicate edges that only
        // the builder's sort+dedup hid. The scan must now emit each
        // edge exactly once: the pre-dedup builder count equals the
        // final m(). Replays the generator's own emission loop so the
        // assertion covers exactly the shared GridIndex scan.
        for r in [0.4, 0.5] {
            let mut rng = derive_rng(20, b"geo", 0);
            let pos: Vec<(f64, f64)> = (0..300)
                .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
                .collect();
            let grid = GridIndex::new(&pos, r);
            let r2 = r * r;
            let mut b = GraphBuilder::new(300);
            for u in 0..300usize {
                let pu = pos[u];
                grid.for_each_candidate_bucket(pu, |bucket| {
                    for &v in bucket {
                        if v as usize != u && torus_dist2(pu, pos[v as usize]) <= r2 {
                            b.add_edge(u as NodeId, v);
                        }
                    }
                });
            }
            let pending = b.pending_edges();
            let g = b.build();
            assert_eq!(
                pending,
                g.m(),
                "r = {r}: scan emitted duplicates (pre-dedup {pending} vs m {})",
                g.m()
            );
            // And the fixed scan still finds every edge: cross-check
            // against the O(n²) predicate.
            let brute = (0..300usize)
                .flat_map(|u| (0..300usize).map(move |v| (u, v)))
                .filter(|&(u, v)| u != v && torus_dist2(pos[u], pos[v]) <= r2)
                .count();
            assert_eq!(g.m(), brute, "r = {r}: edge set wrong");
        }
    }

    #[test]
    fn generators_accept_the_full_wrapping_radius_range() {
        // End-to-end over the public API: radii straddling the
        // cells ∈ {1, 2, 3} boundaries all generate and agree with the
        // distance predicate (edges_respect_radius_exactly covers the
        // fine-grid regime; this pins the coarse grids the bug lived in).
        for r in [0.26, 0.4, 0.5] {
            let mut rng = derive_rng(21, b"geo", 0);
            let (g, pos) = random_geometric(150, r, &mut rng);
            for u in 0..150usize {
                for v in 0..150usize {
                    if u == v {
                        continue;
                    }
                    assert_eq!(
                        g.has_edge(u as NodeId, v as NodeId),
                        torus_dist2(pos[u], pos[v]) <= r * r,
                        "r = {r}: edge ({u},{v}) mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn with_expected_degree_saturates_at_torus_bound() {
        // d > πn/4 has no realisable radius on the torus; the
        // constructor must clamp to 0.5 instead of handing the caller
        // parameters that trip the assert inside generate().
        let p = GeoParams::with_expected_degree(10, 100.0);
        assert_eq!(p.r_min, 0.5);
        assert_eq!(p.r_max, 0.5);
        let (g, _) = random_geometric(10, p.r_min, &mut derive_rng(22, b"geo", 0));
        assert_eq!(g.n(), 10);
        // Sane parameters stay exact.
        let q = GeoParams::with_expected_degree(10_000, 20.0);
        assert!(q.r_min < 0.5);
        let d_back = std::f64::consts::PI * q.r_min * q.r_min * 10_000.0;
        assert!((d_back - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_sigma_freezes_topology() {
        let mut rng = derive_rng(17, b"geo", 0);
        let seq = mobile_geometric_sequence(200, 0.1, 0.0, 3, &mut rng);
        assert_eq!(seq[0], seq[1]);
        assert_eq!(seq[1], seq[2]);
    }

    #[test]
    fn all_snapshots_share_node_count() {
        let mut rng = derive_rng(18, b"geo", 0);
        let seq = mobile_geometric_sequence(150, 0.09, 0.05, 4, &mut rng);
        assert!(seq.iter().all(|g| g.n() == 150));
    }
}
