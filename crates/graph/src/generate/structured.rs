//! Additional structured and random topologies used by the extension
//! experiments: hypercubes, torus grids, random regular digraphs and
//! two-level cluster networks.
//!
//! None of these appear in the paper's proofs, but they are the standard
//! zoo for stress-testing radio broadcast implementations: the hypercube
//! is the classic `D = log n` benchmark, the torus removes the grid's
//! boundary asymmetry, random regular digraphs are the degree-exact
//! sibling of `G(n,p)` (every node has out-degree exactly `d`), and
//! cluster networks model the "dense pockets, sparse backbone" shape of
//! real deployments.

use crate::{DiGraph, GraphBuilder, NodeId};
use rand::{Rng, RngExt};

/// `dim`-dimensional hypercube on `2^dim` nodes, mutual edges.
/// Diameter = `dim`.
pub fn hypercube(dim: u32) -> DiGraph {
    assert!((1..=24).contains(&dim), "dim = {dim} out of [1, 24]");
    let n = 1usize << dim;
    let mut b = GraphBuilder::with_capacity(n, n * dim as usize);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_undirected(v as NodeId, u as NodeId);
            }
        }
    }
    b.build()
}

/// `w × h` torus (wrap-around 4-neighbour grid), mutual edges.
/// Diameter = `⌊w/2⌋ + ⌊h/2⌋`.
pub fn torus2d(w: usize, h: usize) -> DiGraph {
    assert!(w >= 3 && h >= 3, "torus needs w, h ≥ 3");
    let n = w * h;
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut b = GraphBuilder::with_capacity(n, 4 * n);
    for y in 0..h {
        for x in 0..w {
            b.add_undirected(id(x, y), id((x + 1) % w, y));
            b.add_undirected(id(x, y), id(x, (y + 1) % h));
        }
    }
    b.build()
}

/// Random `d`-out-regular digraph: every node chooses exactly `d`
/// distinct out-neighbours uniformly at random. In-degrees are
/// `Binomial(n−1, d/(n−1)) ≈ Poisson(d)` — the degree-exact cousin of
/// directed `G(n, d/n)`.
///
/// # Panics
/// Panics unless `1 ≤ d < n`.
pub fn random_out_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> DiGraph {
    assert!(d >= 1 && d < n, "need 1 ≤ d < n (d = {d}, n = {n})");
    let mut b = GraphBuilder::with_capacity(n, n * d);
    // Partial Fisher–Yates per node: pick d distinct targets.
    let mut pool: Vec<NodeId> = (0..n as NodeId).collect();
    for u in 0..n as NodeId {
        // Swap u out of the pool so we never draw a self-loop.
        let u_idx = u as usize;
        pool.swap(u_idx, n - 1);
        for i in 0..d {
            let j = rng.random_range(i..n - 1);
            pool.swap(i, j);
            b.add_edge(u, pool[i]);
        }
        // Restore identity order for the next node (cheap: undo swaps).
        pool.sort_unstable();
    }
    b.build()
}

/// Two-level cluster network: `clusters` complete clusters of
/// `cluster_size` nodes each, with the cluster heads (node 0 of each
/// cluster) forming a path backbone. Models dense pockets joined by a
/// sparse multi-hop backbone; diameter ≈ `clusters + 1`.
pub fn clustered(clusters: usize, cluster_size: usize) -> DiGraph {
    assert!(clusters >= 1 && cluster_size >= 1);
    let n = clusters * cluster_size;
    let mut b = GraphBuilder::with_capacity(n, clusters * cluster_size * cluster_size);
    for c in 0..clusters {
        let base = (c * cluster_size) as NodeId;
        for i in 0..cluster_size as NodeId {
            for j in (i + 1)..cluster_size as NodeId {
                b.add_undirected(base + i, base + j);
            }
        }
        if c + 1 < clusters {
            b.add_undirected(base, base + cluster_size as NodeId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{degree_stats, diameter_from, is_strongly_connected};
    use radio_util::derive_rng;

    #[test]
    fn hypercube_shape() {
        let g = hypercube(5);
        assert_eq!(g.n(), 32);
        assert_eq!(g.m(), 32 * 5);
        assert!((0..32).all(|v| g.out_degree(v) == 5));
        assert_eq!(diameter_from(&g, 0), Some(5));
        assert!(g.is_symmetric());
    }

    #[test]
    fn torus_shape() {
        let g = torus2d(6, 4);
        assert_eq!(g.n(), 24);
        assert!((0..24).all(|v| g.out_degree(v) == 4));
        assert_eq!(diameter_from(&g, 0), Some(3 + 2));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn torus_3x3_degenerate_wraps_collapse() {
        // On a 3-wide torus, left and right neighbours of a node differ,
        // so degree stays 4.
        let g = torus2d(3, 3);
        assert!((0..9).all(|v| g.out_degree(v) == 4));
    }

    #[test]
    fn random_out_regular_degrees() {
        let mut rng = derive_rng(1, b"reg", 0);
        let g = random_out_regular(300, 7, &mut rng);
        assert!((0..300).all(|v| g.out_degree(v) == 7), "exact out-degree");
        assert!(g.edges().all(|(u, v)| u != v));
        let stats = degree_stats(&g);
        assert!((stats.in_mean - 7.0).abs() < 1e-9);
    }

    #[test]
    fn random_out_regular_is_usually_strongly_connected() {
        // d = 7 ≫ ln 300 ≈ 5.7: strongly connected w.h.p.
        let mut rng = derive_rng(2, b"reg", 0);
        let g = random_out_regular(300, 7, &mut rng);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn clustered_shape() {
        let g = clustered(8, 10);
        assert_eq!(g.n(), 80);
        assert!(is_strongly_connected(&g));
        // Head-to-head backbone: diameter ≈ clusters + 1.
        let d = diameter_from(&g, 1).expect("connected");
        assert!((8..=10).contains(&d), "diameter {d}");
    }

    #[test]
    #[should_panic]
    fn regular_rejects_d_ge_n() {
        let mut rng = derive_rng(3, b"reg", 0);
        let _ = random_out_regular(5, 5, &mut rng);
    }
}
