//! Erdős–Rényi random networks.
//!
//! The paper's §1.2: *"For random graphs, we use the directed version of
//! the standard model `G(n,p)`, where node `v` has an edge to node `w`
//! with probability `p`. Let `d = np` be the average in and out degree."*
//!
//! Sparse generation uses geometric skipping (Batagelj–Brandes): instead
//! of flipping `n(n−1)` coins, jump between successful pairs with
//! geometrically distributed gaps, giving `O(n + m)` expected time. This
//! matters: the experiment sweeps build thousands of graphs with
//! `n ≤ 2¹⁷`.

use crate::generate::edge_capacity;
use crate::{DiGraph, NodeId};
use rand::{Rng, RngExt};

/// Sample the gap to the next success of a Bernoulli(`p`) sequence:
/// `⌊ln(U) / ln(1−p)⌋` for `U ~ Uniform(0,1]`. Shared with the implicit
/// `G(n,p)` topology backend (`topology::gnp`), which replays the same
/// skip walk per row from a per-row seeded stream.
#[inline]
pub(crate) fn geometric_skip<R: Rng + ?Sized>(rng: &mut R, log1mp: f64) -> u64 {
    // `1.0 - random::<f64>()` lies in (0, 1], so `ln` is finite & ≤ 0.
    let u: f64 = 1.0 - rng.random::<f64>();
    let skip = (u.ln() / log1mp).floor();
    if skip >= u64::MAX as f64 {
        u64::MAX
    } else {
        skip as u64
    }
}

/// Directed `G(n, p)`: each ordered pair `(u, v)`, `u ≠ v`, carries the
/// edge `u → v` independently with probability `p`.
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1`.
pub fn gnp_directed<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of [0,1]");
    assert!(n as u64 <= u64::from(NodeId::MAX), "n too large for NodeId");
    if n == 0 || p == 0.0 {
        return DiGraph::from_sorted_unique_edges(n, Vec::new());
    }
    let total_pairs = (n as u64) * (n as u64 - 1);
    // 5% headroom over the binomial mean, clamped (the same audit as the
    // geometric generator: at p near 1 the fudge factor pushed the
    // estimate past the pair count, and nothing capped the request).
    let mut edges: Vec<(NodeId, NodeId)> =
        Vec::with_capacity(edge_capacity(n, total_pairs as f64 * p * 1.05));
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        return DiGraph::from_sorted_unique_edges(n, edges);
    }
    let log1mp = (1.0 - p).ln();
    // Linear index i over ordered non-diagonal pairs:
    //   u = i / (n−1); r = i % (n−1); v = r if r < u else r + 1.
    let stride = n as u64 - 1;
    let mut i: u64 = geometric_skip(rng, log1mp);
    while i < total_pairs {
        let u = (i / stride) as NodeId;
        let r = (i % stride) as NodeId;
        let v = if r < u { r } else { r + 1 };
        edges.push((u, v));
        i = i.saturating_add(1 + geometric_skip(rng, log1mp));
    }
    // Already sorted by construction (linear index is (u, v)-lexicographic)
    // and duplicate-free, so skip the builder's sort.
    DiGraph::from_sorted_unique_edges(n, edges)
}

/// Undirected `G(n, p)`: each unordered pair `{u, v}` carries *both*
/// directed edges with probability `p` (mutual communication ranges).
pub fn gnp_undirected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of [0,1]");
    assert!(n as u64 <= u64::from(NodeId::MAX), "n too large for NodeId");
    if n < 2 || p == 0.0 {
        return DiGraph::from_sorted_unique_edges(n, Vec::new());
    }
    let total_pairs = (n as u64) * (n as u64 - 1) / 2;
    // Two directed edges per successful pair, 5% headroom, clamped.
    let mut edges: Vec<(NodeId, NodeId)> =
        Vec::with_capacity(edge_capacity(n, total_pairs as f64 * p * 2.1));
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        return DiGraph::from_sorted_unique_edges(n, edges);
    }
    let log1mp = (1.0 - p).ln();
    // Linear index over pairs (u, v) with u < v, row-major:
    // row u holds n−1−u pairs. Walk rows while consuming the skip budget.
    let mut i: u64 = geometric_skip(rng, log1mp);
    let mut u: u64 = 0;
    let mut row_start: u64 = 0; // linear index of pair (u, u+1)
    while i < total_pairs {
        let mut row_len = n as u64 - 1 - u;
        while i >= row_start + row_len {
            row_start += row_len;
            u += 1;
            row_len = n as u64 - 1 - u;
        }
        let v = u + 1 + (i - row_start);
        edges.push((u as NodeId, v as NodeId));
        edges.push((v as NodeId, u as NodeId));
        i = i.saturating_add(1 + geometric_skip(rng, log1mp));
    }
    edges.sort_unstable();
    DiGraph::from_sorted_unique_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_util::derive_rng;

    #[test]
    fn p_zero_and_one_extremes() {
        let mut rng = derive_rng(1, b"gnp", 0);
        let g0 = gnp_directed(50, 0.0, &mut rng);
        assert_eq!(g0.m(), 0);
        let g1 = gnp_directed(50, 1.0, &mut rng);
        assert_eq!(g1.m(), 50 * 49);
        let u1 = gnp_undirected(30, 1.0, &mut rng);
        assert_eq!(u1.m(), 30 * 29);
        assert!(u1.is_symmetric());
    }

    #[test]
    fn directed_edge_count_concentrates() {
        // m ~ Binomial(n(n−1), p): mean 9900·0.3 = 2970, sd ≈ 45.6.
        let mut rng = derive_rng(2, b"gnp", 0);
        let n = 100;
        let p = 0.3;
        let g = gnp_directed(n, p, &mut rng);
        let mean = (n * (n - 1)) as f64 * p;
        let sd = (mean * (1.0 - p)).sqrt();
        let m = g.m() as f64;
        assert!(
            (m - mean).abs() < 6.0 * sd,
            "m = {m}, expected ≈ {mean} ± {sd}"
        );
    }

    #[test]
    fn undirected_is_symmetric_and_concentrated() {
        let mut rng = derive_rng(3, b"gnp", 0);
        let n = 120;
        let p = 0.2;
        let g = gnp_undirected(n, p, &mut rng);
        assert!(g.is_symmetric());
        let pairs = (n * (n - 1) / 2) as f64;
        let mean = 2.0 * pairs * p;
        let sd = 2.0 * (pairs * p * (1.0 - p)).sqrt();
        let m = g.m() as f64;
        assert!(
            (m - mean).abs() < 6.0 * sd,
            "m = {m}, expected ≈ {mean} ± {sd}"
        );
    }

    #[test]
    fn no_self_loops_generated() {
        let mut rng = derive_rng(4, b"gnp", 0);
        for g in [
            gnp_directed(64, 0.5, &mut rng),
            gnp_undirected(64, 0.5, &mut rng),
        ] {
            assert!(g.edges().all(|(u, v)| u != v));
        }
    }

    #[test]
    fn sparse_degrees_concentrate_around_d() {
        // d = np = 16; every node's out-degree should be within 6σ.
        let mut rng = derive_rng(5, b"gnp", 0);
        let n = 4096;
        let d = 16.0;
        let p = d / n as f64;
        let g = gnp_directed(n, p, &mut rng);
        let sd = (d * (1.0 - p)).sqrt();
        for u in 0..n as NodeId {
            let deg = g.out_degree(u) as f64;
            assert!(
                (deg - d).abs() < 8.0 * sd,
                "node {u} out-degree {deg} far from d = {d}"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g1 = gnp_directed(200, 0.05, &mut derive_rng(7, b"gnp", 0));
        let g2 = gnp_directed(200, 0.05, &mut derive_rng(7, b"gnp", 0));
        assert_eq!(g1, g2);
    }

    #[test]
    fn empty_n() {
        let mut rng = derive_rng(8, b"gnp", 0);
        assert_eq!(gnp_directed(0, 0.5, &mut rng).n(), 0);
        assert_eq!(gnp_undirected(1, 0.5, &mut rng).m(), 0);
    }
}
