//! Declarative graph families for parameter sweeps.
//!
//! A sweep grid names its topology as a [`GraphFamily`] value plus the
//! shared `(n, p)` axes; [`GraphFamily::generate`] turns one grid cell and
//! one RNG stream into a concrete [`DiGraph`]. The meaning of `p` is
//! family-specific (edge probability, connection radius, …) and documented
//! per variant; deterministic families ignore it.

use crate::generate::{caterpillar, classic, geometric, gnp, structured};
use crate::DiGraph;
use rand::Rng;

/// A named graph topology family, parameterised by the sweep's `(n, p)`.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphFamily {
    /// Directed `G(n, p)`; `p` = independent edge probability.
    GnpDirected,
    /// Undirected `G(n, p)` (both directions per pair); `p` = pair
    /// probability.
    GnpUndirected,
    /// Random geometric (unit-disk) graph; `p` = connection radius.
    Geometric,
    /// Random `d`-out-regular digraph; `p · n` rounded gives `d`.
    RandomOutRegular,
    /// Directed path `0 → 1 → … → n−1`; ignores `p`.
    Path,
    /// Star with centre `0` (bidirectional spokes); ignores `p`.
    Star,
    /// Caterpillar: a spine path with `legs` leaves per spine node;
    /// `n` must be an exact multiple of `legs + 1` (the generated graph
    /// always has exactly `n` nodes — a silent shortfall would skew
    /// every per-`n` sweep statistic); ignores `p`.
    Caterpillar {
        /// Leaves per spine node.
        legs: usize,
    },
}

impl GraphFamily {
    /// Stable label used in sweep reports and JSON output.
    pub fn label(&self) -> String {
        match self {
            GraphFamily::GnpDirected => "gnp_directed".to_string(),
            GraphFamily::GnpUndirected => "gnp_undirected".to_string(),
            GraphFamily::Geometric => "geometric".to_string(),
            GraphFamily::RandomOutRegular => "random_out_regular".to_string(),
            GraphFamily::Path => "path".to_string(),
            GraphFamily::Star => "star".to_string(),
            GraphFamily::Caterpillar { legs } => format!("caterpillar(legs={legs})"),
        }
    }

    /// Build one sample of the family at `(n, p)` from `rng`.
    ///
    /// Deterministic families consume no randomness, so results stay a
    /// pure function of `(family, n, p, seed)` either way.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, p: f64, rng: &mut R) -> DiGraph {
        match self {
            GraphFamily::GnpDirected => gnp::gnp_directed(n, p, rng),
            GraphFamily::GnpUndirected => gnp::gnp_undirected(n, p, rng),
            GraphFamily::Geometric => geometric::random_geometric(n, p, rng).0,
            GraphFamily::RandomOutRegular => {
                let d = (p * n as f64).round().max(0.0) as usize;
                structured::random_out_regular(n, d.min(n.saturating_sub(1)), rng)
            }
            GraphFamily::Path => classic::path(n),
            GraphFamily::Star => classic::star(n),
            GraphFamily::Caterpillar { legs } => {
                assert!(
                    n > 0 && n.is_multiple_of(legs + 1),
                    "caterpillar(legs={legs}) needs n divisible by {}, got n = {n}",
                    legs + 1
                );
                caterpillar(n / (legs + 1), *legs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_util::derive_rng;

    #[test]
    fn labels_are_stable() {
        assert_eq!(GraphFamily::GnpDirected.label(), "gnp_directed");
        assert_eq!(
            GraphFamily::Caterpillar { legs: 3 }.label(),
            "caterpillar(legs=3)"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for fam in [
            GraphFamily::GnpDirected,
            GraphFamily::GnpUndirected,
            GraphFamily::Geometric,
            GraphFamily::RandomOutRegular,
        ] {
            let a = fam.generate(64, 0.1, &mut derive_rng(5, b"fam", 0));
            let b = fam.generate(64, 0.1, &mut derive_rng(5, b"fam", 0));
            assert_eq!(a, b, "{}", fam.label());
            assert_eq!(a.n(), 64);
        }
    }

    #[test]
    fn deterministic_families_ignore_p() {
        let mut rng = derive_rng(6, b"fam", 0);
        let a = GraphFamily::Path.generate(10, 0.1, &mut rng);
        let b = GraphFamily::Path.generate(10, 0.9, &mut rng);
        assert_eq!(a, b);
        assert_eq!(a.m(), 2 * 9, "paths are bidirectional");
        let s = GraphFamily::Star.generate(7, 0.0, &mut rng);
        assert_eq!(s.n(), 7);
    }

    #[test]
    fn caterpillar_generates_exactly_n_nodes() {
        let g = GraphFamily::Caterpillar { legs: 20 }.generate(
            2016,
            0.0,
            &mut derive_rng(7, b"fam", 0),
        );
        assert_eq!(g.n(), 2016); // 96 spine nodes × 21
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn caterpillar_rejects_indivisible_n() {
        let _ =
            GraphFamily::Caterpillar { legs: 20 }.generate(100, 0.0, &mut derive_rng(8, b"fam", 0));
    }
}
