//! Deterministic network shapes for the general-network experiments
//! (Theorems 4.1 and 4.2 hold for *arbitrary* graphs with known diameter;
//! these families let us sweep `D` from `Θ(log n)` to `Θ(n)`).
//!
//! All shapes here use *mutual* edges (undirected radio links) unless the
//! name says otherwise, matching the intuition of identical communication
//! ranges; the paper's algorithms never assume symmetry.

use crate::generate::edge_capacity;
use crate::{DiGraph, GraphBuilder, NodeId};

/// Path `0 — 1 — … — n−1` with mutual edges. Diameter `n − 1`.
pub fn path(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, 2 * n.saturating_sub(1));
    for i in 1..n as NodeId {
        b.add_undirected(i - 1, i);
    }
    b.build()
}

/// Cycle on `n ≥ 3` nodes with mutual edges. Diameter `⌊n/2⌋`.
pub fn cycle(n: usize) -> DiGraph {
    assert!(n >= 3, "cycle needs n ≥ 3, got {n}");
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for i in 1..n as NodeId {
        b.add_undirected(i - 1, i);
    }
    b.add_undirected(n as NodeId - 1, 0);
    b.build()
}

/// Star with centre `0` and `n − 1` leaves, mutual edges. Diameter 2.
pub fn star(n: usize) -> DiGraph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_capacity(n, 2 * n.saturating_sub(1));
    for leaf in 1..n as NodeId {
        b.add_undirected(0, leaf);
    }
    b.build()
}

/// Complete graph (every pair mutual). Diameter 1.
pub fn complete(n: usize) -> DiGraph {
    // The exact count is n·(n−1), but funnel it through the shared clamp
    // anyway: `n * (n−1)` overflows usize for absurd n, and a quadratic
    // pre-allocation request past the budget helps nobody.
    let mut b = GraphBuilder::with_capacity(n, edge_capacity(n, n as f64 * (n as f64 - 1.0)));
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_undirected(u, v);
        }
    }
    b.build()
}

/// `w × h` 4-neighbour grid, mutual edges; node `(x, y)` is `y·w + x`.
/// Diameter `w + h − 2`.
pub fn grid2d(w: usize, h: usize) -> DiGraph {
    let n = w * h;
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut b = GraphBuilder::with_capacity(n, 4 * n);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_undirected(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b.add_undirected(id(x, y), id(x, y + 1));
            }
        }
    }
    b.build()
}

/// Complete binary tree on `n` nodes (heap layout: children of `i` are
/// `2i+1`, `2i+2`), mutual edges. Diameter `Θ(log n)`.
pub fn binary_tree(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                b.add_undirected(i as NodeId, c as NodeId);
            }
        }
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` nodes, each carrying `legs` leaf
/// nodes, all edges mutual. `n = spine · (1 + legs)`, diameter
/// `spine + 1` (leaf → spine → … → spine → leaf). This family decouples
/// `n` from `D`, which the Theorem 4.1/4.2 sweeps need.
pub fn caterpillar(spine: usize, legs: usize) -> DiGraph {
    assert!(spine >= 1);
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::with_capacity(n, 2 * n + 2 * spine);
    for s in 1..spine {
        b.add_undirected((s - 1) as NodeId, s as NodeId);
    }
    // Leaves of spine node s occupy ids spine + s·legs .. spine + (s+1)·legs.
    for s in 0..spine {
        for l in 0..legs {
            let leaf = (spine + s * legs + l) as NodeId;
            b.add_undirected(s as NodeId, leaf);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{diameter_from, is_strongly_connected};

    #[test]
    fn path_shape() {
        let g = path(10);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 18);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(5), 2);
        assert_eq!(diameter_from(&g, 0), Some(9));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn single_node_path() {
        let g = path(1);
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
        assert_eq!(diameter_from(&g, 0), Some(0));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8);
        assert_eq!(g.m(), 16);
        assert!((0..8).all(|u| g.out_degree(u) == 2));
        assert_eq!(diameter_from(&g, 0), Some(4));
    }

    #[test]
    fn star_shape() {
        let g = star(17);
        assert_eq!(g.out_degree(0), 16);
        assert!((1..17).all(|u| g.out_degree(u) == 1));
        assert_eq!(diameter_from(&g, 1), Some(2));
    }

    #[test]
    fn complete_shape() {
        let g = complete(9);
        assert_eq!(g.m(), 72);
        assert_eq!(diameter_from(&g, 3), Some(1));
    }

    #[test]
    fn grid_shape() {
        let g = grid2d(5, 4);
        assert_eq!(g.n(), 20);
        // Interior degree 4, corner degree 2.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree((5 + 1) as NodeId), 4);
        assert_eq!(diameter_from(&g, 0), Some(7));
        assert!(g.is_symmetric());
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15); // perfect tree of height 3
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(7), 1); // a leaf
        assert_eq!(diameter_from(&g, 0), Some(3));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn caterpillar_shape() {
        let spine = 6;
        let legs = 3;
        let g = caterpillar(spine, legs);
        assert_eq!(g.n(), 24);
        assert!(is_strongly_connected(&g));
        // Spine ends have 1 spine edge + legs; interior 2 + legs.
        assert_eq!(g.out_degree(0), 1 + legs);
        assert_eq!(g.out_degree(2), 2 + legs);
        // Eccentricity of spine end 0: spine-1 hops + 1 into the last leaf.
        assert_eq!(diameter_from(&g, 0), Some(spine as u32));
    }
}
