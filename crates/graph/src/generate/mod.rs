//! Network generators.
//!
//! Everything the paper evaluates on or constructs:
//!
//! * [`gnp`] — the Erdős–Rényi random networks of §2–§3, in the paper's
//!   *directed* variant (`G(n,p)` where each ordered pair carries an edge
//!   independently with probability `p`) and the classical undirected one.
//! * [`classic`] — deterministic shapes used for the general-network
//!   experiments (paths, cycles, grids, trees, caterpillars…).
//! * [`lower_bound`] — the adversarial constructions: the Observation 4.3
//!   star-chain and the Theorem 4.4 / Figure 2 layered network.
//! * [`geometric`] — random geometric (unit-disk) graphs, the model the
//!   paper's §5 names as future work, including the heterogeneous-range
//!   directed variant motivated in §1 ("communication ranges of different
//!   devices can vary").

pub mod classic;
pub mod family;
pub mod geometric;
pub mod gnp;
pub mod lower_bound;
pub mod structured;

/// Hard ceiling on any single generator pre-allocation, in edge entries
/// (64 Mi pairs = 512 MiB). Past this an estimate buys nothing: `Vec`'s
/// geometric growth costs at most one extra copy, which is noise next to
/// actually generating that many edges — while an over-estimate turned
/// straight into `with_capacity` aborts the process before generation
/// even starts (the `n²`-flavored geometric estimate requested terabytes
/// at `n = 2²⁰`).
const MAX_PREALLOC_EDGES: usize = 1 << 26;

/// Clamp a (possibly wildly over-estimated) expected-edge count into a
/// safe `Vec::with_capacity` argument, reporting when the prealloc
/// budget was the binding constraint.
///
/// Returns `(capacity, clamped_from)`: `clamped_from` is
/// `Some(graph_feasible_estimate)` exactly when the estimate survived
/// the graph-theoretic `n·(n−1)` cap but exceeded
/// [`MAX_PREALLOC_EDGES`] — i.e. the generator genuinely planned more
/// edges than the budget pre-sizes for and the edge vec will re-grow by
/// doubling from 2²⁶. Pure (no I/O) so the clamp decision is testable;
/// [`edge_capacity`] wraps it with the stderr note.
pub fn edge_capacity_planned(n: usize, expected_edges: f64) -> (usize, Option<u128>) {
    let max_edges = (n as u128).saturating_mul(n.saturating_sub(1) as u128);
    // `as` saturates on huge/NaN floats, so the estimate itself can't
    // overflow; negative/NaN estimates clamp to 0 and leave the +16 pad.
    let est = (expected_edges.max(0.0) as u128).saturating_add(16);
    let feasible = est.min(max_edges);
    if feasible > MAX_PREALLOC_EDGES as u128 {
        (MAX_PREALLOC_EDGES, Some(feasible))
    } else {
        (feasible as usize, None)
    }
}

/// Clamp a (possibly wildly over-estimated) expected-edge count into a
/// safe `Vec::with_capacity` argument: never beyond the graph-theoretic
/// maximum `n·(n−1)` and never beyond [`MAX_PREALLOC_EDGES`]. All
/// generator pre-sizing funnels through here so no parameter corner —
/// huge `n`, radius near the torus bound, `p` near 1 — can turn a hint
/// into a multi-terabyte allocation request. Capacity is a hint only; it
/// never affects the generated graph.
///
/// When the budget clamp binds, the truncation used to be silent: the
/// generator would quietly fall back to doubling growth, and a
/// TB-scale estimate looked identical to a well-sized one. Now a
/// one-line stderr note reports the planned-vs-clamped sizes (the
/// generators have no logging dependency by design), so the scale
/// ceiling is visible, not just survivable.
pub fn edge_capacity(n: usize, expected_edges: f64) -> usize {
    let (cap, clamped_from) = edge_capacity_planned(n, expected_edges);
    if let Some(planned) = clamped_from {
        let mib = planned.saturating_mul(8) / (1 << 20);
        eprintln!(
            "note: generator pre-allocation clamped: planned ≈{planned} edge entries \
             (≈{mib} MiB) exceeds the {MAX_PREALLOC_EDGES}-entry prealloc budget; \
             reserving {cap} and growing on demand"
        );
    }
    cap
}

pub use classic::{binary_tree, caterpillar, complete, cycle, grid2d, path, star};
pub use family::GraphFamily;
pub use geometric::{
    mobile_geometric_sequence, random_geometric, random_geometric_directed, GeoParams,
};
pub use gnp::{gnp_directed, gnp_undirected};
pub use lower_bound::{lower_bound_net, star_chain, LowerBoundNet, StarChain};
pub use structured::{clustered, hypercube, random_out_regular, torus2d};

#[cfg(test)]
mod capacity_tests {
    use super::{edge_capacity, edge_capacity_planned, MAX_PREALLOC_EDGES};

    /// The clamp note fires exactly when the budget binds: the pure
    /// `clamped_from` flag is `Some` iff the graph-feasible estimate
    /// exceeds the budget (matching when `edge_capacity` prints).
    #[test]
    fn clamp_note_fires_exactly_when_budget_binds() {
        // Graph-theoretic bound binds first → no note.
        assert_eq!(edge_capacity_planned(10, 1e9), (90, None));
        assert_eq!(edge_capacity_planned(1000, f64::INFINITY), (999_000, None));
        // Small estimates pass through → no note.
        assert_eq!(edge_capacity_planned(100_000, 250.0), (266, None));
        // Exactly at the budget → no note (nothing was truncated).
        let n = usize::MAX;
        let at = (MAX_PREALLOC_EDGES - 16) as f64;
        assert_eq!(edge_capacity_planned(n, at), (MAX_PREALLOC_EDGES, None));
        // Past the budget with a feasible graph → note with the planned
        // figure, already reduced to the graph-theoretic bound.
        let (cap, planned) = edge_capacity_planned(1 << 20, 8.6e11);
        assert_eq!(cap, MAX_PREALLOC_EDGES);
        assert_eq!(planned, Some(8.6e11 as u128 + 16));
        let (cap2, planned2) = edge_capacity_planned(1 << 14, 1e30);
        assert_eq!(cap2, MAX_PREALLOC_EDGES);
        let max_e = (1u128 << 14) * ((1 << 14) - 1);
        assert_eq!(planned2, Some(max_e), "planned figure must be feasible");
    }

    #[test]
    fn small_estimates_pass_through_with_pad() {
        assert_eq!(edge_capacity(100, 250.0), 266);
    }

    #[test]
    fn clamps_to_max_possible_edges() {
        assert_eq!(edge_capacity(10, 1e9), 90);
        assert_eq!(edge_capacity(1, 64.0), 0);
        assert_eq!(edge_capacity(0, 64.0), 0);
    }

    #[test]
    fn clamps_terabyte_scale_estimates_to_the_prealloc_budget() {
        // The pre-fix geometric estimate at n = 2²⁰, r near the torus
        // bound: ~8.6·10¹¹ entries ≈ 6.9 TB of (u32, u32) pairs,
        // requested before a single edge existed.
        let n = 1 << 20;
        let est = (n as f64) * std::f64::consts::PI * 0.5 * 0.5 * (n as f64);
        assert!(est > 8e11);
        assert_eq!(edge_capacity(n, est), MAX_PREALLOC_EDGES);
    }

    #[test]
    fn degenerate_floats_do_not_panic_or_explode() {
        // At n = 1000 the graph-theoretic bound (999 000) binds first.
        assert_eq!(edge_capacity(1000, f64::INFINITY), 999_000);
        assert_eq!(edge_capacity(1000, f64::NAN), 16);
        assert_eq!(edge_capacity(1000, -5.0), 16);
        // usize-overflow corner: n·(n−1) saturates instead of wrapping.
        assert_eq!(edge_capacity(usize::MAX, 1e30), MAX_PREALLOC_EDGES);
    }
}
