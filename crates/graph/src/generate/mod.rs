//! Network generators.
//!
//! Everything the paper evaluates on or constructs:
//!
//! * [`gnp`] — the Erdős–Rényi random networks of §2–§3, in the paper's
//!   *directed* variant (`G(n,p)` where each ordered pair carries an edge
//!   independently with probability `p`) and the classical undirected one.
//! * [`classic`] — deterministic shapes used for the general-network
//!   experiments (paths, cycles, grids, trees, caterpillars…).
//! * [`lower_bound`] — the adversarial constructions: the Observation 4.3
//!   star-chain and the Theorem 4.4 / Figure 2 layered network.
//! * [`geometric`] — random geometric (unit-disk) graphs, the model the
//!   paper's §5 names as future work, including the heterogeneous-range
//!   directed variant motivated in §1 ("communication ranges of different
//!   devices can vary").

pub mod classic;
pub mod family;
pub mod geometric;
pub mod gnp;
pub mod lower_bound;
pub mod structured;

pub use classic::{binary_tree, caterpillar, complete, cycle, grid2d, path, star};
pub use family::GraphFamily;
pub use geometric::{
    mobile_geometric_sequence, random_geometric, random_geometric_directed, GeoParams,
};
pub use gnp::{gnp_directed, gnp_undirected};
pub use lower_bound::{lower_bound_net, star_chain, LowerBoundNet, StarChain};
pub use structured::{clustered, hypercube, random_out_regular, torus2d};
