//! The paper's adversarial lower-bound constructions.
//!
//! * [`star_chain`] — Observation 4.3: a 3n+1-node network on which *any*
//!   oblivious broadcast algorithm needs `n log n / 2` transmissions to
//!   succeed with probability `1 − 1/n`.
//! * [`lower_bound_net`] — Theorem 4.4 / **Figure 2**: a cascade of
//!   exponentially growing stars `S₁ … S_{log n}` feeding a long path,
//!   showing that time-invariant algorithms finishing in `c·D·log(n/D)`
//!   rounds need `Ω(log² n / log(n/D))` transmissions per node.

use crate::{DiGraph, GraphBuilder, NodeId};
use std::ops::Range;

/// The Observation 4.3 network, with role annotations.
///
/// Layout (ids): source `s = 0`; intermediates `u₁ … u_{2n}` at `1 ..= 2n`;
/// destinations `d₁ … d_n` at `2n+1 ..= 3n`. Edges: `s → uᵢ` for all `i`;
/// `u_{2i−1} → dᵢ` and `u_{2i} → dᵢ`.
///
/// Every destination hears **exactly two** intermediates, so it is informed
/// in a round iff exactly one of its two parents transmits — the
/// `2q(1 − q)` bottleneck at the heart of the proof.
#[derive(Debug, Clone)]
pub struct StarChain {
    /// The network.
    pub graph: DiGraph,
    /// Broadcast originator (`s`).
    pub source: NodeId,
    /// The `2n` intermediate node ids.
    pub intermediates: Range<NodeId>,
    /// The `n` destination node ids.
    pub destinations: Range<NodeId>,
}

/// Build the Observation 4.3 star-chain for parameter `n ≥ 1`
/// (`3n + 1` nodes).
pub fn star_chain(n: usize) -> StarChain {
    assert!(n >= 1);
    let total = 3 * n + 1;
    let mut b = GraphBuilder::with_capacity(total, 4 * n);
    let s: NodeId = 0;
    for i in 1..=(2 * n) as NodeId {
        b.add_edge(s, i);
    }
    for i in 1..=n {
        let d = (2 * n + i) as NodeId;
        let u_lo = (2 * i - 1) as NodeId;
        let u_hi = (2 * i) as NodeId;
        b.add_edge(u_lo, d);
        b.add_edge(u_hi, d);
    }
    StarChain {
        graph: b.build(),
        source: s,
        intermediates: 1..(2 * n + 1) as NodeId,
        destinations: (2 * n + 1) as NodeId..(3 * n + 1) as NodeId,
    }
}

/// The Theorem 4.4 / Figure 2 network, with role annotations.
#[derive(Debug, Clone)]
pub struct LowerBoundNet {
    /// The network.
    pub graph: DiGraph,
    /// Broadcast originator — the centre `c₁` of the first star.
    pub source: NodeId,
    /// Star centres `c₁ … c_{log n}`.
    pub centers: Vec<NodeId>,
    /// Per-star leaf id ranges; star `Sᵢ` (index `i−1`) has `2ⁱ` leaves.
    pub leaves: Vec<Range<NodeId>>,
    /// The path `v₀ … v_L` of `G₂` (`v₀` doubles as `c_{log n + 1}`).
    pub path: Range<NodeId>,
    /// The `n` parameter (`= 2^{#stars}`).
    pub n_param: usize,
    /// The network diameter `D` (distance from source to the path end).
    pub diameter: u32,
}

/// Build the Theorem 4.4 network for `n = 2^k` (pass `log2_n = k ≥ 1`) and
/// diameter `D`.
///
/// Structure (paper §4.2): `G₁` is a cascade of stars; star `Sᵢ` has centre
/// `cᵢ` and `2ⁱ` leaves, with mutual centre↔leaf edges (`cᵢ` informs its
/// leaves; the star is drawn undirected in Figure 2). Every leaf of `Sᵢ`
/// has a *directed* edge to `c_{i+1}` ("every leaf node in `Sᵢ` has an edge
/// to the center of `S_{i+1}`"), so `c_{i+1}` is informed iff **exactly
/// one** of the `2ⁱ` leaves transmits. The leaves of the last star feed
/// `v₀`, the head of the `G₂` path ("also denoted `c_{log n + 1}`" — we
/// connect the leaves only, so `v₀` behaves exactly like the next centre),
/// and the path carries forward edges `vᵢ → v_{i+1}` of length
/// `L = D − 2 log n`.
///
/// Node count is `Σᵢ (2ⁱ + 1) + (L + 1) ≤ 2n + D` as in the paper.
///
/// # Panics
/// Panics unless `D > 2·log2_n` (the path needs positive length).
pub fn lower_bound_net(log2_n: u32, diameter: u32) -> LowerBoundNet {
    assert!(log2_n >= 1);
    assert!(
        diameter > 2 * log2_n,
        "need D > 2·log n (= {}), got D = {diameter}",
        2 * log2_n
    );
    let k = log2_n as usize;
    let n_param = 1usize << k;
    let path_len = (diameter - 2 * log2_n) as usize; // L = D − 2 log n
    let total = (2 * n_param - 2) + k + (path_len + 1);

    let mut b = GraphBuilder::with_capacity(total, 6 * n_param + 2 * path_len);
    let mut centers = Vec::with_capacity(k);
    let mut leaves = Vec::with_capacity(k);
    let mut next: NodeId = 0;

    // G1: stars S_1 .. S_k.
    for i in 1..=k {
        let c = next;
        next += 1;
        centers.push(c);
        let first_leaf = next;
        let n_leaves = 1u32 << i;
        for _ in 0..n_leaves {
            let leaf = next;
            next += 1;
            b.add_undirected(c, leaf);
        }
        leaves.push(first_leaf..next);
        // Chain: leaves of S_{i−1} → c_i.
        if i >= 2 {
            let prev = leaves[i - 2].clone();
            for leaf in prev {
                b.add_edge(leaf, c);
            }
        }
    }

    // G2: path v_0 .. v_L; leaves of S_k feed v_0.
    let v0 = next;
    for leaf in leaves[k - 1].clone() {
        b.add_edge(leaf, v0);
    }
    next += 1;
    for _ in 0..path_len {
        let v = next;
        next += 1;
        b.add_edge(v - 1, v);
    }
    let path = v0..next;
    debug_assert_eq!(next as usize, total);

    LowerBoundNet {
        graph: b.build(),
        source: centers[0],
        centers,
        leaves,
        path,
        n_param,
        diameter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{bfs_distances, diameter_from};

    #[test]
    fn star_chain_shape() {
        let n = 10;
        let sc = star_chain(n);
        let g = &sc.graph;
        assert_eq!(g.n(), 3 * n + 1);
        assert_eq!(g.m(), 2 * n + 2 * n);
        // Source reaches all intermediates directly.
        assert_eq!(g.out_degree(sc.source), 2 * n);
        // Every destination hears exactly two intermediates.
        for d in sc.destinations.clone() {
            assert_eq!(g.in_degree(d), 2, "destination {d}");
            let parents = g.in_neighbors(d);
            assert!(parents.iter().all(|p| sc.intermediates.contains(p)));
        }
        // Every intermediate hears only the source and feeds one destination.
        for u in sc.intermediates.clone() {
            assert_eq!(g.in_neighbors(u), &[sc.source]);
            assert_eq!(g.out_degree(u), 1);
        }
        assert_eq!(diameter_from(g, sc.source), Some(2));
    }

    #[test]
    fn star_chain_destination_parents_are_disjoint_pairs() {
        let sc = star_chain(7);
        let mut seen = std::collections::HashSet::new();
        for d in sc.destinations.clone() {
            for &p in sc.graph.in_neighbors(d) {
                assert!(
                    seen.insert(p),
                    "intermediate {p} shared by two destinations"
                );
            }
        }
        assert_eq!(seen.len(), 14);
    }

    #[test]
    fn lower_bound_net_shape() {
        let k = 4; // n = 16
        let d = 20; // > 2k = 8
        let net = lower_bound_net(k, d);
        let g = &net.graph;
        let n_param = 1usize << k;
        assert_eq!(net.n_param, n_param);
        // Node count: Σ (2^i + 1) + (L+1), L = D − 2k.
        let expect_nodes = (2 * n_param - 2) + k as usize + (d as usize - 2 * k as usize + 1);
        assert_eq!(g.n(), expect_nodes);
        assert!(g.n() <= 2 * n_param + d as usize);

        // Star i has 2^i leaves, all hearing the centre.
        for (idx, lv) in net.leaves.iter().enumerate() {
            let i = idx + 1;
            assert_eq!(lv.len(), 1 << i, "star S{i} leaf count");
            for leaf in lv.clone() {
                assert!(g.has_edge(net.centers[idx], leaf));
                assert!(g.has_edge(leaf, net.centers[idx]));
            }
        }
        // Centre c_{i+1} hears exactly the 2^i leaves of S_i.
        for i in 1..net.centers.len() {
            let c = net.centers[i];
            let expected: Vec<NodeId> = net.leaves[i - 1].clone().collect();
            let mut heard: Vec<NodeId> = g.in_neighbors(c).to_vec();
            heard.retain(|x| expected.contains(x));
            assert_eq!(heard.len(), expected.len(), "c_{} in-neighbours", i + 1);
        }
        // v0 hears exactly the leaves of the last star.
        let v0 = net.path.start;
        assert_eq!(g.in_degree(v0), 1 << k);

        // Source-to-everything distances: path end sits at exactly D.
        let dist = bfs_distances(g, net.source);
        let last = net.path.end - 1;
        assert_eq!(dist[last as usize], Some(net.diameter));
        assert_eq!(diameter_from(g, net.source), Some(net.diameter));
    }

    #[test]
    fn lower_bound_net_distances_follow_cascade() {
        let net = lower_bound_net(3, 12);
        let dist = bfs_distances(&net.graph, net.source);
        // c_i at distance 2(i−1); leaves of S_i at 2i−1.
        for (idx, &c) in net.centers.iter().enumerate() {
            assert_eq!(dist[c as usize], Some(2 * idx as u32));
        }
        for (idx, lv) in net.leaves.iter().enumerate() {
            for leaf in lv.clone() {
                assert_eq!(dist[leaf as usize], Some(2 * idx as u32 + 1));
            }
        }
        // v_j at 2k + j.
        for (j, v) in net.path.clone().enumerate() {
            assert_eq!(dist[v as usize], Some(6 + j as u32));
        }
    }

    #[test]
    #[should_panic]
    fn lower_bound_net_requires_long_path() {
        let _ = lower_bound_net(4, 8); // D = 2·log n: too short
    }
}
