//! Graph analysis: BFS layers, diameter, connectivity, degree statistics.
//!
//! These feed the experiments directly — Lemma 3.1 (the diameter of
//! `G(n,p)` is `⌈log n / log d⌉` w.h.p.) is checked by measuring
//! [`diameter_from`] over many sampled graphs, and the Theorem 4.1/4.2
//! harnesses need true source eccentricities to set the known-`D`
//! parameter of Algorithm 3.

use crate::{DiGraph, NodeId};
use std::collections::VecDeque;

/// BFS distances from `src` along out-edges; `None` = unreachable.
pub fn bfs_distances(g: &DiGraph, src: NodeId) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; g.n()];
    let mut q = VecDeque::new();
    dist[src as usize] = Some(0);
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize].expect("queued node has distance");
        for &v in g.out_neighbors(u) {
            if dist[v as usize].is_none() {
                dist[v as usize] = Some(du + 1);
                q.push_back(v);
            }
        }
    }
    dist
}

/// Nodes grouped by BFS distance from `src`: `layers[k]` holds the nodes
/// at distance exactly `k`. Unreachable nodes are absent.
pub fn bfs_layers(g: &DiGraph, src: NodeId) -> Vec<Vec<NodeId>> {
    let dist = bfs_distances(g, src);
    let max_d = dist.iter().flatten().copied().max().unwrap_or(0) as usize;
    let mut layers: Vec<Vec<NodeId>> = vec![Vec::new(); max_d + 1];
    for (v, d) in dist.iter().enumerate() {
        if let Some(d) = d {
            layers[*d as usize].push(v as NodeId);
        }
    }
    layers
}

/// Number of nodes reachable from `src` (including `src`).
pub fn reachable_count(g: &DiGraph, src: NodeId) -> usize {
    bfs_distances(g, src).iter().flatten().count()
}

/// Eccentricity of `src`: max distance to any node, provided *all* nodes
/// are reachable; `None` otherwise.
///
/// For a broadcast source this is the relevant "diameter `D`" — the paper
/// always measures broadcast time against the source's eccentricity bound.
pub fn diameter_from(g: &DiGraph, src: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, src);
    let mut max = 0u32;
    for d in &dist {
        match d {
            Some(d) => max = max.max(*d),
            None => return None,
        }
    }
    Some(max)
}

/// True iff every node can reach every other node.
///
/// Checked as: all nodes reachable from node 0 in `g` *and* in the
/// transpose of `g` (two BFS passes — the textbook strong-connectivity
/// test without building SCCs).
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    if g.n() == 0 {
        return true;
    }
    if reachable_count(g, 0) != g.n() {
        return false;
    }
    reachable_count(&g.reverse(), 0) == g.n()
}

/// Min/mean/max of in- and out-degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    pub out_min: usize,
    pub out_max: usize,
    pub out_mean: f64,
    pub in_min: usize,
    pub in_max: usize,
    pub in_mean: f64,
}

/// Compute [`DegreeStats`] for `g`.
pub fn degree_stats(g: &DiGraph) -> DegreeStats {
    let n = g.n().max(1);
    let (mut omin, mut omax, mut imin, mut imax) = (usize::MAX, 0usize, usize::MAX, 0usize);
    for v in 0..g.n() as NodeId {
        let od = g.out_degree(v);
        let id = g.in_degree(v);
        omin = omin.min(od);
        omax = omax.max(od);
        imin = imin.min(id);
        imax = imax.max(id);
    }
    if g.n() == 0 {
        (omin, imin) = (0, 0);
    }
    DegreeStats {
        out_min: omin,
        out_max: omax,
        out_mean: g.m() as f64 / n as f64,
        in_min: imin,
        in_max: imax,
        in_mean: g.m() as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{cycle, gnp_directed, path, star};
    use radio_util::derive_rng;

    #[test]
    fn bfs_on_path() {
        let g = path(6);
        let d = bfs_distances(&g, 0);
        for (i, di) in d.iter().enumerate() {
            assert_eq!(*di, Some(i as u32));
        }
        assert_eq!(diameter_from(&g, 0), Some(5));
        assert_eq!(diameter_from(&g, 3), Some(3));
    }

    #[test]
    fn bfs_layers_partition_reachable_nodes() {
        let g = star(9);
        let layers = bfs_layers(&g, 0);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0]);
        assert_eq!(layers[1].len(), 8);
    }

    #[test]
    fn unreachable_nodes_reported() {
        // 0 → 1, and isolated node 2.
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], None);
        assert_eq!(diameter_from(&g, 0), None);
        assert_eq!(reachable_count(&g, 0), 2);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn strong_connectivity_needs_both_directions() {
        // Directed cycle is strongly connected; directed path is not.
        let c = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(is_strongly_connected(&c));
        let p = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!is_strongly_connected(&p));
        assert!(is_strongly_connected(&cycle(5)));
    }

    #[test]
    fn gnp_diameter_matches_lemma_3_1_shape() {
        // Lemma 3.1: for p = δ log n / n with large δ, D = ⌈log n / log d⌉.
        let n = 2048usize;
        let delta = 16.0;
        let p = delta * (n as f64).ln() / n as f64;
        let d = n as f64 * p;
        let predicted = ((n as f64).log2() / d.log2()).ceil() as u32;
        let mut hits = 0;
        for t in 0..5 {
            let g = gnp_directed(n, p, &mut derive_rng(100 + t, b"lemma31", 0));
            if let Some(diam) = diameter_from(&g, 0) {
                if diam == predicted || diam == predicted + 1 {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 4, "diameter far from ⌈log n / log d⌉ = {predicted}");
    }

    #[test]
    fn degree_stats_on_star() {
        let g = star(5);
        let s = degree_stats(&g);
        assert_eq!(s.out_max, 4);
        assert_eq!(s.out_min, 1);
        assert!((s.out_mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.in_max, 4);
    }

    #[test]
    fn degree_stats_empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(s.out_min, 0);
        assert_eq!(s.out_max, 0);
    }
}
