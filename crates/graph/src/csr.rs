//! Flat compressed-sparse-row adjacency storage.
//!
//! A [`Csr`] is one *direction* of a digraph: `offsets[u] .. offsets[u+1]`
//! indexes the flat `neighbors` array. Offsets are `u32` (not `usize`):
//! the whole index structure for an `n`-node graph is `4(n+1)` bytes, so a
//! simulation sweep at `n = 10⁵` keeps the entire offset array in L2 and
//! streams `neighbors` linearly — the cache-friendly layout that the
//! engine's hot scatter loop iterates directly.
//!
//! [`DiGraph`](crate::DiGraph) owns two `Csr`s (out- and in-views) built
//! once by the graph builder; everything downstream borrows slices.

use crate::NodeId;

/// One direction of adjacency in compressed-sparse-row form.
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[u]..offsets[u+1]` indexes `neighbors`; `len == n + 1`.
    offsets: Vec<u32>,
    /// Concatenated, per-row-sorted neighbor lists; `len == nnz`.
    neighbors: Vec<NodeId>,
}

impl std::fmt::Debug for Csr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Csr")
            .field("n", &self.n())
            .field("nnz", &self.nnz())
            .finish()
    }
}

impl Csr {
    /// Assemble from pre-validated parts.
    ///
    /// # Panics
    /// Panics if the offset array is malformed (empty, non-monotone, or
    /// not ending at `neighbors.len()`).
    pub fn from_parts(offsets: Vec<u32>, neighbors: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n + 1 entries");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            neighbors.len(),
            "offsets must end at neighbors.len()"
        );
        Csr { offsets, neighbors }
    }

    /// Build from `(row, col)` pairs sorted by `(row, col)` with no
    /// duplicates. `nnz` must fit in `u32` (enforced; ~4·10⁹ edges is far
    /// beyond any simulation here).
    pub fn from_sorted_pairs(n: usize, pairs: impl Iterator<Item = (NodeId, NodeId)>) -> Self {
        let mut offsets = vec![0u32; n + 1];
        let mut neighbors = Vec::new();
        let mut last: Option<(NodeId, NodeId)> = None;
        for (u, v) in pairs {
            debug_assert!(last.is_none_or(|l| l < (u, v)), "pairs must be sorted");
            last = Some((u, v));
            offsets[u as usize + 1] += 1;
            neighbors.push(v);
        }
        assert!(
            neighbors.len() <= u32::MAX as usize,
            "edge count {} overflows u32 CSR offsets",
            neighbors.len()
        );
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        Csr { offsets, neighbors }
    }

    /// Build from per-row neighbor lists (each row is sorted on insert).
    ///
    /// Rows that are already sorted — the common case: the generators
    /// emit neighbors in ascending order, and `to_adj_lists` round-trips
    /// sorted rows — are copied straight into the flat array; only
    /// unsorted rows pay the clone + sort. The sortedness check is one
    /// linear scan of data the copy touches anyway.
    pub fn from_adj_lists(lists: &[Vec<NodeId>]) -> Self {
        let nnz: usize = lists.iter().map(Vec::len).sum();
        assert!(
            nnz <= u32::MAX as usize,
            "edge count {nnz} overflows u32 CSR offsets"
        );
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut neighbors = Vec::with_capacity(nnz);
        offsets.push(0u32);
        for row in lists {
            if row.windows(2).all(|w| w[0] <= w[1]) {
                neighbors.extend_from_slice(row);
            } else {
                let mut sorted = row.clone();
                sorted.sort_unstable();
                neighbors.extend_from_slice(&sorted);
            }
            offsets.push(neighbors.len() as u32);
        }
        Csr { offsets, neighbors }
    }

    /// Explode back into per-row `Vec`s (the pointer-chasing layout the
    /// CSR backend replaces; kept for differential tests and benches).
    pub fn to_adj_lists(&self) -> Vec<Vec<NodeId>> {
        (0..self.n() as NodeId)
            .map(|u| self.row(u).to_vec())
            .collect()
    }

    /// Number of rows (nodes).
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored entries (edges in this direction).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.neighbors.len()
    }

    /// The neighbor slice of row `u` (sorted ascending).
    #[inline]
    pub fn row(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Number of entries in row `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// The raw offset array (`n + 1` entries). Hot loops index this
    /// directly instead of calling [`Csr::row`] per node.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw flat neighbor array (`nnz` entries).
    #[inline]
    pub fn flat_neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Both raw arrays at once, for the engine's scatter loop.
    #[inline]
    pub fn raw(&self) -> (&[u32], &[NodeId]) {
        (&self.offsets, &self.neighbors)
    }

    /// The transposed view (every stored `u → v` becomes `v → u`),
    /// computed by counting sort; rows stay sorted.
    pub fn transpose(&self) -> Csr {
        let n = self.n();
        let mut offsets = vec![0u32; n + 1];
        for &v in &self.neighbors {
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut neighbors = vec![0 as NodeId; self.nnz()];
        let mut cursor = offsets.clone();
        for u in 0..n {
            for &v in self.row(u as NodeId) {
                neighbors[cursor[v as usize] as usize] = u as NodeId;
                cursor[v as usize] += 1;
            }
        }
        Csr { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 → {1,2}, 1 → {3}, 2 → {3}, 3 → {}
        Csr::from_sorted_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)].into_iter())
    }

    #[test]
    fn rows_and_degrees() {
        let c = sample();
        assert_eq!(c.n(), 4);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.row(0), &[1, 2]);
        assert_eq!(c.row(3), &[] as &[NodeId]);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(3), 0);
        assert_eq!(c.offsets(), &[0, 2, 3, 4, 4]);
    }

    #[test]
    fn transpose_is_involution() {
        let c = sample();
        let t = c.transpose();
        assert_eq!(t.row(3), &[1, 2]);
        assert_eq!(t.row(0), &[] as &[NodeId]);
        assert_eq!(t.transpose(), c);
    }

    #[test]
    fn adj_list_round_trip() {
        let c = sample();
        let lists = c.to_adj_lists();
        assert_eq!(lists, vec![vec![1, 2], vec![3], vec![3], vec![]]);
        assert_eq!(Csr::from_adj_lists(&lists), c);
    }

    #[test]
    fn from_adj_lists_sorts_rows() {
        let c = Csr::from_adj_lists(&[vec![2, 1], vec![]]);
        assert_eq!(c.row(0), &[1, 2]);
    }

    #[test]
    fn from_adj_lists_sorted_fast_path_matches_sort_path() {
        // Mixed input: sorted rows (fast path, including duplicates and
        // single-element rows), an unsorted row (sort path), and empty
        // rows must all land in the identical CSR.
        let mixed = vec![
            vec![0, 3, 7], // sorted
            vec![5, 2, 9], // unsorted
            vec![],        // empty
            vec![4],       // singleton
            vec![1, 1, 2], // sorted with duplicate entries
            vec![8, 8, 0], // unsorted with duplicates
        ];
        let via_mixed = Csr::from_adj_lists(&mixed);
        let presorted: Vec<Vec<NodeId>> = mixed
            .iter()
            .map(|r| {
                let mut s = r.clone();
                s.sort_unstable();
                s
            })
            .collect();
        assert_eq!(via_mixed, Csr::from_adj_lists(&presorted));
        assert_eq!(via_mixed.row(1), &[2, 5, 9]);
        assert_eq!(via_mixed.row(4), &[1, 1, 2]);
        assert_eq!(via_mixed.row(5), &[0, 8, 8]);
    }

    #[test]
    fn empty_rows_only() {
        let c = Csr::from_sorted_pairs(3, std::iter::empty());
        assert_eq!(c.n(), 3);
        assert_eq!(c.nnz(), 0);
        for u in 0..3 {
            assert!(c.row(u).is_empty());
        }
    }

    #[test]
    #[should_panic]
    fn malformed_offsets_rejected() {
        let _ = Csr::from_parts(vec![0, 2, 1], vec![0, 1]);
    }
}
