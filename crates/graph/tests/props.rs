//! Property tests on the graph substrate: CSR invariants, BFS laws, SCC
//! consistency and generator contracts under arbitrary inputs.

use proptest::prelude::*;
use radio_graph::analysis::{bfs_distances, bfs_layers, degree_stats};
use radio_graph::components::{induced_subgraph, strongly_connected_components};
use radio_graph::csr::Csr;
use radio_graph::generate::{gnp_directed, random_geometric};
use radio_graph::{DiGraph, NodeId};
use radio_util::derive_rng;

/// Independent adjacency-list construction: push edges one at a time, in
/// *reversed* iteration order so the build path shares nothing with the
/// sorted CSR assembly.
fn adjacency_lists(g: &DiGraph) -> (Vec<Vec<NodeId>>, Vec<Vec<NodeId>>) {
    let mut out = vec![Vec::new(); g.n()];
    let mut inn = vec![Vec::new(); g.n()];
    let mut edges: Vec<_> = g.edges().collect();
    edges.reverse();
    for (u, v) in edges {
        out[u as usize].push(v);
        inn[v as usize].push(u);
    }
    (out, inn)
}

/// `a` is a permutation of `b`.
fn permutation_equal(a: &[NodeId], b: &[NodeId]) -> bool {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

/// CSR out/in rows hold exactly the adjacency-list neighbors (as
/// multisets) for every node of `g`.
fn assert_csr_matches_adjacency(g: &DiGraph) {
    let (out, inn) = adjacency_lists(g);
    for u in 0..g.n() {
        assert!(
            permutation_equal(g.out_csr().row(u as NodeId), &out[u]),
            "out row {u} diverges"
        );
        assert!(
            permutation_equal(g.in_csr().row(u as NodeId), &inn[u]),
            "in row {u} diverges"
        );
        assert_eq!(g.out_csr().degree(u as NodeId), out[u].len());
        assert_eq!(g.in_csr().degree(u as NodeId), inn[u].len());
    }
    // Round-tripping the lists through the standalone Csr builder lands
    // on the identical flat arrays (rows are sorted either way).
    assert_eq!(&Csr::from_adj_lists(&out), g.out_csr());
    assert_eq!(&Csr::from_adj_lists(&inn), g.in_csr());
}

/// Arbitrary small digraph from an edge list.
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..60).prop_flat_map(|n| {
        prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..200).prop_map(move |mut es| {
            es.retain(|(u, v)| u != v);
            DiGraph::from_edges(n, &es)
        })
    })
}

proptest! {
    /// CSR bookkeeping: degree sums equal m, out- and in-views describe
    /// the same edge set, reverse is an involution.
    #[test]
    fn csr_invariants(g in arb_graph()) {
        let out_sum: usize = (0..g.n() as NodeId).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..g.n() as NodeId).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.m());
        prop_assert_eq!(in_sum, g.m());
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.in_neighbors(v).contains(&u));
        }
        let rr = g.reverse().reverse();
        prop_assert_eq!(rr.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
        let ds = degree_stats(&g);
        prop_assert!((ds.out_mean - ds.in_mean).abs() < 1e-12);
    }

    /// BFS satisfies the relaxation law: for every edge u→v with u
    /// reachable, dist(v) ≤ dist(u) + 1; and layers partition exactly the
    /// reachable nodes by distance.
    #[test]
    fn bfs_laws(g in arb_graph(), src_raw in 0usize..60) {
        let src = (src_raw % g.n()) as NodeId;
        let dist = bfs_distances(&g, src);
        prop_assert_eq!(dist[src as usize], Some(0));
        for (u, v) in g.edges() {
            if let Some(du) = dist[u as usize] {
                let dv = dist[v as usize].expect("neighbour of reachable node is reachable");
                prop_assert!(dv <= du + 1, "edge ({u},{v}): {dv} > {du}+1");
            }
        }
        let layers = bfs_layers(&g, src);
        let mut seen = 0usize;
        for (k, layer) in layers.iter().enumerate() {
            for &v in layer {
                prop_assert_eq!(dist[v as usize], Some(k as u32));
                seen += 1;
            }
        }
        prop_assert_eq!(seen, dist.iter().flatten().count());
    }

    /// SCCs partition the vertex set, and two nodes share a component iff
    /// each reaches the other.
    #[test]
    fn scc_partition_and_mutual_reachability(g in arb_graph()) {
        let comps = strongly_connected_components(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, g.n());
        // Spot-check mutual reachability inside the largest component.
        let big = comps.iter().max_by_key(|c| c.len()).expect("n ≥ 2");
        if big.len() >= 2 {
            let a = big[0];
            let b = big[big.len() - 1];
            let d_ab = bfs_distances(&g, a)[b as usize];
            let d_ba = bfs_distances(&g, b)[a as usize];
            prop_assert!(d_ab.is_some() && d_ba.is_some());
        }
    }

    /// Induced subgraphs keep exactly the internal edges.
    #[test]
    fn induced_subgraph_edge_exactness(g in arb_graph(), pick in prop::collection::vec(any::<bool>(), 60)) {
        let nodes: Vec<NodeId> = (0..g.n())
            .filter(|&v| pick.get(v).copied().unwrap_or(false))
            .map(|v| v as NodeId)
            .collect();
        let sub = induced_subgraph(&g, &nodes);
        prop_assert_eq!(sub.graph.n(), nodes.len());
        let expected: usize = g
            .edges()
            .filter(|(u, v)| nodes.binary_search(u).is_ok() && nodes.binary_search(v).is_ok())
            .count();
        prop_assert_eq!(sub.graph.m(), expected);
        for (u, v) in sub.graph.edges() {
            prop_assert!(g.has_edge(sub.original(u), sub.original(v)));
        }
    }

    /// G(n,p) generator contract: no self-loops, all endpoints in range,
    /// deterministic per seed.
    #[test]
    fn gnp_contract(n in 2usize..200, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g1 = gnp_directed(n, p, &mut derive_rng(seed, b"prop-gnp", 0));
        let g2 = gnp_directed(n, p, &mut derive_rng(seed, b"prop-gnp", 0));
        prop_assert_eq!(&g1, &g2);
        prop_assert!(g1.edges().all(|(u, v)| u != v && (v as usize) < n));
    }

    /// CSR backend ≡ adjacency lists on random G(n,p): every out-/in-row
    /// is permutation-equal to an independently built `Vec<Vec<NodeId>>`.
    #[test]
    fn csr_matches_adjacency_lists_on_gnp(n in 2usize..150, p in 0.0f64..0.4, seed in any::<u64>()) {
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"prop-csr-gnp", 0));
        assert_csr_matches_adjacency(&g);
    }

    /// Same equivalence on random geometric (unit-disk) graphs, whose
    /// builder path goes through `GraphBuilder` rather than the sorted
    /// fast path.
    #[test]
    fn csr_matches_adjacency_lists_on_geometric(n in 2usize..120, r in 0.01f64..0.5, seed in any::<u64>()) {
        let (g, _positions) = random_geometric(n, r, &mut derive_rng(seed, b"prop-csr-geo", 0));
        assert_csr_matches_adjacency(&g);
    }
}
