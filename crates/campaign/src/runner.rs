//! The campaign runner: execute a compiled scenario cell by cell with
//! per-cell checkpointing, and resume a half-finished campaign.
//!
//! A [`Campaign`] pairs a [`Compiled`] scenario with a checkpoint
//! directory. [`Campaign::step`] runs the lowest-index incomplete cell
//! and commits it (cell file first, manifest second — see the
//! [`checkpoint`](crate::checkpoint) module for why that order is
//! crash-safe); [`Campaign::report`] aggregates checkpointed cells into
//! the same [`SweepReport`] an uninterrupted in-memory run produces,
//! byte for byte.
//!
//! Resume is refused when the spec hash or the code version in the
//! manifest differs from the current spec/build: half a campaign under
//! one spec spliced with half under another is precisely the silent
//! corruption this layer exists to prevent.

use crate::checkpoint::{self, Manifest, CODE_VERSION};
use crate::compile::Compiled;
use crate::ir::Scenario;
use radio_sim::{CellResults, SweepReport, TracePlan};
use std::path::{Path, PathBuf};

/// A checkpointed, resumable campaign over one scenario.
#[derive(Debug)]
pub struct Campaign {
    compiled: Compiled,
    dir: PathBuf,
    manifest: Manifest,
    plan: Option<TracePlan>,
}

impl Campaign {
    /// Start a fresh campaign in `dir`. Refuses if `dir` already holds
    /// a manifest — resuming and starting over are different intents,
    /// and silently clobbering completed cells would be data loss.
    pub fn fresh(scenario: Scenario, dir: impl Into<PathBuf>) -> Result<Campaign, String> {
        let dir = dir.into();
        if Manifest::load(&dir)?.is_some() {
            return Err(format!(
                "{} already holds a campaign manifest; use resume (or point at an empty \
                 directory to start over)",
                dir.display()
            ));
        }
        let manifest = Manifest::fresh(
            &scenario.name,
            scenario.spec_hash_string(),
            scenario.sweep.base_seed,
            scenario.sweep.trials,
            scenario.cells.len(),
        );
        manifest
            .store(&dir)
            .map_err(|e| format!("cannot write manifest under {}: {e}", dir.display()))?;
        Ok(Self::assemble(scenario, dir, manifest))
    }

    /// Resume a campaign from the manifest in `dir`. Refuses when no
    /// manifest exists, or when the manifest's spec hash or code
    /// version does not match the current spec and build.
    pub fn resume(scenario: Scenario, dir: impl Into<PathBuf>) -> Result<Campaign, String> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir)?.ok_or_else(|| {
            format!(
                "{} holds no campaign manifest; use a fresh run instead of resume",
                dir.display()
            )
        })?;
        let want_hash = scenario.spec_hash_string();
        if manifest.spec_hash != want_hash {
            return Err(format!(
                "refusing to resume: checkpoint was produced by spec {} (scenario `{}`), \
                 but the current spec hashes to {} — completed cells would not belong to \
                 this campaign",
                manifest.spec_hash, manifest.scenario, want_hash
            ));
        }
        if manifest.code_version != CODE_VERSION {
            return Err(format!(
                "refusing to resume: checkpoint was produced by code version {}, this \
                 build is {CODE_VERSION} — trial streams may differ",
                manifest.code_version
            ));
        }
        Ok(Self::assemble(scenario, dir, manifest))
    }

    fn assemble(scenario: Scenario, dir: PathBuf, manifest: Manifest) -> Campaign {
        let compiled = Compiled::new(scenario);
        let plan = compiled.trace_plan();
        Campaign {
            compiled,
            dir,
            manifest,
            plan,
        }
    }

    /// The compiled scenario.
    pub fn compiled(&self) -> &Compiled {
        &self.compiled
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current manifest (completed indices ascending).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Cell indices not yet committed, ascending.
    pub fn remaining(&self) -> Vec<usize> {
        let total = self.compiled.sweep().cells().len();
        (0..total)
            .filter(|i| !self.manifest.completed.contains(i))
            .collect()
    }

    /// Whether every cell is committed.
    pub fn is_done(&self) -> bool {
        self.remaining().is_empty()
    }

    /// Run the lowest-index incomplete cell and commit it. Returns the
    /// index run, or `None` when the campaign is already complete.
    pub fn step(&mut self) -> Result<Option<usize>, String> {
        let Some(&idx) = self.remaining().first() else {
            return Ok(None);
        };
        let results = self.compiled.run_cell(idx, self.plan.as_ref());
        checkpoint::write_cell(&self.dir, idx, &results)
            .map_err(|e| format!("cannot checkpoint cell {idx}: {e}"))?;
        self.manifest.completed.push(idx);
        self.manifest.completed.sort_unstable();
        self.manifest
            .store(&self.dir)
            .map_err(|e| format!("cannot update manifest: {e}"))?;
        Ok(Some(idx))
    }

    /// Run all remaining cells to completion.
    pub fn run_all(&mut self) -> Result<(), String> {
        while self.step()?.is_some() {}
        Ok(())
    }

    /// Aggregate the checkpointed cells into the sweep report. Errors
    /// if any cell is still incomplete or a cell file fails its
    /// cross-check against the spec.
    pub fn report(&self) -> Result<SweepReport, String> {
        let cells = self.compiled.sweep().cells();
        if !self.is_done() {
            return Err(format!(
                "campaign incomplete: {} of {} cells done",
                self.manifest.completed.len(),
                cells.len()
            ));
        }
        let results: Vec<CellResults> = cells
            .iter()
            .enumerate()
            .map(|(i, cell)| checkpoint::read_cell(&self.dir, i, cell))
            .collect::<Result<_, _>>()?;
        Ok(self.compiled.sweep().report(&results))
    }

    /// Aggregate and atomically write `sweep_<name>.json` under `dir`,
    /// returning the written path.
    pub fn write_report(&self, dir: impl AsRef<Path>) -> Result<PathBuf, String> {
        let report = self.report()?;
        report
            .write_json(dir.as_ref())
            .map_err(|e| format!("cannot write report under {}: {e}", dir.as_ref().display()))
    }

    /// A human-readable status block (`campaign status` output).
    pub fn status(&self) -> String {
        let s = self.compiled.scenario();
        let total = s.cells.len();
        let done = self.manifest.completed.len();
        let mut out = String::new();
        out.push_str(&format!("scenario:     {}\n", s.name));
        out.push_str(&format!("spec hash:    {}\n", s.spec_hash_string()));
        out.push_str(&format!("code version: {}\n", self.manifest.code_version));
        out.push_str(&format!("checkpoints:  {}\n", self.dir.display()));
        out.push_str(&format!("progress:     {done}/{total} cells\n"));
        for (i, cell) in s.cells.iter().enumerate() {
            let mark = if self.manifest.completed.contains(&i) {
                "done"
            } else {
                "todo"
            };
            out.push_str(&format!(
                "  [{mark}] cell {i}: {} {} n={} p={}\n",
                cell.label,
                cell.family.label(),
                cell.n,
                cell.p
            ));
        }
        out
    }
}

/// Read the manifest in `dir` without a scenario — for `status` on a
/// directory whose spec file is unavailable.
pub fn peek_manifest(dir: &Path) -> Result<Option<Manifest>, String> {
    Manifest::load(dir)
}
